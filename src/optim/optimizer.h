// Numeric optimizers: momentum SGD, LARS (You et al. 2017, ResNet-50) and
// LAMB (You et al. 2019, BERT) — the optimizers the paper's large-batch
// training depends on (Sections 4.1, 4.2).
//
// Each optimizer is decomposed into three phases so that weight-update
// sharding (Section 3.2, Xu et al. 2020) can be expressed exactly:
//   1. ComputeDirection: elementwise slot-state update producing the raw
//      update direction — runs independently on each weight shard;
//   2. PartialStats: per-shard partial sums (squared norms) that a small
//      cross-replica all-reduce turns into the global statistics LARS/LAMB
//      trust ratios need;
//   3. Apply: elementwise application with the global statistics.
// A replicated (unsharded) Step composes the three phases on the full
// arrays; the sharded executor in weight_update_sharding.h composes them on
// shards. The two must agree to float tolerance — that is the correctness
// property the tests assert.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace tpu::optim {

// Per-variable optimizer slot state (zero-initialized, lazily sized).
struct SlotState {
  std::vector<float> m;  // momentum / first moment
  std::vector<float> v;  // second moment (LAMB)

  void EnsureSize(std::size_t n) {
    if (m.size() != n) m.assign(n, 0.0f);
    if (v.size() != n) v.assign(n, 0.0f);
  }
};

// Per-element arithmetic/memory footprint, for the weight-update cost model.
struct UpdateCost {
  double flops_per_element = 0;
  Bytes bytes_per_element = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;
  virtual UpdateCost update_cost() const = 0;

  // Phase 1: update slot state from the gradient, produce the raw update
  // direction in `direction` (same length as the shard).
  virtual void ComputeDirection(std::span<const float> weights,
                                std::span<const float> grads, SlotState& state,
                                std::int64_t step,
                                std::span<float> direction) = 0;

  // Phase 2: partial sums over this shard. Layout is optimizer-specific but
  // fixed-size; summing the vectors of all shards elementwise yields the
  // global statistics.
  virtual std::vector<double> PartialStats(
      std::span<const float> weights, std::span<const float> grads,
      std::span<const float> direction) const = 0;

  // Phase 3: apply the update with global statistics. `state` is the same
  // shard's slot state passed to ComputeDirection (LARS finishes its
  // momentum update here, scaled by the global trust ratio).
  virtual void Apply(std::span<float> weights, std::span<const float> direction,
                     SlotState& state,
                     std::span<const double> global_stats) = 0;

  // Convenience: unsharded update (the traditional replicated optimizer).
  void Step(std::span<float> weights, std::span<const float> grads,
            SlotState& state, std::int64_t step);
};

struct MomentumSgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
};

std::unique_ptr<Optimizer> MakeMomentumSgd(const MomentumSgdConfig& config);

struct LarsConfig {
  float learning_rate = 0.1f;
  float momentum = 0.9f;
  float trust_coefficient = 0.001f;  // eta
  float weight_decay = 1e-4f;
  float epsilon = 1e-9f;
};

std::unique_ptr<Optimizer> MakeLars(const LarsConfig& config);

struct LambConfig {
  float learning_rate = 0.001f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-6f;
  float weight_decay = 0.01f;
};

std::unique_ptr<Optimizer> MakeLamb(const LambConfig& config);

}  // namespace tpu::optim
