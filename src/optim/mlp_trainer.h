// A small real training loop: two-layer MLP with hand-derived gradients on
// the dense tensor kernels. This is the numeric end-to-end used to
// demonstrate the paper's large-batch optimizer claims (Sections 4.1-4.2):
// LAMB/LARS keep converging when the batch (and the linearly scaled learning
// rate) grow, where plain momentum SGD destabilizes.
//
// The task is teacher-student regression: a frozen random teacher network
// generates targets; the student (same architecture, different init) is
// trained to match it. Loss is mean squared error.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace tpu::optim {

struct MlpConfig {
  tensor::Index input_dim = 16;
  tensor::Index hidden_dim = 32;
  tensor::Index output_dim = 8;
  std::uint64_t teacher_seed = 7;
  std::uint64_t student_seed = 21;
};

struct TrainResult {
  double initial_loss = 0;
  double final_loss = 0;
  bool diverged = false;  // loss became NaN/inf or exploded 100x
  std::vector<double> loss_curve;
};

class MlpTrainer {
 public:
  explicit MlpTrainer(const MlpConfig& config);

  // Runs `steps` optimizer steps at the given batch size. Each step draws a
  // fresh batch (deterministic stream), computes the exact gradient of the
  // MSE loss by hand-derived backprop, and applies `optimizer`.
  TrainResult Train(Optimizer& optimizer, std::int64_t batch, int steps,
                    std::uint64_t data_seed = 3);

  // Mean loss of the current student over `batch` fresh examples.
  double EvaluateLoss(std::int64_t batch, std::uint64_t data_seed = 1234);

 private:
  struct Gradients {
    tensor::Tensor w1;
    tensor::Tensor w2;
    double loss = 0;
  };
  Gradients ForwardBackward(const tensor::Tensor& x,
                            const tensor::Tensor& target) const;
  tensor::Tensor Teacher(const tensor::Tensor& x) const;

  MlpConfig config_;
  tensor::Tensor teacher_w1_, teacher_w2_;
  tensor::Tensor w1_, w2_;
  SlotState state_w1_, state_w2_;
};

}  // namespace tpu::optim
