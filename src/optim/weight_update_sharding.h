// Weight-update sharding (Section 3.2; Xu et al. 2020).
//
// In traditional data parallelism every replica applies the full optimizer
// update after an all-reduce — at small per-core batch this replicated
// computation dominates (the paper measured 18% of BERT step time at 512
// chips). Weight-update sharding replaces it with:
//   reduce-scatter(grads) -> each replica updates only its 1/N shard
//   (slot state also sharded) -> all-gather / broadcast of updated shards.
//
// DistributedTrainer runs both schemes functionally over simulated replicas
// so tests can assert the sharded scheme is numerically equivalent to the
// replicated one (trust-ratio statistics are combined through the small
// cross-shard all-reduce of partial sums the real implementation uses).
#pragma once

#include <memory>
#include <vector>

#include "optim/optimizer.h"

namespace tpu::optim {

enum class UpdateScheme {
  kReplicated,          // all-reduce grads; every replica updates everything
  kWeightUpdateSharding // reduce-scatter; per-replica shard update; all-gather
};

class DistributedTrainer {
 public:
  DistributedTrainer(Optimizer* optimizer, int num_replicas,
                     std::int64_t num_params, UpdateScheme scheme,
                     std::uint64_t weight_seed = 17);

  int num_replicas() const { return num_replicas_; }
  std::int64_t num_params() const { return num_params_; }

  // One synchronous training step; grads[r] is replica r's local gradient
  // (length num_params). Gradients are summed across replicas, exactly as a
  // reduce-scatter/all-reduce would.
  void Step(const std::vector<std::vector<float>>& grads);

  const std::vector<float>& weights(int replica) const {
    return weights_[replica];
  }

  // Largest cross-replica weight divergence (must be 0 — both schemes keep
  // replicas bit-identical since they apply identical arithmetic).
  float MaxReplicaDivergence() const;

 private:
  Optimizer* optimizer_;
  int num_replicas_;
  std::int64_t num_params_;
  UpdateScheme scheme_;
  std::int64_t step_ = 0;
  std::vector<std::vector<float>> weights_;  // per replica, full copy
  // Replicated scheme: one full slot state per replica. Sharded scheme: each
  // replica only materializes the slot state of its own shard.
  std::vector<SlotState> state_;
};

// Simulated seconds the weight update itself takes on one core, given how
// many parameters that core updates (the hook plugged into the 2-D gradient
// summation's update phase).
SimTime WeightUpdateSeconds(const Optimizer& optimizer,
                            std::int64_t params_updated, double core_flops,
                            double hbm_bandwidth);

}  // namespace tpu::optim
