#include "optim/weight_update_sharding.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace tpu::optim {
namespace {

struct ShardBounds {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

ShardBounds ShardOf(std::int64_t num_params, int num_replicas, int r) {
  const std::int64_t chunk = CeilDiv(num_params, num_replicas);
  ShardBounds b;
  b.begin = std::min<std::int64_t>(num_params, r * chunk);
  b.end = std::min<std::int64_t>(num_params, (r + 1) * chunk);
  return b;
}

}  // namespace

DistributedTrainer::DistributedTrainer(Optimizer* optimizer, int num_replicas,
                                       std::int64_t num_params,
                                       UpdateScheme scheme,
                                       std::uint64_t weight_seed)
    : optimizer_(optimizer),
      num_replicas_(num_replicas),
      num_params_(num_params),
      scheme_(scheme),
      state_(num_replicas) {
  TPU_CHECK(optimizer != nullptr);
  TPU_CHECK_GT(num_replicas, 0);
  TPU_CHECK_GT(num_params, 0);
  // Identical initial weights on every replica.
  std::vector<float> init(num_params);
  Rng rng(weight_seed);
  for (float& w : init) w = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  weights_.assign(num_replicas, init);
}

void DistributedTrainer::Step(const std::vector<std::vector<float>>& grads) {
  TPU_CHECK_EQ(static_cast<int>(grads.size()), num_replicas_);
  for (const auto& g : grads) {
    TPU_CHECK_EQ(static_cast<std::int64_t>(g.size()), num_params_);
  }

  // Cross-replica gradient sum (what the all-reduce / reduce-scatter
  // computes). Summed once in fixed replica order so both schemes see the
  // identical reduced values, as on the real machine.
  std::vector<float> grad_sum(num_params_, 0.0f);
  for (const auto& g : grads) {
    for (std::int64_t i = 0; i < num_params_; ++i) grad_sum[i] += g[i];
  }

  if (scheme_ == UpdateScheme::kReplicated) {
    for (int r = 0; r < num_replicas_; ++r) {
      optimizer_->Step(weights_[r], grad_sum, state_[r], step_);
    }
    ++step_;
    return;
  }

  // Weight-update sharding. Phase 1: each replica computes the update
  // direction on its own shard only.
  std::vector<std::vector<float>> directions(num_replicas_);
  for (int r = 0; r < num_replicas_; ++r) {
    const ShardBounds b = ShardOf(num_params_, num_replicas_, r);
    directions[r].resize(b.size());
    state_[r].EnsureSize(b.size());
    std::span<float> w(weights_[r].data() + b.begin, b.size());
    std::span<const float> g(grad_sum.data() + b.begin, b.size());
    optimizer_->ComputeDirection(w, g, state_[r], step_, directions[r]);
  }

  // Phase 2: small all-reduce of the per-shard partial statistics (this is
  // how LARS/LAMB trust ratios see global norms despite sharding).
  std::vector<double> global_stats;
  for (int r = 0; r < num_replicas_; ++r) {
    const ShardBounds b = ShardOf(num_params_, num_replicas_, r);
    std::span<const float> w(weights_[r].data() + b.begin, b.size());
    std::span<const float> g(grad_sum.data() + b.begin, b.size());
    const std::vector<double> partial =
        optimizer_->PartialStats(w, g, directions[r]);
    if (global_stats.empty()) global_stats.assign(partial.size(), 0.0);
    TPU_CHECK_EQ(partial.size(), global_stats.size());
    for (std::size_t i = 0; i < partial.size(); ++i) {
      global_stats[i] += partial[i];
    }
  }

  // Phase 3: apply on the shard, then all-gather the updated shards into
  // every replica's full weight copy.
  for (int r = 0; r < num_replicas_; ++r) {
    const ShardBounds b = ShardOf(num_params_, num_replicas_, r);
    std::span<float> w(weights_[r].data() + b.begin, b.size());
    optimizer_->Apply(w, directions[r], state_[r], global_stats);
  }
  for (int r = 0; r < num_replicas_; ++r) {
    const ShardBounds b = ShardOf(num_params_, num_replicas_, r);
    for (int other = 0; other < num_replicas_; ++other) {
      if (other == r) continue;
      std::copy(weights_[r].begin() + b.begin, weights_[r].begin() + b.end,
                weights_[other].begin() + b.begin);
    }
  }
  ++step_;
}

float DistributedTrainer::MaxReplicaDivergence() const {
  float max_diff = 0.0f;
  for (int r = 1; r < num_replicas_; ++r) {
    for (std::int64_t i = 0; i < num_params_; ++i) {
      max_diff =
          std::max(max_diff, std::abs(weights_[r][i] - weights_[0][i]));
    }
  }
  return max_diff;
}

SimTime WeightUpdateSeconds(const Optimizer& optimizer,
                            std::int64_t params_updated, double core_flops,
                            double hbm_bandwidth) {
  const UpdateCost cost = optimizer.update_cost();
  const double flops = cost.flops_per_element * params_updated;
  const double bytes = static_cast<double>(cost.bytes_per_element) *
                       static_cast<double>(params_updated);
  // Optimizer updates are elementwise: vector-unit flops, HBM streaming.
  return std::max(flops / core_flops, bytes / hbm_bandwidth);
}

}  // namespace tpu::optim
