#include "optim/mlp_trainer.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tpu::optim {

using tensor::Tensor;

MlpTrainer::MlpTrainer(const MlpConfig& config)
    : config_(config),
      teacher_w1_(Tensor::Random({config.input_dim, config.hidden_dim},
                                 config.teacher_seed)),
      teacher_w2_(Tensor::Random({config.hidden_dim, config.output_dim},
                                 config.teacher_seed + 1)),
      w1_(Tensor::Random({config.input_dim, config.hidden_dim},
                         config.student_seed)),
      w2_(Tensor::Random({config.hidden_dim, config.output_dim},
                         config.student_seed + 1)) {}

Tensor MlpTrainer::Teacher(const Tensor& x) const {
  return tensor::MatMul(tensor::Relu(tensor::MatMul(x, teacher_w1_)),
                        teacher_w2_);
}

MlpTrainer::Gradients MlpTrainer::ForwardBackward(const Tensor& x,
                                                  const Tensor& target) const {
  const tensor::Index batch = x.dim(0);
  // Forward.
  const Tensor h_pre = tensor::MatMul(x, w1_);
  const Tensor h = tensor::Relu(h_pre);
  const Tensor y = tensor::MatMul(h, w2_);
  const Tensor err = tensor::Sub(y, target);

  Gradients grads{Tensor(), Tensor(), 0.0};
  double loss = 0;
  for (tensor::Index i = 0; i < err.num_elements(); ++i) {
    loss += 0.5 * err.flat(i) * err.flat(i);
  }
  grads.loss = loss / static_cast<double>(batch);

  // Backward (MSE): dY = err / batch.
  const Tensor dy = tensor::Scale(err, 1.0f / static_cast<float>(batch));
  grads.w2 = tensor::MatMul(tensor::Transpose2D(h), dy);
  const Tensor dh = tensor::MatMul(dy, tensor::Transpose2D(w2_));
  // Relu mask.
  Tensor dh_pre = dh;
  for (tensor::Index i = 0; i < dh_pre.num_elements(); ++i) {
    if (h_pre.flat(i) <= 0.0f) dh_pre.flat(i) = 0.0f;
  }
  grads.w1 = tensor::MatMul(tensor::Transpose2D(x), dh_pre);
  return grads;
}

TrainResult MlpTrainer::Train(Optimizer& optimizer, std::int64_t batch,
                              int steps, std::uint64_t data_seed) {
  TPU_CHECK_GT(batch, 0);
  TPU_CHECK_GT(steps, 0);
  TrainResult result;
  Rng data_rng(data_seed);
  for (int step = 0; step < steps; ++step) {
    Tensor x({batch, config_.input_dim});
    for (tensor::Index i = 0; i < x.num_elements(); ++i) {
      x.flat(i) = static_cast<float>(data_rng.NextGaussian());
    }
    const Tensor target = Teacher(x);
    const Gradients grads = ForwardBackward(x, target);
    if (step == 0) result.initial_loss = grads.loss;
    result.loss_curve.push_back(grads.loss);
    if (!std::isfinite(grads.loss) ||
        grads.loss > result.initial_loss * 100.0) {
      result.diverged = true;
      result.final_loss = grads.loss;
      return result;
    }
    std::span<float> w1_span(w1_.data(), w1_.num_elements());
    std::span<const float> g1_span(grads.w1.data(), grads.w1.num_elements());
    optimizer.Step(w1_span, g1_span, state_w1_, step);
    std::span<float> w2_span(w2_.data(), w2_.num_elements());
    std::span<const float> g2_span(grads.w2.data(), grads.w2.num_elements());
    optimizer.Step(w2_span, g2_span, state_w2_, step);
  }
  result.final_loss = EvaluateLoss(512, data_seed + 999);
  return result;
}

double MlpTrainer::EvaluateLoss(std::int64_t batch, std::uint64_t data_seed) {
  Rng data_rng(data_seed);
  Tensor x({batch, config_.input_dim});
  for (tensor::Index i = 0; i < x.num_elements(); ++i) {
    x.flat(i) = static_cast<float>(data_rng.NextGaussian());
  }
  const Tensor target = Teacher(x);
  const Tensor err = tensor::Sub(
      tensor::MatMul(tensor::Relu(tensor::MatMul(x, w1_)), w2_), target);
  double loss = 0;
  for (tensor::Index i = 0; i < err.num_elements(); ++i) {
    loss += 0.5 * err.flat(i) * err.flat(i);
  }
  return loss / static_cast<double>(batch);
}

}  // namespace tpu::optim
