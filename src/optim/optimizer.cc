#include "optim/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace tpu::optim {

void Optimizer::Step(std::span<float> weights, std::span<const float> grads,
                     SlotState& state, std::int64_t step) {
  TPU_CHECK_EQ(weights.size(), grads.size());
  state.EnsureSize(weights.size());
  std::vector<float> direction(weights.size());
  ComputeDirection(weights, grads, state, step, direction);
  const std::vector<double> stats = PartialStats(weights, grads, direction);
  Apply(weights, direction, state, stats);
}

namespace {

double SumSquares(std::span<const float> values) {
  double sum = 0;
  for (float v : values) sum += static_cast<double>(v) * v;
  return sum;
}

class MomentumSgd final : public Optimizer {
 public:
  explicit MomentumSgd(const MomentumSgdConfig& config) : config_(config) {}

  std::string name() const override { return "momentum-sgd"; }

  UpdateCost update_cost() const override {
    // m = mu*m + g; w -= lr*m : ~4 flops; read/write w, m; read g.
    return {4.0, 5 * 4};
  }

  void ComputeDirection(std::span<const float> weights,
                        std::span<const float> grads, SlotState& state,
                        std::int64_t /*step*/,
                        std::span<float> direction) override {
    (void)weights;
    state.EnsureSize(grads.size());
    for (std::size_t i = 0; i < grads.size(); ++i) {
      state.m[i] = config_.momentum * state.m[i] + grads[i];
      direction[i] = state.m[i];
    }
  }

  std::vector<double> PartialStats(std::span<const float>,
                                   std::span<const float>,
                                   std::span<const float>) const override {
    return {};
  }

  void Apply(std::span<float> weights, std::span<const float> direction,
             SlotState&, std::span<const double>) override {
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] -= config_.learning_rate * direction[i];
    }
  }

 private:
  MomentumSgdConfig config_;
};

// LARS (You et al. 2017): layer-wise adaptive rate scaling. The local
// learning rate is eta * ||w|| / (||g|| + wd * ||w||); the momentum buffer
// accumulates the scaled update.
class Lars final : public Optimizer {
 public:
  explicit Lars(const LarsConfig& config) : config_(config) {}

  std::string name() const override { return "lars"; }

  UpdateCost update_cost() const override {
    // norms + momentum + apply: ~8 flops; read/write w, m; read g; norms.
    return {8.0, 6 * 4};
  }

  void ComputeDirection(std::span<const float> weights,
                        std::span<const float> grads, SlotState& state,
                        std::int64_t /*step*/,
                        std::span<float> direction) override {
    state.EnsureSize(grads.size());
    // Direction phase is the raw regularized gradient; the trust ratio needs
    // global norms, so the momentum update happens in Apply.
    for (std::size_t i = 0; i < grads.size(); ++i) {
      direction[i] = grads[i] + config_.weight_decay * weights[i];
    }
  }

  std::vector<double> PartialStats(std::span<const float> weights,
                                   std::span<const float> grads,
                                   std::span<const float>) const override {
    return {SumSquares(weights), SumSquares(grads)};
  }

  void Apply(std::span<float> weights, std::span<const float> direction,
             SlotState& state, std::span<const double> global_stats) override {
    TPU_CHECK_EQ(global_stats.size(), 2u);
    const double w_norm = std::sqrt(global_stats[0]);
    const double g_norm = std::sqrt(global_stats[1]);
    double local_lr = config_.learning_rate;
    if (w_norm > 0 && g_norm > 0) {
      local_lr *= config_.trust_coefficient * w_norm /
                  (g_norm + config_.weight_decay * w_norm + config_.epsilon);
    }
    for (std::size_t i = 0; i < weights.size(); ++i) {
      state.m[i] = config_.momentum * state.m[i] +
                   static_cast<float>(local_lr) * direction[i];
      weights[i] -= state.m[i];
    }
  }

 private:
  LarsConfig config_;
};

// LAMB (You et al. 2019): Adam moments plus a layer-wise trust ratio
// ||w|| / ||update||.
class Lamb final : public Optimizer {
 public:
  explicit Lamb(const LambConfig& config) : config_(config) {}

  std::string name() const override { return "lamb"; }

  UpdateCost update_cost() const override {
    // m, v updates, bias correction, rsqrt, trust ratio, apply: ~24 flops;
    // read/write w, m, v; read g.
    return {24.0, 7 * 4};
  }

  void ComputeDirection(std::span<const float> weights,
                        std::span<const float> grads, SlotState& state,
                        std::int64_t step,
                        std::span<float> direction) override {
    state.EnsureSize(grads.size());
    const double bc1 = 1.0 - std::pow(config_.beta1, step + 1);
    const double bc2 = 1.0 - std::pow(config_.beta2, step + 1);
    for (std::size_t i = 0; i < grads.size(); ++i) {
      state.m[i] = config_.beta1 * state.m[i] + (1 - config_.beta1) * grads[i];
      state.v[i] =
          config_.beta2 * state.v[i] + (1 - config_.beta2) * grads[i] * grads[i];
      const double m_hat = state.m[i] / bc1;
      const double v_hat = state.v[i] / bc2;
      direction[i] =
          static_cast<float>(m_hat / (std::sqrt(v_hat) + config_.epsilon)) +
          config_.weight_decay * weights[i];
    }
  }

  std::vector<double> PartialStats(std::span<const float> weights,
                                   std::span<const float>,
                                   std::span<const float> direction)
      const override {
    return {SumSquares(weights), SumSquares(direction)};
  }

  void Apply(std::span<float> weights, std::span<const float> direction,
             SlotState&, std::span<const double> global_stats) override {
    TPU_CHECK_EQ(global_stats.size(), 2u);
    const double w_norm = std::sqrt(global_stats[0]);
    const double u_norm = std::sqrt(global_stats[1]);
    double trust = 1.0;
    if (w_norm > 0 && u_norm > 0) trust = w_norm / u_norm;
    const double lr = config_.learning_rate * trust;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] -= static_cast<float>(lr * direction[i]);
    }
  }

 private:
  LambConfig config_;
};

}  // namespace

std::unique_ptr<Optimizer> MakeMomentumSgd(const MomentumSgdConfig& config) {
  return std::make_unique<MomentumSgd>(config);
}
std::unique_ptr<Optimizer> MakeLars(const LarsConfig& config) {
  return std::make_unique<Lars>(config);
}
std::unique_ptr<Optimizer> MakeLamb(const LambConfig& config) {
  return std::make_unique<Lamb>(config);
}

}  // namespace tpu::optim
