// Stock probe sets for the telemetry sampler.
//
// Each Register* helper wires one subsystem's instantaneous signals into a
// TimeSeriesSampler under stable dotted names (the watchdogs key on some of
// them — see telemetry.h). Subsystems above this library in the dependency
// order register their own probes: recover::RegisterRecoveryProbes
// (recover/controller.h) and gpu::RegisterGpuStepRateProbe
// (gpu/gpu_cluster.h).
#pragma once

#include "network/network.h"
#include "sim/partitioned_simulator.h"
#include "sim/simulator.h"
#include "telemetry/sampler.h"
#include "topology/topology.h"

namespace tpu::telemetry {

// sim.queue_depth (pending work events now), sim.events_processed,
// sim.events_scheduled. All are pure functions of the simulated run; the
// thread-local pool stats are deliberately excluded (process-history
// dependent, would break replay byte-identity).
void RegisterSimulatorProbes(TimeSeriesSampler& sampler,
                             const sim::Simulator& simulator);

// net.max_link_util, net.mean_link_util, net.failed_links,
// net.max_link_backlog_s. "net.max_link_util" feeds the link-collapse
// watchdog.
void RegisterNetworkProbes(TimeSeriesSampler& sampler,
                           const net::Network& network);

// Per-link close-up: net.link.<id>.util and net.link.<id>.backlog_s.
void RegisterLinkProbes(TimeSeriesSampler& sampler, const net::Network& network,
                        topo::LinkId link);

// PDES engine close-up: pdes.windows, pdes.barrier_waits,
// pdes.cross_messages, pdes.join_notifications, pdes.queue_depth (pending
// work events across every lane — the stop-predicate signal for sampled
// engine runs), and per-partition pdes.partition.<p>.queue_depth /
// pdes.partition.<p>.events_processed. The per-partition pair is the live
// load-imbalance signal: a lane whose events_processed trails its peers
// while its queue stays deep marks a pod whose rings bottleneck the window.
// All probes are pure functions of the simulated protocol state, so sampled
// series are byte-identical across repeats at any thread count.
void RegisterPdesProbes(TimeSeriesSampler& sampler,
                        const sim::PartitionedSimulator& engine);

}  // namespace tpu::telemetry
