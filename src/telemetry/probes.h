// Stock probe sets for the telemetry sampler.
//
// Each Register* helper wires one subsystem's instantaneous signals into a
// TimeSeriesSampler under stable dotted names (the watchdogs key on some of
// them — see telemetry.h). Subsystems above this library in the dependency
// order register their own probes: recover::RegisterRecoveryProbes
// (recover/controller.h) and gpu::RegisterGpuStepRateProbe
// (gpu/gpu_cluster.h).
#pragma once

#include "network/network.h"
#include "sim/simulator.h"
#include "telemetry/sampler.h"
#include "topology/topology.h"

namespace tpu::telemetry {

// sim.queue_depth (pending work events now), sim.events_processed,
// sim.events_scheduled. All are pure functions of the simulated run; the
// thread-local pool stats are deliberately excluded (process-history
// dependent, would break replay byte-identity).
void RegisterSimulatorProbes(TimeSeriesSampler& sampler,
                             const sim::Simulator& simulator);

// net.max_link_util, net.mean_link_util, net.failed_links,
// net.max_link_backlog_s. "net.max_link_util" feeds the link-collapse
// watchdog.
void RegisterNetworkProbes(TimeSeriesSampler& sampler,
                           const net::Network& network);

// Per-link close-up: net.link.<id>.util and net.link.<id>.backlog_s.
void RegisterLinkProbes(TimeSeriesSampler& sampler, const net::Network& network,
                        topo::LinkId link);

}  // namespace tpu::telemetry
