#include "telemetry/probes.h"

#include <string>

namespace tpu::telemetry {

void RegisterSimulatorProbes(TimeSeriesSampler& sampler,
                             const sim::Simulator& simulator) {
  const sim::Simulator* sim = &simulator;
  sampler.RegisterProbe("sim.queue_depth", [sim] {
    return static_cast<double>(sim->queue_depth());
  });
  sampler.RegisterProbe("sim.events_processed", [sim] {
    return static_cast<double>(sim->events_processed());
  });
  // Deliberately no pool-stat probe: the callback pool is thread-local and
  // warms across a thread's lifetime, so its hit counts depend on process
  // history — sampling them would break the byte-identical-across-repeats
  // guarantee every exporter relies on. Pool health stays in the metrics
  // registry (ExportSimulatorMetrics), which is not replay-compared.
  sampler.RegisterProbe("sim.events_scheduled", [sim] {
    return static_cast<double>(sim->events_scheduled());
  });
}

void RegisterNetworkProbes(TimeSeriesSampler& sampler,
                           const net::Network& network) {
  const net::Network* net = &network;
  sampler.RegisterProbe("net.max_link_util",
                        [net] { return net->MaxLinkUtilization(); });
  sampler.RegisterProbe("net.mean_link_util",
                        [net] { return net->MeanActiveLinkUtilization(); });
  sampler.RegisterProbe("net.failed_links", [net] {
    return static_cast<double>(net->failed_link_count());
  });
  sampler.RegisterProbe("net.max_link_backlog_s",
                        [net] { return net->MaxLinkBacklogSeconds(); });
}

void RegisterLinkProbes(TimeSeriesSampler& sampler, const net::Network& network,
                        topo::LinkId link) {
  const net::Network* net = &network;
  const std::string prefix = "net.link." + std::to_string(link);
  sampler.RegisterProbe(prefix + ".util",
                        [net, link] { return net->LinkUtilization(link); });
  sampler.RegisterProbe(prefix + ".backlog_s", [net, link] {
    return net->LinkBacklogSeconds(link);
  });
}

void RegisterPdesProbes(TimeSeriesSampler& sampler,
                        const sim::PartitionedSimulator& engine) {
  const sim::PartitionedSimulator* pdes = &engine;
  sampler.RegisterProbe("pdes.windows", [pdes] {
    return static_cast<double>(pdes->windows_executed());
  });
  sampler.RegisterProbe("pdes.barrier_waits", [pdes] {
    return static_cast<double>(pdes->barrier_waits());
  });
  sampler.RegisterProbe("pdes.cross_messages", [pdes] {
    return static_cast<double>(pdes->cross_messages());
  });
  sampler.RegisterProbe("pdes.join_notifications", [pdes] {
    return static_cast<double>(pdes->join_notifications());
  });
  sampler.RegisterProbe("pdes.queue_depth", [pdes] {
    return static_cast<double>(pdes->TotalQueueDepth());
  });
  for (int p = 0; p < engine.partitions(); ++p) {
    const std::string prefix = "pdes.partition." + std::to_string(p);
    sampler.RegisterProbe(prefix + ".queue_depth", [pdes, p] {
      return static_cast<double>(pdes->partition(p).queue_depth());
    });
    sampler.RegisterProbe(prefix + ".events_processed", [pdes, p] {
      return static_cast<double>(pdes->PartitionEventsProcessed(p));
    });
  }
}

}  // namespace tpu::telemetry
