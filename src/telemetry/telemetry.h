// Continuous telemetry on the simulated clock: time series, structured
// events, anomaly watchdogs and an anomaly-triggered flight recorder.
//
// The trace subsystem (trace/trace.h) answers "when did each span run" and
// the metrics registry answers "how much in total" — neither shows how link
// utilization, queue depth, goodput or recovery state *evolve* over a run.
// This layer does: a TimeSeriesSampler (sampler.h) ticks on the simulated
// clock via telemetry-class DES events (sim::Simulator::ScheduleTelemetryAt)
// and feeds every registered probe's value into a TelemetrySession, which
//   * keeps fixed-capacity downsampled TimeSeries per probe,
//   * keeps a FlightRecorder ring of the last flight_window seconds of
//     high-resolution ticks plus recent structured events, dumped
//     retroactively when an anomaly (or a configured event such as
//     "recovery.detected") triggers,
//   * runs the anomaly/SLO watchdogs (step-time regression vs a rolling
//     baseline, goodput SLO burn rate, link-utilization collapse) on every
//     tick, recording breach intervals that cross-link — via
//     NoteSuspectLinks from the recovery controller's diagnosis — to the
//     same links the critical-path engine attributes,
//   * exports everything as deterministic JSON/CSV (simulated clock only,
//     %.12g doubles: identical runs produce byte-identical files).
//
// Null-by-default, like tracing and metrics: CurrentTelemetry() is null
// unless a session is installed, instrumentation sites guard on it, and
// telemetry-class events are excluded from user-visible simulator counters —
// with telemetry off every simulated timestamp and benchmark JSON is
// bit-identical to a build without this subsystem (asserted in
// tests/determinism_test.cc).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace tpu::trace {
class MetricsRegistry;
}  // namespace tpu::trace

namespace tpu::telemetry {

// Thresholds for the three anomaly/SLO watchdogs. All of them evaluate on
// every sampler tick against rolling state rebuilt per run.
struct WatchdogConfig {
  bool enabled = true;

  // Step-time regression (series "run.step_seconds"): breach when the
  // current step estimate exceeds `step_regression_factor` times the rolling
  // mean of the last `baseline_window` healthy (non-breach, nonzero)
  // samples, or when the step reads 0 while a baseline exists — the
  // controller prices a stalled machine at step 0, so that is a stall.
  double step_regression_factor = 1.5;
  int baseline_window = 8;
  // Baseline samples required before the watchdog may breach at all.
  int min_baseline_samples = 3;

  // Goodput SLO burn rate (series "run.work_rate"): the SLO is "mean work
  // rate over the last `slo_window` ticks >= slo_target x the reference
  // rate" (reference = first nonzero sample of the run, i.e. the healthy
  // rate). Burn rate is (1 - observed/reference) / (1 - slo_target); breach
  // when it reaches `slo_burn_threshold` — budget burning that many times
  // faster than allowed.
  double slo_target = 0.9;
  double slo_burn_threshold = 2.0;
  int slo_window = 8;

  // Link-utilization collapse (series "net.max_link_util"): breach when the
  // busiest link's utilization drops below `link_collapse_fraction` times
  // its rolling baseline while that baseline is at least
  // `link_min_baseline_util` — traffic that was flowing has stopped
  // (a stalled collective), as opposed to a run that never loaded the
  // network.
  double link_collapse_fraction = 0.5;
  double link_min_baseline_util = 0.05;
};

struct TelemetryConfig {
  // Simulated seconds between sampler ticks.
  SimTime sample_interval = Seconds(0.25);
  // Max stored points per series; when full, adjacent points merge pairwise
  // and the per-point stride doubles (must be even, >= 2).
  int series_capacity = 64;
  // Seconds of high-resolution history the flight recorder retains.
  SimTime flight_window = Seconds(20);
  // Structured events retained in the flight ring.
  int flight_max_events = 64;
  // Dumps kept per run; further triggers count as dropped.
  int max_dumps = 4;
  // Min simulated seconds between dumps with the same trigger name.
  SimTime dump_cooldown = Seconds(60);
  // Structured events kept per run (ring: oldest dropped first).
  int max_run_events = 256;
  // Structured-event names that retroactively dump the flight recorder the
  // instant they are recorded — by default the recovery controller's
  // detection event, so the dump's trigger timestamp *is* the fault's
  // detection instant.
  std::vector<std::string> dump_on_events = {"recovery.detected"};
  WatchdogConfig watchdog;
};

// Fixed-capacity downsampled series. Raw samples accumulate into buckets of
// `stride()` consecutive ticks; when the point store fills, adjacent points
// merge pairwise and the stride doubles, so memory stays bounded while the
// full run remains covered at progressively coarser resolution.
class TimeSeries {
 public:
  struct Point {
    SimTime t = 0;  // timestamp of the bucket's first raw sample
    double mean = 0;
    double min = 0;
    double max = 0;
    int count = 0;
  };

  TimeSeries(std::string name, int capacity);

  void Add(SimTime t, double value);

  const std::string& name() const { return name_; }
  // Raw samples currently merged into each stored point.
  int stride() const { return stride_; }
  std::int64_t samples() const { return samples_; }
  // Stored points plus the still-filling partial bucket (if any).
  std::vector<Point> Points() const;

 private:
  std::string name_;
  int capacity_;
  int stride_ = 1;
  std::vector<Point> points_;
  Point pending_;
  bool has_pending_ = false;
  std::int64_t samples_ = 0;
};

// A timestamped out-of-band occurrence: recovery transitions, watchdog
// firings, fault injections — anything series can't express.
struct StructuredEvent {
  SimTime t = 0;
  std::string name;
  std::string detail;
};

// One retroactive snapshot of the flight recorder: the high-resolution rows
// (times x columns) and structured events that were in the ring when
// `trigger` fired at `triggered_at`.
struct FlightDump {
  std::string trigger;
  SimTime triggered_at = 0;
  std::vector<std::string> columns;
  std::vector<SimTime> times;
  std::vector<std::vector<double>> rows;  // rows[i] aligns with columns
  std::vector<StructuredEvent> events;
};

// One watchdog's breach interval: opened at the first breaching tick,
// extended while breaches continue, closed by the first healthy tick.
// `suspect_links` is backfilled by NoteSuspectLinks (the recovery
// controller's diagnosis) so the interval cross-links to the same links the
// critical-path report attributes.
struct WatchdogFiring {
  std::string watchdog;  // "step_regression" | "slo_burn" | "link_collapse"
  std::string series;
  SimTime first_breach = 0;
  SimTime last_breach = 0;
  int breaches = 0;
  double baseline = 0;  // rolling baseline at the opening breach
  double worst = 0;     // most extreme breaching value
  bool open = true;
  std::vector<int> suspect_links;
};

// Everything telemetry collected for one run (one recovery round, one
// benchmark scenario, ...). Sessions archive a RunData per CommitRun.
struct RunData {
  std::string label;
  SimTime started_at = 0;
  SimTime last_sample_at = 0;
  std::int64_t ticks = 0;
  std::vector<TimeSeries> series;  // registration order
  std::vector<StructuredEvent> events;
  int dropped_events = 0;
  std::vector<WatchdogFiring> firings;
  std::vector<FlightDump> dumps;
  int dropped_dumps = 0;
  std::vector<int> suspect_links;
};

// The telemetry sink: owns per-run series/events/watchdog/flight-recorder
// state and the deterministic exporters. A session outlives the simulators
// it observes — BeginRun/CommitRun bracket each simulated run (an uncommitted
// run is discarded by the next BeginRun, which is how recovery retry rounds
// keep only the completed round).
//
// Threading: like TraceRecorder and MetricsRegistry, a session must only be
// written from one thread at a time; the sweep runner falls back to serial
// when a session is installed.
class TelemetrySession {
 public:
  explicit TelemetrySession(TelemetryConfig config = {});

  const TelemetryConfig& config() const { return config_; }

  void BeginRun(const std::string& label, SimTime started_at = 0);
  void CommitRun();
  bool in_run() const { return in_run_; }

  // One sampler tick: every probe's value at simulated time t, in the
  // sampler's registration order (`columns` is the same vector every tick).
  // Feeds the series, the flight ring and the watchdogs.
  void RecordTick(SimTime t, const std::vector<std::string>& columns,
                  const std::vector<double>& values);

  // Records a structured event into the run and the flight ring; names
  // listed in config.dump_on_events trigger a retroactive dump at exactly t.
  void RecordEvent(SimTime t, std::string name, std::string detail = {});

  // Attributes the current anomaly to concrete links (from the recovery
  // controller's diagnosis): merged into the run's suspect set and into
  // every open watchdog firing.
  void NoteSuspectLinks(const std::vector<int>& links);

  // Retroactively snapshots the flight ring. Applies the per-trigger-name
  // cooldown and the max_dumps cap.
  void TriggerDump(const std::string& trigger, SimTime t);

  const std::vector<RunData>& runs() const { return runs_; }
  const RunData& current_run() const { return current_; }

  // {"config":{...},"runs":[...]} — committed runs plus the current run if
  // it holds data. Simulated-clock values only; byte-identical across
  // identical runs.
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;
  // Long-format series table: run,series,t,mean,min,max,count.
  void WriteCsv(std::ostream& out) const;
  // telemetry.* counters: ticks, events, dumps, per-watchdog firings.
  void ExportMetrics(trace::MetricsRegistry& metrics) const;

 private:
  struct WatchdogState {
    // Rolling baseline of recent healthy samples (step regression and link
    // collapse) or the SLO window (burn rate).
    std::deque<double> window;
    double reference = 0;  // SLO: first nonzero work-rate sample
    bool breaching = false;
    int firing_index = -1;  // into current_.firings while breaching
  };

  void ResetRunState();
  void EvaluateWatchdogs(SimTime t, const std::vector<std::string>& columns,
                         const std::vector<double>& values);
  void OpenOrExtendFiring(WatchdogState& state, const char* watchdog,
                          const char* series, SimTime t, double baseline,
                          double value);
  void CloseFiring(WatchdogState& state);
  void AppendRunJson(std::ostream& out, const RunData& run) const;

  TelemetryConfig config_;
  bool in_run_ = false;
  RunData current_;
  std::vector<RunData> runs_;

  // Watchdog input columns, resolved once per run from the sampler's column
  // order (-2 = unresolved, -1 = probe not registered).
  int step_col_ = -2;
  int slo_col_ = -2;
  int link_col_ = -2;

  // Flight ring: the last flight_capacity_ ticks, plus recent structured
  // events. head_ is the oldest row's position once the ring wraps.
  int flight_capacity_ = 1;
  std::vector<SimTime> flight_times_;
  std::vector<std::vector<double>> flight_rows_;
  std::vector<std::string> flight_columns_;
  std::size_t flight_head_ = 0;
  std::deque<StructuredEvent> flight_events_;
  std::map<std::string, SimTime> last_dump_at_;  // per trigger name

  WatchdogState step_state_;
  WatchdogState slo_state_;
  WatchdogState link_state_;

  // Session-lifetime totals for ExportMetrics.
  std::int64_t total_ticks_ = 0;
  std::int64_t total_events_ = 0;
  std::int64_t total_dumps_ = 0;
  std::int64_t suppressed_dumps_ = 0;
  std::map<std::string, std::int64_t> firing_counts_;
};

// Process-global (thread-local) session; null — the default — disables all
// telemetry instrumentation. Same contract as trace::CurrentTrace().
TelemetrySession* CurrentTelemetry();
void SetCurrentTelemetry(TelemetrySession* session);

class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(TelemetrySession* session)
      : previous_(CurrentTelemetry()) {
    SetCurrentTelemetry(session);
  }
  ~ScopedTelemetry() { SetCurrentTelemetry(previous_); }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  TelemetrySession* previous_;
};

}  // namespace tpu::telemetry
