// TimeSeriesSampler: drives probe sampling on the simulated clock.
//
// Probes are plain closures returning a double ("current queue depth",
// "max link utilization", "current work rate"); the sampler evaluates all
// of them every config().sample_interval simulated seconds via a
// self-rescheduling telemetry-class event (Simulator::ScheduleTelemetryAt),
// feeding one consistent row per tick into the TelemetrySession and — when
// a trace recorder is installed — into Perfetto counter tracks under the
// "system"/"telemetry" track.
//
// Telemetry-class events share the DES total order with work events but are
// excluded from user-visible counters and invisible to EventObservers, so a
// sampled run's work timestamps are bit-identical to an unsampled one.
//
// The sampler never stops on its own (a self-rescheduling event would keep
// a RunUntil-driven simulation alive to its horizon); callers running to
// quiescence set a stop predicate — e.g. the recovery controller's
// finished() — checked at each tick before sampling or rescheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"

namespace tpu::telemetry {

class TimeSeriesSampler {
 public:
  // Both must outlive the sampler; the session supplies the cadence.
  TimeSeriesSampler(sim::Simulator* simulator, TelemetrySession* session);

  // Registration order is the column order of every tick row. Register all
  // probes before Start().
  void RegisterProbe(std::string name, std::function<double()> probe);

  // Checked at each tick: once true, the sampler stops sampling and
  // rescheduling (the pending tick becomes a no-op).
  void set_stop_predicate(std::function<bool()> stop) {
    stop_ = std::move(stop);
  }

  // Samples immediately at the simulator's current time, then every
  // sample_interval. Call once.
  void Start();

  std::uint64_t ticks() const { return ticks_; }
  const std::vector<std::string>& columns() const { return columns_; }

 private:
  void Tick();
  void PublishCounters(SimTime t);

  sim::Simulator* simulator_;
  TelemetrySession* session_;
  std::vector<std::string> columns_;
  std::vector<std::function<double()>> probes_;
  std::vector<double> values_;
  std::function<bool()> stop_;
  bool started_ = false;
  std::uint64_t ticks_ = 0;

  // Perfetto counters, cached per recorder pointer (recorders are swapped,
  // never mutated — same pattern as net::Network's track cache).
  trace::TraceRecorder* counter_recorder_ = nullptr;
  std::vector<trace::TraceRecorder::CounterId> counters_;
};

}  // namespace tpu::telemetry
