#include "telemetry/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::telemetry {
namespace {

// Thread-local like the trace recorder and metrics registry: worker threads
// running throwaway simulations (planner re-pricing, sweep points) must not
// feed the main thread's session.
thread_local TelemetrySession* g_telemetry = nullptr;

// %.12g, the same precision RecoveryTimeline::ToJson uses: enough that
// distinct simulated values stay distinct, short enough that the files stay
// readable. All values are pure functions of the simulation, so identical
// runs produce byte-identical output.
void AppendNum(std::ostream& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out << buf;
}

void AppendString(std::ostream& out, const std::string& value) {
  out << '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

double WindowMean(const std::deque<double>& window) {
  if (window.empty()) return 0;
  double sum = 0;
  for (const double v : window) sum += v;
  return sum / static_cast<double>(window.size());
}

void PushWindow(std::deque<double>& window, double value, int capacity) {
  window.push_back(value);
  while (static_cast<int>(window.size()) > capacity) window.pop_front();
}

int FindColumn(const std::vector<std::string>& columns, const char* name) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

TelemetrySession* CurrentTelemetry() { return g_telemetry; }
void SetCurrentTelemetry(TelemetrySession* session) { g_telemetry = session; }

// ---------------------------------------------------------------------------
// TimeSeries

TimeSeries::TimeSeries(std::string name, int capacity)
    : name_(std::move(name)), capacity_(capacity) {
  TPU_CHECK_GE(capacity_, 2);
  TPU_CHECK_EQ(capacity_ % 2, 0);
  points_.reserve(capacity_);
}

void TimeSeries::Add(SimTime t, double value) {
  ++samples_;
  if (!has_pending_) {
    pending_ = Point{t, value, value, value, 1};
    has_pending_ = true;
  } else {
    pending_.mean += value;  // running sum until the bucket closes
    pending_.min = std::min(pending_.min, value);
    pending_.max = std::max(pending_.max, value);
    ++pending_.count;
  }
  if (pending_.count < stride_) return;
  pending_.mean /= pending_.count;
  points_.push_back(pending_);
  has_pending_ = false;
  if (static_cast<int>(points_.size()) < capacity_) return;
  // Full: merge adjacent pairs and double the stride. Capacity is even, so
  // the merge is exact and the series keeps covering the whole run.
  for (std::size_t i = 0; i < points_.size() / 2; ++i) {
    const Point& a = points_[2 * i];
    const Point& b = points_[2 * i + 1];
    const int count = a.count + b.count;
    points_[i] = Point{a.t,
                       (a.mean * a.count + b.mean * b.count) / count,
                       std::min(a.min, b.min), std::max(a.max, b.max), count};
  }
  points_.resize(points_.size() / 2);
  stride_ *= 2;
}

std::vector<TimeSeries::Point> TimeSeries::Points() const {
  std::vector<Point> result = points_;
  if (has_pending_) {
    Point partial = pending_;
    partial.mean /= partial.count;
    result.push_back(partial);
  }
  return result;
}

// ---------------------------------------------------------------------------
// TelemetrySession

TelemetrySession::TelemetrySession(TelemetryConfig config)
    : config_(std::move(config)) {
  TPU_CHECK_GT(config_.sample_interval, 0.0);
  TPU_CHECK_GE(config_.series_capacity, 2);
  TPU_CHECK_EQ(config_.series_capacity % 2, 0);
  TPU_CHECK_GT(config_.flight_window, 0.0);
  flight_capacity_ = std::max(
      1, static_cast<int>(
             std::llround(config_.flight_window / config_.sample_interval)));
}

void TelemetrySession::ResetRunState() {
  flight_times_.clear();
  flight_rows_.clear();
  flight_columns_.clear();
  flight_head_ = 0;
  flight_events_.clear();
  last_dump_at_.clear();
  step_state_ = WatchdogState{};
  slo_state_ = WatchdogState{};
  link_state_ = WatchdogState{};
  step_col_ = slo_col_ = link_col_ = -2;
}

void TelemetrySession::BeginRun(const std::string& label, SimTime started_at) {
  // An uncommitted run (e.g. a recovery retry round that hit its horizon)
  // is discarded: only runs the caller commits make it into the export.
  current_ = RunData{};
  current_.label = label;
  current_.started_at = started_at;
  in_run_ = true;
  ResetRunState();
}

void TelemetrySession::CommitRun() {
  if (!in_run_) return;
  runs_.push_back(std::move(current_));
  current_ = RunData{};
  in_run_ = false;
  ResetRunState();
}

void TelemetrySession::RecordTick(SimTime t,
                                  const std::vector<std::string>& columns,
                                  const std::vector<double>& values) {
  if (!in_run_ || columns.empty()) return;
  TPU_CHECK_EQ(columns.size(), values.size());
  if (current_.series.empty()) {
    current_.series.reserve(columns.size());
    for (const std::string& name : columns) {
      current_.series.emplace_back(name, config_.series_capacity);
    }
    flight_columns_ = columns;
  }
  TPU_CHECK_EQ(current_.series.size(), values.size());
  ++current_.ticks;
  ++total_ticks_;
  current_.last_sample_at = t;
  for (std::size_t i = 0; i < values.size(); ++i) {
    current_.series[i].Add(t, values[i]);
  }
  // Flight ring: overwrite the oldest row once full.
  if (static_cast<int>(flight_rows_.size()) < flight_capacity_) {
    flight_times_.push_back(t);
    flight_rows_.push_back(values);
  } else {
    flight_times_[flight_head_] = t;
    flight_rows_[flight_head_] = values;
    flight_head_ = (flight_head_ + 1) % flight_rows_.size();
  }
  if (config_.watchdog.enabled) EvaluateWatchdogs(t, columns, values);
}

void TelemetrySession::RecordEvent(SimTime t, std::string name,
                                   std::string detail) {
  if (!in_run_) return;
  ++total_events_;
  StructuredEvent event{t, std::move(name), std::move(detail)};
  flight_events_.push_back(event);
  while (static_cast<int>(flight_events_.size()) > config_.flight_max_events) {
    flight_events_.pop_front();
  }
  if (static_cast<int>(current_.events.size()) >= config_.max_run_events) {
    current_.events.erase(current_.events.begin());
    ++current_.dropped_events;
  }
  const std::string& recorded_name = event.name;
  const bool dump = std::find(config_.dump_on_events.begin(),
                              config_.dump_on_events.end(),
                              recorded_name) != config_.dump_on_events.end();
  current_.events.push_back(std::move(event));
  if (dump) TriggerDump(current_.events.back().name, t);
}

void TelemetrySession::NoteSuspectLinks(const std::vector<int>& links) {
  if (!in_run_ || links.empty()) return;
  const auto merge = [&links](std::vector<int>& into) {
    into.insert(into.end(), links.begin(), links.end());
    std::sort(into.begin(), into.end());
    into.erase(std::unique(into.begin(), into.end()), into.end());
  };
  merge(current_.suspect_links);
  for (WatchdogFiring& firing : current_.firings) {
    if (firing.open) merge(firing.suspect_links);
  }
}

void TelemetrySession::TriggerDump(const std::string& trigger, SimTime t) {
  if (!in_run_) return;
  const auto it = last_dump_at_.find(trigger);
  if (it != last_dump_at_.end() && t - it->second < config_.dump_cooldown) {
    ++suppressed_dumps_;
    return;
  }
  if (static_cast<int>(current_.dumps.size()) >= config_.max_dumps) {
    ++current_.dropped_dumps;
    ++suppressed_dumps_;
    return;
  }
  last_dump_at_[trigger] = t;
  FlightDump dump;
  dump.trigger = trigger;
  dump.triggered_at = t;
  dump.columns = flight_columns_;
  // Ring rows oldest -> newest.
  const std::size_t n = flight_rows_.size();
  dump.times.reserve(n);
  dump.rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = (flight_head_ + i) % n;
    dump.times.push_back(flight_times_[pos]);
    dump.rows.push_back(flight_rows_[pos]);
  }
  dump.events.assign(flight_events_.begin(), flight_events_.end());
  current_.dumps.push_back(std::move(dump));
  ++total_dumps_;
}

void TelemetrySession::OpenOrExtendFiring(WatchdogState& state,
                                          const char* watchdog,
                                          const char* series, SimTime t,
                                          double baseline, double value) {
  if (state.breaching) {
    WatchdogFiring& firing = current_.firings[state.firing_index];
    firing.last_breach = t;
    ++firing.breaches;
    // "Worst" is the most extreme breaching value: high steps and burn
    // rates breach upward, collapsed utilization breaches downward.
    if (value > firing.baseline) {
      firing.worst = std::max(firing.worst, value);
    } else {
      firing.worst = std::min(firing.worst, value);
    }
    return;
  }
  WatchdogFiring firing;
  firing.watchdog = watchdog;
  firing.series = series;
  firing.first_breach = firing.last_breach = t;
  firing.breaches = 1;
  firing.baseline = baseline;
  firing.worst = value;
  firing.suspect_links = current_.suspect_links;
  state.breaching = true;
  state.firing_index = static_cast<int>(current_.firings.size());
  current_.firings.push_back(std::move(firing));
  ++firing_counts_[watchdog];
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    recorder->Instant(recorder->Track("system", "telemetry"),
                      std::string("telemetry: ") + watchdog, t);
  }
  TriggerDump(watchdog, t);
}

void TelemetrySession::CloseFiring(WatchdogState& state) {
  if (!state.breaching) return;
  current_.firings[state.firing_index].open = false;
  state.breaching = false;
  state.firing_index = -1;
}

void TelemetrySession::EvaluateWatchdogs(
    SimTime t, const std::vector<std::string>& columns,
    const std::vector<double>& values) {
  const WatchdogConfig& wd = config_.watchdog;
  if (step_col_ == -2) {
    step_col_ = FindColumn(columns, "run.step_seconds");
    slo_col_ = FindColumn(columns, "run.work_rate");
    link_col_ = FindColumn(columns, "net.max_link_util");
  }

  // Step-time regression: the current step estimate against the rolling
  // mean of recent healthy samples. A zero step with a nonzero baseline is
  // the controller's stalled machine — the hardest regression there is.
  if (step_col_ >= 0) {
    const double value = values[step_col_];
    WatchdogState& state = step_state_;
    double baseline = 0;
    bool breach = false;
    if (static_cast<int>(state.window.size()) >= wd.min_baseline_samples) {
      baseline = WindowMean(state.window);
      breach = baseline > 0 &&
               (value <= 0 || value > wd.step_regression_factor * baseline);
    }
    if (breach) {
      OpenOrExtendFiring(state, "step_regression", "run.step_seconds", t,
                         baseline, value);
    } else {
      CloseFiring(state);
      if (value > 0) PushWindow(state.window, value, wd.baseline_window);
    }
  }

  // Goodput SLO burn rate: how fast the error budget burns relative to the
  // reference (healthy) rate.
  if (slo_col_ >= 0 && wd.slo_target < 1.0) {
    const double value = values[slo_col_];
    WatchdogState& state = slo_state_;
    if (state.reference <= 0 && value > 0) state.reference = value;
    PushWindow(state.window, value, wd.slo_window);
    bool breach = false;
    double burn = 0;
    if (state.reference > 0) {
      const double observed = WindowMean(state.window) / state.reference;
      burn = (1.0 - observed) / (1.0 - wd.slo_target);
      breach = burn >= wd.slo_burn_threshold;
    }
    if (breach) {
      OpenOrExtendFiring(state, "slo_burn", "run.work_rate", t,
                         state.reference, burn);
    } else {
      CloseFiring(state);
    }
  }

  // Link-utilization collapse: the busiest link went quiet relative to its
  // own rolling baseline — traffic that was flowing has stopped.
  if (link_col_ >= 0) {
    const double value = values[link_col_];
    WatchdogState& state = link_state_;
    double baseline = 0;
    bool breach = false;
    if (static_cast<int>(state.window.size()) >= wd.min_baseline_samples) {
      baseline = WindowMean(state.window);
      breach = baseline >= wd.link_min_baseline_util &&
               value < wd.link_collapse_fraction * baseline;
    }
    if (breach) {
      OpenOrExtendFiring(state, "link_collapse", "net.max_link_util", t,
                         baseline, value);
    } else {
      CloseFiring(state);
      PushWindow(state.window, value, wd.baseline_window);
    }
  }
}

// ---------------------------------------------------------------------------
// Exporters

void TelemetrySession::AppendRunJson(std::ostream& out,
                                     const RunData& run) const {
  out << "{\"label\":";
  AppendString(out, run.label);
  out << ",\"started_at\":";
  AppendNum(out, run.started_at);
  out << ",\"last_sample_at\":";
  AppendNum(out, run.last_sample_at);
  out << ",\"ticks\":" << run.ticks;

  out << ",\"series\":[";
  for (std::size_t i = 0; i < run.series.size(); ++i) {
    const TimeSeries& series = run.series[i];
    if (i > 0) out << ",";
    out << "{\"name\":";
    AppendString(out, series.name());
    out << ",\"stride\":" << series.stride()
        << ",\"samples\":" << series.samples() << ",\"points\":[";
    const std::vector<TimeSeries::Point> points = series.Points();
    for (std::size_t j = 0; j < points.size(); ++j) {
      const TimeSeries::Point& point = points[j];
      if (j > 0) out << ",";
      out << "{\"t\":";
      AppendNum(out, point.t);
      out << ",\"mean\":";
      AppendNum(out, point.mean);
      out << ",\"min\":";
      AppendNum(out, point.min);
      out << ",\"max\":";
      AppendNum(out, point.max);
      out << ",\"count\":" << point.count << "}";
    }
    out << "]}";
  }
  out << "]";

  out << ",\"events\":[";
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    const StructuredEvent& event = run.events[i];
    if (i > 0) out << ",";
    out << "{\"t\":";
    AppendNum(out, event.t);
    out << ",\"name\":";
    AppendString(out, event.name);
    if (!event.detail.empty()) {
      out << ",\"detail\":";
      AppendString(out, event.detail);
    }
    out << "}";
  }
  out << "]";
  if (run.dropped_events > 0) {
    out << ",\"dropped_events\":" << run.dropped_events;
  }

  out << ",\"watchdogs\":[";
  for (std::size_t i = 0; i < run.firings.size(); ++i) {
    const WatchdogFiring& firing = run.firings[i];
    if (i > 0) out << ",";
    out << "{\"watchdog\":";
    AppendString(out, firing.watchdog);
    out << ",\"series\":";
    AppendString(out, firing.series);
    out << ",\"first_breach\":";
    AppendNum(out, firing.first_breach);
    out << ",\"last_breach\":";
    AppendNum(out, firing.last_breach);
    out << ",\"breaches\":" << firing.breaches << ",\"baseline\":";
    AppendNum(out, firing.baseline);
    out << ",\"worst\":";
    AppendNum(out, firing.worst);
    out << ",\"open\":" << (firing.open ? "true" : "false")
        << ",\"suspect_links\":[";
    for (std::size_t j = 0; j < firing.suspect_links.size(); ++j) {
      if (j > 0) out << ",";
      out << firing.suspect_links[j];
    }
    out << "]}";
  }
  out << "]";

  out << ",\"dumps\":[";
  for (std::size_t i = 0; i < run.dumps.size(); ++i) {
    const FlightDump& dump = run.dumps[i];
    if (i > 0) out << ",";
    out << "{\"trigger\":";
    AppendString(out, dump.trigger);
    out << ",\"triggered_at\":";
    AppendNum(out, dump.triggered_at);
    out << ",\"columns\":[";
    for (std::size_t j = 0; j < dump.columns.size(); ++j) {
      if (j > 0) out << ",";
      AppendString(out, dump.columns[j]);
    }
    out << "],\"times\":[";
    for (std::size_t j = 0; j < dump.times.size(); ++j) {
      if (j > 0) out << ",";
      AppendNum(out, dump.times[j]);
    }
    out << "],\"rows\":[";
    for (std::size_t j = 0; j < dump.rows.size(); ++j) {
      if (j > 0) out << ",";
      out << "[";
      for (std::size_t k = 0; k < dump.rows[j].size(); ++k) {
        if (k > 0) out << ",";
        AppendNum(out, dump.rows[j][k]);
      }
      out << "]";
    }
    out << "],\"events\":[";
    for (std::size_t j = 0; j < dump.events.size(); ++j) {
      const StructuredEvent& event = dump.events[j];
      if (j > 0) out << ",";
      out << "{\"t\":";
      AppendNum(out, event.t);
      out << ",\"name\":";
      AppendString(out, event.name);
      out << "}";
    }
    out << "]}";
  }
  out << "]";
  if (run.dropped_dumps > 0) out << ",\"dropped_dumps\":" << run.dropped_dumps;

  out << ",\"suspect_links\":[";
  for (std::size_t i = 0; i < run.suspect_links.size(); ++i) {
    if (i > 0) out << ",";
    out << run.suspect_links[i];
  }
  out << "]}";
}

void TelemetrySession::WriteJson(std::ostream& out) const {
  const WatchdogConfig& wd = config_.watchdog;
  out << "{\"config\":{\"sample_interval\":";
  AppendNum(out, config_.sample_interval);
  out << ",\"series_capacity\":" << config_.series_capacity
      << ",\"flight_window\":";
  AppendNum(out, config_.flight_window);
  out << ",\"flight_max_events\":" << config_.flight_max_events
      << ",\"max_dumps\":" << config_.max_dumps << ",\"dump_cooldown\":";
  AppendNum(out, config_.dump_cooldown);
  out << ",\"watchdog\":{\"enabled\":" << (wd.enabled ? "true" : "false")
      << ",\"step_regression_factor\":";
  AppendNum(out, wd.step_regression_factor);
  out << ",\"baseline_window\":" << wd.baseline_window
      << ",\"min_baseline_samples\":" << wd.min_baseline_samples
      << ",\"slo_target\":";
  AppendNum(out, wd.slo_target);
  out << ",\"slo_burn_threshold\":";
  AppendNum(out, wd.slo_burn_threshold);
  out << ",\"slo_window\":" << wd.slo_window << ",\"link_collapse_fraction\":";
  AppendNum(out, wd.link_collapse_fraction);
  out << ",\"link_min_baseline_util\":";
  AppendNum(out, wd.link_min_baseline_util);
  out << "}},\"runs\":[";
  bool first = true;
  for (const RunData& run : runs_) {
    if (!first) out << ",";
    first = false;
    AppendRunJson(out, run);
  }
  if (in_run_ && (current_.ticks > 0 || !current_.events.empty())) {
    if (!first) out << ",";
    AppendRunJson(out, current_);
  }
  out << "]}\n";
}

std::string TelemetrySession::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  std::string json = out.str();
  if (!json.empty() && json.back() == '\n') json.pop_back();
  return json;
}

void TelemetrySession::WriteCsv(std::ostream& out) const {
  out << "run,series,t,mean,min,max,count\n";
  const auto write_run = [&out](const RunData& run) {
    for (const TimeSeries& series : run.series) {
      for (const TimeSeries::Point& point : series.Points()) {
        out << run.label << "," << series.name() << ",";
        AppendNum(out, point.t);
        out << ",";
        AppendNum(out, point.mean);
        out << ",";
        AppendNum(out, point.min);
        out << ",";
        AppendNum(out, point.max);
        out << "," << point.count << "\n";
      }
    }
  };
  for (const RunData& run : runs_) write_run(run);
  if (in_run_ && current_.ticks > 0) write_run(current_);
}

void TelemetrySession::ExportMetrics(trace::MetricsRegistry& metrics) const {
  metrics.Counter("telemetry.ticks").Add(total_ticks_);
  metrics.Counter("telemetry.events").Add(total_events_);
  metrics.Counter("telemetry.dumps").Add(total_dumps_);
  metrics.Counter("telemetry.dumps_suppressed").Add(suppressed_dumps_);
  metrics.Counter("telemetry.runs")
      .Add(static_cast<std::int64_t>(runs_.size()));
  for (const auto& [watchdog, count] : firing_counts_) {
    metrics.Counter("telemetry.watchdog." + watchdog).Add(count);
  }
}

}  // namespace tpu::telemetry
