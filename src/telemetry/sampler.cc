#include "telemetry/sampler.h"

#include <utility>

#include "common/check.h"

namespace tpu::telemetry {

TimeSeriesSampler::TimeSeriesSampler(sim::Simulator* simulator,
                                     TelemetrySession* session)
    : simulator_(simulator), session_(session) {
  TPU_CHECK(simulator_ != nullptr);
  TPU_CHECK(session_ != nullptr);
}

void TimeSeriesSampler::RegisterProbe(std::string name,
                                      std::function<double()> probe) {
  TPU_CHECK(!started_);
  TPU_CHECK(probe != nullptr);
  columns_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

void TimeSeriesSampler::Start() {
  TPU_CHECK(!started_);
  TPU_CHECK(!probes_.empty());
  started_ = true;
  values_.resize(probes_.size());
  simulator_->ScheduleTelemetryAt(simulator_->now(), [this] { Tick(); });
}

void TimeSeriesSampler::Tick() {
  if (stop_ && stop_()) return;
  const SimTime t = simulator_->now();
  for (std::size_t i = 0; i < probes_.size(); ++i) values_[i] = probes_[i]();
  ++ticks_;
  session_->RecordTick(t, columns_, values_);
  PublishCounters(t);
  simulator_->ScheduleTelemetryAt(t + session_->config().sample_interval,
                                  [this] { Tick(); });
}

void TimeSeriesSampler::PublishCounters(SimTime t) {
  trace::TraceRecorder* recorder = trace::CurrentTrace();
  if (recorder == nullptr) return;
  if (recorder != counter_recorder_) {
    counter_recorder_ = recorder;
    counters_.clear();
    const trace::TraceRecorder::TrackId track =
        recorder->Track("system", "telemetry");
    counters_.reserve(columns_.size());
    for (const std::string& name : columns_) {
      counters_.push_back(recorder->Counter(track, name));
    }
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    recorder->CounterValue(counters_[i], t, values_[i]);
  }
}

}  // namespace tpu::telemetry
