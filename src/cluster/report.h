// The deterministic cluster-run report: per-job outcomes, the scheduler
// event log, and the fleet-level aggregates (wait percentiles, utilization,
// fragmentation, preemption counts, goodput under churn).
//
// Every value is read off the simulated clock — no wall time, no
// randomness beyond the seeded inputs — so ToJson() is byte-identical
// across repeats and planner thread counts, and the committed bench
// baseline can be diffed with deep equality.
#pragma once

#include <string>
#include <vector>

#include "cluster/workload.h"
#include "common/units.h"
#include "recover/recovery.h"
#include "topology/topology.h"
#include "trace/metrics.h"

namespace tpu::cluster {

// One entry of the compact cluster timeline. Kinds: submit, admit, resume,
// finish, preempt, requeue, shrink, migrate, stop.
struct SchedulerEvent {
  SimTime t = 0;
  const char* kind = "";
  int job = -1;
  topo::SubmeshRect rect;  // meaningful for admit / shrink / migrate
};

// Terminal per-job accounting, aggregated over every incarnation the job
// ran (admissions, preemptions, migrations and elastic shrinks included).
struct JobOutcome {
  JobSpec spec;
  // "completed", "running" (truncated by the horizon), "reserved"
  // (mid-migration at the horizon) or "queued" (never left, or requeued and
  // blocked).
  const char* state = "queued";
  int admissions = 0;
  int preemptions = 0;
  int migrations = 0;
  int shrinks = 0;
  int restarts = 0;
  int faults_observed = 0;  // injector events touching (or crossing) a slice
  SimTime first_admitted_at = -1;
  SimTime finished_at = -1;
  SimTime wait_seconds = 0;  // total time spent queued (all visits)
  double steps_done = 0;
  // Fault-free seconds the job's requested shape would have needed — the
  // goodput numerator for completed jobs.
  SimTime ideal_seconds = 0;
  SimTime lost_work_seconds = 0;
  SimTime stalled_seconds = 0;
  topo::SubmeshRect last_rect;  // where it last ran (zero-area if never)
  // Recovery decisions from every incarnation, in decision order.
  std::vector<recover::RecoveryDecision> decisions;
};

struct ClusterReport {
  std::string policy;    // CarvePolicyName of the run
  std::string topology;  // e.g. "2x(8x8)"
  SimTime horizon = 0;
  SimTime elapsed = 0;  // last activity when all jobs completed, else horizon

  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_running_at_end = 0;
  int jobs_queued_at_end = 0;
  int faults_injected = 0;

  // Nearest-rank percentiles over every submitted job's total queued time.
  SimTime wait_p50 = 0;
  SimTime wait_p99 = 0;
  // Allocated chip-seconds / (total chips x elapsed).
  double utilization = 0;
  // Time-weighted mean and max of the scheduler's fragmentation ratio.
  double fragmentation_mean = 0;
  double fragmentation_max = 0;
  int preemptions = 0;
  int migrations = 0;
  int shrinks = 0;
  int requeues = 0;
  // Aggregate goodput under churn: sum of completed jobs' ideal fault-free
  // seconds over the sum of their submission-to-finish spans. 1.0 with no
  // queueing and no faults; 0 when nothing completed.
  double goodput = 0;

  std::vector<JobOutcome> jobs;      // ascending job id
  std::vector<SchedulerEvent> events;  // chronological

  // Stable JSON (%.12g doubles): aggregates, then jobs, then events.
  std::string ToJson() const;
  // Dumps cluster.* counters/gauges into `metrics`. Counters add; call once.
  void ExportMetrics(trace::MetricsRegistry& metrics) const;
};

// Nearest-rank percentile of an unsorted sample (p in [0, 100]); 0 on empty.
double NearestRankPercentile(std::vector<double> values, double p);

}  // namespace tpu::cluster
