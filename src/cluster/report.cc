#include "cluster/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace tpu::cluster {
namespace {

void AppendNum(std::string* out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%.12g", key, value);
  *out += buffer;
}

void AppendInt(std::string* out, const char* key, long long value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%lld", key, value);
  *out += buffer;
}

void AppendStr(std::string* out, const char* key, const std::string& value) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  *out += value;  // all emitted strings are identifier-safe
  *out += '"';
}

void AppendRect(std::string* out, const char* key,
                const topo::SubmeshRect& rect) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":[%d,%d,%d,%d]", key, rect.x0,
                rect.y0, rect.size_x, rect.size_y);
  *out += buffer;
}

}  // namespace

double NearestRankPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp<double>(rank - 1, 0, static_cast<double>(values.size() - 1)));
  return values[index];
}

std::string ClusterReport::ToJson() const {
  std::string out = "{";
  AppendStr(&out, "policy", policy);
  out += ',';
  AppendStr(&out, "topology", topology);
  out += ',';
  AppendNum(&out, "horizon", horizon);
  out += ',';
  AppendNum(&out, "elapsed", elapsed);
  out += ',';
  AppendInt(&out, "jobs_submitted", jobs_submitted);
  out += ',';
  AppendInt(&out, "jobs_completed", jobs_completed);
  out += ',';
  AppendInt(&out, "jobs_running_at_end", jobs_running_at_end);
  out += ',';
  AppendInt(&out, "jobs_queued_at_end", jobs_queued_at_end);
  out += ',';
  AppendInt(&out, "faults_injected", faults_injected);
  out += ',';
  AppendNum(&out, "wait_p50", wait_p50);
  out += ',';
  AppendNum(&out, "wait_p99", wait_p99);
  out += ',';
  AppendNum(&out, "utilization", utilization);
  out += ',';
  AppendNum(&out, "fragmentation_mean", fragmentation_mean);
  out += ',';
  AppendNum(&out, "fragmentation_max", fragmentation_max);
  out += ',';
  AppendInt(&out, "preemptions", preemptions);
  out += ',';
  AppendInt(&out, "migrations", migrations);
  out += ',';
  AppendInt(&out, "shrinks", shrinks);
  out += ',';
  AppendInt(&out, "requeues", requeues);
  out += ',';
  AppendNum(&out, "goodput", goodput);
  out += ",\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobOutcome& job = jobs[i];
    if (i > 0) out += ',';
    out += '{';
    AppendInt(&out, "id", job.spec.id);
    out += ',';
    AppendStr(&out, "name", job.spec.name);
    out += ',';
    AppendStr(&out, "state", job.state);
    out += ',';
    AppendNum(&out, "arrival", job.spec.arrival);
    out += ',';
    AppendInt(&out, "size_x", job.spec.size_x);
    out += ',';
    AppendInt(&out, "size_y", job.spec.size_y);
    out += ',';
    AppendNum(&out, "steps", job.spec.steps);
    out += ',';
    AppendInt(&out, "priority", job.spec.priority);
    out += ',';
    AppendStr(&out, "benchmark", BenchmarkToken(job.spec.benchmark));
    out += ',';
    AppendInt(&out, "admissions", job.admissions);
    out += ',';
    AppendInt(&out, "preemptions", job.preemptions);
    out += ',';
    AppendInt(&out, "migrations", job.migrations);
    out += ',';
    AppendInt(&out, "shrinks", job.shrinks);
    out += ',';
    AppendInt(&out, "restarts", job.restarts);
    out += ',';
    AppendInt(&out, "faults_observed", job.faults_observed);
    out += ',';
    AppendNum(&out, "first_admitted_at", job.first_admitted_at);
    out += ',';
    AppendNum(&out, "finished_at", job.finished_at);
    out += ',';
    AppendNum(&out, "wait_seconds", job.wait_seconds);
    out += ',';
    AppendNum(&out, "steps_done", job.steps_done);
    out += ',';
    AppendNum(&out, "ideal_seconds", job.ideal_seconds);
    out += ',';
    AppendNum(&out, "lost_work_seconds", job.lost_work_seconds);
    out += ',';
    AppendNum(&out, "stalled_seconds", job.stalled_seconds);
    out += ',';
    AppendRect(&out, "last_rect", job.last_rect);
    out += ",\"decisions\":[";
    for (std::size_t d = 0; d < job.decisions.size(); ++d) {
      const recover::RecoveryDecision& decision = job.decisions[d];
      if (d > 0) out += ',';
      out += '{';
      AppendNum(&out, "decided_at", decision.decided_at);
      out += ',';
      AppendStr(&out, "strategy", recover::StrategyName(decision.strategy));
      out += ',';
      AppendInt(&out, "attempt", decision.attempt);
      out += ',';
      AppendInt(&out, "transient_only", decision.transient_only ? 1 : 0);
      out += ',';
      AppendInt(&out, "dead_chips", decision.dead_chips);
      out += ',';
      AppendInt(&out, "failed_links", decision.failed_links);
      out += ',';
      AppendInt(&out, "degraded_links", decision.degraded_links);
      out += ',';
      AppendNum(&out, "resumed_at", decision.resumed_at);
      out += ',';
      AppendInt(&out, "verified", decision.verified ? 1 : 0);
      out += '}';
    }
    out += "]}";
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SchedulerEvent& event = events[i];
    if (i > 0) out += ',';
    out += '{';
    AppendNum(&out, "t", event.t);
    out += ',';
    AppendStr(&out, "kind", event.kind);
    out += ',';
    AppendInt(&out, "job", event.job);
    out += ',';
    AppendRect(&out, "rect", event.rect);
    out += '}';
  }
  out += "]}";
  return out;
}

void ClusterReport::ExportMetrics(trace::MetricsRegistry& metrics) const {
  metrics.Counter("cluster.jobs.submitted").Add(jobs_submitted);
  metrics.Counter("cluster.jobs.completed").Add(jobs_completed);
  metrics.Counter("cluster.preemptions").Add(preemptions);
  metrics.Counter("cluster.migrations").Add(migrations);
  metrics.Counter("cluster.shrinks").Add(shrinks);
  metrics.Counter("cluster.requeues").Add(requeues);
  metrics.Counter("cluster.faults.injected").Add(faults_injected);
  metrics.Gauge("cluster.wait.p50_seconds").Set(wait_p50);
  metrics.Gauge("cluster.wait.p99_seconds").Set(wait_p99);
  metrics.Gauge("cluster.utilization").Set(utilization);
  metrics.Gauge("cluster.fragmentation.mean").Set(fragmentation_mean);
  metrics.Gauge("cluster.fragmentation.max").Set(fragmentation_max);
  metrics.Gauge("cluster.goodput").Set(goodput);
  for (const JobOutcome& job : jobs) {
    metrics.Histogram("cluster.job.wait_seconds").Record(job.wait_seconds);
  }
}

}  // namespace tpu::cluster
