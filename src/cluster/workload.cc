#include "cluster/workload.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace tpu::cluster {

std::vector<JobShape> DefaultJobMix() {
  std::vector<JobShape> mix;
  // Small fine-tune: quick 4x4 ResNet runs dominate the arrival count.
  mix.push_back({4, 4, models::Benchmark::kResNet50, 4096, 6.0, 2000, 6000});
  // Medium: 8x8 BERT (64 chips at 24 per-chip batch).
  mix.push_back({8, 8, models::Benchmark::kBert, 1536, 3.0, 1500, 4000});
  // Large: a 16x8 Transformer slice — wider than one 8x8 pod, so on the
  // canonical 2-pod cluster it must span the cross-pod boundary.
  mix.push_back({16, 8, models::Benchmark::kTransformer, 2048, 1.0, 1000,
                 2500});
  return mix;
}

std::vector<JobSpec> GeneratePoissonWorkload(const WorkloadConfig& config) {
  TPU_CHECK_GT(config.mean_interarrival, 0.0);
  TPU_CHECK_GT(config.horizon, 0.0);
  const std::vector<JobShape> mix =
      config.mix.empty() ? DefaultJobMix() : config.mix;
  double total_weight = 0;
  for (const JobShape& shape : mix) {
    TPU_CHECK_GT(shape.weight, 0.0);
    TPU_CHECK_GE(shape.max_steps, shape.min_steps);
    total_weight += shape.weight;
  }
  // One stream for the whole sequence: arrivals are sampled in order, so a
  // single seed-derived stream is already iteration-order-free.
  Rng rng(config.seed ^ 0x636c757374657221ULL);
  std::vector<JobSpec> jobs;
  SimTime t = 0;
  while (true) {
    t += rng.NextExponential(config.mean_interarrival);
    if (t >= config.horizon) break;
    if (config.max_jobs > 0 &&
        static_cast<int>(jobs.size()) >= config.max_jobs) {
      break;
    }
    double pick = rng.NextDouble() * total_weight;
    const JobShape* shape = &mix.back();
    for (const JobShape& candidate : mix) {
      pick -= candidate.weight;
      if (pick < 0) {
        shape = &candidate;
        break;
      }
    }
    JobSpec job;
    job.id = static_cast<int>(jobs.size());
    job.name = "job-" + std::to_string(job.id);
    job.arrival = t;
    job.size_x = shape->size_x;
    job.size_y = shape->size_y;
    job.steps = static_cast<double>(
        shape->min_steps +
        static_cast<int>(rng.NextBounded(
            static_cast<std::uint64_t>(shape->max_steps - shape->min_steps) +
            1)));
    job.priority = config.num_priorities > 1
                       ? static_cast<int>(rng.NextBounded(
                             static_cast<std::uint64_t>(
                                 config.num_priorities)))
                       : 0;
    job.benchmark = shape->benchmark;
    job.global_batch = shape->global_batch;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

const char* BenchmarkToken(models::Benchmark benchmark) {
  switch (benchmark) {
    case models::Benchmark::kBert:
      return "bert";
    case models::Benchmark::kResNet50:
      return "resnet50";
    case models::Benchmark::kTransformer:
      return "transformer";
    case models::Benchmark::kSsd:
      return "ssd";
    case models::Benchmark::kMaskRcnn:
      return "maskrcnn";
    case models::Benchmark::kDlrm:
      return "dlrm";
  }
  return "unknown";
}

bool ParseBenchmarkToken(const std::string& token,
                         models::Benchmark* benchmark) {
  for (const models::Benchmark candidate : models::AllBenchmarks()) {
    if (token == BenchmarkToken(candidate)) {
      *benchmark = candidate;
      return true;
    }
  }
  return false;
}

bool ParseJobsTrace(std::istream& in, std::vector<JobSpec>* jobs,
                    std::string* error) {
  jobs->clear();
  std::string line;
  int line_number = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + what;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    JobSpec job;
    std::string benchmark;
    if (!(fields >> job.arrival)) continue;  // blank / comment-only line
    if (!(fields >> job.size_x >> job.size_y >> job.steps >> job.priority >>
          benchmark >> job.global_batch >> job.name)) {
      return fail("expected: arrival size_x size_y steps priority benchmark "
                  "global_batch name");
    }
    if (!ParseBenchmarkToken(benchmark, &job.benchmark)) {
      return fail("unknown benchmark '" + benchmark + "'");
    }
    if (job.arrival < 0 || job.size_x <= 0 || job.size_y <= 0 ||
        job.steps <= 0 || job.global_batch <= 0) {
      return fail("non-positive field");
    }
    job.id = static_cast<int>(jobs->size());
    jobs->push_back(std::move(job));
  }
  if (error != nullptr) error->clear();
  return true;
}

bool LoadJobsTrace(const std::string& path, std::vector<JobSpec>* jobs,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  if (!ParseJobsTrace(in, jobs, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

void WriteJobsTrace(std::ostream& out, const std::vector<JobSpec>& jobs) {
  out << "# arrival_s size_x size_y steps priority benchmark global_batch "
         "name\n";
  for (const JobSpec& job : jobs) {
    char arrival[32], steps[32];
    std::snprintf(arrival, sizeof(arrival), "%.12g", job.arrival);
    std::snprintf(steps, sizeof(steps), "%.12g", job.steps);
    out << arrival << ' ' << job.size_x << ' ' << job.size_y << ' ' << steps
        << ' ' << job.priority << ' ' << BenchmarkToken(job.benchmark) << ' '
        << job.global_batch << ' ' << job.name << '\n';
  }
}

}  // namespace tpu::cluster
