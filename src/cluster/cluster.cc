#include "cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <tuple>

#include "common/check.h"
#include "fault/checkpoint.h"
#include "fault/health_monitor.h"
#include "frameworks/runtime_model.h"
#include "plan/cost.h"
#include "plan/generator.h"
#include "plan/plan_ir.h"
#include "plan/planner.h"
#include "sim/event_observer.h"
#include "telemetry/probes.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::cluster {
namespace {

// Job lifecycle states. Pointer identity is the comparison (every assignment
// uses these constants), and the pointers land verbatim in JobOutcome.state.
constexpr const char* kQueued = "queued";
constexpr const char* kReserved = "reserved";
constexpr const char* kRunning = "running";
constexpr const char* kCompleted = "completed";

// Silences the thread-local observability slots around throwaway pricing
// estimates/simulations (the multipod recovery-oracle idiom): cluster
// timestamps and reports stay bit-identical with tracing/telemetry on.
struct SilencedScope {
  trace::ScopedTrace no_trace{nullptr};
  trace::ScopedMetrics no_metrics{nullptr};
  sim::ScopedEventObserver no_observer{nullptr};
  telemetry::ScopedTelemetry no_telemetry{nullptr};
};

}  // namespace

std::vector<fault::FaultEvent> CrossPodCableFault(
    const topo::MeshTopology& topo, int boundary_x, SimTime at,
    SimTime duration) {
  TPU_CHECK(topo.IsCrossPodBoundary(boundary_x));
  std::vector<fault::FaultEvent> events;
  for (int y = 0; y < topo.size_y(); ++y) {
    const topo::ChipId near = topo.ChipAt({boundary_x, y});
    const topo::ChipId far = topo.ChipAt({boundary_x + 1, y});
    for (const auto& [from, to] :
         {std::pair<topo::ChipId, topo::ChipId>{near, far},
          std::pair<topo::ChipId, topo::ChipId>{far, near}}) {
      fault::FaultEvent event;
      event.kind = fault::FaultKind::kLinkFlap;
      event.at = at;
      event.duration = duration;
      event.link = topo.LinkBetween(from, to);
      event.degrade_factor = 1024.0;
      events.push_back(event);
    }
  }
  return events;
}

ClusterSimulation::ClusterSimulation(ClusterConfig config,
                                     std::vector<JobSpec> jobs)
    : config_(std::move(config)),
      topo_(config_.topology),
      network_(&topo_, config_.system.network, &sim_),
      injector_(&network_, config_.faults),
      scheduler_(topo_.size_x(), topo_.size_y()) {
  scheduler_.set_rect_filter(
      [this](const topo::SubmeshRect& rect) { return RectAdmissible(rect); });
  for (JobSpec& spec : jobs) {
    if (spec.arrival >= config_.horizon) continue;
    JobState job;
    job.spec = std::move(spec);
    job.remaining_steps = job.spec.steps;
    job.outcome.spec = job.spec;
    job.outcome.state = kQueued;
    jobs_.push_back(std::move(job));
  }
  jobs_to_run_ = static_cast<int>(jobs_.size());
}

ClusterSimulation::~ClusterSimulation() = default;

std::shared_ptr<ClusterSimulation::ShapePricing> ClusterSimulation::PricingFor(
    int size_x, int size_y, models::Benchmark benchmark,
    std::int64_t global_batch) {
  // A carve keeps the Y wrap links only when it spans the cluster's full Y
  // extent (TopologyConfig::Slice semantics).
  const bool wrap_y = config_.topology.wrap_y && size_y == topo_.size_y();
  const PricingKey key{size_x, size_y, wrap_y, static_cast<int>(benchmark),
                       global_batch};
  const auto it = pricing_.find(key);
  if (it != pricing_.end()) return it->second;

  auto pricing = std::make_shared<ShapePricing>();
  pricing->slice_config = topo::TopologyConfig::Slice(size_x, size_y, wrap_y);
  pricing->topo = std::make_unique<topo::MeshTopology>(pricing->slice_config);
  pricing->cache = std::make_shared<plan::PlanCache>();
  const models::ModelSpec& spec = models::GetModelSpec(benchmark);
  {
    SilencedScope silence;
    core::MultipodSystem system(pricing->slice_config, config_.system);
    const core::StepBreakdown step =
        system.SimulateStep(spec, global_batch, 1, nullptr);
    pricing->healthy_step = step.step();
    pricing->healthy_allreduce = step.allreduce;
  }
  pricing->request.elems = std::max<std::int64_t>(1, spec.parameters);
  pricing->request.model_parallel_stride = 1;
  pricing->request.allow_bfloat16 = config_.system.bfloat16_gradients;
  pricing->request.allow_bidirectional = config_.system.bidirectional_rings;
  pricing->request.search_threads = config_.recovery.search_threads;
  const plan::CollectivePlan paper = plan::PaperPlan(pricing->request);
  pricing->lowered =
      plan::LowerPlan(*pricing->topo, paper, pricing->request.elems);
  {
    SilencedScope silence;
    pricing->comm_healthy = plan::EstimatePlanSeconds(
        *pricing->topo, config_.system.network, {}, pricing->lowered);
  }
  pricing->detection_deadline =
      fault::HealthMonitor(config_.monitor).DeadlineFor(pricing->healthy_step);
  pricing->checkpoint = fault::EstimateCheckpointCosts(
      spec, pricing->topo->num_hosts(), config_.checkpoint);
  pricing->restart_seconds =
      pricing->checkpoint.restore_seconds +
      frameworks::EstimateInitTime(config_.framework, benchmark,
                                   pricing->topo->num_chips())
          .total();
  pricing_[key] = pricing;
  return pricing;
}

bool ClusterSimulation::RectAdmissible(const topo::SubmeshRect& rect) const {
  // A slice must not enclose a permanently failed link: both endpoints
  // inside means the dead cable is interior hardware the job cannot avoid.
  for (const auto& [from, to] : dead_links_) {
    if (rect.Contains(from) && rect.Contains(to)) return false;
  }
  return true;
}

recover::RecoveryPolicy ClusterSimulation::PolicyFor(int job) const {
  const auto it = config_.job_recovery_overrides.find(jobs_[job].spec.id);
  recover::RecoveryPolicy policy = it != config_.job_recovery_overrides.end()
                                       ? it->second
                                       : config_.recovery;
  policy.enabled = true;
  // Tenants have no private standby pool; spare capacity is the queue's.
  policy.allow_spare_swap_in = false;
  policy.spare_hosts = 0;
  return policy;
}

std::string ClusterSimulation::TopologyString() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%dx(%dx%d)", config_.topology.num_pods,
                config_.topology.pod_size_x, config_.topology.pod_size_y);
  return buffer;
}

int ClusterSimulation::running_jobs() const {
  int count = 0;
  for (const JobState& job : jobs_) {
    count += job.outcome.state == kRunning || job.outcome.state == kReserved;
  }
  return count;
}

int ClusterSimulation::queued_jobs() const {
  int count = 0;
  for (const JobState& job : jobs_) {
    count += job.submitted && job.outcome.state == kQueued;
  }
  return count;
}

ClusterReport ClusterSimulation::Run() {
  TPU_CHECK(!ran_);
  ran_ = true;

  injector_.set_on_apply(
      [this](const fault::FaultEvent& event) { OnFaultApplied(event); });
  injector_.set_on_heal(
      [this](const fault::FaultEvent& event) { OnFaultHealed(event); });
  if (!config_.scripted_faults.empty()) {
    injector_.ArmScripted(config_.scripted_faults);
  } else if (config_.faults.any_enabled()) {
    injector_.Arm(config_.horizon);
  }

  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    JobState& job = jobs_[i];
    // Price the requested shape up front: the goodput numerator is the
    // fault-free seconds of the shape the user asked for, whether or not
    // churn ever lets the job run whole.
    job.outcome.ideal_seconds =
        job.spec.steps * PricingFor(job.spec.size_x, job.spec.size_y,
                                    job.spec.benchmark, job.spec.global_batch)
                             ->healthy_step;
    sim_.ScheduleAt(job.spec.arrival,
                    [this, i] { OnSubmit(static_cast<int>(i)); });
  }

  // Continuous telemetry over the cluster run (same session pattern as the
  // recovery rounds): fleet probes tick on telemetry-class events, so every
  // work timestamp is bit-identical with sampling on or off.
  telemetry::TelemetrySession* session = telemetry::CurrentTelemetry();
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
  if (session != nullptr) {
    session->BeginRun("cluster/" + config_.label, sim_.now());
    sampler = std::make_unique<telemetry::TimeSeriesSampler>(&sim_, session);
    RegisterClusterProbes(*sampler, *this);
    telemetry::RegisterNetworkProbes(*sampler, network_);
    telemetry::RegisterSimulatorProbes(*sampler, sim_);
    sampler->set_stop_predicate([this] { return all_done(); });
    sampler->Start();
  }

  // kAdvanceToDeadline pins now() to the horizon even when the queue drains
  // early, so truncation timestamps below never depend on whether a sampler
  // (or any other trailing event) kept the clock busy.
  sim_.RunUntil(config_.horizon,
                sim::Simulator::DeadlinePolicy::kAdvanceToDeadline);

  const SimTime elapsed = all_done() ? last_activity_ : config_.horizon;

  // Horizon truncation: close every live incarnation's books, then flush
  // the final queued stretches.
  for (std::size_t i = 0; i < incarnations_.size(); ++i) {
    Incarnation* inc = incarnations_[i].get();
    if (!inc->live) continue;
    RecordEvent("stop", inc->job, inc->active_rect);
    StopIncarnation(inc->job);
  }
  for (JobState& job : jobs_) {
    if (job.queued_since >= 0) {
      job.outcome.wait_seconds += elapsed - job.queued_since;
      job.queued_since = -1;
    }
  }
  UpdateOccupancy(elapsed);
  if (session != nullptr) session->CommitRun();

  ClusterReport report;
  report.policy = CarvePolicyName(config_.policy);
  report.topology = TopologyString();
  report.horizon = config_.horizon;
  report.elapsed = elapsed;
  report.jobs_submitted = jobs_to_run_;
  report.jobs_completed = completed_;
  report.faults_injected = static_cast<int>(injector_.injected().size());
  report.preemptions = preemptions_;
  report.migrations = migrations_;
  report.shrinks = shrinks_;
  report.requeues = requeues_;
  report.fragmentation_max = frag_max_;
  if (elapsed > 0) {
    report.utilization =
        busy_integral_ / (static_cast<double>(scheduler_.total_chips()) *
                          elapsed);
    report.fragmentation_mean = frag_integral_ / elapsed;
  }

  std::vector<double> waits;
  double ideal_sum = 0;
  double span_sum = 0;
  for (const JobState& job : jobs_) {
    if (job.outcome.state == kRunning || job.outcome.state == kReserved) {
      ++report.jobs_running_at_end;
    } else if (job.outcome.state == kQueued) {
      ++report.jobs_queued_at_end;
    }
    if (job.outcome.finished_at >= 0) {
      ideal_sum += job.outcome.ideal_seconds;
      span_sum += job.outcome.finished_at - job.spec.arrival;
    }
    waits.push_back(job.outcome.wait_seconds);
    report.jobs.push_back(job.outcome);
  }
  report.wait_p50 = NearestRankPercentile(waits, 50);
  report.wait_p99 = NearestRankPercentile(waits, 99);
  report.goodput = span_sum > 0 ? ideal_sum / span_sum : 0;
  report.events = events_;

  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    report.ExportMetrics(*metrics);
  }
  return report;
}

void ClusterSimulation::OnSubmit(int job) {
  JobState& state = jobs_[job];
  state.submitted = true;
  state.queued_since = sim_.now();
  RecordEvent("submit", job, {});
  SchedulePass();
}

void ClusterSimulation::SchedulePass() {
  const SimTime now = sim_.now();
  std::vector<int> ready;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    JobState& job = jobs_[i];
    if (!job.submitted || job.outcome.state != kQueued) continue;
    if (job.ready_at > now) {
      // Still writing its preemption checkpoint: wake the scheduler then.
      sim_.ScheduleAt(job.ready_at, [this] { SchedulePass(); });
      continue;
    }
    ready.push_back(static_cast<int>(i));
  }
  if (ready.empty()) return;
  std::sort(ready.begin(), ready.end(), [this](int a, int b) {
    const JobSpec& ja = jobs_[a].spec;
    const JobSpec& jb = jobs_[b].spec;
    if (ja.priority != jb.priority) return ja.priority > jb.priority;
    if (ja.arrival != jb.arrival) return ja.arrival < jb.arrival;
    return a < b;
  });

  bool head = true;
  for (const int index : ready) {
    JobState& job = jobs_[index];
    const bool was_head = head;
    head = false;
    if (job.outcome.state != kQueued) continue;
    const int w = job.spec.size_x;
    const int h = job.spec.size_y;
    topo::SubmeshRect slot = scheduler_.FindSlot(w, h, config_.policy);
    if (slot.empty() && job.requeued && config_.min_readmit_fraction < 1.0) {
      // Shrink-to-fit readmission: alternately halve the larger dimension
      // until something fits or the shape drops under the floor. Remaining
      // work is in steps, so it carries onto the smaller slice.
      int cw = w;
      int ch = h;
      while (slot.empty()) {
        if (cw >= ch) {
          cw /= 2;
        } else {
          ch /= 2;
        }
        if (cw < 1 || ch < 1) break;
        if (cw * ch < config_.min_readmit_fraction * w * h) break;
        slot = scheduler_.FindSlot(cw, ch, config_.policy);
      }
    }
    if (!slot.empty()) {
      Admit(index, slot);
      continue;
    }
    if (was_head && config_.policy == CarvePolicy::kBackfill) {
      // Priority preemption for the blocked head: victims must be strictly
      // lower priority, and the plan minimizes victim count.
      const int priority = job.spec.priority;
      const SliceScheduler::PreemptionPlan preemption =
          scheduler_.FindPreemption(w, h, [this, priority](int owner) {
            return jobs_[owner].spec.priority < priority;
          });
      if (preemption.found) {
        for (const int victim : preemption.victims) Preempt(victim);
        Admit(index, preemption.rect);
        continue;
      }
      if (config_.enable_defrag) {
        const SliceScheduler::MigrationPlan migration =
            scheduler_.FindMigration(w, h);
        if (migration.found) {
          SimTime cost = 0;
          for (const auto& [victim, to] : migration.moves) {
            const topo::SubmeshRect current =
                scheduler_.allocations().at(victim);
            const auto pricing =
                PricingFor(current.size_x, current.size_y,
                           jobs_[victim].spec.benchmark,
                           jobs_[victim].spec.global_batch);
            cost += pricing->checkpoint.write_seconds +
                    pricing->checkpoint.restore_seconds;
          }
          if (cost <= config_.max_migration_seconds) {
            for (const auto& [victim, to] : migration.moves) {
              Migrate(victim, to);
            }
            Admit(index, migration.rect);
            continue;
          }
        }
      }
    }
    // Head-of-line blocking: FCFS policies stop at the blocked head;
    // backfill keeps walking the queue.
    if (config_.policy != CarvePolicy::kBackfill) break;
  }
}

void ClusterSimulation::Admit(int job, const topo::SubmeshRect& rect) {
  JobState& state = jobs_[job];
  UpdateOccupancy(sim_.now());
  scheduler_.Allocate(job, rect);
  frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  const SimTime now = sim_.now();
  state.outcome.wait_seconds += now - state.queued_since;
  state.queued_since = -1;
  ++state.outcome.admissions;
  const bool first = state.outcome.first_admitted_at < 0;
  if (first) state.outcome.first_admitted_at = now;
  state.outcome.last_rect = rect;
  state.outcome.state = kReserved;
  RecordEvent(first ? "admit" : "resume", job, rect);
  const std::uint64_t seq = ++state.resume_seq;
  const SimTime delay = state.pending_resume;
  state.pending_resume = 0;
  if (delay > 0) {
    sim_.ScheduleAt(now + delay,
                    [this, job, seq] { StartIncarnation(job, seq); });
  } else {
    StartIncarnation(job, seq);
  }
}

recover::StepPricer ClusterSimulation::BuildPricer(Incarnation* inc) {
  const std::shared_ptr<ShapePricing> pricing = inc->pricing;
  const net::NetworkConfig netcfg = config_.system.network;
  recover::StepPricer pricer;
  pricer.healthy_step = pricing->healthy_step;
  // Closed-form comm estimate of the current schedule under the slice-local
  // link snapshot (multipod.cc's degraded-step idiom on the slice mesh).
  pricer.degraded_step = [pricing, netcfg](const plan::LinkHealthSet& health) {
    SilencedScope silence;
    const SimTime comm = plan::EstimatePlanSeconds(*pricing->topo, netcfg,
                                                   health, pricing->lowered);
    if (pricing->comm_healthy <= 0) return pricing->healthy_step;
    return pricing->healthy_step +
           pricing->healthy_allreduce * (comm / pricing->comm_healthy - 1.0);
  };
  pricer.replanned_step = [pricing, netcfg](const plan::LinkHealthSet& health) {
    SilencedScope silence;
    const SimTime planned_healthy =
        plan::FindBestPlan(*pricing->topo, netcfg, pricing->request, {},
                           pricing->cache.get())
            .predicted_seconds;
    const SimTime planned =
        plan::FindBestPlan(*pricing->topo, netcfg, pricing->request, health,
                           pricing->cache.get())
            .predicted_seconds;
    if (planned_healthy <= 0) return pricing->healthy_step;
    const double ratio = std::max(planned / planned_healthy, 1.0);
    return pricing->healthy_step + pricing->healthy_allreduce * (ratio - 1.0);
  };
  // The cluster-wide shape memo doubles as the shrunk-step oracle: a carved
  // sub-rect is just another slice shape.
  const models::Benchmark benchmark = jobs_[inc->job].spec.benchmark;
  const std::int64_t batch = jobs_[inc->job].spec.global_batch;
  pricer.shrunk_step = [this, benchmark, batch](const topo::SubmeshRect& rect) {
    return PricingFor(rect.size_x, rect.size_y, benchmark, batch)
        ->healthy_step;
  };
  return pricer;
}

plan::LinkHealthSet ClusterSimulation::ObserveSliceHealth(
    const Incarnation& inc) const {
  // Slice link ids ascend with the loop, so both vectors come out sorted —
  // the same invariant LinkHealthSet::FromNetwork maintains.
  plan::LinkHealthSet health;
  for (std::size_t i = 0; i < inc.slice_to_cluster.size(); ++i) {
    const topo::LinkId cluster_link = inc.slice_to_cluster[i];
    const topo::LinkId slice_link = static_cast<topo::LinkId>(i);
    if (network_.LinkFailed(cluster_link)) {
      health.failed.push_back(slice_link);
    } else {
      const double degradation = network_.LinkDegradation(cluster_link);
      if (degradation != 1.0) health.degraded.emplace_back(slice_link,
                                                           degradation);
    }
  }
  return health;
}

void ClusterSimulation::StartIncarnation(int job, std::uint64_t resume_seq) {
  JobState& state = jobs_[job];
  if (state.resume_seq != resume_seq || state.outcome.state != kReserved) {
    return;  // preempted (or re-placed) while waiting out the resume delay
  }
  const topo::SubmeshRect rect = scheduler_.allocations().at(job);
  auto owned = std::make_unique<Incarnation>();
  Incarnation* inc = owned.get();
  inc->job = job;
  inc->rect = rect;
  inc->active_rect = rect;
  inc->pricing = PricingFor(rect.size_x, rect.size_y, state.spec.benchmark,
                            state.spec.global_batch);

  // Slice link id -> cluster link id: map each slice link's endpoint coords
  // through the rect offset. Wrap-Y links only exist when the slice spans
  // the cluster's full Y extent, where the cluster has the same wrap link.
  const topo::MeshTopology& slice = *inc->pricing->topo;
  inc->slice_to_cluster.reserve(slice.links().size());
  for (const topo::Link& link : slice.links()) {
    const topo::Coord from = slice.CoordOf(link.from);
    const topo::Coord to = slice.CoordOf(link.to);
    inc->slice_to_cluster.push_back(topo_.LinkBetween(
        topo_.ChipAt({rect.x0 + from.x, rect.y0 + from.y}),
        topo_.ChipAt({rect.x0 + to.x, rect.y0 + to.y})));
  }

  recover::ControllerConfig cc;
  cc.policy = PolicyFor(job);
  cc.costs.checkpoint_write = inc->pricing->checkpoint.write_seconds;
  cc.costs.restore_seconds = inc->pricing->checkpoint.restore_seconds;
  cc.costs.restart_seconds = inc->pricing->restart_seconds;
  cc.pricer = BuildPricer(inc);
  cc.total_work = state.remaining_steps * inc->pricing->healthy_step;
  cc.detection_deadline = inc->pricing->detection_deadline;
  cc.checkpoint_interval = config_.checkpoint_interval;
  cc.faults = config_.faults;
  cc.x_granularity = 1;
  cc.mesh = inc->pricing->topo.get();
  cc.observe_health = [this, inc] { return ObserveSliceHealth(*inc); };
  // A tenant cannot repair shared cables; restarts leave the slice instead
  // (reschedule_on_restart), so the in-place restore path never runs.
  cc.restore_link = [](topo::LinkId) {};
  cc.auto_subscribe = false;
  cc.reschedule_on_restart = true;
  cc.on_finished = [this, inc] { OnJobFinished(inc); };
  cc.on_shrunk = [this, inc](const topo::SubmeshRect& slice_rect) {
    OnJobShrunk(inc, slice_rect);
  };
  cc.on_restart = [this, inc] { OnJobRestart(inc); };

  inc->controller = std::make_unique<recover::RecoveryController>(
      &network_, &injector_, std::move(cc));
  inc->live = true;
  state.active = inc;
  state.outcome.state = kRunning;
  incarnations_.push_back(std::move(owned));
  inc->controller->Begin();

  // Faults already in flight when the job lands: deliver every active event
  // interior to the new slice, so the controller prices the hardware as-is
  // (permanent chip/host losses cannot appear — the carve excluded them).
  for (const fault::FaultEvent& event : injector_.injected()) {
    if (!event.ActiveAt(sim_.now())) continue;
    fault::FaultEvent translated;
    if (!TranslateEvent(*inc, event, &translated)) continue;
    ++state.outcome.faults_observed;
    inc->delivered.emplace_back(event, translated);
    inc->controller->HandleFault(translated);
  }
}

void ClusterSimulation::Preempt(int job) {
  JobState& state = jobs_[job];
  SimTime write = 0;
  SimTime restore = 0;
  if (state.active != nullptr) {
    // On-demand checkpoint: the victim spends write_seconds getting its
    // state out (ready_at) and owes a restore before it runs again.
    write = state.active->pricing->checkpoint.write_seconds;
    restore = state.active->pricing->checkpoint.restore_seconds;
    StopIncarnation(job);
  } else {
    restore = state.pending_resume;  // reserved victim: still owes its delay
  }
  UpdateOccupancy(sim_.now());
  const topo::SubmeshRect rect = scheduler_.allocations().at(job);
  scheduler_.Release(job);
  frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  ++state.outcome.preemptions;
  ++preemptions_;
  ++state.resume_seq;  // retire a pending StartIncarnation
  RecordEvent("preempt", job, rect);
  Requeue(job, sim_.now() + write, restore);
}

void ClusterSimulation::Migrate(int job, const topo::SubmeshRect& to) {
  JobState& state = jobs_[job];
  SimTime write = 0;
  SimTime restore = 0;
  if (state.active != nullptr) {
    write = state.active->pricing->checkpoint.write_seconds;
    restore = state.active->pricing->checkpoint.restore_seconds;
    StopIncarnation(job);
  } else {
    restore = state.pending_resume;
  }
  UpdateOccupancy(sim_.now());
  scheduler_.Release(job);
  scheduler_.Allocate(job, to);
  frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  ++state.outcome.migrations;
  ++migrations_;
  state.outcome.state = kReserved;
  state.outcome.last_rect = to;
  state.pending_resume = 0;
  const std::uint64_t seq = ++state.resume_seq;
  RecordEvent("migrate", job, to);
  sim_.ScheduleAt(sim_.now() + write + restore,
                  [this, job, seq] { StartIncarnation(job, seq); });
}

void ClusterSimulation::Requeue(int job, SimTime ready_at,
                                SimTime pending_resume) {
  JobState& state = jobs_[job];
  state.outcome.state = kQueued;
  state.requeued = true;
  state.ready_at = ready_at;
  state.pending_resume = pending_resume;
  state.queued_since = sim_.now();
  ++requeues_;
  if (ready_at > sim_.now()) {
    sim_.ScheduleAt(ready_at, [this] { SchedulePass(); });
  }
}

void ClusterSimulation::StopIncarnation(int job) {
  JobState& state = jobs_[job];
  Incarnation* inc = state.active;
  if (inc == nullptr) return;
  const recover::RecoveryTimeline& timeline = inc->controller->finished()
                                                  ? inc->controller->timeline()
                                                  : inc->controller->Stop();
  const double steps_done =
      inc->pricing->healthy_step > 0
          ? inc->controller->work_done() / inc->pricing->healthy_step
          : 0;
  state.remaining_steps = std::max(0.0, state.remaining_steps - steps_done);
  state.outcome.steps_done += steps_done;
  state.outcome.last_rect = inc->active_rect;
  MergeTimeline(state, timeline);
  inc->live = false;
  state.active = nullptr;
}

void ClusterSimulation::MergeTimeline(
    JobState& job, const recover::RecoveryTimeline& timeline) {
  job.outcome.lost_work_seconds += timeline.lost_work_seconds;
  job.outcome.stalled_seconds += timeline.stalled_seconds;
  job.outcome.restarts += timeline.restarts;
  job.outcome.decisions.insert(job.outcome.decisions.end(),
                               timeline.decisions.begin(),
                               timeline.decisions.end());
}

void ClusterSimulation::OnJobFinished(Incarnation* inc) {
  const int job = inc->job;
  JobState& state = jobs_[job];
  const topo::SubmeshRect rect = inc->active_rect;
  StopIncarnation(job);
  UpdateOccupancy(sim_.now());
  scheduler_.Release(job);
  frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  state.outcome.state = kCompleted;
  state.outcome.finished_at = sim_.now();
  state.remaining_steps = 0;
  ++completed_;
  RecordEvent("finish", job, rect);
  SchedulePass();
}

void ClusterSimulation::OnJobShrunk(Incarnation* inc,
                                    const topo::SubmeshRect& slice_rect) {
  const int job = inc->job;
  const topo::SubmeshRect cluster_rect{inc->rect.x0 + slice_rect.x0,
                                       inc->rect.y0 + slice_rect.y0,
                                       slice_rect.size_x, slice_rect.size_y};
  UpdateOccupancy(sim_.now());
  scheduler_.ShrinkTo(job, cluster_rect);
  frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  inc->active_rect = cluster_rect;
  jobs_[job].outcome.last_rect = cluster_rect;
  ++jobs_[job].outcome.shrinks;
  ++shrinks_;
  RecordEvent("shrink", job, cluster_rect);
  SchedulePass();  // the freed complement may admit queued work
}

void ClusterSimulation::OnJobRestart(Incarnation* inc) {
  const int job = inc->job;
  const topo::SubmeshRect rect = inc->active_rect;
  const SimTime restart = inc->pricing->restart_seconds;
  StopIncarnation(job);
  UpdateOccupancy(sim_.now());
  scheduler_.Release(job);
  frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  RecordEvent("requeue", job, rect);
  // The checkpoint is already durable (rollback happened inside the
  // controller); the job re-enters the queue at once and pays restore +
  // framework re-init when next placed.
  Requeue(job, sim_.now(), restart);
  SchedulePass();
}

bool ClusterSimulation::TranslateEvent(const Incarnation& inc,
                                       const fault::FaultEvent& event,
                                       fault::FaultEvent* translated) const {
  const topo::MeshTopology& slice = *inc.pricing->topo;
  const topo::SubmeshRect& rect = inc.active_rect;
  // Localization is against the ORIGINAL carve (the slice mesh's id space);
  // the interior test is against the possibly-shrunk active rect.
  const auto localize = [&inc](topo::Coord c) {
    return topo::Coord{c.x - inc.rect.x0, c.y - inc.rect.y0};
  };
  *translated = event;
  switch (event.kind) {
    case fault::FaultKind::kChipFailure: {
      const topo::Coord c = topo_.CoordOf(event.chip);
      if (!rect.Contains(c)) return false;
      translated->chip = slice.ChipAt(localize(c));
      return true;
    }
    case fault::FaultKind::kLinkFlap: {
      const topo::Link& link = topo_.links()[event.link];
      const topo::Coord from = topo_.CoordOf(link.from);
      const topo::Coord to = topo_.CoordOf(link.to);
      if (!rect.Contains(from) || !rect.Contains(to)) return false;
      translated->link = slice.LinkBetween(slice.ChipAt(localize(from)),
                                           slice.ChipAt(localize(to)));
      return true;
    }
    case fault::FaultKind::kHostPreemption:
    case fault::FaultKind::kSlowHost: {
      // Host boundaries do not tile arbitrary rects: deliver the slice host
      // of the first affected chip inside the rect — coarse (the slice
      // host's links degrade as a group) but deterministic.
      for (const topo::ChipId chip : topo_.ChipsOfHost(event.host)) {
        const topo::Coord c = topo_.CoordOf(chip);
        if (!rect.Contains(c)) continue;
        translated->host = slice.HostOf(slice.ChipAt(localize(c)));
        return true;
      }
      return false;
    }
  }
  return false;
}

void ClusterSimulation::OnFaultApplied(const fault::FaultEvent& event) {
  if (event.permanent()) {
    UpdateOccupancy(sim_.now());
    switch (event.kind) {
      case fault::FaultKind::kChipFailure:
        scheduler_.MarkUnusable(topo_.CoordOf(event.chip));
        break;
      case fault::FaultKind::kLinkFlap: {
        const topo::Link& link = topo_.links()[event.link];
        dead_links_.emplace_back(topo_.CoordOf(link.from),
                                 topo_.CoordOf(link.to));
        break;
      }
      case fault::FaultKind::kHostPreemption:
        for (const topo::ChipId chip : topo_.ChipsOfHost(event.host)) {
          scheduler_.MarkUnusable(topo_.CoordOf(chip));
        }
        break;
      case fault::FaultKind::kSlowHost:
        break;  // degrades, never kills capacity
    }
    frag_max_ = std::max(frag_max_, scheduler_.Fragmentation());
  }
  // ONE fault, every tenant it touches: each co-located job sees the same
  // event through its own slice. Size is snapshotted — a controller's
  // reaction can admit new jobs, and those pick up still-active faults in
  // StartIncarnation instead.
  const std::size_t count = incarnations_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Incarnation* inc = incarnations_[i].get();
    if (!inc->live) continue;
    if (!injector_.EventTouchesRect(event, inc->active_rect)) continue;
    // Observable from the slice — counted even when the fault only crosses
    // the boundary (shared cable) and is not the job's own hardware.
    ++jobs_[inc->job].outcome.faults_observed;
    fault::FaultEvent translated;
    if (!TranslateEvent(*inc, event, &translated)) continue;
    inc->delivered.emplace_back(event, translated);
    inc->controller->HandleFault(translated);
  }
}

void ClusterSimulation::OnFaultHealed(const fault::FaultEvent& event) {
  const std::size_t count = incarnations_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Incarnation* inc = incarnations_[i].get();
    if (!inc->live) continue;
    // Heals are matched against the delivered originals, so a shrink of the
    // active rect between apply and heal cannot strand an active fault.
    const auto it = std::find_if(
        inc->delivered.begin(), inc->delivered.end(),
        [&event](const auto& entry) { return entry.first == event; });
    if (it == inc->delivered.end()) continue;
    const fault::FaultEvent translated = it->second;
    inc->delivered.erase(it);
    inc->controller->HandleHeal(translated);
  }
}

void ClusterSimulation::UpdateOccupancy(SimTime upto) {
  if (upto <= occupancy_last_) return;
  const double dt = upto - occupancy_last_;
  busy_integral_ += dt * scheduler_.busy_chips();
  const double frag = scheduler_.Fragmentation();
  frag_integral_ += dt * frag;
  frag_max_ = std::max(frag_max_, frag);
  occupancy_last_ = upto;
}

void ClusterSimulation::RecordEvent(const char* kind, int job,
                                    const topo::SubmeshRect& rect) {
  const SimTime now = sim_.now();
  events_.push_back({now, kind, jobs_[job].spec.id, rect});
  last_activity_ = std::max(last_activity_, now);
}

void RegisterClusterProbes(telemetry::TimeSeriesSampler& sampler,
                           const ClusterSimulation& cluster) {
  const ClusterSimulation* c = &cluster;
  sampler.RegisterProbe("cluster.running_jobs", [c] {
    return static_cast<double>(c->running_jobs());
  });
  sampler.RegisterProbe("cluster.queued_jobs", [c] {
    return static_cast<double>(c->queued_jobs());
  });
  sampler.RegisterProbe("cluster.busy_chips", [c] {
    return static_cast<double>(c->busy_chips());
  });
  sampler.RegisterProbe("cluster.free_chips", [c] {
    return static_cast<double>(c->free_chips());
  });
  sampler.RegisterProbe("cluster.fragmentation",
                        [c] { return c->fragmentation(); });
}

}  // namespace tpu::cluster
