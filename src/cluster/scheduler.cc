#include "cluster/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace tpu::cluster {

const char* CarvePolicyName(CarvePolicy policy) {
  switch (policy) {
    case CarvePolicy::kFirstFit:
      return "first-fit";
    case CarvePolicy::kBestFit:
      return "best-fit";
    case CarvePolicy::kBackfill:
      return "backfill";
  }
  return "unknown";
}

SliceScheduler::SliceScheduler(int size_x, int size_y)
    : size_x_(size_x),
      size_y_(size_y),
      owner_(static_cast<std::size_t>(size_x * size_y), -1),
      unusable_(static_cast<std::size_t>(size_x * size_y), 0) {
  TPU_CHECK_GT(size_x, 0);
  TPU_CHECK_GT(size_y, 0);
}

void SliceScheduler::MarkUnusable(topo::Coord c) {
  TPU_CHECK_GE(c.x, 0);
  TPU_CHECK_LT(c.x, size_x_);
  TPU_CHECK_GE(c.y, 0);
  TPU_CHECK_LT(c.y, size_y_);
  unusable_[CellIndex(c.x, c.y)] = 1;
}

bool SliceScheduler::CellsFree(const std::vector<int>& owner,
                               const topo::SubmeshRect& rect) const {
  for (int y = rect.y0; y < rect.y0 + rect.size_y; ++y) {
    for (int x = rect.x0; x < rect.x0 + rect.size_x; ++x) {
      const int cell = CellIndex(x, y);
      if (owner[cell] != -1 || unusable_[cell]) return false;
    }
  }
  return true;
}

bool SliceScheduler::Admissible(const std::vector<int>& owner,
                                const topo::SubmeshRect& rect) const {
  return CellsFree(owner, rect) && (filter_ == nullptr || filter_(rect));
}

int SliceScheduler::ContactScore(const topo::SubmeshRect& rect) const {
  // One point per chip-side on the rect boundary that faces a border cell,
  // a dead chip or an allocated chip. A snug corner placement scores its
  // whole touching perimeter; a free-floating one scores zero.
  const auto blocked = [&](int x, int y) {
    if (x < 0 || x >= size_x_ || y < 0 || y >= size_y_) return true;
    const int cell = CellIndex(x, y);
    return owner_[cell] != -1 || unusable_[cell] != 0;
  };
  int score = 0;
  for (int x = rect.x0; x < rect.x0 + rect.size_x; ++x) {
    score += blocked(x, rect.y0 - 1) ? 1 : 0;
    score += blocked(x, rect.y0 + rect.size_y) ? 1 : 0;
  }
  for (int y = rect.y0; y < rect.y0 + rect.size_y; ++y) {
    score += blocked(rect.x0 - 1, y) ? 1 : 0;
    score += blocked(rect.x0 + rect.size_x, y) ? 1 : 0;
  }
  return score;
}

topo::SubmeshRect SliceScheduler::FindSlot(int w, int h,
                                           CarvePolicy policy) const {
  TPU_CHECK_GT(w, 0);
  TPU_CHECK_GT(h, 0);
  topo::SubmeshRect best;
  int best_score = -1;
  for (int y0 = 0; y0 + h <= size_y_; ++y0) {
    for (int x0 = 0; x0 + w <= size_x_; ++x0) {
      const topo::SubmeshRect rect{x0, y0, w, h};
      if (!Admissible(owner_, rect)) continue;
      if (policy != CarvePolicy::kBestFit) return rect;
      const int score = ContactScore(rect);
      if (score > best_score) {
        best_score = score;
        best = rect;
      }
    }
  }
  return best;
}

void SliceScheduler::Allocate(int owner, const topo::SubmeshRect& rect) {
  TPU_CHECK_GE(owner, 0);
  TPU_CHECK(!allocated(owner));
  TPU_CHECK(InBounds(rect.size_x, rect.size_y, rect.x0, rect.y0));
  for (int y = rect.y0; y < rect.y0 + rect.size_y; ++y) {
    for (int x = rect.x0; x < rect.x0 + rect.size_x; ++x) {
      const int cell = CellIndex(x, y);
      TPU_CHECK_EQ(owner_[cell], -1);
      owner_[cell] = owner;
    }
  }
  allocations_[owner] = rect;
}

void SliceScheduler::Release(int owner) {
  const auto it = allocations_.find(owner);
  TPU_CHECK(it != allocations_.end());
  const topo::SubmeshRect rect = it->second;
  for (int y = rect.y0; y < rect.y0 + rect.size_y; ++y) {
    for (int x = rect.x0; x < rect.x0 + rect.size_x; ++x) {
      owner_[CellIndex(x, y)] = -1;
    }
  }
  allocations_.erase(it);
}

void SliceScheduler::ShrinkTo(int owner, const topo::SubmeshRect& rect) {
  const auto it = allocations_.find(owner);
  TPU_CHECK(it != allocations_.end());
  TPU_CHECK(it->second.Contains(rect));
  const topo::SubmeshRect old = it->second;
  for (int y = old.y0; y < old.y0 + old.size_y; ++y) {
    for (int x = old.x0; x < old.x0 + old.size_x; ++x) {
      if (!rect.Contains(topo::Coord{x, y})) owner_[CellIndex(x, y)] = -1;
    }
  }
  it->second = rect;
}

int SliceScheduler::busy_chips() const {
  int busy = 0;
  for (const auto& [owner, rect] : allocations_) busy += rect.chips();
  return busy;
}

int SliceScheduler::unusable_chips() const {
  int count = 0;
  for (const char dead : unusable_) count += dead != 0 ? 1 : 0;
  return count;
}

int SliceScheduler::free_chips() const {
  int free = 0;
  for (std::size_t cell = 0; cell < owner_.size(); ++cell) {
    free += owner_[cell] == -1 && !unusable_[cell] ? 1 : 0;
  }
  return free;
}

std::vector<int> SliceScheduler::OwnersIn(const topo::SubmeshRect& rect) const {
  std::vector<int> owners;
  for (int y = rect.y0; y < rect.y0 + rect.size_y; ++y) {
    for (int x = rect.x0; x < rect.x0 + rect.size_x; ++x) {
      const int owner = owner_[CellIndex(x, y)];
      if (owner != -1) owners.push_back(owner);
    }
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

topo::SubmeshRect SliceScheduler::LargestFreeRect() const {
  // Maximal rectangle over the free-and-usable mask, histogram-stack form
  // (the same algorithm as topo::LargestHealthySubmesh, over occupancy
  // instead of dead chips).
  topo::SubmeshRect best;
  std::vector<int> height(static_cast<std::size_t>(size_x_), 0);
  for (int y = 0; y < size_y_; ++y) {
    for (int x = 0; x < size_x_; ++x) {
      const int cell = CellIndex(x, y);
      height[x] = owner_[cell] == -1 && !unusable_[cell] ? height[x] + 1 : 0;
    }
    // For each column, the widest span where every height >= height[x].
    for (int x = 0; x < size_x_; ++x) {
      if (height[x] == 0) continue;
      int left = x;
      while (left > 0 && height[left - 1] >= height[x]) --left;
      int right = x;
      while (right + 1 < size_x_ && height[right + 1] >= height[x]) ++right;
      const int area = (right - left + 1) * height[x];
      if (area > best.chips()) {
        best = {left, y - height[x] + 1, right - left + 1, height[x]};
      }
    }
  }
  return best;
}

double SliceScheduler::Fragmentation() const {
  const int free = free_chips();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(LargestFreeRect().chips()) / free;
}

SliceScheduler::PreemptionPlan SliceScheduler::FindPreemption(
    int w, int h, const std::function<bool(int)>& preemptable) const {
  PreemptionPlan best;
  int best_victims = 0;
  int best_victim_chips = 0;
  for (int y0 = 0; y0 + h <= size_y_; ++y0) {
    for (int x0 = 0; x0 + w <= size_x_; ++x0) {
      const topo::SubmeshRect rect{x0, y0, w, h};
      bool ok = true;
      int victim_chips = 0;
      for (int y = y0; ok && y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) {
          const int cell = CellIndex(x, y);
          if (unusable_[cell]) {
            ok = false;
            break;
          }
          const int owner = owner_[cell];
          if (owner == -1) continue;
          if (!preemptable(owner)) {
            ok = false;
            break;
          }
          ++victim_chips;
        }
      }
      if (!ok || (filter_ != nullptr && !filter_(rect))) continue;
      std::vector<int> victims = OwnersIn(rect);
      if (best.found &&
          (victims.size() > static_cast<std::size_t>(best_victims) ||
           (victims.size() == static_cast<std::size_t>(best_victims) &&
            victim_chips >= best_victim_chips))) {
        continue;
      }
      best.found = true;
      best.rect = rect;
      best_victims = static_cast<int>(victims.size());
      best_victim_chips = victim_chips;
      best.victims = std::move(victims);
    }
  }
  return best;
}

SliceScheduler::MigrationPlan SliceScheduler::FindMigration(int w,
                                                            int h) const {
  MigrationPlan plan;
  if (free_chips() < w * h) return plan;
  for (int y0 = 0; y0 + h <= size_y_; ++y0) {
    for (int x0 = 0; x0 + w <= size_x_; ++x0) {
      const topo::SubmeshRect rect{x0, y0, w, h};
      bool usable = true;
      for (int y = y0; usable && y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) {
          if (unusable_[CellIndex(x, y)]) {
            usable = false;
            break;
          }
        }
      }
      if (!usable || (filter_ != nullptr && !filter_(rect))) continue;
      const std::vector<int> victims = OwnersIn(rect);
      if (victims.empty()) continue;  // FindSlot would have taken it
      // Relocate every victim on a scratch grid with the candidate rect
      // reserved; victims are placed in ascending-id order, first-fit.
      std::vector<int> scratch = owner_;
      for (const int victim : victims) {
        const topo::SubmeshRect old = allocations_.at(victim);
        for (int y = old.y0; y < old.y0 + old.size_y; ++y) {
          for (int x = old.x0; x < old.x0 + old.size_x; ++x) {
            scratch[CellIndex(x, y)] = -1;
          }
        }
      }
      constexpr int kReserved = -2;
      for (int y = y0; y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) scratch[CellIndex(x, y)] = kReserved;
      }
      std::vector<std::pair<int, topo::SubmeshRect>> moves;
      bool all_placed = true;
      for (const int victim : victims) {
        const topo::SubmeshRect old = allocations_.at(victim);
        topo::SubmeshRect placed;
        for (int ny = 0; placed.empty() && ny + old.size_y <= size_y_; ++ny) {
          for (int nx = 0; nx + old.size_x <= size_x_; ++nx) {
            const topo::SubmeshRect cand{nx, ny, old.size_x, old.size_y};
            if (!CellsFree(scratch, cand)) continue;
            if (filter_ != nullptr && !filter_(cand)) continue;
            placed = cand;
            break;
          }
        }
        if (placed.empty()) {
          all_placed = false;
          break;
        }
        for (int y = placed.y0; y < placed.y0 + placed.size_y; ++y) {
          for (int x = placed.x0; x < placed.x0 + placed.size_x; ++x) {
            scratch[CellIndex(x, y)] = victim;
          }
        }
        moves.emplace_back(victim, placed);
      }
      if (!all_placed) continue;
      plan.found = true;
      plan.rect = rect;
      plan.moves = std::move(moves);
      return plan;
    }
  }
  return plan;
}

}  // namespace tpu::cluster
