// The multi-tenant cluster driver: a stream of heterogeneous jobs carved
// onto shared pods, one fault domain.
//
// The paper dedicates a whole multipod to one training run; a production
// fleet time- and space-shares the same pods. ClusterSimulation runs a
// deterministic job stream (cluster/workload.h) through the SliceScheduler's
// topology-aware carving (cluster/scheduler.h) on ONE simulated machine:
// one Simulator clock, one Network, one FaultInjector. A dead cross-pod
// cable therefore degrades every co-located job at once — the injector's
// apply/heal events are dispatched to each admitted job whose slice the
// fault touches, translated into that job's slice-local chip/link/host ids,
// and each job's RecoveryController prices its own recovery independently
// (one shrinks in place, a neighbor checkpoint-restarts back to the queue).
//
// Scheduling semantics:
//   * first-fit / best-fit — FCFS with head-of-line blocking.
//   * backfill — lower-priority jobs behind a blocked head may run; the
//     head may preempt strictly-lower-priority victims (priced as an
//     on-demand checkpoint write + restore, no work lost).
//   * requeued jobs (preempted or restarted) may be readmitted shrunk-to-fit
//     down to min_readmit_fraction of their requested chips — remaining
//     work is denominated in steps, so it carries across shapes.
//   * optional defragmentation: relocate running jobs (each move priced as
//     checkpoint-restore) when that unblocks the queue head.
//
// Everything runs on the simulated clock with seeded randomness only, so a
// cluster run — timeline, report JSON, every decision — is bit-identical
// across repeats and planner thread counts.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/report.h"
#include "cluster/scheduler.h"
#include "cluster/workload.h"
#include "core/multipod.h"
#include "fault/fault_injector.h"
#include "network/network.h"
#include "plan/cache.h"
#include "plan/plan_ir.h"
#include "plan/schedule.h"
#include "recover/controller.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace tpu::telemetry {
class TimeSeriesSampler;
}  // namespace tpu::telemetry

namespace tpu::cluster {

struct ClusterConfig {
  // The shared machine: pods side by side along X (default two 8x8 pods —
  // one cross-pod boundary at x=7).
  topo::TopologyConfig topology{.pod_size_x = 8, .pod_size_y = 8,
                                .num_pods = 2};
  // Per-tenant system model. `system.pdes` flows into every tenant step
  // simulation: multi-pod tenant slices drain their pod-confined collective
  // phases on the windowed PDES engine when it asks for >1 thread, while
  // single-pod slices (and the carved scheduler bookkeeping) legitimately
  // degenerate to the serial path — cluster reports are byte-identical at
  // any thread count either way.
  core::SystemOptions system;
  frameworks::Framework framework = frameworks::Framework::kTensorFlow;

  CarvePolicy policy = CarvePolicy::kBackfill;
  SimTime horizon = Hours(2);

  // Cluster-wide fault model (one injector for every tenant). When
  // scripted_faults is non-empty it is armed instead of the MTBF schedule.
  fault::FaultModelConfig faults;
  std::vector<fault::FaultEvent> scripted_faults;

  fault::HealthMonitorConfig monitor;
  fault::CheckpointConfig checkpoint;
  // Checkpoint cadence tau (useful seconds) for every job; also the basis
  // of preemption cost (write + restore).
  SimTime checkpoint_interval = Seconds(120);

  // Default per-job recovery policy; enabled is forced on and the spare-host
  // pool forced off (a tenant cannot attach cluster spares). Per-job
  // overrides let a scenario give tenants different tolerances (e.g. one
  // refuses to shrink below 75%).
  recover::RecoveryPolicy recovery;
  std::map<int, recover::RecoveryPolicy> job_recovery_overrides;

  // Requeued jobs may be readmitted on a halved shape down to this fraction
  // of their requested chips; 1.0 disables shrink-to-fit readmission.
  double min_readmit_fraction = 0.5;

  // Defragmentation: relocate running jobs to admit a blocked head when the
  // summed migration cost (checkpoint write + restore per victim) stays
  // under the budget.
  bool enable_defrag = false;
  SimTime max_migration_seconds = Seconds(120);

  std::string label = "cluster";  // telemetry run label
};

// The canonical shared-fault scenario: every directed link crossing the pod
// boundary at x = boundary_x -> boundary_x + 1 flaps at `at` (duration 0 =
// permanent, degrade 1024x — an effectively dead optical cable that the
// depth-counted link state can still heal if a duration is given). Events
// are ordered by y, +x direction before -x.
std::vector<fault::FaultEvent> CrossPodCableFault(const topo::MeshTopology& topo,
                                                  int boundary_x, SimTime at,
                                                  SimTime duration = 0);

class ClusterSimulation {
 public:
  // Jobs with arrival >= horizon are dropped up front (they could never be
  // admitted); the rest keep their ids.
  ClusterSimulation(ClusterConfig config, std::vector<JobSpec> jobs);
  ~ClusterSimulation();

  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  // Runs the cluster to completion or the horizon and builds the report.
  // Call once.
  ClusterReport Run();

  // Instantaneous state for telemetry probes (RegisterClusterProbes) and
  // the sampler's stop predicate.
  int running_jobs() const;
  int queued_jobs() const;
  int busy_chips() const { return scheduler_.busy_chips(); }
  int free_chips() const { return scheduler_.free_chips(); }
  double fragmentation() const { return scheduler_.Fragmentation(); }
  bool all_done() const { return completed_ == jobs_to_run_; }

  const sim::Simulator& simulator() const { return sim_; }

 private:
  // Everything needed to run and price one slice shape, memoized cluster-
  // wide by (size_x, size_y, wrap_y, benchmark, global_batch): the carved
  // rect is itself a legal Slice topology, so one throwaway MultipodSystem
  // prices the healthy step, and the planner oracles run on the slice mesh.
  struct ShapePricing {
    topo::TopologyConfig slice_config;
    std::unique_ptr<topo::MeshTopology> topo;
    SimTime healthy_step = 0;
    SimTime healthy_allreduce = 0;
    SimTime comm_healthy = 0;
    plan::PlanRequest request;
    plan::LoweredPlan lowered;
    std::shared_ptr<plan::PlanCache> cache;
    SimTime detection_deadline = 0;
    fault::CheckpointCosts checkpoint;
    SimTime restart_seconds = 0;  // restore + framework re-init
  };
  using PricingKey = std::tuple<int, int, bool, int, std::int64_t>;

  // One admission of one job onto one carved rect. Incarnations stay alive
  // (live = false once stopped) for the whole run: controllers own pending
  // simulator callbacks and must not be destroyed from inside them.
  struct Incarnation {
    int job = -1;
    topo::SubmeshRect rect;         // as carved (slice-local id base)
    topo::SubmeshRect active_rect;  // shrinks when a shrink commits
    std::shared_ptr<ShapePricing> pricing;
    // Slice link id -> cluster link id, in slice-link-id order.
    std::vector<topo::LinkId> slice_to_cluster;
    std::unique_ptr<recover::RecoveryController> controller;
    // Faults delivered to this controller (original, translated): heals are
    // matched against the original so a shrunk active_rect cannot strand an
    // active fault.
    std::vector<std::pair<fault::FaultEvent, fault::FaultEvent>> delivered;
    bool live = false;
  };

  struct JobState {
    JobSpec spec;
    double remaining_steps = 0;
    bool submitted = false;
    bool requeued = false;       // eligible for shrink-to-fit readmission
    SimTime ready_at = 0;        // earliest (re)admission time
    SimTime queued_since = -1;   // start of the current queued stretch
    SimTime pending_resume = 0;  // allocation-to-start delay (restore/restart)
    std::uint64_t resume_seq = 0;  // guards the scheduled StartIncarnation
    Incarnation* active = nullptr;
    JobOutcome outcome;
  };

  std::shared_ptr<ShapePricing> PricingFor(int size_x, int size_y,
                                           models::Benchmark benchmark,
                                           std::int64_t global_batch);
  bool RectAdmissible(const topo::SubmeshRect& rect) const;

  void OnSubmit(int job);
  void SchedulePass();
  void Admit(int job, const topo::SubmeshRect& rect);
  void StartIncarnation(int job, std::uint64_t resume_seq);
  void Preempt(int job);
  void Migrate(int job, const topo::SubmeshRect& to);
  void Requeue(int job, SimTime ready_at, SimTime pending_resume);
  // Stops the live incarnation (if any) and folds its timeline into the
  // job's outcome and remaining steps. Does not release the allocation.
  void StopIncarnation(int job);
  void MergeTimeline(JobState& job, const recover::RecoveryTimeline& timeline);
  recover::StepPricer BuildPricer(Incarnation* inc);
  plan::LinkHealthSet ObserveSliceHealth(const Incarnation& inc) const;

  void OnJobFinished(Incarnation* inc);
  void OnJobShrunk(Incarnation* inc, const topo::SubmeshRect& slice_rect);
  void OnJobRestart(Incarnation* inc);

  void OnFaultApplied(const fault::FaultEvent& event);
  void OnFaultHealed(const fault::FaultEvent& event);
  // Slice-local translation of a cluster fault event; false when the event
  // is not interior to `active_rect` (merely crossing faults are observable
  // but not the job's own hardware).
  bool TranslateEvent(const Incarnation& inc, const fault::FaultEvent& event,
                      fault::FaultEvent* translated) const;

  // Integrates busy-chip and fragmentation state over time. Call BEFORE any
  // occupancy mutation, and once more at `elapsed` when the run ends.
  void UpdateOccupancy(SimTime upto);
  void RecordEvent(const char* kind, int job, const topo::SubmeshRect& rect);

  recover::RecoveryPolicy PolicyFor(int job) const;
  std::string TopologyString() const;

  ClusterConfig config_;
  topo::MeshTopology topo_;
  sim::Simulator sim_;
  net::Network network_;
  fault::FaultInjector injector_;
  SliceScheduler scheduler_;

  std::vector<JobState> jobs_;  // by job id (dropped arrivals excluded)
  std::vector<std::unique_ptr<Incarnation>> incarnations_;
  std::map<PricingKey, std::shared_ptr<ShapePricing>> pricing_;
  // Permanently failed links (both endpoints, cluster coords): the rect
  // filter refuses slices that would enclose one.
  std::vector<std::pair<topo::Coord, topo::Coord>> dead_links_;

  std::vector<SchedulerEvent> events_;
  int jobs_to_run_ = 0;
  int completed_ = 0;
  int preemptions_ = 0;
  int migrations_ = 0;
  int shrinks_ = 0;
  int requeues_ = 0;
  SimTime last_activity_ = 0;
  double busy_integral_ = 0;
  double frag_integral_ = 0;
  double frag_max_ = 0;
  SimTime occupancy_last_ = 0;
  bool ran_ = false;
};

// Wires the cluster's fleet-level signals into the sampler:
// cluster.running_jobs, cluster.queued_jobs, cluster.busy_chips,
// cluster.free_chips, cluster.fragmentation. The cluster must outlive the
// sampler's run.
void RegisterClusterProbes(telemetry::TimeSeriesSampler& sampler,
                           const ClusterSimulation& cluster);

}  // namespace tpu::cluster
