// Topology-aware slice carving for the multi-tenant cluster.
//
// The cluster's pods form one big 2-D mesh; a job runs on an axis-aligned
// SubmeshRect carved out of it (a carved rect is itself a legal Slice
// topology — topology.h). The SliceScheduler owns the occupancy grid: who
// holds which chips, which chips are permanently dead, and a pluggable
// rect filter for constraints a cell mask cannot express (permanently
// failed *links* whose both endpoints would fall inside a candidate).
//
// Placement policies:
//   * first-fit  — first admissible position in row-major (y, then x) scan
//     order. FCFS with head-of-line blocking.
//   * best-fit   — the admissible position with the highest boundary
//     contact (chip-sides touching occupied / dead / border cells), ties to
//     scan order. Corner-packing, which is what keeps fragmentation down on
//     a 2-D grid.
//   * backfill   — first-fit placement, but the cluster driver may walk
//     past a blocked queue head and may preempt strictly-lower-priority
//     jobs (FindPreemption).
//
// Everything is deterministic: scans are row-major, victim sets are sorted,
// and no randomness or wall-clock is consulted.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "topology/topology.h"

namespace tpu::cluster {

enum class CarvePolicy { kFirstFit, kBestFit, kBackfill };
const char* CarvePolicyName(CarvePolicy policy);

class SliceScheduler {
 public:
  using RectFilter = std::function<bool(const topo::SubmeshRect&)>;

  SliceScheduler(int size_x, int size_y);

  // Extra admissibility constraint on candidate rects (beyond free + usable
  // cells) — the cluster driver rejects rects enclosing a permanently
  // failed link. Null accepts everything.
  void set_rect_filter(RectFilter filter) { filter_ = std::move(filter); }

  // Permanently removes one chip from the allocatable pool (chip death).
  // Chips inside a current allocation stay allocated — the owning job's
  // recovery controller decides what to do about the loss.
  void MarkUnusable(topo::Coord c);

  // Best admissible position for a w x h slice under `policy`, or a
  // zero-area rect when none exists.
  topo::SubmeshRect FindSlot(int w, int h, CarvePolicy policy) const;

  void Allocate(int owner, const topo::SubmeshRect& rect);
  void Release(int owner);
  // Shrinks `owner`'s allocation to `rect` (a sub-rect of the current one),
  // freeing the complement — an elastic shrink returns the rest of the
  // slice to the pool.
  void ShrinkTo(int owner, const topo::SubmeshRect& rect);

  bool allocated(int owner) const { return allocations_.count(owner) != 0; }
  const std::map<int, topo::SubmeshRect>& allocations() const {
    return allocations_;
  }
  int total_chips() const { return size_x_ * size_y_; }
  int busy_chips() const;
  int unusable_chips() const;
  // Free *and usable* chips.
  int free_chips() const;

  // Distinct owners with at least one chip in `rect`, ascending.
  std::vector<int> OwnersIn(const topo::SubmeshRect& rect) const;

  // Largest free-and-usable rectangle (maximal-rectangle histogram scan;
  // ignores the link-level rect filter). The fragmentation probe:
  //   fragmentation = 1 - largest_free_rect / free_chips   (0 when empty).
  topo::SubmeshRect LargestFreeRect() const;
  double Fragmentation() const;

  // Priority preemption: a position for w x h whose occupants are all
  // `preemptable`, minimizing (victim count, then victim chips, then scan
  // order). Only admissible positions (usable cells + rect filter) qualify.
  struct PreemptionPlan {
    bool found = false;
    topo::SubmeshRect rect;
    std::vector<int> victims;  // ascending owner ids
  };
  PreemptionPlan FindPreemption(
      int w, int h, const std::function<bool(int)>& preemptable) const;

  // Defragmentation: a position for w x h that becomes admissible after
  // relocating its current occupants elsewhere (each at its present shape).
  // Returns the position plus the relocation moves, or found=false. The
  // caller prices the moves (checkpoint-write + restore per victim) and
  // decides whether to execute.
  struct MigrationPlan {
    bool found = false;
    topo::SubmeshRect rect;
    std::vector<std::pair<int, topo::SubmeshRect>> moves;  // owner -> new
  };
  MigrationPlan FindMigration(int w, int h) const;

 private:
  int CellIndex(int x, int y) const { return y * size_x_ + x; }
  bool InBounds(int w, int h, int x0, int y0) const {
    return x0 >= 0 && y0 >= 0 && x0 + w <= size_x_ && y0 + h <= size_y_;
  }
  // All cells free (no owner) and usable, over an explicit owner grid.
  bool CellsFree(const std::vector<int>& owner,
                 const topo::SubmeshRect& rect) const;
  bool Admissible(const std::vector<int>& owner,
                  const topo::SubmeshRect& rect) const;
  // Boundary contact score for best-fit corner packing.
  int ContactScore(const topo::SubmeshRect& rect) const;

  int size_x_;
  int size_y_;
  std::vector<int> owner_;       // -1 = free
  std::vector<char> unusable_;   // 1 = permanently dead chip
  std::map<int, topo::SubmeshRect> allocations_;
  RectFilter filter_;
};

}  // namespace tpu::cluster
