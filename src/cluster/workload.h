// Deterministic job streams for the multi-tenant cluster simulation.
//
// The paper trains one job on a dedicated multipod; a production fleet runs
// a *stream* of heterogeneous jobs — small 4x4 fine-tunes next to pod-scale
// MLPerf runs (the TPU-v3 MLPerf-0.6 study's mix) — onto shared pods. This
// module produces that stream two ways, both bit-identically replayable:
//   * a seeded Poisson process over a weighted shape mix (every sampled
//     value comes from one seed-derived xoshiro stream, so the same
//     WorkloadConfig always yields the same jobs), and
//   * a line-oriented trace file, so a recorded or hand-written workload
//     replays exactly (docs/cluster_jobs.trace is the committed example).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"
#include "models/model_specs.h"

namespace tpu::cluster {

// One job submission: a training run of `steps` steps on a requested
// `size_x` x `size_y` slice. Work is denominated in steps (not seconds) so a
// job preempted on one shape and readmitted on another carries its remaining
// steps across; fractional steps appear after such a hand-off.
struct JobSpec {
  int id = 0;
  std::string name;
  SimTime arrival = 0;
  int size_x = 4;
  int size_y = 4;
  double steps = 1000;
  int priority = 0;  // higher preempts lower under the backfill policy
  models::Benchmark benchmark = models::Benchmark::kResNet50;
  std::int64_t global_batch = 4096;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

// One entry of the Poisson mix: a slice shape + model, drawn with
// probability weight / sum(weights), with a uniform step count in
// [min_steps, max_steps].
struct JobShape {
  int size_x = 4;
  int size_y = 4;
  models::Benchmark benchmark = models::Benchmark::kResNet50;
  std::int64_t global_batch = 4096;
  double weight = 1.0;
  int min_steps = 2000;
  int max_steps = 8000;
};

struct WorkloadConfig {
  std::uint64_t seed = 0;
  // Mean inter-arrival time of the Poisson process.
  SimTime mean_interarrival = Seconds(120);
  // Jobs arrive in [0, horizon); generation also stops at max_jobs (when
  // positive), whichever comes first.
  SimTime horizon = Hours(2);
  int max_jobs = 0;
  // Priorities are uniform in [0, num_priorities).
  int num_priorities = 3;
  std::vector<JobShape> mix;  // empty -> DefaultJobMix()
};

// The default small/medium/large mix: mostly 4x4 ResNet fine-tunes, some
// 8x8 BERT runs, an occasional 16x8 Transformer spanning a pod boundary on
// a 2x(8x8) cluster.
std::vector<JobShape> DefaultJobMix();

// Samples the job stream. Pure function of the config — bit-identical
// replay — with ids and names ("job-<id>") assigned in arrival order.
std::vector<JobSpec> GeneratePoissonWorkload(const WorkloadConfig& config);

// Trace format: one job per line,
//   arrival_s size_x size_y steps priority benchmark global_batch name
// with '#' comments and blank lines ignored. Benchmarks are named by
// BenchmarkToken (resnet50, bert, transformer, ssd, maskrcnn, dlrm).
bool ParseJobsTrace(std::istream& in, std::vector<JobSpec>* jobs,
                    std::string* error);
bool LoadJobsTrace(const std::string& path, std::vector<JobSpec>* jobs,
                   std::string* error);
void WriteJobsTrace(std::ostream& out, const std::vector<JobSpec>& jobs);

const char* BenchmarkToken(models::Benchmark benchmark);
bool ParseBenchmarkToken(const std::string& token,
                         models::Benchmark* benchmark);

}  // namespace tpu::cluster
