// Small integer/float helpers shared across modules.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace tpu {

constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

constexpr std::int64_t RoundUp(std::int64_t a, std::int64_t multiple) {
  return CeilDiv(a, multiple) * multiple;
}

constexpr bool IsPowerOfTwo(std::int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

inline std::int64_t Log2Floor(std::int64_t x) {
  TPU_CHECK_GT(x, 0);
  std::int64_t log = 0;
  while (x > 1) {
    x >>= 1;
    ++log;
  }
  return log;
}

}  // namespace tpu
