#include "common/thread_pool.h"

#include "common/check.h"

namespace tpu {

ThreadPool::ThreadPool(std::size_t num_threads) {
  TPU_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, num_threads());
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    const std::size_t end = std::min(n, begin + chunk_size);
    Schedule([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tpu
