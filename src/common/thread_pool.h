// Minimal fixed-size thread pool with a parallel-for helper.
//
// Used by the fast AUC metric (Section 4.6: "multithreaded sorting and loop
// fusion") and by the multi-client framework model to emulate concurrent
// per-host compilation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tpu {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; tasks may run in any order.
  void Schedule(std::function<void()> task);

  // Blocks until all scheduled tasks have completed.
  void Wait();

  // Splits [0, n) into roughly equal contiguous chunks, runs
  // body(begin, end) on the pool, and waits for completion.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace tpu
