// Deterministic, seedable RNG used everywhere in the simulator so that runs
// are exactly reproducible (no wall-clock or global-state dependence).
//
// SplitMix64 for seeding, xoshiro256** for the stream; both are public-domain
// algorithms (Blackman & Vigna).
#pragma once

#include <cstdint>

namespace tpu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the bounds used here (<< 2^32).
    return NextU64() % bound;
  }

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Box-Muller (cached second value discarded for
  // simplicity; throughput is not a concern for config-time sampling).
  double NextGaussian();

  // Pareto-distributed sample with scale xm and shape alpha — used for the
  // heavy-tailed JPEG decode times in the ResNet input pipeline model.
  double NextPareto(double xm, double alpha);

  // Exponential with the given mean.
  double NextExponential(double mean);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tpu
