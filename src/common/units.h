// Unit helpers used throughout the simulator.
//
// Simulated time is a double in seconds; payload sizes are int64 bytes.
// The helpers below keep literal-heavy configuration code readable
// (`64 * kMiB`, `Seconds(1e-6)`) without a heavyweight units library.
#pragma once

#include <cstdint>

namespace tpu {

using SimTime = double;   // seconds of simulated time
using Bytes = std::int64_t;
using Flops = double;     // floating-point operations (can exceed int64 range)

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

constexpr SimTime Seconds(double s) { return s; }
constexpr SimTime Minutes(double m) { return m * 60.0; }
constexpr SimTime Hours(double h) { return h * 3600.0; }
constexpr SimTime Millis(double ms) { return ms * 1e-3; }
constexpr SimTime Micros(double us) { return us * 1e-6; }
constexpr SimTime Nanos(double ns) { return ns * 1e-9; }

constexpr double ToMillis(SimTime t) { return t * 1e3; }
constexpr double ToMicros(SimTime t) { return t * 1e6; }
constexpr double ToMinutes(SimTime t) { return t / 60.0; }

// Bandwidths are bytes/second.
using Bandwidth = double;
constexpr Bandwidth GBps(double gb) { return gb * 1e9; }

}  // namespace tpu
