// Lightweight invariant-checking macros.
//
// The simulator is deterministic; a failed check is always a programming
// error, so we print a message and abort rather than unwinding.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tpu::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream-collecting helper so `CHECK(x) << "context"` works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace tpu::internal

#define TPU_CHECK(cond)                                                \
  if (cond) {                                                          \
  } else                                                               \
    ::tpu::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define TPU_CHECK_EQ(a, b) TPU_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPU_CHECK_NE(a, b) TPU_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPU_CHECK_LT(a, b) TPU_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPU_CHECK_LE(a, b) TPU_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPU_CHECK_GT(a, b) TPU_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPU_CHECK_GE(a, b) TPU_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
