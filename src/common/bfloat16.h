// Software bfloat16: the 16-bit truncated IEEE-754 float used by TPUs for
// activations and gradient all-reduce payloads (Section 3.3 / 4.1 of the
// paper). Round-to-nearest-even conversion, as implemented in XLA.
#pragma once

#include <cstdint>
#include <cstring>

namespace tpu {

class BFloat16 {
 public:
  BFloat16() = default;

  explicit BFloat16(float f) : bits_(RoundFromFloat(f)) {}

  static BFloat16 FromBits(std::uint16_t bits) {
    BFloat16 b;
    b.bits_ = bits;
    return b;
  }

  std::uint16_t bits() const { return bits_; }

  float ToFloat() const {
    std::uint32_t wide = static_cast<std::uint32_t>(bits_) << 16;
    float f;
    std::memcpy(&f, &wide, sizeof(f));
    return f;
  }

  friend bool operator==(BFloat16 a, BFloat16 b) { return a.bits_ == b.bits_; }

 private:
  // Round-to-nearest-even truncation of the low 16 mantissa bits.
  static std::uint16_t RoundFromFloat(float f) {
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof(x));
    // NaN must stay NaN: set a mantissa bit so truncation cannot produce Inf.
    if ((x & 0x7fffffff) > 0x7f800000) {
      return static_cast<std::uint16_t>((x >> 16) | 0x0040);
    }
    const std::uint32_t lsb = (x >> 16) & 1;
    const std::uint32_t rounding_bias = 0x7fff + lsb;
    return static_cast<std::uint16_t>((x + rounding_bias) >> 16);
  }

  std::uint16_t bits_ = 0;
};

// Round-trips a float through bfloat16, modeling the precision loss of
// bf16 gradient compression on the wire.
inline float QuantizeToBFloat16(float f) { return BFloat16(f).ToFloat(); }

}  // namespace tpu
