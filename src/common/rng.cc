#include "common/rng.h"

#include <cmath>

namespace tpu {

double Rng::NextGaussian() {
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextPareto(double xm, double alpha) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

}  // namespace tpu
