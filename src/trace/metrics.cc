#include "trace/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "sim/partitioned_simulator.h"
#include "sim/simulator.h"

namespace tpu::trace {
namespace {

// Thread-local for the same reason as the trace recorder (trace.cc):
// worker threads running throwaway or parallel simulations must not race on
// (or pollute) the main thread's registry.
thread_local MetricsRegistry* g_metrics = nullptr;

// Buckets per doubling of the value; 8 gives ~9%-wide buckets, tight enough
// that interpolated percentiles are within a few percent of exact.
constexpr int kBucketsPerOctave = 8;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MetricsRegistry* CurrentMetrics() { return g_metrics; }
void SetCurrentMetrics(MetricsRegistry* metrics) { g_metrics = metrics; }

int MetricHistogram::BucketOf(double value) {
  // value in (BucketLow(b), BucketHigh(b)]  with bounds 2^(b / 8).
  return static_cast<int>(
      std::ceil(std::log2(value) * kBucketsPerOctave - 1e-9));
}

double MetricHistogram::BucketLow(int bucket) {
  return std::exp2(static_cast<double>(bucket - 1) / kBucketsPerOctave);
}

double MetricHistogram::BucketHigh(int bucket) {
  return std::exp2(static_cast<double>(bucket) / kBucketsPerOctave);
}

void MetricHistogram::Record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value <= 0) {
    ++zero_or_less_;
    return;
  }
  ++buckets_[BucketOf(value)];
}

double MetricHistogram::Percentile(double p) const {
  TPU_CHECK_GE(p, 0.0);
  TPU_CHECK_LE(p, 1.0);
  if (count_ == 0) return 0;
  // Degenerate distributions are exact, not interpolated: a single-sample
  // or all-equal histogram reports the sample itself at every percentile.
  if (min_ == max_) return min_;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  // Rank of the requested percentile among the sorted samples (1-based).
  const double rank = p * static_cast<double>(count_);
  double seen = static_cast<double>(zero_or_less_);
  if (rank <= seen) {
    // Inside the <=0 block: interpolate from the observed minimum up to the
    // block's top (zero, or the observed max when even that is negative) —
    // clamp(0, min, max) here would misreport all-negative histograms.
    const double high = std::min(0.0, max_);
    const double fraction = rank / seen;
    return std::clamp(min_ + fraction * (high - min_), min_, max_);
  }
  for (const auto& [bucket, bucket_count] : buckets_) {
    const double next = seen + static_cast<double>(bucket_count);
    if (rank <= next) {
      // Linear interpolation inside the bucket, clamped to the observed
      // range so single-sample and narrow histograms stay exact.
      const double fraction = (rank - seen) / bucket_count;
      const double low = BucketLow(bucket);
      const double high = BucketHigh(bucket);
      return std::clamp(low + fraction * (high - low), min_, max_);
    }
    seen = next;
  }
  return max_;
}

void MetricHistogram::Reset() {
  buckets_.clear();
  zero_or_less_ = 0;
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

MetricCounter& MetricsRegistry::Counter(const std::string& name) {
  return counters_[name];
}

MetricGauge& MetricsRegistry::Gauge(const std::string& name) {
  return gauges_[name];
}

MetricHistogram& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::WriteText(std::ostream& out) const {
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter.value << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " = " << FormatDouble(gauge.value) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << ": count=" << histogram.count()
        << " mean=" << FormatDouble(histogram.mean())
        << " p50=" << FormatDouble(histogram.Percentile(0.50))
        << " p95=" << FormatDouble(histogram.Percentile(0.95))
        << " p99=" << FormatDouble(histogram.Percentile(0.99))
        << " max=" << FormatDouble(histogram.max()) << "\n";
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  auto write_map = [&out](const auto& map, const auto& emit) {
    bool first = true;
    for (const auto& [name, metric] : map) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":";
      emit(metric);
    }
  };
  out << "{\"counters\":{";
  write_map(counters_,
            [&out](const MetricCounter& c) { out << c.value; });
  out << "},\"gauges\":{";
  write_map(gauges_,
            [&out](const MetricGauge& g) { out << FormatDouble(g.value); });
  out << "},\"histograms\":{";
  write_map(histograms_, [&out](const MetricHistogram& h) {
    out << "{\"count\":" << h.count() << ",\"mean\":" << FormatDouble(h.mean())
        << ",\"p50\":" << FormatDouble(h.Percentile(0.50))
        << ",\"p95\":" << FormatDouble(h.Percentile(0.95))
        << ",\"p99\":" << FormatDouble(h.Percentile(0.99))
        << ",\"min\":" << FormatDouble(h.min())
        << ",\"max\":" << FormatDouble(h.max()) << "}";
  });
  out << "}}\n";
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

void ExportSimulatorMetrics(const sim::Simulator& simulator,
                            const std::string& prefix,
                            MetricsRegistry& metrics) {
  metrics.Counter(prefix + ".events_processed")
      .Add(static_cast<std::int64_t>(simulator.events_processed()));
  metrics.Counter(prefix + ".events_scheduled")
      .Add(static_cast<std::int64_t>(simulator.events_scheduled()));
  metrics.Gauge(prefix + ".peak_queue_depth")
      .Max(static_cast<double>(simulator.peak_queue_depth()));
  metrics.Counter(prefix + ".callbacks_inline")
      .Add(static_cast<std::int64_t>(simulator.callbacks_inline()));
  metrics.Counter(prefix + ".callbacks_pooled")
      .Add(static_cast<std::int64_t>(simulator.callbacks_pooled()));
  metrics.Counter(prefix + ".pool_hits")
      .Add(static_cast<std::int64_t>(simulator.pool_hits()));
  metrics.Counter(prefix + ".pool_fresh_allocs")
      .Add(static_cast<std::int64_t>(simulator.pool_fresh_allocs()));
  metrics.Counter(prefix + ".pool_oversize_allocs")
      .Add(static_cast<std::int64_t>(simulator.pool_oversize_allocs()));
  metrics.Counter(prefix + ".queue_refills")
      .Add(static_cast<std::int64_t>(simulator.queue_refills()));
  // Telemetry-class events are accounted separately and only when present,
  // so a telemetry-off run's metrics dump is byte-identical to before the
  // telemetry subsystem existed.
  if (simulator.telemetry_events_scheduled() > 0) {
    metrics.Counter(prefix + ".telemetry_events_scheduled")
        .Add(static_cast<std::int64_t>(simulator.telemetry_events_scheduled()));
    metrics.Counter(prefix + ".telemetry_events_processed")
        .Add(static_cast<std::int64_t>(simulator.telemetry_events_processed()));
  }
}

void ExportSimulatorMetrics(const sim::PartitionedSimulator& engine,
                            const std::string& prefix,
                            MetricsRegistry& metrics) {
  // Counters add and gauges keep the max, so exporting every lane under the
  // same prefix merges them: the work-event totals match a serial run of the
  // same workload bit-exactly. Allocator-health counters are per-lane sums
  // (each lane owns its own callback pool) and peak_queue_depth is the
  // deepest single lane, not the serial run's single-queue peak.
  ExportSimulatorMetrics(engine.global(), prefix, metrics);
  for (int p = 0; p < engine.partitions(); ++p) {
    ExportSimulatorMetrics(engine.partition(p), prefix, metrics);
  }
  const sim::PdesStats stats = engine.Stats();
  metrics.Gauge(prefix + ".pdes.partitions")
      .Set(static_cast<double>(stats.partitions));
  metrics.Gauge(prefix + ".pdes.threads")
      .Set(static_cast<double>(stats.threads));
  metrics.Gauge(prefix + ".pdes.lookahead_us").Set(ToMicros(stats.lookahead));
  metrics.Gauge(prefix + ".pdes.window_us").Set(ToMicros(stats.window));
  metrics.Counter(prefix + ".pdes.windows")
      .Add(static_cast<std::int64_t>(stats.windows));
  metrics.Counter(prefix + ".pdes.barrier_waits")
      .Add(static_cast<std::int64_t>(stats.barrier_waits));
  metrics.Counter(prefix + ".pdes.cross_messages")
      .Add(static_cast<std::int64_t>(stats.cross_messages));
  metrics.Counter(prefix + ".pdes.join_notifications")
      .Add(static_cast<std::int64_t>(stats.join_notifications));
  metrics.Counter(prefix + ".pdes.engine_events")
      .Add(static_cast<std::int64_t>(stats.engine_events));
  // Per-partition processed-event counters: the post-run load-imbalance
  // breakdown (telemetry::RegisterPdesProbes samples the same signal live).
  for (int p = 0; p < engine.partitions(); ++p) {
    metrics
        .Counter(prefix + ".pdes.partition." + std::to_string(p) +
                 ".events_processed")
        .Add(static_cast<std::int64_t>(stats.partition_events_processed[p]));
  }
}

}  // namespace tpu::trace
