#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.h"

namespace tpu::trace {
namespace {

// Thread-local so independent deterministic simulations (parallel sweep
// points, planner candidate re-pricing) can run on worker threads without
// racing on the recorder: workers observe a null recorder unless they
// install their own.
thread_local TraceRecorder* g_current = nullptr;

std::string TrackKey(const std::string& process, const std::string& thread) {
  std::string key = process;
  key.push_back('\0');
  key += thread;
  return key;
}

// Timestamps are microseconds with fixed precision: formatting is locale-
// independent and stable, which keeps identical runs byte-identical.
void AppendMicros(std::string* out, SimTime seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ToMicros(seconds));
  *out += buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

TraceRecorder* CurrentTrace() { return g_current; }
void SetCurrentTrace(TraceRecorder* recorder) { g_current = recorder; }

TraceRecorder::TrackId TraceRecorder::Track(const std::string& process,
                                            const std::string& thread) {
  const std::string key = TrackKey(process, thread);
  const auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;

  TrackInfo info;
  info.process = process;
  info.thread = thread;
  // One pid per distinct process name, assigned in registration order; tids
  // count up within the process.
  int max_pid = -1;
  for (const TrackInfo& t : tracks_) {
    if (t.process == process) info.tid = std::max(info.tid, t.tid + 1);
    if (t.process == process) info.pid = t.pid;
    max_pid = std::max(max_pid, t.pid);
  }
  if (info.tid == 0) info.pid = max_pid + 1;

  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(std::move(info));
  open_depth_.push_back(0);
  track_index_.emplace(key, id);
  return id;
}

TraceRecorder::CounterId TraceRecorder::Counter(TrackId track,
                                                const std::string& name) {
  TPU_CHECK_GE(track, 0);
  TPU_CHECK_LT(track, static_cast<TrackId>(tracks_.size()));
  const int pid = tracks_[track].pid;
  const std::string key = TrackKey(std::to_string(pid), name);
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return it->second;
  const CounterId id = static_cast<CounterId>(counters_.size());
  counters_.push_back(CounterInfo{pid, name});
  counter_index_.emplace(key, id);
  return id;
}

SimTime TraceRecorder::Stamp(SimTime ts) {
  const SimTime stamped = ts + time_offset_;
  last_timestamp_ = std::max(last_timestamp_, stamped);
  return stamped;
}

void TraceRecorder::Begin(TrackId track, std::string name, SimTime ts) {
  ++open_depth_[track];
  events_.push_back(Event{'B', track, 0, Stamp(ts), 0, std::move(name)});
}

void TraceRecorder::End(TrackId track, SimTime ts) {
  TPU_CHECK_GT(open_depth_[track], 0) << "End without matching Begin";
  --open_depth_[track];
  events_.push_back(Event{'E', track, 0, Stamp(ts), 0, std::string()});
}

void TraceRecorder::Complete(TrackId track, std::string name, SimTime start,
                             SimTime end) {
  TPU_CHECK_GE(end, start);
  const SimTime ts = Stamp(start);
  Stamp(end);
  events_.push_back(Event{'X', track, 0, ts, end - start, std::move(name)});
}

void TraceRecorder::Instant(TrackId track, std::string name, SimTime ts) {
  events_.push_back(Event{'i', track, 0, Stamp(ts), 0, std::move(name)});
}

void TraceRecorder::AsyncBegin(TrackId track, std::string name,
                               std::uint64_t id, SimTime ts) {
  events_.push_back(Event{'b', track, id, Stamp(ts), 0, std::move(name)});
}

void TraceRecorder::AsyncEnd(TrackId track, std::uint64_t id, SimTime ts) {
  events_.push_back(Event{'e', track, id, Stamp(ts), 0, std::string()});
}

void TraceRecorder::FlowStart(TrackId track, std::string name,
                              std::uint64_t id, SimTime ts) {
  events_.push_back(Event{'s', track, id, Stamp(ts), 0, std::move(name)});
}

void TraceRecorder::FlowStep(TrackId track, std::string name, std::uint64_t id,
                             SimTime ts) {
  events_.push_back(Event{'t', track, id, Stamp(ts), 0, std::move(name)});
}

void TraceRecorder::FlowEnd(TrackId track, std::string name, std::uint64_t id,
                            SimTime ts) {
  events_.push_back(Event{'f', track, id, Stamp(ts), 0, std::move(name)});
}

void TraceRecorder::CounterDelta(CounterId counter, SimTime ts, double delta) {
  counter_events_.push_back(CounterEvent{counter, Stamp(ts), delta, false});
}

void TraceRecorder::CounterValue(CounterId counter, SimTime ts, double value) {
  counter_events_.push_back(CounterEvent{counter, Stamp(ts), value, true});
}

int TraceRecorder::open_spans(TrackId track) const {
  TPU_CHECK_GE(track, 0);
  TPU_CHECK_LT(track, static_cast<TrackId>(open_depth_.size()));
  return open_depth_[track];
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  std::string json;
  json.reserve(128 * (events_.size() + counter_events_.size()) + 4096);
  json += "{\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) json += ",\n";
    first = false;
  };

  // Metadata: process and thread names, in pid/tid order.
  std::map<int, std::string> process_names;
  for (const TrackInfo& track : tracks_) {
    process_names.emplace(track.pid, track.process);
  }
  for (const auto& [pid, name] : process_names) {
    comma();
    json += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    json += std::to_string(pid);
    json += ",\"args\":{\"name\":\"";
    AppendEscaped(&json, name);
    json += "\"}}";
  }
  for (const TrackInfo& track : tracks_) {
    comma();
    json += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    json += std::to_string(track.pid);
    json += ",\"tid\":";
    json += std::to_string(track.tid);
    json += ",\"args\":{\"name\":\"";
    AppendEscaped(&json, track.thread);
    json += "\"}}";
  }

  // Span/instant events, stably sorted by timestamp (ties keep record order,
  // which is the deterministic simulation's callback order).
  std::vector<std::size_t> order(events_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].ts < events_[b].ts;
                   });
  for (const std::size_t index : order) {
    const Event& event = events_[index];
    const TrackInfo& track = tracks_[event.track];
    comma();
    json += "{\"ph\":\"";
    json.push_back(event.ph);
    json += "\",\"pid\":";
    json += std::to_string(track.pid);
    json += ",\"tid\":";
    json += std::to_string(track.tid);
    json += ",\"ts\":";
    AppendMicros(&json, event.ts);
    if (event.ph == 'X') {
      json += ",\"dur\":";
      AppendMicros(&json, event.dur);
    }
    if (event.ph == 'b' || event.ph == 'e') {
      json += ",\"cat\":\"ring\",\"id\":";
      json += std::to_string(event.id);
    }
    if (event.ph == 's' || event.ph == 't' || event.ph == 'f') {
      json += ",\"cat\":\"critpath\",\"id\":";
      json += std::to_string(event.id);
      // Bind the terminating arrow to the enclosing slice, not the next one.
      if (event.ph == 'f') json += ",\"bp\":\"e\"";
    }
    if (event.ph == 'i') json += ",\"s\":\"t\"";
    if (!event.name.empty() || event.ph == 'B' || event.ph == 'X' ||
        event.ph == 'i' || event.ph == 'b') {
      json += ",\"name\":\"";
      AppendEscaped(&json, event.name);
      json += "\"";
    }
    json += "}";
  }

  // Counter series: deltas accumulated into absolute values per counter.
  for (CounterId id = 0; id < static_cast<CounterId>(counters_.size()); ++id) {
    std::vector<std::size_t> samples;
    for (std::size_t i = 0; i < counter_events_.size(); ++i) {
      if (counter_events_[i].counter == id) samples.push_back(i);
    }
    std::stable_sort(samples.begin(), samples.end(),
                     [this](std::size_t a, std::size_t b) {
                       return counter_events_[a].ts < counter_events_[b].ts;
                     });
    double value = 0;
    for (const std::size_t index : samples) {
      const CounterEvent& sample = counter_events_[index];
      value = sample.absolute ? sample.delta : value + sample.delta;
      comma();
      json += "{\"ph\":\"C\",\"pid\":";
      json += std::to_string(counters_[id].pid);
      json += ",\"ts\":";
      AppendMicros(&json, sample.ts);
      json += ",\"name\":\"";
      AppendEscaped(&json, counters_[id].name);
      json += "\",\"args\":{\"value\":";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", value);
      json += buf;
      json += "}}";
    }
  }

  json += "\n]}\n";
  out << json;
}

std::string TraceRecorder::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

bool TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJson(out);
  return out.good();
}

}  // namespace tpu::trace
