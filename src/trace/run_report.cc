#include "trace/run_report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tpu::trace {
namespace {

// Seconds with enough digits to round-trip observable differences while
// staying locale-independent and stable across identical runs.
void AppendSeconds(std::string* out, SimTime seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", seconds);
  *out += buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendString(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendEscaped(out, s);
  out->push_back('"');
}

const char* SegmentKindName(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kLocal:
      return "local";
    case PathSegment::Kind::kOverhead:
      return "overhead";
    case PathSegment::Kind::kQueue:
      return "queue";
    case PathSegment::Kind::kSerialize:
      return "serialize";
    case PathSegment::Kind::kLatency:
      return "latency";
  }
  return "segment";
}

void AppendCriticalPath(std::string* json, const CriticalPathReport& cp) {
  *json += "{\"start\":";
  AppendSeconds(json, cp.start);
  *json += ",\"makespan\":";
  AppendSeconds(json, cp.makespan);
  *json += ",\"path_nodes\":" + std::to_string(cp.path_nodes);
  *json += ",\"total_nodes\":" + std::to_string(cp.total_nodes);
  *json += ",\"local_seconds\":";
  AppendSeconds(json, cp.local_seconds);
  *json += ",\"comm_seconds\":";
  AppendSeconds(json, cp.comm_seconds);

  *json += ",\"segments\":[";
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    const PathSegment& s = cp.segments[i];
    if (i > 0) *json += ",";
    *json += "{\"kind\":";
    AppendString(json, SegmentKindName(s.kind));
    *json += ",\"start\":";
    AppendSeconds(json, s.start);
    *json += ",\"end\":";
    AppendSeconds(json, s.end);
    if (s.link >= 0) {
      *json += ",\"link\":" + std::to_string(s.link);
      *json += ",\"pod\":" + std::to_string(s.pod);
      *json += ",\"type\":";
      AppendString(json, s.link_type);
    }
    if (!s.phase.empty()) {
      *json += ",\"phase\":";
      AppendString(json, s.phase);
    }
    *json += "}";
  }
  *json += "]";

  *json += ",\"links\":[";
  for (std::size_t i = 0; i < cp.links.size(); ++i) {
    const LinkContribution& c = cp.links[i];
    if (i > 0) *json += ",";
    *json += "{\"link\":" + std::to_string(c.link);
    *json += ",\"pod\":" + std::to_string(c.pod);
    *json += ",\"type\":";
    AppendString(json, c.link_type);
    *json += ",\"queue\":";
    AppendSeconds(json, c.queue);
    *json += ",\"serialize\":";
    AppendSeconds(json, c.serialize);
    *json += ",\"latency\":";
    AppendSeconds(json, c.latency);
    *json += ",\"total\":";
    AppendSeconds(json, c.total());
    *json += "}";
  }
  *json += "]";

  *json += ",\"phases\":[";
  for (std::size_t i = 0; i < cp.phases.size(); ++i) {
    const PhaseContribution& c = cp.phases[i];
    if (i > 0) *json += ",";
    *json += "{\"phase\":";
    AppendString(json, c.phase);
    *json += ",\"local\":";
    AppendSeconds(json, c.local);
    *json += ",\"comm\":";
    AppendSeconds(json, c.comm);
    *json += "}";
  }
  *json += "]";

  *json += ",\"slack\":[";
  for (std::size_t i = 0; i < cp.slack.size(); ++i) {
    const LinkSlack& s = cp.slack[i];
    if (i > 0) *json += ",";
    *json += "{\"link\":" + std::to_string(s.link);
    *json += ",\"type\":";
    AppendString(json, s.link_type);
    *json += ",\"slack\":";
    AppendSeconds(json, s.slack);
    *json += ",\"on_path_seconds\":";
    AppendSeconds(json, s.on_path_seconds);
    *json += ",\"max_degrade\":";
    AppendSeconds(json, s.max_degrade);
    *json += "}";
  }
  *json += "]";

  *json += ",\"what_if\":[";
  for (std::size_t i = 0; i < cp.what_if.size(); ++i) {
    const WhatIfHeal& w = cp.what_if[i];
    if (i > 0) *json += ",";
    *json += "{\"link\":" + std::to_string(w.link);
    *json += ",\"type\":";
    AppendString(json, w.link_type);
    *json += ",\"degrade\":";
    AppendSeconds(json, w.degrade);
    *json += ",\"on_path_seconds\":";
    AppendSeconds(json, w.on_path_seconds);
    *json += ",\"predicted_savings\":";
    AppendSeconds(json, w.predicted_savings);
    *json += ",\"predicted_makespan\":";
    AppendSeconds(json, w.predicted_makespan);
    *json += "}";
  }
  *json += "]}";
}

}  // namespace

void RunReport::WriteJson(std::ostream& out) const {
  std::string json;
  json.reserve(4096);
  json += "{\"label\":";
  AppendString(&json, label);
  json += ",\"step_seconds\":";
  AppendSeconds(&json, step_seconds);
  json += ",\"compute_seconds\":";
  AppendSeconds(&json, compute_seconds);
  json += ",\"comm_seconds\":";
  AppendSeconds(&json, comm_seconds);
  json += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) json += ",";
    json += "{\"name\":";
    AppendString(&json, phases[i].name);
    json += ",\"seconds\":";
    AppendSeconds(&json, phases[i].seconds);
    json += "}";
  }
  json += "]";
  if (planned) {
    json += ",\"plan\":{\"name\":";
    AppendString(&json, plan_name);
    json += ",\"predicted_seconds\":";
    AppendSeconds(&json, plan_predicted_seconds);
    json += ",\"estimated_seconds\":";
    AppendSeconds(&json, plan_estimated_seconds);
    json += "}";
  }
  if (has_critical_path) {
    json += ",\"critical_path\":";
    AppendCriticalPath(&json, critical_path);
  }
  if (!recovery_json.empty()) {
    json += ",\"recovery\":";
    json += recovery_json;
  }
  if (!telemetry_json.empty()) {
    json += ",\"telemetry\":";
    json += telemetry_json;
  }
  json += ",\"metrics\":";
  json += metrics_json.empty() ? "{}" : metrics_json;
  json += "}\n";
  out << json;
}

std::string RunReport::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

bool RunReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJson(out);
  return out.good();
}

}  // namespace tpu::trace
