#include "trace/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>
#include <utility>

#include "trace/trace.h"

namespace tpu::trace {
namespace {

constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();

const char* SegmentKindName(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kLocal:
      return "local";
    case PathSegment::Kind::kOverhead:
      return "overhead";
    case PathSegment::Kind::kQueue:
      return "queue";
    case PathSegment::Kind::kSerialize:
      return "serialize";
    case PathSegment::Kind::kLatency:
      return "latency";
  }
  return "segment";
}

}  // namespace

void CriticalPathTracker::OnSchedule(std::uint64_t seq,
                                     std::int64_t parent_seq, SimTime now,
                                     SimTime when) {
  (void)when;
  const std::int64_t s = static_cast<std::int64_t>(seq);
  if (seq_base_ < 0) {
    seq_base_ = s;
  } else if (s != seq_base_ + node_count()) {
    // seq is assigned densely per simulator, so a discontinuity means a new
    // simulator started under this tracker (or observation gapped): restart
    // and follow the new run.
    Reset();
    seq_base_ = s;
  }
  Node node;
  node.parent = parent_seq >= 0 ? NodeOf(parent_seq) : kNone;
  node.created = now;
  node.phase = current_phase_;
  nodes_.push_back(node);
}

void CriticalPathTracker::OnFire(std::uint64_t seq, SimTime when) {
  current_ = NodeOf(static_cast<std::int64_t>(seq));
  if (current_ != kNone) nodes_[current_].fired = when;
  last_fire_time_ = when;
}

void CriticalPathTracker::OnMessage(std::uint64_t seq,
                                    sim::MessageRecord record) {
  const NodeId id = NodeOf(static_cast<std::int64_t>(seq));
  if (id == kNone) return;
  nodes_[id].message = static_cast<std::int32_t>(messages_.size());
  messages_.push_back(std::move(record));
}

int CriticalPathTracker::OnJoinOpen(int expected) {
  Join join;
  join.expected = expected;
  join.inputs.reserve(expected);
  joins_.push_back(std::move(join));
  return static_cast<int>(joins_.size()) - 1;
}

void CriticalPathTracker::OnJoinNotify(int join) {
  if (join < 0 || join >= static_cast<int>(joins_.size())) return;
  Join& j = joins_[join];
  // Notifications arrive from inside the notifying event's callback; the
  // rare out-of-event notification (a degenerate barrier resolved at setup
  // time) falls back to the last observed fire time.
  const SimTime now =
      current_ != kNone ? nodes_[current_].fired : last_fire_time_;
  j.inputs.emplace_back(current_, now);
  if (static_cast<int>(j.inputs.size()) == j.expected) {
    // The last notification releases the join; its continuation runs inside
    // the same callback, so the release node's children are the join's
    // downstream work.
    j.release = current_;
    j.release_time = now;
  }
}

void CriticalPathTracker::OnPhase(const char* name) {
  const std::string label = name != nullptr ? name : "";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i] == label) {
      current_phase_ = static_cast<std::int32_t>(i);
      return;
    }
  }
  current_phase_ = static_cast<std::int32_t>(phases_.size());
  phases_.push_back(label);
}

void CriticalPathTracker::Reset() {
  const std::string phase =
      current_phase_ >= 0 ? phases_[current_phase_] : std::string();
  nodes_.clear();
  messages_.clear();
  joins_.clear();
  phases_.clear();
  seq_base_ = -1;
  current_ = kNone;
  last_fire_time_ = 0;
  current_phase_ = -1;
  if (!phase.empty()) {
    phases_.push_back(phase);
    current_phase_ = 0;
  }
}

CriticalPathReport CriticalPathTracker::Analyze() const {
  CriticalPathReport report;
  report.total_nodes = node_count();

  // Terminal: the last-processed event — lexicographic max of (fire time,
  // node id), matching the simulator's (when, seq) execution order.
  NodeId terminal = kNone;
  for (NodeId i = 0; i < node_count(); ++i) {
    if (nodes_[i].fired < 0) continue;
    if (terminal == kNone || nodes_[i].fired > nodes_[terminal].fired ||
        (nodes_[i].fired == nodes_[terminal].fired && i > terminal)) {
      terminal = i;
    }
  }
  if (terminal == kNone) return report;
  report.makespan = nodes_[terminal].fired;

  // The path: parents from the terminal back to a root. Children are
  // scheduled during their parent's callback (created == parent's fired), so
  // the chain tiles [root.created, makespan] without gaps.
  std::vector<NodeId> path;
  for (NodeId n = terminal; n != kNone; n = nodes_[n].parent) path.push_back(n);
  std::reverse(path.begin(), path.end());
  report.start = nodes_[path.front()].created;
  report.path_nodes = static_cast<int>(path.size());

  for (const NodeId n : path) {
    const Node& node = nodes_[n];
    const std::string phase =
        node.phase >= 0 ? phases_[node.phase] : std::string();
    auto add = [&](PathSegment::Kind kind, SimTime begin, SimTime end,
                   const sim::MessageHopRecord* hop) {
      if (end <= begin) return;
      PathSegment segment;
      segment.kind = kind;
      segment.start = begin;
      segment.end = end;
      segment.phase = phase;
      if (hop != nullptr) {
        segment.link = hop->link;
        segment.pod = hop->pod;
        segment.link_type = hop->type_name;
      }
      report.segments.push_back(std::move(segment));
    };
    if (node.message >= 0) {
      const sim::MessageRecord& message = messages_[node.message];
      SimTime t = node.created;
      add(PathSegment::Kind::kOverhead, t, t + message.overhead, nullptr);
      t += message.overhead;
      for (const sim::MessageHopRecord& hop : message.hops) {
        add(PathSegment::Kind::kQueue, t, hop.start, &hop);
        add(PathSegment::Kind::kSerialize, hop.start,
            hop.start + hop.serialize, &hop);
        add(PathSegment::Kind::kLatency, hop.start + hop.serialize,
            hop.start + hop.serialize + hop.latency, &hop);
        t = hop.start + hop.serialize + hop.latency;
      }
      // The hop schedule ends exactly at the completion event; any residual
      // (none today) would be local time.
      add(PathSegment::Kind::kLocal, t, node.fired, nullptr);
    } else {
      add(PathSegment::Kind::kLocal, node.created, node.fired, nullptr);
    }
  }

  // Contributor tables from the on-path segments.
  for (const PathSegment& segment : report.segments) {
    if (segment.is_comm()) {
      report.comm_seconds += segment.seconds();
    } else {
      report.local_seconds += segment.seconds();
    }
    if (segment.link >= 0) {
      LinkContribution* entry = nullptr;
      for (LinkContribution& c : report.links) {
        if (c.link == segment.link) entry = &c;
      }
      if (entry == nullptr) {
        LinkContribution c;
        c.link = segment.link;
        c.pod = segment.pod;
        c.link_type = segment.link_type;
        report.links.push_back(c);
        entry = &report.links.back();
      }
      switch (segment.kind) {
        case PathSegment::Kind::kQueue:
          entry->queue += segment.seconds();
          break;
        case PathSegment::Kind::kSerialize:
          entry->serialize += segment.seconds();
          break;
        default:
          entry->latency += segment.seconds();
          break;
      }
    }
    PhaseContribution* entry = nullptr;
    for (PhaseContribution& c : report.phases) {
      if (c.phase == segment.phase) entry = &c;
    }
    if (entry == nullptr) {
      PhaseContribution c;
      c.phase = segment.phase;
      report.phases.push_back(std::move(c));
      entry = &report.phases.back();
    }
    (segment.is_comm() ? entry->comm : entry->local) += segment.seconds();
  }
  std::sort(report.links.begin(), report.links.end(),
            [](const LinkContribution& a, const LinkContribution& b) {
              return a.total() != b.total() ? a.total() > b.total()
                                            : a.link < b.link;
            });
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseContribution& a, const PhaseContribution& b) {
              return a.total() != b.total() ? a.total() > b.total()
                                            : a.phase < b.phase;
            });

  // Slack backward pass. slack(n) = how much later n could fire without
  // moving the makespan: min over children of their slack (a child starts
  // exactly when its parent fires), and over join edges of the gap to the
  // join's release plus the release node's slack. Nodes are relaxed in
  // (fired, id)-descending order — consumers fire no earlier than producers
  // — and re-swept a few times so equal-timestamp join ties (where a release
  // can carry a smaller id than an input) settle.
  std::vector<SimTime> slack(nodes_.size(), -1.0);
  std::vector<std::vector<NodeId>> children(nodes_.size());
  std::vector<std::vector<std::pair<NodeId, SimTime>>> join_edges(
      nodes_.size());
  for (NodeId i = 0; i < node_count(); ++i) {
    if (nodes_[i].parent != kNone) children[nodes_[i].parent].push_back(i);
  }
  for (const Join& join : joins_) {
    if (join.release == kNone) continue;  // incomplete join: no constraint
    for (const auto& [input, t] : join.inputs) {
      (void)t;
      if (input == kNone || input == join.release) continue;
      join_edges[input].emplace_back(join.release, join.release_time);
    }
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  for (NodeId i = 0; i < node_count(); ++i) {
    if (nodes_[i].fired >= 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return nodes_[a].fired != nodes_[b].fired
               ? nodes_[a].fired > nodes_[b].fired
               : a > b;
  });
  for (int sweep = 0; sweep < 4; ++sweep) {
    bool changed = false;
    for (const NodeId n : order) {
      SimTime s = kInfinity;
      for (const NodeId c : children[n]) {
        if (nodes_[c].fired < 0 || slack[c] < 0) continue;
        s = std::min(s, slack[c] + (nodes_[c].created - nodes_[n].fired));
      }
      for (const auto& [release, release_time] : join_edges[n]) {
        if (slack[release] < 0) continue;
        s = std::min(s, (release_time - nodes_[n].fired) + slack[release]);
      }
      if (n == terminal) s = 0;
      // Leaves (no surviving consumers) could slip to the end of the run.
      if (s == kInfinity) s = report.makespan - nodes_[n].fired;
      if (s != slack[n]) {
        slack[n] = s;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Per-link slack and what-if healing, from every observed message (not
  // just on-path ones). Savings price the link returning to its healthy
  // serialization: serialize shrinks to the recorded healthy time, queueing
  // shrinks proportionally (the queued-behind traffic heals too).
  struct LinkAccumulator {
    LinkSlack slack_entry;
    SimTime on_path_actual = 0;
    SimTime on_path_healthy = 0;
    SimTime on_path_queue = 0;
  };
  std::vector<LinkAccumulator> accum;
  auto link_accum = [&](int link, const char* type) -> LinkAccumulator& {
    for (LinkAccumulator& a : accum) {
      if (a.slack_entry.link == link) return a;
    }
    LinkAccumulator a;
    a.slack_entry.link = link;
    a.slack_entry.link_type = type;
    a.slack_entry.slack = kInfinity;
    accum.push_back(a);
    return accum.back();
  };
  for (NodeId i = 0; i < node_count(); ++i) {
    const Node& node = nodes_[i];
    if (node.message < 0 || node.fired < 0 || slack[i] < 0) continue;
    for (const sim::MessageHopRecord& hop : messages_[node.message].hops) {
      LinkAccumulator& a = link_accum(hop.link, hop.type_name);
      a.slack_entry.slack = std::min(a.slack_entry.slack, slack[i]);
      if (hop.healthy_serialize > 0) {
        a.slack_entry.max_degrade = std::max(
            a.slack_entry.max_degrade, hop.serialize / hop.healthy_serialize);
      }
    }
  }
  std::vector<bool> on_path(nodes_.size(), false);
  for (const NodeId n : path) on_path[n] = true;
  for (NodeId i = 0; i < node_count(); ++i) {
    const Node& node = nodes_[i];
    if (node.message < 0 || !on_path[i]) continue;
    SimTime t = node.created + messages_[node.message].overhead;
    for (const sim::MessageHopRecord& hop : messages_[node.message].hops) {
      LinkAccumulator& a = link_accum(hop.link, hop.type_name);
      a.on_path_actual += hop.serialize;
      a.on_path_healthy += hop.healthy_serialize;
      a.on_path_queue += std::max(0.0, hop.start - t);
      t = hop.start + hop.serialize + hop.latency;
    }
  }
  for (const LinkAccumulator& a : accum) {
    LinkSlack entry = a.slack_entry;
    for (const LinkContribution& c : report.links) {
      if (c.link == entry.link) entry.on_path_seconds = c.total();
    }
    if (entry.slack == kInfinity) entry.slack = 0;
    report.slack.push_back(entry);
    if (a.on_path_actual > a.on_path_healthy && a.on_path_actual > 0) {
      WhatIfHeal heal;
      heal.link = entry.link;
      heal.link_type = entry.link_type;
      heal.degrade = entry.max_degrade;
      heal.on_path_seconds = entry.on_path_seconds;
      const double healed_fraction = a.on_path_healthy / a.on_path_actual;
      heal.predicted_savings = (a.on_path_actual - a.on_path_healthy) +
                               a.on_path_queue * (1.0 - healed_fraction);
      heal.predicted_makespan = report.makespan - heal.predicted_savings;
      report.what_if.push_back(heal);
    }
  }
  std::sort(report.slack.begin(), report.slack.end(),
            [](const LinkSlack& a, const LinkSlack& b) {
              return a.slack != b.slack ? a.slack < b.slack : a.link < b.link;
            });
  std::sort(report.what_if.begin(), report.what_if.end(),
            [](const WhatIfHeal& a, const WhatIfHeal& b) {
              return a.predicted_savings != b.predicted_savings
                         ? a.predicted_savings > b.predicted_savings
                         : a.link < b.link;
            });
  return report;
}

void CriticalPathReport::WriteText(std::ostream& out) const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "critical path: %.1f us over %d events (comm %.1f us, local "
                "%.1f us)\n",
                ToMicros(makespan - start), path_nodes,
                ToMicros(comm_seconds), ToMicros(local_seconds));
  out << line;
  if (!links.empty()) {
    out << "top link contributors:\n";
    for (const LinkContribution& c : links) {
      std::snprintf(line, sizeof(line),
                    "  link %-4d %-6s pod%-2d %8.1f us (queue %.1f, "
                    "serialize %.1f, latency %.1f)\n",
                    c.link, c.link_type, c.pod, ToMicros(c.total()),
                    ToMicros(c.queue), ToMicros(c.serialize),
                    ToMicros(c.latency));
      out << line;
    }
  }
  if (!phases.empty()) {
    out << "per-phase:\n";
    for (const PhaseContribution& c : phases) {
      std::snprintf(line, sizeof(line),
                    "  %-20s %8.1f us (comm %.1f, local %.1f)\n",
                    c.phase.empty() ? "(unlabeled)" : c.phase.c_str(),
                    ToMicros(c.total()), ToMicros(c.comm),
                    ToMicros(c.local));
      out << line;
    }
  }
  if (!slack.empty()) {
    out << "link slack (ascending; tightest links first):\n";
    const std::size_t limit = std::min<std::size_t>(slack.size(), 10);
    for (std::size_t i = 0; i < limit; ++i) {
      const LinkSlack& s = slack[i];
      std::snprintf(line, sizeof(line),
                    "  link %-4d %-6s slack %8.1f us, on-path %8.1f us, "
                    "degrade x%.2f\n",
                    s.link, s.link_type, ToMicros(s.slack),
                    ToMicros(s.on_path_seconds), s.max_degrade);
      out << line;
    }
  }
  for (const WhatIfHeal& heal : what_if) {
    std::snprintf(line, sizeof(line),
                  "what-if heal link %d (x%.2f): save %.1f us -> makespan "
                  "%.1f us\n",
                  heal.link, heal.degrade, ToMicros(heal.predicted_savings),
                  ToMicros(heal.predicted_makespan));
    out << line;
  }
}

void EmitCriticalPathToTrace(const CriticalPathReport& report,
                             TraceRecorder& recorder) {
  if (report.segments.empty()) return;
  const TraceRecorder::TrackId track =
      recorder.Track("system", "critical-path");
  const std::uint64_t flow = recorder.NextFlowId();
  for (std::size_t i = 0; i < report.segments.size(); ++i) {
    const PathSegment& segment = report.segments[i];
    char name[96];
    if (segment.link >= 0) {
      std::snprintf(name, sizeof(name), "%s link %d %s",
                    SegmentKindName(segment.kind), segment.link,
                    segment.link_type);
    } else if (!segment.phase.empty()) {
      std::snprintf(name, sizeof(name), "%s %s",
                    SegmentKindName(segment.kind), segment.phase.c_str());
    } else {
      std::snprintf(name, sizeof(name), "%s", SegmentKindName(segment.kind));
    }
    recorder.Complete(track, name, segment.start, segment.end);
    // Flow points sit at each segment's start (inside its slice, so Perfetto
    // binds the arrow); the final segment closes the flow.
    if (i == 0) {
      recorder.FlowStart(track, "critical-path", flow, segment.start);
    } else if (i + 1 < report.segments.size()) {
      recorder.FlowStep(track, "critical-path", flow, segment.start);
    } else {
      recorder.FlowEnd(track, "critical-path", flow, segment.start);
    }
  }
}

}  // namespace tpu::trace
