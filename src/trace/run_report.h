// Machine-readable run report: step breakdown + critical path + slack table
// + metrics snapshot as one JSON document.
//
// This is the "explain the run" artifact: where trace.h produces a timeline
// for a human in Perfetto, RunReport is what dashboards and regression
// tooling consume — which phases the step spent its time in, which link the
// critical path ran through, how much slack every other link has, and what
// healing each degraded link would buy. MultipodSystem::SimulateStep fills
// one per step on request; plan::ProbePlan emits one for a searched plan
// (critical path vs the closed-form estimate — the two-tier evaluator's
// accuracy probe).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"
#include "trace/critical_path.h"

namespace tpu::trace {

struct RunReport {
  std::string label;

  // Step decomposition in schedule order (forward, backward, the summation
  // phases or lowered plan stages, embedding comm, ...).
  struct Phase {
    std::string name;
    SimTime seconds = 0;
  };
  std::vector<Phase> phases;
  SimTime step_seconds = 0;
  SimTime compute_seconds = 0;  // analytic compute (forward + backward)
  SimTime comm_seconds = 0;     // simulated communication

  // Planner provenance, when the run executed a searched plan. Comparing
  // plan_estimated_seconds (closed-form tier) against the critical path's
  // makespan is a direct accuracy probe for the two-tier evaluator.
  bool planned = false;
  std::string plan_name;
  SimTime plan_predicted_seconds = 0;  // DES re-pricing tier
  SimTime plan_estimated_seconds = 0;  // closed-form tier

  bool has_critical_path = false;
  CriticalPathReport critical_path;

  // Raw MetricsRegistry JSON snapshot ("{}" when metrics were disabled).
  std::string metrics_json;

  // Raw RecoveryTimeline JSON (recover::RecoveryTimeline::ToJson()); empty
  // when the run had no recovery orchestration, and then omitted entirely so
  // non-recovery reports stay byte-identical.
  std::string recovery_json;

  // Raw TelemetrySession JSON (telemetry::TelemetrySession::ToJson()); empty
  // when no telemetry session observed the run, and then omitted entirely so
  // untelemetered reports stay byte-identical.
  std::string telemetry_json;

  // {"label":...,"phases":[...],"plan":{...},"critical_path":{...},
  //  "metrics":{...}} — deterministic for identical runs.
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;
  // Returns false only if the path is unwritable.
  bool WriteFile(const std::string& path) const;
};

}  // namespace tpu::trace
