// Critical-path engine: causal event DAG, bottleneck attribution, slack and
// what-if analysis for one simulation.
//
// CriticalPathTracker is the sim::EventObserver implementation: it records
// every event's causal parent (the event whose callback scheduled it), the
// message/route that released each network completion, join-counter arrival
// order, and the active collective phase. Because a child is always
// scheduled during its parent's callback (child.created == parent.fired),
// walking parents from the last-firing event yields a chain of segments that
// tiles simulated time exactly — the critical path. On top of the DAG:
//
//   * Analyze() extracts the path with per-segment attribution (link, pod,
//     link type, phase, overhead/queue/serialize/latency vs local compute)
//     and ranked per-link / per-phase contributor tables;
//   * a backward pass computes per-event slack — how late each event could
//     have fired without moving the makespan, with join edges charging
//     inputs the gap to their join's release — folded into a per-link slack
//     table ("how much slower could this link get before it matters?");
//   * what-if entries price healing each degraded link from recorded
//     healthy-vs-actual serialization, answering "which single link upgrade
//     helps most?" without re-simulation.
//
// Tracking is an observer: it never schedules events and never perturbs
// simulated time (determinism_test proves bit-identity on/off). One tracker
// follows one simulator; if a fresh simulator starts while the tracker is
// installed (seq restarts at 0) the tracker resets and follows the new run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/event_observer.h"

namespace tpu::trace {

class TraceRecorder;

// One span of the critical path. Message events decompose into overhead +
// per-hop queue/serialize/latency segments; everything else (compute delays,
// barrier hops) is a local segment.
struct PathSegment {
  enum class Kind { kLocal, kOverhead, kQueue, kSerialize, kLatency };
  Kind kind = Kind::kLocal;
  SimTime start = 0;
  SimTime end = 0;
  int link = -1;               // >= 0 for queue/serialize/latency
  int pod = -1;
  const char* link_type = "";  // static string from the network
  std::string phase;           // collective phase active when scheduled
  SimTime seconds() const { return end - start; }
  bool is_comm() const { return kind != Kind::kLocal; }
};

// On-path time through one link, ranked descending in the report.
struct LinkContribution {
  int link = -1;
  int pod = -1;
  const char* link_type = "";
  SimTime queue = 0;
  SimTime serialize = 0;
  SimTime latency = 0;
  SimTime total() const { return queue + serialize + latency; }
};

// On-path time per collective phase.
struct PhaseContribution {
  std::string phase;
  SimTime local = 0;
  SimTime comm = 0;
  SimTime total() const { return local + comm; }
};

// Minimum slack over all messages that traversed the link: how much later
// the link's traffic could have completed without moving the makespan.
// On-path links have (near-)zero slack.
struct LinkSlack {
  int link = -1;
  const char* link_type = "";
  SimTime slack = 0;
  SimTime on_path_seconds = 0;  // critical-path time through this link
  double max_degrade = 1.0;     // worst degradation observed on the link
};

// Predicted effect of healing one degraded/failed link, priced from the
// recorded healthy-vs-actual serialization of its on-path traffic.
struct WhatIfHeal {
  int link = -1;
  const char* link_type = "";
  double degrade = 1.0;         // worst factor observed (1.0 = stall only)
  SimTime on_path_seconds = 0;
  SimTime predicted_savings = 0;
  SimTime predicted_makespan = 0;
};

struct CriticalPathReport {
  SimTime start = 0;     // creation time of the path's root event
  SimTime makespan = 0;  // fire time of the terminal event
  int path_nodes = 0;    // events on the path
  int total_nodes = 0;   // events observed in the run
  SimTime local_seconds = 0;  // on-path non-message time
  SimTime comm_seconds = 0;   // on-path overhead+queue+serialize+latency
  std::vector<PathSegment> segments;        // root -> terminal, gap-free
  std::vector<LinkContribution> links;      // ranked by total() descending
  std::vector<PhaseContribution> phases;    // ranked by total() descending
  std::vector<LinkSlack> slack;             // ranked by slack ascending
  std::vector<WhatIfHeal> what_if;          // ranked by savings descending

  // Top contributor convenience: the link carrying the most on-path time
  // (-1 when the path never crossed the network).
  int top_link() const { return links.empty() ? -1 : links.front().link; }

  // Human-readable summary: path decomposition plus the ranked contributor,
  // slack and what-if tables.
  void WriteText(std::ostream& out) const;
};

class CriticalPathTracker : public sim::EventObserver {
 public:
  using NodeId = std::int64_t;
  static constexpr NodeId kNone = -1;

  // sim::EventObserver:
  void OnSchedule(std::uint64_t seq, std::int64_t parent_seq, SimTime now,
                  SimTime when) override;
  void OnFire(std::uint64_t seq, SimTime when) override;
  void OnMessage(std::uint64_t seq, sim::MessageRecord record) override;
  int OnJoinOpen(int expected) override;
  void OnJoinNotify(int join) override;
  void OnPhase(const char* name) override;

  // Forgets everything observed so far (also triggered automatically when a
  // new simulator starts under the tracker).
  void Reset();

  std::int64_t node_count() const {
    return static_cast<std::int64_t>(nodes_.size());
  }
  std::int64_t message_count() const {
    return static_cast<std::int64_t>(messages_.size());
  }
  std::int64_t join_count() const {
    return static_cast<std::int64_t>(joins_.size());
  }

  // Extracts the critical path, contributor tables, slack table and what-if
  // entries from the DAG observed so far. Pure analysis; the tracker can
  // keep observing afterwards.
  CriticalPathReport Analyze() const;

 private:
  struct Node {
    NodeId parent = kNone;
    SimTime created = 0;
    SimTime fired = -1;       // -1: scheduled but never fired
    std::int32_t phase = -1;  // index into phases_
    std::int32_t message = -1;  // index into messages_
  };
  struct Join {
    int expected = 0;
    NodeId release = kNone;   // node whose notification completed the join
    SimTime release_time = 0;
    // (node, fire time) per notification, release included.
    std::vector<std::pair<NodeId, SimTime>> inputs;
  };

  NodeId NodeOf(std::int64_t seq) const {
    const std::int64_t id = seq - seq_base_;
    return id >= 0 && id < node_count() ? id : kNone;
  }

  std::vector<Node> nodes_;   // NodeId == seq - seq_base_
  std::vector<sim::MessageRecord> messages_;
  std::vector<Join> joins_;
  std::vector<std::string> phases_;  // interned phase labels
  std::int64_t seq_base_ = -1;       // first observed seq (-1: none yet)
  NodeId current_ = kNone;           // node firing right now
  SimTime last_fire_time_ = 0;
  std::int32_t current_phase_ = -1;
};

// Draws `report` onto the trace timeline: one complete span per path segment
// on the "system"/"critical-path" track, stitched together by Chrome flow
// events (ph "s"/"t"/"f") so Perfetto renders the causal chain as arrows.
void EmitCriticalPathToTrace(const CriticalPathReport& report,
                             TraceRecorder& recorder);

}  // namespace tpu::trace
