#include "trace/step_profiler.h"

#include <cstdio>

#include "common/check.h"

namespace tpu::trace {

const char* StepPhaseName(StepPhase phase) {
  switch (phase) {
    case StepPhase::kForward:
      return "forward";
    case StepPhase::kBackward:
      return "backward";
    case StepPhase::kReduceScatterY:
      return "reduce-scatter-Y";
    case StepPhase::kReduceScatterX:
      return "reduce-scatter-X";
    case StepPhase::kShardedUpdate:
      return "sharded-update";
    case StepPhase::kAllGatherX:
      return "all-gather-X";
    case StepPhase::kAllGatherY:
      return "all-gather-Y";
    case StepPhase::kEmbeddingComm:
      return "embedding-comm";
    case StepPhase::kCheckpoint:
      return "checkpoint";
    case StepPhase::kInputWait:
      return "input-wait";
  }
  return "unknown";
}

void StepProfiler::BeginStep(std::string label) {
  TPU_CHECK(!open_) << "BeginStep while a step is already open";
  Step step;
  step.label = std::move(label);
  steps_.push_back(std::move(step));
  open_ = true;
}

void StepProfiler::Record(StepPhase phase, SimTime seconds) {
  TPU_CHECK_GE(seconds, 0.0);
  if (!open_) BeginStep();
  steps_.back().seconds[static_cast<int>(phase)] += seconds;
}

void StepProfiler::EndStep() {
  TPU_CHECK(open_) << "EndStep without BeginStep";
  open_ = false;
}

SimTime StepProfiler::Total(StepPhase phase) const {
  SimTime total = 0;
  for (const Step& step : steps_) total += step.seconds[static_cast<int>(phase)];
  return total;
}

SimTime StepProfiler::TotalStep() const {
  SimTime total = 0;
  for (int p = 0; p < kNumStepPhases; ++p) {
    total += Total(static_cast<StepPhase>(p));
  }
  return total;
}

SimTime StepProfiler::StepSeconds(int step, StepPhase phase) const {
  TPU_CHECK_GE(step, 0);
  TPU_CHECK_LT(step, steps());
  return steps_[step].seconds[static_cast<int>(phase)];
}

void StepProfiler::WriteTable(std::ostream& out) const {
  const SimTime total = TotalStep();
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %12s %12s %7s\n", "phase",
                "total(ms)", "mean(ms)", "%step");
  out << line;
  for (int p = 0; p < kNumStepPhases; ++p) {
    const StepPhase phase = static_cast<StepPhase>(p);
    const SimTime phase_total = Total(phase);
    if (phase_total <= 0) continue;  // phases that never ran stay silent
    std::snprintf(line, sizeof(line), "%-18s %12.4f %12.4f %6.1f%%\n",
                  StepPhaseName(phase), ToMillis(phase_total),
                  steps() > 0 ? ToMillis(phase_total) / steps() : 0.0,
                  total > 0 ? 100.0 * phase_total / total : 0.0);
    out << line;
  }
  std::snprintf(line, sizeof(line), "%-18s %12.4f %12.4f %6.1f%%\n", "step",
                ToMillis(total), steps() > 0 ? ToMillis(total) / steps() : 0.0,
                100.0);
  out << line;
}

}  // namespace tpu::trace
