// Simulation metrics: counters, gauges and log-scale histograms with a
// deterministic text/JSON dump.
//
// Complements the trace timeline (trace.h): the trace answers "when and
// where", the registry answers "how much and how distributed" — total bytes
// per link class, queueing-delay percentiles, simulator queue depths. Like
// tracing, metrics are off by default (CurrentMetrics() is null) and
// instrumentation sites guard on that, so benches pay one branch when
// metrics are disabled.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/units.h"

namespace tpu::sim {
class PartitionedSimulator;
class Simulator;
}  // namespace tpu::sim

namespace tpu::trace {

// Monotonic event count (messages sent, faults injected, ...).
struct MetricCounter {
  std::int64_t value = 0;
  void Add(std::int64_t delta) { value += delta; }
  void Reset() { value = 0; }
};

// Last-written instantaneous value (utilization, queue depth, ...).
struct MetricGauge {
  double value = 0;
  void Set(double v) { value = v; }
  // Keeps the larger of the current and new value (peak tracking).
  void Max(double v) { value = value > v ? value : v; }
  void Reset() { value = 0; }
};

// Log-scale histogram: geometric buckets (ratio 2^(1/8), ~9% wide) over the
// positive reals, with exact min/max/sum/count. Percentiles interpolate
// linearly inside the containing bucket and clamp to [min, max], so an
// empty histogram reports 0 and a single-sample histogram reports exactly
// that sample at every percentile.
class MetricHistogram {
 public:
  void Record(double value);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0; }
  // p in [0, 1]; Percentile(0.5) is the median.
  double Percentile(double p) const;
  // Forgets every recorded sample (back to the empty-histogram state).
  void Reset();

 private:
  static int BucketOf(double value);
  static double BucketLow(int bucket);
  static double BucketHigh(int bucket);

  std::map<int, std::int64_t> buckets_;  // ordered: percentile scans
  std::int64_t zero_or_less_ = 0;        // values <= 0 land below all buckets
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Named metrics, created on first use. Names are dotted paths
// ("net.bytes.mesh_x", "sim.peak_queue_depth"); the dump is sorted by name,
// so output is deterministic.
class MetricsRegistry {
 public:
  MetricCounter& Counter(const std::string& name);
  MetricGauge& Gauge(const std::string& name);
  MetricHistogram& Histogram(const std::string& name);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Drops every metric. Call between sweep repetitions when one registry is
  // reused (e.g. a thread_local registry surviving across sweep points) so
  // samples from one repetition cannot leak into the next one's dump.
  void Reset() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  // Human-readable table: one metric per line, histograms with
  // count/mean/p50/p95/p99/max.
  void WriteText(std::ostream& out) const;
  // {"counters":{...},"gauges":{...},"histograms":{...}}
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;

 private:
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, MetricGauge> gauges_;
  std::map<std::string, MetricHistogram> histograms_;
};

// Process-global registry; null (default) disables metric collection.
MetricsRegistry* CurrentMetrics();
void SetCurrentMetrics(MetricsRegistry* metrics);

class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* metrics)
      : previous_(CurrentMetrics()) {
    SetCurrentMetrics(metrics);
  }
  ~ScopedMetrics() { SetCurrentMetrics(previous_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

// Accumulates one simulator's lifetime statistics into the registry under
// `prefix`: events processed/scheduled, peak queue depth, callback storage
// split (inline vs pooled), callback-pool allocator health (hits vs fresh vs
// oversize allocations), and calendar-queue window refills.
void ExportSimulatorMetrics(const sim::Simulator& simulator,
                            const std::string& prefix,
                            MetricsRegistry& metrics);

// PDES overload: exports the merged work-event statistics of every lane
// (global + partitions) under `prefix` — bit-identical totals to the serial
// run's export — plus the engine's protocol accounting under `prefix`.pdes.*:
// windows, sub-round barrier waits, cross-partition messages, join
// notifications, engine-class event count, lookahead/window widths, and
// per-partition processed-event gauges (the load-imbalance signal the
// telemetry probe pack samples live).
void ExportSimulatorMetrics(const sim::PartitionedSimulator& engine,
                            const std::string& prefix,
                            MetricsRegistry& metrics);

}  // namespace tpu::trace
