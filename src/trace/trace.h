// Simulation tracing: Chrome/Perfetto trace_event timelines on the
// simulated clock.
//
// The paper's optimizations (2-D hierarchical summation, weight-update
// sharding, input-pipeline scaling) were found with profiler timelines showing
// where step time goes. This recorder gives the simulator the same
// observability: begin/end spans, instant events and counter tracks, all
// timestamped on the *simulated* clock and exported as Chrome trace_event JSON
// that loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Track model (documented in DESIGN.md §"Trace & metrics schema"):
//   * one trace "process" per pod (plus a "system" process for machine-wide
//     tracks: collective phases, faults, the step profiler, host input),
//   * one "thread" per chip or per directed link,
//   * counter tracks for link occupancy and bytes in flight.
//
// Tracing is off by default: instrumentation sites guard on
// `trace::CurrentTrace()` being null, so the cost when disabled is one load
// and branch — simulation results are bit-identical with tracing on or off
// because the recorder only observes, it never schedules events.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace tpu::trace {

class TraceRecorder {
 public:
  using TrackId = int;
  using CounterId = int;

  // Registers (or returns the existing) track named `thread` under the trace
  // process named `process`. Pids/tids are assigned in registration order,
  // which together with the deterministic simulation makes the exported JSON
  // byte-identical across identical runs.
  TrackId Track(const std::string& process, const std::string& thread);

  // Registers a counter series under the track's process. Counter values are
  // built from deltas at export time, so instrumentation can record "+bytes
  // at send, -bytes at arrival" without scheduling simulator events.
  CounterId Counter(TrackId track, const std::string& name);

  // Synchronous span stack per track ("B"/"E" events; must nest).
  void Begin(TrackId track, std::string name, SimTime ts);
  void End(TrackId track, SimTime ts);
  // One-shot complete span ("X" event with a duration).
  void Complete(TrackId track, std::string name, SimTime start, SimTime end);
  // Instant event ("i", thread scope) — fault injections, detections.
  void Instant(TrackId track, std::string name, SimTime ts);

  // Async spans ("b"/"e" with an id): overlap freely on one track, which is
  // how concurrent rings of one collective phase share the "rings" track.
  std::uint64_t NextAsyncId() { return next_async_id_++; }
  void AsyncBegin(TrackId track, std::string name, std::uint64_t id,
                  SimTime ts);
  void AsyncEnd(TrackId track, std::uint64_t id, SimTime ts);

  // Flow events ("s"/"t"/"f" with an id): Perfetto draws arrows from each
  // flow point to the next, which is how the critical path is stitched
  // through the timeline. Each point must fall inside a slice on its track
  // (the arrow binds to the enclosing slice); name and id must match across
  // one flow's points.
  std::uint64_t NextFlowId() { return next_flow_id_++; }
  void FlowStart(TrackId track, std::string name, std::uint64_t id,
                 SimTime ts);
  void FlowStep(TrackId track, std::string name, std::uint64_t id, SimTime ts);
  void FlowEnd(TrackId track, std::string name, std::uint64_t id, SimTime ts);

  void CounterDelta(CounterId counter, SimTime ts, double delta);
  void CounterValue(CounterId counter, SimTime ts, double value);

  // Offset added to every recorded timestamp. Subsystems that run each step
  // on a fresh simulator (MultipodSystem::SimulateStep starts its collective
  // simulation at t=0) shift successive steps past each other with this.
  void set_time_offset(SimTime offset) { time_offset_ = offset; }
  SimTime time_offset() const { return time_offset_; }
  // Largest timestamp recorded so far (after offsetting); the natural base
  // for the next time_offset.
  SimTime last_timestamp() const { return last_timestamp_; }

  std::size_t event_count() const {
    return events_.size() + counter_events_.size();
  }
  // Spans begun but not yet ended on `track` — 0 for a well-nested trace.
  int open_spans(TrackId track) const;

  // Chrome trace_event JSON ({"traceEvents":[...]}): metadata first, then
  // all events stably sorted by timestamp. Deterministic: two identical
  // seeded simulations produce byte-identical output.
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;
  // Returns false (and leaves a partial file) only if the path is unwritable.
  bool WriteFile(const std::string& path) const;

 private:
  struct TrackInfo {
    int pid = 0;
    int tid = 0;
    std::string process;
    std::string thread;
  };
  struct CounterInfo {
    int pid = 0;
    std::string name;
  };
  struct Event {
    char ph = 'X';       // B / E / X / i / b / e / s / t / f
    TrackId track = 0;
    std::uint64_t id = 0;  // async span id
    SimTime ts = 0;
    SimTime dur = 0;  // X only
    std::string name;
  };
  struct CounterEvent {
    CounterId counter = 0;
    SimTime ts = 0;
    double delta = 0;
    bool absolute = false;  // value, not delta
  };

  SimTime Stamp(SimTime ts);

  std::vector<TrackInfo> tracks_;
  std::unordered_map<std::string, TrackId> track_index_;  // "process\0thread"
  std::vector<CounterInfo> counters_;
  std::unordered_map<std::string, CounterId> counter_index_;
  std::vector<Event> events_;
  std::vector<CounterEvent> counter_events_;
  std::vector<int> open_depth_;  // per track, B minus E
  std::uint64_t next_async_id_ = 1;
  std::uint64_t next_flow_id_ = 1;
  SimTime time_offset_ = 0;
  SimTime last_timestamp_ = 0;
};

// Process-global recorder. Null (the default) disables all instrumentation;
// sites must check before recording. Instrumented code caches TrackIds keyed
// on the recorder pointer, so swap recorders rather than mutating one.
TraceRecorder* CurrentTrace();
void SetCurrentTrace(TraceRecorder* recorder);

// RAII install/uninstall (restores the previous recorder).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceRecorder* recorder)
      : previous_(CurrentTrace()) {
    SetCurrentTrace(recorder);
  }
  ~ScopedTrace() { SetCurrentTrace(previous_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder* previous_;
};

// RAII time-offset change on a recorder (no-op when recorder is null).
class ScopedTimeOffset {
 public:
  ScopedTimeOffset(TraceRecorder* recorder, SimTime offset)
      : recorder_(recorder), previous_(recorder ? recorder->time_offset() : 0) {
    if (recorder_ != nullptr) recorder_->set_time_offset(offset);
  }
  ~ScopedTimeOffset() {
    if (recorder_ != nullptr) recorder_->set_time_offset(previous_);
  }
  ScopedTimeOffset(const ScopedTimeOffset&) = delete;
  ScopedTimeOffset& operator=(const ScopedTimeOffset&) = delete;

 private:
  TraceRecorder* recorder_;
  SimTime previous_;
};

}  // namespace tpu::trace
