// Per-step phase profiling: decomposes each training step into the named
// phases of the paper's step anatomy and prints a breakdown table.
//
// This is the table the paper's engineers read off the TPU profiler when
// deciding what to optimize next: which phase dominates step time, and how
// that changes with scale. MultipodSystem::SimulateStep fills one profiler
// step per simulated step; callers print the accumulated table (or feed
// several scales into one profiler and compare).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace tpu::trace {

// The phase taxonomy (documented in DESIGN.md). Order is schedule order
// within one step; the breakdown table prints in this order.
enum class StepPhase {
  kForward,
  kBackward,
  kReduceScatterY,
  kReduceScatterX,
  kShardedUpdate,
  kAllGatherX,
  kAllGatherY,
  kEmbeddingComm,
  kCheckpoint,
  kInputWait,
};
inline constexpr int kNumStepPhases = 10;

const char* StepPhaseName(StepPhase phase);

class StepProfiler {
 public:
  // Starts a new step; phases recorded until EndStep belong to it.
  void BeginStep(std::string label = "");
  // Adds `seconds` to `phase` of the current step (implicit BeginStep if
  // none is open). Phases may be recorded in any order and repeatedly.
  void Record(StepPhase phase, SimTime seconds);
  void EndStep();

  int steps() const { return static_cast<int>(steps_.size()); }
  // Total over all finished steps.
  SimTime Total(StepPhase phase) const;
  SimTime TotalStep() const;
  // Phase seconds of one finished step.
  SimTime StepSeconds(int step, StepPhase phase) const;

  // Breakdown table: per phase, total ms, mean ms/step and % of step time.
  void WriteTable(std::ostream& out) const;

 private:
  struct Step {
    std::string label;
    std::array<SimTime, kNumStepPhases> seconds{};
  };

  std::vector<Step> steps_;
  bool open_ = false;
};

}  // namespace tpu::trace
