// ROC-AUC over pCTR predictions (Section 4.6).
//
// The paper's DLRM evaluation computes AUC over 90M samples; popular Python
// libraries took ~60 s per call, so they wrote a custom C++ implementation
// using multithreaded sorting and loop fusion that runs in ~2 s. Both
// implementations live here:
//  * AucNaive: single-threaded, sklearn-shaped — full sort, then separate
//    passes materializing cumulative TP/FP curves before integrating;
//  * AucFast: parallel merge sort on a thread pool plus one fused pass that
//    computes the tie-corrected Mann-Whitney statistic in place.
// Both handle tied scores exactly (average ranks), so they agree to double
// precision.
#pragma once

#include <cstdint>
#include <span>

#include "common/thread_pool.h"

namespace tpu::metrics {

// labels are 0/1. Returns AUC in [0, 1]; 0.5 for degenerate inputs (all one
// class).
double AucNaive(std::span<const float> scores,
                std::span<const std::uint8_t> labels);

double AucFast(std::span<const float> scores,
               std::span<const std::uint8_t> labels, ThreadPool& pool);

}  // namespace tpu::metrics
