// Distributed computation of evaluation metrics (Sections 3.4, 4.4).
//
// MLPerf evaluation datasets are padded with dummy examples when the eval
// batch exceeds the dataset; per-worker partial metrics must exclude the
// padding and then be combined — on-device via all-reduce (JAX) or on the
// coordinator after an RPC gather (TF). Both composition orders must give
// the same metric; the helpers here compute the partials and the schedule
// costs, including the round-robin COCO-eval placement JAX uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"

namespace tpu::metrics {

struct EvalShard {
  std::vector<std::uint8_t> correct;  // per example: prediction correct?
  std::vector<std::uint8_t> is_real;  // 0 for padding examples
};

struct AccuracyParts {
  std::int64_t correct = 0;
  std::int64_t total = 0;
  double accuracy() const {
    return total > 0 ? static_cast<double>(correct) / total : 0.0;
  }
};

// Per-worker partial counts; padding examples are excluded entirely.
AccuracyParts LocalAccuracy(const EvalShard& shard);

// Cross-worker combination (what the all-reduce or the coordinator gather
// computes).
AccuracyParts CombineAccuracy(std::span<const AccuracyParts> parts);

// Pads a shard to `target_size` with dummy examples (marked not-real, so
// they cannot change the metric).
EvalShard PadShard(EvalShard shard, std::size_t target_size);

// Wall-clock of `num_evals` expensive CPU-side evals (e.g. COCO eval)
// dispatched every `interval`, processed serially by each of `workers`
// consumers in round-robin (Section 4.4: worker e runs eval e). workers = 1
// models the TF coordinator. Returns the time from the first dispatch until
// the last eval completes.
SimTime EvalScheduleSpan(int num_evals, SimTime interval, SimTime eval_cost,
                         int workers);

}  // namespace tpu::metrics
