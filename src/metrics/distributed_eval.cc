#include "metrics/distributed_eval.h"

#include <algorithm>

#include "common/check.h"

namespace tpu::metrics {

AccuracyParts LocalAccuracy(const EvalShard& shard) {
  TPU_CHECK_EQ(shard.correct.size(), shard.is_real.size());
  AccuracyParts parts;
  for (std::size_t i = 0; i < shard.correct.size(); ++i) {
    if (!shard.is_real[i]) continue;
    parts.correct += shard.correct[i];
    ++parts.total;
  }
  return parts;
}

AccuracyParts CombineAccuracy(std::span<const AccuracyParts> parts) {
  AccuracyParts combined;
  for (const AccuracyParts& p : parts) {
    combined.correct += p.correct;
    combined.total += p.total;
  }
  return combined;
}

EvalShard PadShard(EvalShard shard, std::size_t target_size) {
  TPU_CHECK_GE(target_size, shard.correct.size());
  // Dummy examples report "correct" (the worst case for a naive
  // implementation that forgets to mask them) but are flagged not-real.
  shard.correct.resize(target_size, 1);
  shard.is_real.resize(target_size, 0);
  return shard;
}

SimTime EvalScheduleSpan(int num_evals, SimTime interval, SimTime eval_cost,
                         int workers) {
  TPU_CHECK_GT(num_evals, 0);
  TPU_CHECK_GT(workers, 0);
  // Eval e is dispatched at e * interval to worker e % workers; each worker
  // processes its queue serially.
  std::vector<SimTime> worker_free(workers, 0.0);
  SimTime last_completion = 0;
  for (int e = 0; e < num_evals; ++e) {
    const SimTime dispatch = e * interval;
    const int w = e % workers;
    const SimTime start = std::max(dispatch, worker_free[w]);
    worker_free[w] = start + eval_cost;
    last_completion = std::max(last_completion, worker_free[w]);
  }
  return last_completion;
}

}  // namespace tpu::metrics
