#include "metrics/auc.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace tpu::metrics {
namespace {

// Packs (score, label) so sorting moves labels along with scores.
struct Sample {
  float score;
  std::uint8_t label;
  bool operator<(const Sample& other) const { return score < other.score; }
};

// Tie-corrected Mann-Whitney AUC from samples sorted ascending by score:
// AUC = (sum of average ranks of positives - P(P+1)/2) / (P * N).
double AucFromSorted(const std::vector<Sample>& sorted) {
  const std::size_t n = sorted.size();
  double positive_rank_sum = 0;
  std::int64_t positives = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    std::int64_t tied_positives = 0;
    while (j < n && sorted[j].score == sorted[i].score) {
      tied_positives += sorted[j].label;
      ++j;
    }
    // Ranks are 1-based; tied group [i, j) shares the average rank.
    const double avg_rank = (static_cast<double>(i) + 1 + j) / 2.0;
    positive_rank_sum += avg_rank * tied_positives;
    positives += tied_positives;
    i = j;
  }
  const std::int64_t negatives = static_cast<std::int64_t>(n) - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

std::vector<Sample> PackSamples(std::span<const float> scores,
                                std::span<const std::uint8_t> labels) {
  TPU_CHECK_EQ(scores.size(), labels.size());
  std::vector<Sample> samples(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    samples[i] = {scores[i], labels[i]};
  }
  return samples;
}

// Merge-path split: the (a, b) with a + b = k such that merging A[..a) and
// B[..b) yields the first k elements of merge(A, B). Binary search on a.
std::pair<std::size_t, std::size_t> MergePathSplit(const Sample* a,
                                                   std::size_t len_a,
                                                   const Sample* b,
                                                   std::size_t len_b,
                                                   std::size_t k) {
  std::size_t lo = k > len_b ? k - len_b : 0;
  std::size_t hi = std::min(k, len_a);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    // Take a[mid] next iff a[mid] < b[k - mid - 1]... use the standard
    // stable-merge condition: advance `a` while a[mid] <= b[k-mid-1].
    if (b[k - mid - 1] < a[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return {lo, k - lo};
}

// Merges sorted runs [begin, mid) and [mid, end) of `src` into the same
// positions of `dst`, parallelized over `pool` via merge-path splits.
void ParallelMerge(const std::vector<Sample>& src, std::vector<Sample>& dst,
                   std::size_t begin, std::size_t mid, std::size_t end,
                   ThreadPool& pool) {
  const Sample* a = src.data() + begin;
  const std::size_t len_a = mid - begin;
  const Sample* b = src.data() + mid;
  const std::size_t len_b = end - mid;
  const std::size_t total = len_a + len_b;
  const std::size_t pieces =
      std::max<std::size_t>(1, std::min<std::size_t>(pool.num_threads(),
                                                     total / 4096));
  std::size_t prev_a = 0, prev_b = 0, prev_k = 0;
  for (std::size_t p = 1; p <= pieces; ++p) {
    const std::size_t k = total * p / pieces;
    const auto [ka, kb] =
        p == pieces ? std::make_pair(len_a, len_b)
                    : MergePathSplit(a, len_a, b, len_b, k);
    Sample* out = dst.data() + begin + prev_k;
    const Sample* a_lo = a + prev_a;
    const Sample* a_hi = a + ka;
    const Sample* b_lo = b + prev_b;
    const Sample* b_hi = b + kb;
    pool.Schedule([a_lo, a_hi, b_lo, b_hi, out] {
      std::merge(a_lo, a_hi, b_lo, b_hi, out);
    });
    prev_a = ka;
    prev_b = kb;
    prev_k = k;
  }
  pool.Wait();
}

}  // namespace

double AucNaive(std::span<const float> scores,
                std::span<const std::uint8_t> labels) {
  std::vector<Sample> samples = PackSamples(scores, labels);
  if (samples.empty()) return 0.5;
  // Library-shaped implementation: sort descending, then materialize the
  // full cumulative TP/FP curves in separate passes (extra allocations and
  // memory traffic — the slowness the custom implementation removed), then
  // trapezoid-integrate.
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.score > b.score;
                   });
  const std::size_t n = samples.size();
  std::vector<double> tps(n), fps(n);
  double tp = 0, fp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tp += samples[i].label;
    fp += 1.0 - samples[i].label;
    tps[i] = tp;
    fps[i] = fp;
  }
  if (tp == 0 || fp == 0) return 0.5;
  // Keep only threshold boundaries (distinct scores), like sklearn's
  // roc_curve, then integrate.
  std::vector<double> tpr{0.0}, fpr{0.0};
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 == n || samples[i + 1].score != samples[i].score) {
      tpr.push_back(tps[i] / tp);
      fpr.push_back(fps[i] / fp);
    }
  }
  double auc = 0;
  for (std::size_t i = 1; i < tpr.size(); ++i) {
    auc += (fpr[i] - fpr[i - 1]) * (tpr[i] + tpr[i - 1]) / 2.0;
  }
  return auc;
}

double AucFast(std::span<const float> scores,
               std::span<const std::uint8_t> labels, ThreadPool& pool) {
  std::vector<Sample> samples = PackSamples(scores, labels);
  if (samples.empty()) return 0.5;

  // Parallel merge sort: sort contiguous chunks on the pool, then merge
  // pairs of runs per round — each pair merge itself parallelized with
  // merge-path splits — ping-ponging between two buffers.
  const std::size_t num_chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(pool.num_threads(), samples.size() / 1024));
  std::vector<std::size_t> bounds;
  const std::size_t chunk = (samples.size() + num_chunks - 1) / num_chunks;
  for (std::size_t b = 0; b < samples.size(); b += chunk) bounds.push_back(b);
  bounds.push_back(samples.size());

  for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
    const std::size_t begin = bounds[r], end = bounds[r + 1];
    pool.Schedule([&samples, begin, end] {
      std::sort(samples.begin() + begin, samples.begin() + end);
    });
  }
  pool.Wait();

  std::vector<Sample> scratch(samples.size());
  std::vector<Sample>* src = &samples;
  std::vector<Sample>* dst = &scratch;
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    for (std::size_t r = 0; r + 2 < bounds.size(); r += 2) {
      ParallelMerge(*src, *dst, bounds[r], bounds[r + 1], bounds[r + 2],
                    pool);
      next.push_back(bounds[r]);
    }
    if (bounds.size() % 2 == 0) {
      // Odd run out: copy it through so dst holds the full array.
      const std::size_t begin = bounds[bounds.size() - 2];
      std::copy(src->begin() + begin, src->end(), dst->begin() + begin);
      next.push_back(begin);
    }
    next.push_back(samples.size());
    bounds = std::move(next);
    std::swap(src, dst);
  }

  // Fused single pass: ranks, tie groups and the U statistic together.
  return AucFromSorted(*src);
}

}  // namespace tpu::metrics
