// Small dense float tensor with the reference kernels the mini-HLO evaluator
// and the numeric optimizers need: matmul, 2-D convolution, elementwise ops,
// reductions, slicing. Row-major layout; correctness over speed (these run
// at test scale — simulated-time costs come from the HLO cost model, not
// from wall-clock execution).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"

namespace tpu::tensor {

using Index = std::int64_t;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<Index> shape);
  Tensor(std::vector<Index> shape, std::vector<float> data);

  static Tensor Scalar(float value) { return Tensor({}, {value}); }
  static Tensor Zeros(std::vector<Index> shape) { return Tensor(std::move(shape)); }
  static Tensor Full(std::vector<Index> shape, float value);
  // Deterministic pseudo-random fill in [-1, 1).
  static Tensor Random(std::vector<Index> shape, std::uint64_t seed);

  const std::vector<Index>& shape() const { return shape_; }
  Index rank() const { return static_cast<Index>(shape_.size()); }
  Index dim(Index i) const;
  Index num_elements() const { return static_cast<Index>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(std::initializer_list<Index> indices);
  float at(std::initializer_list<Index> indices) const;
  float& flat(Index i) { return data_[i]; }
  float flat(Index i) const { return data_[i]; }

  // Linear offset of a multi-index (row-major).
  Index OffsetOf(const std::vector<Index>& indices) const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string ShapeString() const;

  // Largest absolute elementwise difference; shapes must match.
  float MaxAbsDiff(const Tensor& other) const;

 private:
  std::vector<Index> shape_;
  std::vector<Index> strides_;  // row-major
  std::vector<float> data_;

  void ComputeStrides();
};

// --- elementwise -----------------------------------------------------------

Tensor Unary(const Tensor& a, const std::function<float(float)>& f);
Tensor Binary(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& f);
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);
Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);

// --- contractions ----------------------------------------------------------

// [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

struct Conv2DConfig {
  Index stride_h = 1;
  Index stride_w = 1;
  // Explicit spatial padding (SAME padding is computed by the caller).
  Index pad_top = 0, pad_bottom = 0, pad_left = 0, pad_right = 0;
};

// input [n, h, w, c_in], kernel [kh, kw, c_in, c_out] -> [n, ho, wo, c_out].
Tensor Conv2D(const Tensor& input, const Tensor& kernel,
              const Conv2DConfig& config);

// Vector-Jacobian products of Conv2D: gradients of sum(dout * conv(input,
// kernel)) with respect to the input and the kernel.
struct Conv2DGrads {
  Tensor dinput;
  Tensor dkernel;
};
Conv2DGrads Conv2DBackward(const Tensor& input, const Tensor& kernel,
                           const Tensor& dout, const Conv2DConfig& config);

// Batched matmul: [b, m, k] x [b, k, n] -> [b, m, n]. With transpose_rhs,
// rhs is [b, n, k] and contracted along its last dim (attention scores).
Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool transpose_rhs = false);

// Head split/merge (attention layout changes):
// [t, h*d] -> [h, t, d] and back.
Tensor SplitHeads(const Tensor& x, Index heads);
Tensor MergeHeads(const Tensor& x);

// Output spatial size for one dimension.
Index ConvOutputSize(Index input, Index kernel, Index stride, Index pad_lo,
                     Index pad_hi);

// --- shape ops --------------------------------------------------------------

Tensor Reshape(const Tensor& a, std::vector<Index> new_shape);
Tensor Transpose2D(const Tensor& a);
// Sum over one axis, removing it.
Tensor ReduceSum(const Tensor& a, Index axis);
// Softmax over the last axis.
Tensor Softmax(const Tensor& a);

// Extracts the block starting at `starts` with size `sizes`.
Tensor Slice(const Tensor& a, const std::vector<Index>& starts,
             const std::vector<Index>& sizes);
// Writes `block` into `dest` at `starts` (in place).
void InsertSlice(Tensor& dest, const Tensor& block,
                 const std::vector<Index>& starts);
// Concatenates along `axis`.
Tensor Concat(const std::vector<Tensor>& parts, Index axis);

// Pads the tensor with `value` (per-axis lo/hi amounts).
Tensor Pad(const Tensor& a, const std::vector<Index>& lo,
           const std::vector<Index>& hi, float value);

}  // namespace tpu::tensor
