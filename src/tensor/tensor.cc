#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/rng.h"

namespace tpu::tensor {
namespace {

Index NumElements(const std::vector<Index>& shape) {
  Index n = 1;
  for (Index d : shape) {
    TPU_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<Index> shape) : shape_(std::move(shape)) {
  data_.assign(NumElements(shape_), 0.0f);
  ComputeStrides();
}

Tensor::Tensor(std::vector<Index> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  TPU_CHECK_EQ(NumElements(shape_), static_cast<Index>(data_.size()));
  ComputeStrides();
}

Tensor Tensor::Full(std::vector<Index> shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::Random(std::vector<Index> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (float& v : t.data_) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  return t;
}

void Tensor::ComputeStrides() {
  strides_.assign(shape_.size(), 1);
  for (int i = static_cast<int>(shape_.size()) - 2; i >= 0; --i) {
    strides_[i] = strides_[i + 1] * shape_[i + 1];
  }
}

Index Tensor::dim(Index i) const {
  TPU_CHECK_GE(i, 0);
  TPU_CHECK_LT(i, rank());
  return shape_[i];
}

Index Tensor::OffsetOf(const std::vector<Index>& indices) const {
  TPU_CHECK_EQ(static_cast<Index>(indices.size()), rank());
  Index offset = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    TPU_CHECK_GE(indices[i], 0);
    TPU_CHECK_LT(indices[i], shape_[i]);
    offset += indices[i] * strides_[i];
  }
  return offset;
}

float& Tensor::at(std::initializer_list<Index> indices) {
  return data_[OffsetOf(std::vector<Index>(indices))];
}

float Tensor::at(std::initializer_list<Index> indices) const {
  return data_[OffsetOf(std::vector<Index>(indices))];
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  TPU_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

Tensor Unary(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  for (Index i = 0; i < a.num_elements(); ++i) out.flat(i) = f(a.flat(i));
  return out;
}

Tensor Binary(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& f) {
  TPU_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  Tensor out(a.shape());
  for (Index i = 0; i < a.num_elements(); ++i) {
    out.flat(i) = f(a.flat(i), b.flat(i));
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x * y; });
}
Tensor Scale(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}
Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}
Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TPU_CHECK_EQ(a.rank(), 2);
  TPU_CHECK_EQ(b.rank(), 2);
  TPU_CHECK_EQ(a.dim(1), b.dim(0));
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (Index i = 0; i < m; ++i) {
    for (Index p = 0; p < k; ++p) {
      const float av = a.flat(i * k + p);
      if (av == 0.0f) continue;
      for (Index j = 0; j < n; ++j) {
        out.flat(i * n + j) += av * b.flat(p * n + j);
      }
    }
  }
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool transpose_rhs) {
  TPU_CHECK_EQ(a.rank(), 3);
  TPU_CHECK_EQ(b.rank(), 3);
  TPU_CHECK_EQ(a.dim(0), b.dim(0));
  const Index batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  const Index n = transpose_rhs ? b.dim(1) : b.dim(2);
  TPU_CHECK_EQ(transpose_rhs ? b.dim(2) : b.dim(1), k);
  Tensor out({batch, m, n});
  for (Index bi = 0; bi < batch; ++bi) {
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < n; ++j) {
        double acc = 0;
        for (Index p = 0; p < k; ++p) {
          const float bv = transpose_rhs ? b.flat((bi * n + j) * k + p)
                                         : b.flat((bi * k + p) * n + j);
          acc += static_cast<double>(a.flat((bi * m + i) * k + p)) * bv;
        }
        out.flat((bi * m + i) * n + j) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

Tensor SplitHeads(const Tensor& x, Index heads) {
  TPU_CHECK_EQ(x.rank(), 2);
  TPU_CHECK_EQ(x.dim(1) % heads, 0);
  const Index t = x.dim(0), d = x.dim(1) / heads;
  Tensor out({heads, t, d});
  for (Index h = 0; h < heads; ++h) {
    for (Index i = 0; i < t; ++i) {
      for (Index c = 0; c < d; ++c) {
        out.flat((h * t + i) * d + c) = x.flat(i * (heads * d) + h * d + c);
      }
    }
  }
  return out;
}

Tensor MergeHeads(const Tensor& x) {
  TPU_CHECK_EQ(x.rank(), 3);
  const Index heads = x.dim(0), t = x.dim(1), d = x.dim(2);
  Tensor out({t, heads * d});
  for (Index h = 0; h < heads; ++h) {
    for (Index i = 0; i < t; ++i) {
      for (Index c = 0; c < d; ++c) {
        out.flat(i * (heads * d) + h * d + c) = x.flat((h * t + i) * d + c);
      }
    }
  }
  return out;
}

Index ConvOutputSize(Index input, Index kernel, Index stride, Index pad_lo,
                     Index pad_hi) {
  const Index padded = input + pad_lo + pad_hi;
  TPU_CHECK_GE(padded, kernel);
  return (padded - kernel) / stride + 1;
}

Tensor Conv2D(const Tensor& input, const Tensor& kernel,
              const Conv2DConfig& config) {
  TPU_CHECK_EQ(input.rank(), 4);   // NHWC
  TPU_CHECK_EQ(kernel.rank(), 4);  // HWIO
  TPU_CHECK_EQ(input.dim(3), kernel.dim(2));
  const Index n = input.dim(0), h = input.dim(1), w = input.dim(2),
              ci = input.dim(3);
  const Index kh = kernel.dim(0), kw = kernel.dim(1), co = kernel.dim(3);
  const Index ho = ConvOutputSize(h, kh, config.stride_h, config.pad_top,
                                  config.pad_bottom);
  const Index wo = ConvOutputSize(w, kw, config.stride_w, config.pad_left,
                                  config.pad_right);
  Tensor out({n, ho, wo, co});
  for (Index b = 0; b < n; ++b) {
    for (Index oy = 0; oy < ho; ++oy) {
      for (Index ox = 0; ox < wo; ++ox) {
        for (Index ky = 0; ky < kh; ++ky) {
          const Index iy = oy * config.stride_h + ky - config.pad_top;
          if (iy < 0 || iy >= h) continue;
          for (Index kx = 0; kx < kw; ++kx) {
            const Index ix = ox * config.stride_w + kx - config.pad_left;
            if (ix < 0 || ix >= w) continue;
            for (Index c = 0; c < ci; ++c) {
              const float iv = input.flat(((b * h + iy) * w + ix) * ci + c);
              if (iv == 0.0f) continue;
              for (Index o = 0; o < co; ++o) {
                out.flat(((b * ho + oy) * wo + ox) * co + o) +=
                    iv * kernel.flat(((ky * kw + kx) * ci + c) * co + o);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Conv2DGrads Conv2DBackward(const Tensor& input, const Tensor& kernel,
                           const Tensor& dout, const Conv2DConfig& config) {
  TPU_CHECK_EQ(input.rank(), 4);
  TPU_CHECK_EQ(kernel.rank(), 4);
  TPU_CHECK_EQ(dout.rank(), 4);
  const Index n = input.dim(0), h = input.dim(1), w = input.dim(2),
              ci = input.dim(3);
  const Index kh = kernel.dim(0), kw = kernel.dim(1), co = kernel.dim(3);
  const Index ho = dout.dim(1), wo = dout.dim(2);
  TPU_CHECK_EQ(dout.dim(0), n);
  TPU_CHECK_EQ(dout.dim(3), co);
  Conv2DGrads grads{Tensor::Zeros(input.shape()), Tensor::Zeros(kernel.shape())};
  // Mirror the forward loop, scattering the chain-rule contributions.
  for (Index b = 0; b < n; ++b) {
    for (Index oy = 0; oy < ho; ++oy) {
      for (Index ox = 0; ox < wo; ++ox) {
        for (Index ky = 0; ky < kh; ++ky) {
          const Index iy = oy * config.stride_h + ky - config.pad_top;
          if (iy < 0 || iy >= h) continue;
          for (Index kx = 0; kx < kw; ++kx) {
            const Index ix = ox * config.stride_w + kx - config.pad_left;
            if (ix < 0 || ix >= w) continue;
            for (Index o = 0; o < co; ++o) {
              const float g = dout.flat(((b * ho + oy) * wo + ox) * co + o);
              if (g == 0.0f) continue;
              for (Index c = 0; c < ci; ++c) {
                const Index in_off = ((b * h + iy) * w + ix) * ci + c;
                const Index k_off = ((ky * kw + kx) * ci + c) * co + o;
                grads.dinput.flat(in_off) += g * kernel.flat(k_off);
                grads.dkernel.flat(k_off) += g * input.flat(in_off);
              }
            }
          }
        }
      }
    }
  }
  return grads;
}

Tensor Reshape(const Tensor& a, std::vector<Index> new_shape) {
  Tensor out(std::move(new_shape),
             std::vector<float>(a.data(), a.data() + a.num_elements()));
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  TPU_CHECK_EQ(a.rank(), 2);
  const Index m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) out.flat(j * m + i) = a.flat(i * n + j);
  }
  return out;
}

Tensor ReduceSum(const Tensor& a, Index axis) {
  TPU_CHECK_GE(axis, 0);
  TPU_CHECK_LT(axis, a.rank());
  std::vector<Index> out_shape;
  for (Index i = 0; i < a.rank(); ++i) {
    if (i != axis) out_shape.push_back(a.dim(i));
  }
  Tensor out(out_shape);
  // Walk the input linearly; compute the output offset by dropping `axis`.
  Index outer = 1, inner = 1;
  for (Index i = 0; i < axis; ++i) outer *= a.dim(i);
  for (Index i = axis + 1; i < a.rank(); ++i) inner *= a.dim(i);
  const Index mid = a.dim(axis);
  for (Index o = 0; o < outer; ++o) {
    for (Index m = 0; m < mid; ++m) {
      for (Index i = 0; i < inner; ++i) {
        out.flat(o * inner + i) += a.flat((o * mid + m) * inner + i);
      }
    }
  }
  return out;
}

Tensor Softmax(const Tensor& a) {
  TPU_CHECK_GE(a.rank(), 1);
  const Index last = a.dim(a.rank() - 1);
  const Index rows = a.num_elements() / last;
  Tensor out(a.shape());
  for (Index r = 0; r < rows; ++r) {
    float max_v = a.flat(r * last);
    for (Index j = 1; j < last; ++j) {
      max_v = std::max(max_v, a.flat(r * last + j));
    }
    float sum = 0.0f;
    for (Index j = 0; j < last; ++j) {
      const float e = std::exp(a.flat(r * last + j) - max_v);
      out.flat(r * last + j) = e;
      sum += e;
    }
    for (Index j = 0; j < last; ++j) out.flat(r * last + j) /= sum;
  }
  return out;
}

namespace {

// Iterates all multi-indices of `shape`, calling body(indices).
void ForEachIndex(const std::vector<Index>& shape,
                  const std::function<void(const std::vector<Index>&)>& body) {
  std::vector<Index> idx(shape.size(), 0);
  const Index total = NumElements(shape);
  for (Index count = 0; count < total; ++count) {
    body(idx);
    for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
    }
  }
}

}  // namespace

Tensor Slice(const Tensor& a, const std::vector<Index>& starts,
             const std::vector<Index>& sizes) {
  TPU_CHECK_EQ(static_cast<Index>(starts.size()), a.rank());
  TPU_CHECK_EQ(static_cast<Index>(sizes.size()), a.rank());
  for (Index i = 0; i < a.rank(); ++i) {
    TPU_CHECK_GE(starts[i], 0);
    TPU_CHECK_LE(starts[i] + sizes[i], a.dim(i));
  }
  Tensor out(sizes);
  if (out.num_elements() == 0) return out;
  ForEachIndex(sizes, [&](const std::vector<Index>& idx) {
    std::vector<Index> src = idx;
    for (std::size_t i = 0; i < src.size(); ++i) src[i] += starts[i];
    out.flat(out.OffsetOf(idx)) = a.flat(a.OffsetOf(src));
  });
  return out;
}

void InsertSlice(Tensor& dest, const Tensor& block,
                 const std::vector<Index>& starts) {
  TPU_CHECK_EQ(block.rank(), dest.rank());
  if (block.num_elements() == 0) return;
  ForEachIndex(block.shape(), [&](const std::vector<Index>& idx) {
    std::vector<Index> dst = idx;
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += starts[i];
    dest.flat(dest.OffsetOf(dst)) = block.flat(block.OffsetOf(idx));
  });
}

Tensor Concat(const std::vector<Tensor>& parts, Index axis) {
  TPU_CHECK(!parts.empty());
  std::vector<Index> shape = parts[0].shape();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    TPU_CHECK_EQ(parts[i].rank(), parts[0].rank());
    for (Index d = 0; d < parts[0].rank(); ++d) {
      if (d != axis) {
        TPU_CHECK_EQ(parts[i].dim(d), parts[0].dim(d));
      }
    }
    shape[axis] += parts[i].dim(axis);
  }
  Tensor out(shape);
  Index offset = 0;
  for (const Tensor& part : parts) {
    std::vector<Index> starts(out.rank(), 0);
    starts[axis] = offset;
    InsertSlice(out, part, starts);
    offset += part.dim(axis);
  }
  return out;
}

Tensor Pad(const Tensor& a, const std::vector<Index>& lo,
           const std::vector<Index>& hi, float value) {
  TPU_CHECK_EQ(static_cast<Index>(lo.size()), a.rank());
  TPU_CHECK_EQ(static_cast<Index>(hi.size()), a.rank());
  std::vector<Index> shape = a.shape();
  for (Index i = 0; i < a.rank(); ++i) shape[i] += lo[i] + hi[i];
  Tensor out = Tensor::Full(shape, value);
  InsertSlice(out, a, lo);
  return out;
}

}  // namespace tpu::tensor
