#include "spmd/spmd.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace tpu::spmd {

using hlo::HloInstruction;
using hlo::HloModule;
using hlo::InstrId;
using hlo::Opcode;
using tensor::Index;
using tensor::Tensor;

std::string Sharding::ToString() const {
  if (!tiled()) return "replicated";
  std::ostringstream os;
  os << "tiled(dim=" << dim << ")";
  return os.str();
}

std::string CommEvent::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kAllGather: os << "all-gather"; break;
    case Kind::kAllReduce: os << "all-reduce"; break;
    case Kind::kHaloExchange: os << "halo-exchange"; break;
  }
  os << "@%" << at << " elems=" << elems;
  return os.str();
}

TileBounds TileBoundsOf(Index extent, int num_partitions, int p) {
  const Index chunk = CeilDiv(extent, num_partitions);
  TileBounds b;
  b.begin = std::min(extent, p * chunk);
  b.end = std::min(extent, (p + 1) * chunk);
  return b;
}

namespace {

hlo::Shape ShapeUnder(const hlo::Shape& shape, const Sharding& sharding,
                      int num_partitions, int p) {
  hlo::Shape local = shape;
  if (sharding.tiled()) {
    TPU_CHECK_LT(sharding.dim, static_cast<Index>(shape.size()));
    local[sharding.dim] =
        TileBoundsOf(shape[sharding.dim], num_partitions, p).size();
  }
  return local;
}

}  // namespace

hlo::Shape PartitionedModule::LocalShape(InstrId id, int p) const {
  return ShapeUnder(module_->instr(id).shape, instrs_[id].sharding,
                    num_partitions_, p);
}

std::string PartitionedModule::ToString() const {
  std::ostringstream os;
  os << "PartitionedModule(" << num_partitions_ << " partitions) {\n";
  for (const HloInstruction& instr : module_->instructions()) {
    os << "  %" << instr.id << " " << hlo::OpcodeName(instr.opcode) << " : "
       << instrs_[instr.id].sharding.ToString();
    if (instrs_[instr.id].partial_allreduce) os << " + all-reduce";
    if (instrs_[instr.id].halo_lo + instrs_[instr.id].halo_hi > 0) {
      os << " + halo(" << instrs_[instr.id].halo_lo << ","
         << instrs_[instr.id].halo_hi << ")";
    }
    os << "\n";
  }
  for (const CommEvent& event : comm_events_) {
    os << "  comm: " << event.ToString() << "\n";
  }
  os << "}";
  return os.str();
}

PartitionedModule Partition(const HloModule& module,
                            const std::vector<Sharding>& param_shardings,
                            int num_partitions) {
  TPU_CHECK_GT(num_partitions, 0);
  TPU_CHECK_EQ(static_cast<int>(param_shardings.size()),
               module.num_parameters());
  PartitionedModule pm(&module, num_partitions);
  pm.instrs_.resize(module.instructions().size());

  int param_index = 0;
  for (const HloInstruction& instr : module.instructions()) {
    PartitionedInstr& out = pm.instrs_[instr.id];
    auto def = [&](int i) -> const Sharding& {
      return pm.instrs_[instr.operands[i]].sharding;
    };
    // Consume operand i at sharding `desired`; records an all-gather when the
    // producer's sharding must be undone (replicated -> tiled is a free local
    // slice and costs nothing).
    auto use = [&](int i, const Sharding& desired) {
      const InstrId o = instr.operands[i];
      const Sharding& have = pm.instrs_[o].sharding;
      if (have != desired && have.tiled()) {
        pm.comm_events_.push_back(
            {CommEvent::Kind::kAllGather, instr.id,
             hlo::NumElements(module.instr(o).shape)});
      }
      out.operand_use.push_back(desired);
    };
    auto emit_allreduce = [&] {
      out.partial_allreduce = true;
      pm.comm_events_.push_back({CommEvent::Kind::kAllReduce, instr.id,
                                 hlo::NumElements(instr.shape)});
    };

    switch (instr.opcode) {
      case Opcode::kParameter: {
        out.sharding = param_shardings[param_index++];
        if (out.sharding.tiled()) {
          TPU_CHECK_LT(out.sharding.dim,
                       static_cast<Index>(instr.shape.size()))
              << "tiled dim out of range for parameter " << instr.name;
        }
        break;
      }
      case Opcode::kConstant:
        out.sharding = Sharding::Replicated();
        break;
      case Opcode::kRelu:
      case Opcode::kTanh:
      case Opcode::kExp:
      case Opcode::kScale: {
        out.sharding = def(0);
        use(0, out.sharding);
        break;
      }
      case Opcode::kSoftmax: {
        Sharding s = def(0);
        // Softmax normalizes over the last axis; it cannot stay split there.
        if (s.tiled() && s.dim == static_cast<Index>(instr.shape.size()) - 1) {
          s = Sharding::Replicated();
        }
        use(0, s);
        out.sharding = s;
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul: {
        Sharding s = def(0);
        if (!s.tiled() && def(1).tiled()) s = def(1);
        use(0, s);
        use(1, s);
        out.sharding = s;
        break;
      }
      case Opcode::kDot: {
        const Sharding& a = def(0);
        const Sharding& b = def(1);
        if (b == Sharding::Tiled(1)) {
          // Output-feature sharded weights: y[:, tile] = x . w[:, tile].
          use(0, Sharding::Replicated());
          use(1, b);
          out.sharding = Sharding::Tiled(1);
        } else if (b == Sharding::Tiled(0)) {
          // Contracting-dim sharded: partial sums need an all-reduce.
          use(0, Sharding::Tiled(1));
          use(1, b);
          out.sharding = Sharding::Replicated();
          emit_allreduce();
        } else if (a == Sharding::Tiled(0)) {
          // Batch/row sharded activations.
          use(0, a);
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Tiled(0);
        } else {
          use(0, Sharding::Replicated());
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Replicated();
        }
        break;
      }
      case Opcode::kOneHotGather: {
        if (def(0) == Sharding::Tiled(0)) {
          // Row-sharded gather: each partition gathers its own rows.
          use(0, def(0));
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Tiled(0);
        } else {
          use(0, Sharding::Replicated());
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Replicated();
        }
        break;
      }
      case Opcode::kConv2D: {
        const Sharding& si = def(0);
        if (si.tiled() && (si.dim == 1 || si.dim == 2)) {
          // Spatial partitioning with halo exchange.
          const Index d = si.dim;
          const hlo::Shape& in_shape = module.instr(instr.operands[0]).shape;
          const Index in_extent = in_shape[d];
          const Index out_extent = instr.shape[d];
          const Index kernel_extent =
              module.instr(instr.operands[1]).shape[d - 1];
          const Index stride =
              d == 1 ? instr.conv.stride_h : instr.conv.stride_w;
          const Index pad_lo =
              d == 1 ? instr.conv.pad_top : instr.conv.pad_left;
          Index halo_lo = 0, halo_hi = 0, fetched_elems = 0;
          Index slice_elems = 1;
          for (std::size_t i = 0; i < in_shape.size(); ++i) {
            if (static_cast<Index>(i) != d) slice_elems *= in_shape[i];
          }
          for (int p = 0; p < num_partitions; ++p) {
            const TileBounds ob = TileBoundsOf(out_extent, num_partitions, p);
            if (ob.size() == 0) continue;
            const TileBounds ib = TileBoundsOf(in_extent, num_partitions, p);
            const Index need_begin =
                std::max<Index>(0, ob.begin * stride - pad_lo);
            const Index need_end = std::min(
                in_extent, (ob.end - 1) * stride - pad_lo + kernel_extent);
            const Index lo = std::max<Index>(0, ib.begin - need_begin);
            const Index hi = std::max<Index>(0, need_end - ib.end);
            halo_lo = std::max(halo_lo, lo);
            halo_hi = std::max(halo_hi, hi);
            fetched_elems = std::max(fetched_elems, (lo + hi) * slice_elems);
          }
          out.halo_lo = halo_lo;
          out.halo_hi = halo_hi;
          if (fetched_elems > 0) {
            pm.comm_events_.push_back({CommEvent::Kind::kHaloExchange,
                                       instr.id, fetched_elems});
          }
          use(0, si);
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Tiled(d);
        } else if (si == Sharding::Tiled(0)) {
          use(0, si);
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Tiled(0);
        } else {
          use(0, Sharding::Replicated());
          use(1, Sharding::Replicated());
          out.sharding = Sharding::Replicated();
        }
        break;
      }
      case Opcode::kReduceSum: {
        const Sharding s = def(0);
        if (s.tiled() && s.dim == instr.axis) {
          use(0, s);
          out.sharding = Sharding::Replicated();
          emit_allreduce();
        } else if (s.tiled()) {
          use(0, s);
          out.sharding =
              Sharding::Tiled(s.dim > instr.axis ? s.dim - 1 : s.dim);
        } else {
          use(0, s);
          out.sharding = Sharding::Replicated();
        }
        break;
      }
      case Opcode::kReshape: {
        // Conservative: reshapes consume replicated input.
        use(0, Sharding::Replicated());
        out.sharding = Sharding::Replicated();
        break;
      }
      case Opcode::kTranspose: {
        const Sharding s = def(0);
        use(0, s);
        out.sharding = s.tiled() ? Sharding::Tiled(1 - s.dim) : s;
        break;
      }
      case Opcode::kTopK: {
        Sharding s = def(0);
        if (s.tiled() && s.dim == static_cast<Index>(instr.shape.size()) - 1) {
          s = Sharding::Replicated();  // top-k needs the full last axis
        }
        use(0, s);
        out.sharding = s;
        break;
      }
      case Opcode::kBatchMatMul: {
        // Head-sharded attention: both operands tiled on the batch (head)
        // dim compute locally. Anything else is resharded to whichever
        // operand is head-tiled, or replicated.
        const bool head_tiled =
            def(0) == Sharding::Tiled(0) || def(1) == Sharding::Tiled(0);
        const Sharding s =
            head_tiled ? Sharding::Tiled(0) : Sharding::Replicated();
        use(0, s);
        use(1, s);
        out.sharding = s;
        break;
      }
      case Opcode::kSplitHeads: {
        // [t, h*d] tiled on the feature dim becomes [h, t, d] tiled on the
        // head dim — the sharding-preserving layout change real partitioners
        // implement as a local bitcast. Requires the head count to split
        // evenly over the partitions.
        if (def(0) == Sharding::Tiled(1) &&
            instr.k % num_partitions == 0) {
          use(0, def(0));
          out.sharding = Sharding::Tiled(0);
        } else {
          use(0, Sharding::Replicated());
          out.sharding = Sharding::Replicated();
        }
        break;
      }
      case Opcode::kMergeHeads: {
        if (def(0) == Sharding::Tiled(0)) {
          use(0, def(0));
          out.sharding = Sharding::Tiled(1);
        } else {
          use(0, Sharding::Replicated());
          out.sharding = Sharding::Replicated();
        }
        break;
      }
    }
  }
  return pm;
}

namespace {

// Reassembles the full logical value of instruction `id` from per-partition
// local values.
Tensor FullValue(const PartitionedModule& pm,
                 const std::vector<std::vector<Tensor>>& values, InstrId id) {
  const PartitionedInstr& pi = pm.at(id);
  if (!pi.sharding.tiled()) return values[id][0];
  std::vector<Tensor> parts;
  for (int p = 0; p < pm.num_partitions(); ++p) {
    if (values[id][p].num_elements() > 0) parts.push_back(values[id][p]);
  }
  return tensor::Concat(parts, pi.sharding.dim);
}

// Extracts the global slab [range.begin, range.end) along `dim` of
// instruction `id` for partition `p`, fetching out-of-tile pieces from the
// other partitions' local values (and zero-filling beyond the tensor edge).
// Adds fetched cross-partition bytes to *halo_bytes.
Tensor FetchSlab(const PartitionedModule& pm,
                 const std::vector<std::vector<Tensor>>& values, InstrId id,
                 int p, Index dim, Index begin, Index end, Bytes* halo_bytes) {
  const hlo::Shape& full_shape = pm.module().instr(id).shape;
  const Index extent = full_shape[dim];
  std::vector<Tensor> pieces;
  auto zeros_slab = [&](Index rows) {
    hlo::Shape s = full_shape;
    s[dim] = rows;
    return Tensor::Zeros(s);
  };
  if (begin < 0) pieces.push_back(zeros_slab(-begin));
  const Index clamped_begin = std::max<Index>(0, begin);
  const Index clamped_end = std::min(extent, end);
  for (int q = 0; q < pm.num_partitions(); ++q) {
    const TileBounds tb = TileBoundsOf(extent, pm.num_partitions(), q);
    const Index lo = std::max(clamped_begin, tb.begin);
    const Index hi = std::min(clamped_end, tb.end);
    if (lo >= hi) continue;
    const Tensor& local = values[id][q];
    std::vector<Index> starts(full_shape.size(), 0);
    std::vector<Index> sizes = local.shape();
    starts[dim] = lo - tb.begin;
    sizes[dim] = hi - lo;
    Tensor piece = tensor::Slice(local, starts, sizes);
    if (q != p) *halo_bytes += piece.num_elements() * 4;
    pieces.push_back(std::move(piece));
  }
  if (end > extent) pieces.push_back(zeros_slab(end - extent));
  return tensor::Concat(pieces, dim);
}

}  // namespace

SpmdExecution ExecutePartitioned(const PartitionedModule& pm,
                                 const std::vector<Tensor>& params) {
  const HloModule& module = pm.module();
  const int n = pm.num_partitions();
  TPU_CHECK_EQ(static_cast<int>(params.size()), module.num_parameters());
  SpmdExecution exec;
  std::vector<std::vector<Tensor>> values(module.instructions().size(),
                                          std::vector<Tensor>(n));

  int param_index = 0;
  for (const HloInstruction& instr : module.instructions()) {
    const PartitionedInstr& pi = pm.at(instr.id);
    // Materializes operand `i` on partition p at the sharding it is consumed
    // with, reassembling across partitions when resharding is needed.
    auto operand_at = [&](int i, int p) -> Tensor {
      const InstrId o = instr.operands[i];
      const Sharding& have = pm.at(o).sharding;
      const Sharding& want = pi.operand_use[i];
      if (have == want) return values[o][p];
      Tensor full = FullValue(pm, values, o);
      if (have.tiled()) {
        // Cross-partition reassembly: ring all-gather wire bytes.
        exec.allgather_bytes +=
            static_cast<Bytes>(full.num_elements()) * 4 * (n - 1);
      }
      if (!want.tiled()) return full;
      const TileBounds tb =
          TileBoundsOf(full.dim(want.dim), n, p);
      std::vector<Index> starts(full.rank(), 0);
      std::vector<Index> sizes = full.shape();
      starts[want.dim] = tb.begin;
      sizes[want.dim] = tb.size();
      return tensor::Slice(full, starts, sizes);
    };

    switch (instr.opcode) {
      case Opcode::kParameter: {
        const Tensor& full = params[param_index++];
        TPU_CHECK(full.shape() == instr.shape)
            << "parameter " << instr.name << " shape mismatch";
        for (int p = 0; p < n; ++p) {
          if (!pi.sharding.tiled()) {
            values[instr.id][p] = full;
            continue;
          }
          const TileBounds tb = TileBoundsOf(full.dim(pi.sharding.dim), n, p);
          std::vector<Index> starts(full.rank(), 0);
          std::vector<Index> sizes = full.shape();
          starts[pi.sharding.dim] = tb.begin;
          sizes[pi.sharding.dim] = tb.size();
          values[instr.id][p] = tensor::Slice(full, starts, sizes);
        }
        break;
      }
      case Opcode::kConstant: {
        for (int p = 0; p < n; ++p) {
          values[instr.id][p] = module.constant_value(instr.id);
        }
        break;
      }
      case Opcode::kConv2D: {
        const Index d = pi.sharding.tiled() ? pi.sharding.dim : -1;
        for (int p = 0; p < n; ++p) {
          Tensor kernel = operand_at(1, p);
          if (d != 1 && d != 2) {
            values[instr.id][p] =
                tensor::Conv2D(operand_at(0, p), kernel, instr.conv);
            continue;
          }
          // Spatially partitioned: assemble the input slab (tile + halos),
          // then convolve with padding already materialized along d.
          const TileBounds ob = TileBoundsOf(instr.shape[d], n, p);
          if (ob.size() == 0) {
            hlo::Shape s = pm.LocalShape(instr.id, p);
            values[instr.id][p] = Tensor::Zeros(s);
            continue;
          }
          const Index stride =
              d == 1 ? instr.conv.stride_h : instr.conv.stride_w;
          const Index pad_lo =
              d == 1 ? instr.conv.pad_top : instr.conv.pad_left;
          const Index kernel_extent =
              module.instr(instr.operands[1]).shape[d - 1];
          const Index need_begin = ob.begin * stride - pad_lo;
          const Index need_end = (ob.end - 1) * stride - pad_lo + kernel_extent;
          Tensor slab = FetchSlab(pm, values, instr.operands[0], p, d,
                                  need_begin, need_end, &exec.halo_bytes);
          tensor::Conv2DConfig conv = instr.conv;
          if (d == 1) {
            conv.pad_top = conv.pad_bottom = 0;
          } else {
            conv.pad_left = conv.pad_right = 0;
          }
          values[instr.id][p] = tensor::Conv2D(slab, kernel, conv);
          TPU_CHECK_EQ(values[instr.id][p].dim(d), ob.size());
        }
        break;
      }
      default: {
        for (int p = 0; p < n; ++p) {
          auto op0 = [&] { return operand_at(0, p); };
          auto op1 = [&] { return operand_at(1, p); };
          Tensor& out = values[instr.id][p];
          switch (instr.opcode) {
            case Opcode::kAdd: out = tensor::Add(op0(), op1()); break;
            case Opcode::kSub: out = tensor::Sub(op0(), op1()); break;
            case Opcode::kMul: out = tensor::Mul(op0(), op1()); break;
            case Opcode::kRelu: out = tensor::Relu(op0()); break;
            case Opcode::kTanh: out = tensor::Tanh(op0()); break;
            case Opcode::kExp: out = tensor::Exp(op0()); break;
            case Opcode::kScale: out = tensor::Scale(op0(), instr.scale); break;
            case Opcode::kSoftmax: out = tensor::Softmax(op0()); break;
            case Opcode::kDot:
            case Opcode::kOneHotGather:
              out = tensor::MatMul(op0(), op1());
              break;
            case Opcode::kReduceSum: {
              // When the reduced axis is the tiled one, this is the local
              // partial; the all-reduce below completes it.
              out = tensor::ReduceSum(op0(), instr.axis);
              break;
            }
            case Opcode::kReshape:
              out = tensor::Reshape(op0(), instr.shape);
              break;
            case Opcode::kBatchMatMul:
              out = tensor::BatchMatMul(op0(), op1(), instr.transpose_rhs);
              break;
            case Opcode::kSplitHeads: {
              // Local head count = this partition's share of the head dim.
              const Tensor in = op0();
              const Index local_heads =
                  pm.LocalShape(instr.id, p)[0];
              out = tensor::SplitHeads(in, local_heads);
              break;
            }
            case Opcode::kMergeHeads:
              out = tensor::MergeHeads(op0());
              break;
            case Opcode::kTranspose:
              out = tensor::Transpose2D(op0());
              break;
            case Opcode::kTopK: {
              const Tensor in = op0();
              hlo::Shape out_shape = in.shape();
              out_shape.back() = instr.k;
              Tensor result(out_shape);
              const Index last = in.shape().back();
              const Index rows = in.num_elements() / std::max<Index>(1, last);
              std::vector<float> row(last);
              for (Index r = 0; r < rows; ++r) {
                for (Index j = 0; j < last; ++j) row[j] = in.flat(r * last + j);
                std::partial_sort(row.begin(), row.begin() + instr.k,
                                  row.end(), std::greater<float>());
                for (Index j = 0; j < instr.k; ++j) {
                  result.flat(r * instr.k + j) = row[j];
                }
              }
              out = std::move(result);
              break;
            }
            default:
              TPU_CHECK(false) << "unhandled opcode "
                               << hlo::OpcodeName(instr.opcode);
          }
        }
        break;
      }
    }

    if (pi.partial_allreduce) {
      // Sum the per-partition partials and give every partition the result.
      Tensor sum = values[instr.id][0];
      for (int p = 1; p < n; ++p) {
        sum = tensor::Add(sum, values[instr.id][p]);
      }
      exec.allreduce_bytes += static_cast<Bytes>(sum.num_elements()) * 4 * 2 *
                              std::max(0, n - 1);
      for (int p = 0; p < n; ++p) values[instr.id][p] = sum;
    }
  }

  exec.local_root = values[module.root()];
  exec.full_root = FullValue(pm, values, module.root());
  return exec;
}

PartitionedCost CostOfPartitioned(const PartitionedModule& pm,
                                  const hlo::TpuCoreModel& core) {
  const HloModule& module = pm.module();
  PartitionedCost result;
  for (int p = 0; p < pm.num_partitions(); ++p) {
    hlo::OpCost compute;
    SimTime seconds = 0;
    for (const HloInstruction& instr : module.instructions()) {
      const PartitionedInstr& pi = pm.at(instr.id);
      auto local_operand = [&](int i) {
        return ShapeUnder(module.instr(instr.operands[i]).shape,
                          pi.operand_use[i], pm.num_partitions(), p);
      };
      const hlo::Shape local_out = pm.LocalShape(instr.id, p);
      hlo::OpCost cost;
      switch (instr.opcode) {
        case Opcode::kParameter:
        case Opcode::kConstant:
        case Opcode::kReshape:
          continue;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
          cost = hlo::ElementwiseCost(hlo::NumElements(local_out), 2, false);
          break;
        case Opcode::kRelu:
        case Opcode::kScale:
          cost = hlo::ElementwiseCost(hlo::NumElements(local_out), 1, false);
          break;
        case Opcode::kTanh:
        case Opcode::kExp:
          cost = hlo::ElementwiseCost(hlo::NumElements(local_out), 1, true);
          break;
        case Opcode::kSoftmax:
          cost = hlo::SoftmaxCost(hlo::NumElements(local_out));
          break;
        case Opcode::kReduceSum:
          cost = hlo::ReduceCost(hlo::NumElements(local_operand(0)),
                                 hlo::NumElements(local_out));
          break;
        case Opcode::kTranspose:
          cost = hlo::TransposeCost(hlo::NumElements(local_out));
          break;
        case Opcode::kDot:
        case Opcode::kOneHotGather: {
          const hlo::Shape a = local_operand(0);
          const hlo::Shape b = local_operand(1);
          cost = hlo::DotCost(a[0], a[1], b[1]);
          break;
        }
        case Opcode::kConv2D: {
          hlo::Shape in = local_operand(0);
          // Halo rows enlarge the local input actually convolved.
          if (pi.sharding.tiled() &&
              (pi.sharding.dim == 1 || pi.sharding.dim == 2)) {
            in[pi.sharding.dim] += pi.halo_lo + pi.halo_hi;
          }
          const hlo::Shape k = module.instr(instr.operands[1]).shape;
          cost = hlo::Conv2DCost(local_out[0], local_out[1], local_out[2],
                                 local_out[3], k[0], k[1], k[2],
                                 hlo::NumElements(in));
          break;
        }
        case Opcode::kTopK:
          cost = hlo::TopKCost(hlo::NumElements(local_operand(0)),
                               hlo::NumElements(local_out), instr.k);
          break;
        case Opcode::kBatchMatMul: {
          const hlo::Shape a = local_operand(0);
          cost = hlo::DotCost(a[1], a[2], local_out[2]);
          cost.flops *= a[0];
          break;
        }
        case Opcode::kSplitHeads:
        case Opcode::kMergeHeads:
          cost = hlo::TransposeCost(hlo::NumElements(local_out));
          break;
      }
      compute += cost;
      seconds += core.SecondsFor(cost);
    }
    if (seconds > result.compute_seconds) {
      result.compute_seconds = seconds;
      result.compute = compute;
    }
  }
  result.comm = pm.comm_events();
  return result;
}

}  // namespace tpu::spmd
