// SPMD partitioner over the mini-HLO IR.
//
// Stands in for XLA's SPMD partitioner (Lepikhin et al. 2020), which the
// paper uses for all model parallelism (Section 3.1): lightweight sharding
// annotations on inputs are propagated through the graph, operators are
// rewritten to compute on local tiles, and communication is inserted where
// the math requires it —
//   * halo exchanges for spatially partitioned convolutions,
//   * all-reduces for partial sums when a contracting dimension is sharded
//     (feature-sharded dense layers, Section 3.1's Transformer scheme),
//   * all-gathers when an operand must be resharded.
//
// Two consumers: a *functional executor* that runs the partitioned program
// per-partition with explicit cross-partition data movement (so partitioned
// == unpartitioned can be asserted numerically), and a *cost extractor* that
// reports per-partition compute plus the inserted communication events for
// the simulated step-time model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlo/cost_model.h"
#include "hlo/hlo.h"

namespace tpu::spmd {

struct Sharding {
  enum class Kind { kReplicated, kTiled };
  Kind kind = Kind::kReplicated;
  tensor::Index dim = -1;  // the tiled dimension (valid iff kind == kTiled)

  static Sharding Replicated() { return {}; }
  static Sharding Tiled(tensor::Index dim) {
    Sharding s;
    s.kind = Kind::kTiled;
    s.dim = dim;
    return s;
  }
  bool tiled() const { return kind == Kind::kTiled; }
  friend bool operator==(const Sharding&, const Sharding&) = default;
  std::string ToString() const;
};

// Tile bounds of one dimension extent for partition p (ceil split; trailing
// partitions may be short or empty).
struct TileBounds {
  tensor::Index begin = 0;
  tensor::Index end = 0;
  tensor::Index size() const { return end - begin; }
};
TileBounds TileBoundsOf(tensor::Index extent, int num_partitions, int p);

// Communication the partitioner inserted.
struct CommEvent {
  enum class Kind { kAllGather, kAllReduce, kHaloExchange };
  Kind kind = Kind::kAllReduce;
  hlo::InstrId at = -1;     // instruction that triggered the event
  tensor::Index elems = 0;  // logical payload elements (full tensor for
                            // all-gather/all-reduce; fetched halo rows for
                            // halo exchange, per partition)
  std::string ToString() const;
};

struct PartitionedInstr {
  Sharding sharding;                   // output sharding
  std::vector<Sharding> operand_use;   // sharding each operand is consumed at
  bool partial_allreduce = false;      // output is a partial sum: all-reduce
  // Spatially partitioned conv: input rows fetched beyond the local tile.
  tensor::Index halo_lo = 0;
  tensor::Index halo_hi = 0;
};

class PartitionedModule {
 public:
  PartitionedModule(const hlo::HloModule* module, int num_partitions)
      : module_(module), num_partitions_(num_partitions) {}

  const hlo::HloModule& module() const { return *module_; }
  int num_partitions() const { return num_partitions_; }
  const PartitionedInstr& at(hlo::InstrId id) const { return instrs_[id]; }
  const std::vector<CommEvent>& comm_events() const { return comm_events_; }

  // Local shape of instruction `id`'s output on partition p.
  hlo::Shape LocalShape(hlo::InstrId id, int p) const;

  std::string ToString() const;

 private:
  friend PartitionedModule Partition(const hlo::HloModule&,
                                     const std::vector<Sharding>&, int);
  const hlo::HloModule* module_;
  int num_partitions_;
  std::vector<PartitionedInstr> instrs_;
  std::vector<CommEvent> comm_events_;
};

// Partitions `module` across `num_partitions` devices. `param_shardings`
// gives the annotation for each parameter in declaration order (this is the
// "lightweight annotation" interface of Section 3.1: e.g. tile the image
// parameter's H dimension for spatial partitioning, or tile weight matrices
// on the feature dimension for the Transformer scheme).
PartitionedModule Partition(const hlo::HloModule& module,
                            const std::vector<Sharding>& param_shardings,
                            int num_partitions);

// Functional cross-partition execution.
struct SpmdExecution {
  tensor::Tensor full_root;                 // reassembled logical root value
  std::vector<tensor::Tensor> local_root;   // per-partition local values
  // Cross-partition traffic actually moved (float32 accounting).
  Bytes halo_bytes = 0;
  Bytes allgather_bytes = 0;
  Bytes allreduce_bytes = 0;
};
SpmdExecution ExecutePartitioned(const PartitionedModule& pm,
                                 const std::vector<tensor::Tensor>& params);

// Timing-side summary: per-partition compute (max over partitions) plus the
// comm event list for the network layer.
struct PartitionedCost {
  hlo::OpCost compute;       // worst-partition local compute
  SimTime compute_seconds = 0;
  std::vector<CommEvent> comm;
};
PartitionedCost CostOfPartitioned(const PartitionedModule& pm,
                                  const hlo::TpuCoreModel& core);

}  // namespace tpu::spmd
