#include "frameworks/host_network.h"

#include <memory>

#include "common/check.h"

namespace tpu::frameworks {

HostNetwork::HostNetwork(int num_hosts, const HostNetworkConfig& config,
                         sim::Simulator* simulator)
    : num_hosts_(num_hosts), config_(config), simulator_(simulator) {
  TPU_CHECK_GE(num_hosts, 2);
  TPU_CHECK(simulator != nullptr);
  tx_.reserve(num_hosts);
  rx_.reserve(num_hosts);
  cpu_.reserve(num_hosts);
  for (int h = 0; h < num_hosts; ++h) {
    tx_.emplace_back(simulator);
    rx_.emplace_back(simulator);
    cpu_.emplace_back(simulator);
  }
}

void HostNetwork::Rpc(int src, int dst, Bytes payload,
                      sim::Simulator::Callback on_done) {
  TPU_CHECK_GE(src, 0);
  TPU_CHECK_LT(src, num_hosts_);
  TPU_CHECK_GE(dst, 0);
  TPU_CHECK_LT(dst, num_hosts_);
  TPU_CHECK_NE(src, dst);
  TPU_CHECK_GE(payload, 0);
  bytes_sent_ += payload;
  const SimTime wire = static_cast<double>(payload) / config_.nic_bandwidth;
  // Transmit: queue on the sender's NIC.
  const SimTime tx_start = tx_[src].ReserveFrom(simulator_->now(), wire);
  const SimTime arrival_head = tx_start + wire + config_.network_latency;
  // Receive: queue on the receiver's NIC, then dispatch.
  const SimTime rx_start = rx_[dst].ReserveFrom(arrival_head, wire);
  simulator_->ScheduleAt(rx_start + wire + config_.rpc_processing,
                         std::move(on_done));
}

SimTime SimulateGraphDistribution(int num_workers, Bytes graph_bytes,
                                  const HostNetworkConfig& config) {
  TPU_CHECK_GT(num_workers, 0);
  sim::Simulator simulator;
  HostNetwork network(num_workers + 1, config, &simulator);
  auto barrier =
      std::make_shared<sim::Barrier>(num_workers, [] {});
  // The coordinator serializes each worker's partitioned graph on its CPU
  // (serially), then hands it to the NIC.
  for (int w = 1; w <= num_workers; ++w) {
    const SimTime cpu_done = network.cpu_[0].ReserveFrom(
                                 simulator.now(), config.per_worker_serialize) +
                             config.per_worker_serialize;
    simulator.ScheduleAt(cpu_done, [&network, w, graph_bytes, barrier] {
      network.Rpc(0, w, graph_bytes, [barrier] { barrier->Notify(); });
    });
  }
  return simulator.Run();
}

SimTime SimulateEvalGather(int num_workers, Bytes metric_bytes,
                           const HostNetworkConfig& config) {
  TPU_CHECK_GT(num_workers, 0);
  sim::Simulator simulator;
  HostNetwork network(num_workers + 1, config, &simulator);
  auto barrier = std::make_shared<sim::Barrier>(num_workers, [] {});
  for (int w = 1; w <= num_workers; ++w) {
    network.Rpc(w, 0, metric_bytes, [barrier] { barrier->Notify(); });
  }
  return simulator.Run();
}

}  // namespace tpu::frameworks
