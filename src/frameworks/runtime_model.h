// Distributed-runtime models of the two frameworks (Section 2, Table 2).
//
// TensorFlow (single-client): one coordinator Python process builds and
// optimizes a multi-device graph whose size grows with the number of
// workers, compiles once, then ships partitioned graphs to every worker over
// the datacenter network. Its initialization time is therefore
// O(num_devices) — the Amdahl bottleneck Table 2 quantifies.
//
// JAX (multi-client): every host runs the same program, compiles its own
// (device-count-independent) executable concurrently with the others, and
// only coordinates for TPU mesh setup. Its initialization is near-constant
// in system size.
//
// The same structural difference drives the evaluation-metric path
// (Section 3.4): TF gathers per-host metrics to the coordinator via RPC;
// JAX computes the metric on-device with an all-reduce.
#pragma once

#include <string>

#include "common/units.h"
#include "models/model_specs.h"

namespace tpu::frameworks {

enum class Framework { kTensorFlow, kJax };

const char* FrameworkName(Framework framework);

// Per-model compile/graph complexity. Factors are relative to ResNet-50 = 1;
// they stand in for graph node counts and XLA program sizes.
struct ModelCompileProfile {
  double graph_complexity = 1.0;     // TF graph construction / optimization
  SimTime xla_compile = Seconds(60); // one XLA compilation of the step fn
};
ModelCompileProfile CompileProfileFor(models::Benchmark benchmark);

struct RuntimeModelConfig {
  // TF coordinator: per-device graph construction + optimization cost, for a
  // graph_complexity = 1 model.
  SimTime tf_per_device_graph = Millis(90);
  // TF: per-worker RPC to ship the partitioned graph (pipelined; the
  // coordinator serializes the send loop).
  SimTime tf_per_host_rpc = Millis(25);
  // JAX: Python interpreter + library import on every host (concurrent).
  SimTime jax_python_startup = Seconds(25);
  // JAX compiles on every host concurrently but pays a tracing overhead.
  double jax_compile_factor = 1.1;
  // Both: TPU topological mesh initialization, grows slowly with chips.
  SimTime mesh_init_base = Seconds(20);
  SimTime mesh_init_per_kilochip = Seconds(10);

  // Evaluation metric path (Section 3.4).
  SimTime eval_rpc_per_host = Millis(0.5);    // TF host -> coordinator gather
  SimTime eval_coordinator_compute = Millis(100);
  SimTime eval_allreduce = Millis(5);         // JAX on-device all-reduce
};

struct InitBreakdown {
  SimTime graph_construction = 0;  // TF only: O(devices)
  SimTime compile = 0;
  SimTime distribution = 0;        // TF only: RPC fan-out
  SimTime startup = 0;             // JAX only: per-host Python startup
  SimTime mesh_init = 0;

  SimTime total() const {
    return graph_construction + compile + distribution + startup + mesh_init;
  }
};

InitBreakdown EstimateInitTime(Framework framework,
                               models::Benchmark benchmark, int num_chips,
                               const RuntimeModelConfig& config = {});

// Time to produce one global evaluation metric (e.g. top-1 accuracy) from
// per-device partial results.
SimTime EvalMetricSeconds(Framework framework, int num_hosts,
                          const RuntimeModelConfig& config = {});

}  // namespace tpu::frameworks
