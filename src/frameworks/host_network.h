// Discrete-event model of the datacenter (host) network the TensorFlow
// single-client runtime rides on (Section 2): the coordinator serializes a
// partitioned graph per worker on its CPU, ships it over its NIC, and later
// gathers per-host eval metrics back through the same NIC (the incast the
// JAX on-device all-reduce avoids, Section 3.4).
//
// This is the mechanistic counterpart of the analytic constants in
// runtime_model.h; tests cross-validate the two.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace tpu::frameworks {

struct HostNetworkConfig {
  Bandwidth nic_bandwidth = GBps(12.5);  // 100 Gbps per host
  SimTime network_latency = Micros(50);  // one-way, through the fabric
  SimTime rpc_processing = Micros(30);   // receive-side dispatch
  // Coordinator CPU time to partition + serialize one worker's graph.
  SimTime per_worker_serialize = Millis(20);
};

// Host 0 is the coordinator; hosts 1..n are workers.
class HostNetwork {
 public:
  HostNetwork(int num_hosts, const HostNetworkConfig& config,
              sim::Simulator* simulator);

  int num_hosts() const { return num_hosts_; }
  sim::Simulator& simulator() { return *simulator_; }

  // One RPC: payload serializes on the sender's NIC, crosses the fabric,
  // serializes on the receiver's NIC, then pays dispatch. `on_done` fires at
  // delivery.
  void Rpc(int src, int dst, Bytes payload, sim::Simulator::Callback on_done);

  Bytes bytes_sent() const { return bytes_sent_; }

 private:
  int num_hosts_;
  HostNetworkConfig config_;
  sim::Simulator* simulator_;
  std::vector<sim::FifoResource> tx_;  // per-host NIC, transmit side
  std::vector<sim::FifoResource> rx_;  // per-host NIC, receive side
  std::vector<sim::FifoResource> cpu_; // per-host CPU (serialization)
  Bytes bytes_sent_ = 0;

  friend SimTime SimulateGraphDistribution(int, Bytes,
                                           const HostNetworkConfig&);
  friend SimTime SimulateEvalGather(int, Bytes, const HostNetworkConfig&);
};

// TF startup: the coordinator serializes and ships `graph_bytes` to each of
// `num_workers` workers (CPU serialization is the serial bottleneck).
// Returns the time until the last worker holds its graph.
SimTime SimulateGraphDistribution(int num_workers, Bytes graph_bytes,
                                  const HostNetworkConfig& config = {});

// TF eval: every worker sends `metric_bytes` to the coordinator at once;
// the coordinator's receive NIC and dispatch serialize the incast. Returns
// the time until all metrics have been processed.
SimTime SimulateEvalGather(int num_workers, Bytes metric_bytes,
                           const HostNetworkConfig& config = {});

}  // namespace tpu::frameworks
