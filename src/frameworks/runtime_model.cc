#include "frameworks/runtime_model.h"

#include "common/check.h"

namespace tpu::frameworks {

const char* FrameworkName(Framework framework) {
  return framework == Framework::kTensorFlow ? "TensorFlow" : "JAX";
}

ModelCompileProfile CompileProfileFor(models::Benchmark benchmark) {
  // Calibrated against Table 2's ordering: BERT has the largest graph
  // (1040 s TF init), Transformer's sharded program compiles slowest under
  // JAX (294 s), ResNet-50 and SSD are lighter.
  switch (benchmark) {
    case models::Benchmark::kResNet50:
      return {1.0, Seconds(45)};
    case models::Benchmark::kBert:
      return {2.34, Seconds(96)};
    case models::Benchmark::kSsd:
      return {1.73, Seconds(52)};
    case models::Benchmark::kTransformer:
      return {1.61, Seconds(190)};
    case models::Benchmark::kMaskRcnn:
      return {2.0, Seconds(120)};
    case models::Benchmark::kDlrm:
      return {0.8, Seconds(40)};
  }
  return {};
}

InitBreakdown EstimateInitTime(Framework framework,
                               models::Benchmark benchmark, int num_chips,
                               const RuntimeModelConfig& config) {
  TPU_CHECK_GT(num_chips, 0);
  const ModelCompileProfile profile = CompileProfileFor(benchmark);
  const int num_hosts = std::max(1, num_chips / 4);
  InitBreakdown init;
  init.mesh_init = config.mesh_init_base +
                   config.mesh_init_per_kilochip * (num_chips / 1024.0);
  if (framework == Framework::kTensorFlow) {
    // The coordinator's multi-device graph grows with every worker.
    init.graph_construction =
        config.tf_per_device_graph * profile.graph_complexity * num_chips;
    init.compile = profile.xla_compile;
    init.distribution = config.tf_per_host_rpc * num_hosts;
  } else {
    // Every host compiles its own single-device-view program concurrently;
    // deterministic compilation keeps the binaries compatible.
    init.startup = config.jax_python_startup;
    init.compile = profile.xla_compile * config.jax_compile_factor;
  }
  return init;
}

SimTime EvalMetricSeconds(Framework framework, int num_hosts,
                          const RuntimeModelConfig& config) {
  TPU_CHECK_GT(num_hosts, 0);
  if (framework == Framework::kTensorFlow) {
    // Per-host RPC gather to the coordinator, then coordinator-side compute.
    return config.eval_rpc_per_host * num_hosts +
           config.eval_coordinator_compute;
  }
  // Fully distributed: one on-device all-reduce, size-independent.
  return config.eval_allreduce;
}

}  // namespace tpu::frameworks
