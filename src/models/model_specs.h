// Specifications of the six MLPerf v0.7 benchmarks the paper scales
// (Section 4). Parameter counts, per-example training FLOPs and dataset
// sizes use public numbers for the reference models; the convergence curves
// are anchored to the behaviour the paper reports (e.g. ResNet-50 trains in
// 44 epochs at batch 4K but 88 epochs at batch 64K; Transformer cannot scale
// its batch past 2048 at all — Shallue et al.'s batch-size wall).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace tpu::models {

enum class Benchmark {
  kBert,
  kResNet50,
  kTransformer,
  kSsd,
  kMaskRcnn,
  kDlrm,
};

const char* BenchmarkName(Benchmark benchmark);
std::vector<Benchmark> AllBenchmarks();

enum class ParallelismKind {
  kDataParallel,      // batch scales: BERT, ResNet-50
  kSpatialPartition,  // images sharded over cores: SSD, MaskRCNN
  kFeatureSharded,    // weights sharded over X-neighbors: Transformer
};

struct ModelSpec {
  Benchmark benchmark;
  std::string name;

  std::int64_t parameters = 0;           // dense (all-reduced) weights
  std::int64_t embedding_parameters = 0; // table-partitioned (DLRM only)
  Flops flops_per_example = 0;           // fwd + bwd training FLOPs
  // Matrix-unit rows one example contributes (tokens for language models,
  // output spatial positions for vision): drives the small-batch MXU
  // utilization rolloff in the step-time model.
  double rows_per_example = 1.0;
  std::int64_t examples_per_epoch = 0;

  // Parallelism limits.
  std::int64_t max_global_batch = 0;   // largest converging batch
  ParallelismKind kind = ParallelismKind::kDataParallel;
  int max_model_parallel_cores = 1;    // spatial/feature partition width

  // Convergence curve: examples processed to reach the MLPerf quality target
  // at the reference batch; larger batches pay a mild efficiency exponent.
  std::int64_t reference_batch = 0;
  std::int64_t reference_examples_to_converge = 0;
  double batch_scaling_exponent = 0.0;

  // Evaluation per MLPerf rules.
  std::int64_t eval_examples = 0;
  Flops eval_flops_per_example = 0;

  // Epochs (fractional) of examples needed to converge at `global_batch`.
  double ExamplesToConverge(std::int64_t global_batch) const;
  std::int64_t StepsToConverge(std::int64_t global_batch) const;
  double EpochsToConverge(std::int64_t global_batch) const;

  // Gradient payload all-reduced each step, in float elements.
  std::int64_t gradient_elements() const { return parameters; }
};

const ModelSpec& GetModelSpec(Benchmark benchmark);

// The chip scale each benchmark was submitted at in MLPerf v0.7 (Table 1)
// and the corresponding global batch.
struct SubmissionScale {
  int chips = 0;
  std::int64_t global_batch = 0;
  int model_parallel_cores = 1;  // 1 = pure data parallelism
};
SubmissionScale GetSubmissionScale(Benchmark benchmark);

// Google's MLPerf v0.6 result for the speedup column of Table 1, in minutes
// (0 where no v0.6 submission exists: BERT and DLRM are new in v0.7).
double MlperfV06Minutes(Benchmark benchmark);

}  // namespace tpu::models
