// Representative HLO blocks of the model-parallel benchmarks, with the
// sharding annotations the paper applies (Section 3.1 / 4.3-4.5). These are
// the inputs to the SPMD partitioner for the Figure 9 experiments and for
// the numeric partitioned-equivalence tests.
//
// The blocks capture the operators whose partitioning behaviour drives each
// model's scaling: dense projections + FFN for the Transformer (feature
// sharding with one all-reduce per partial-sum dot), convolution stacks with
// shrinking spatial dims for SSD (halo exchange, small-late-layer
// inefficiency), and convs + one-hot-gather ROIAlign + top-k for MaskRCNN.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlo/hlo.h"
#include "spmd/spmd.h"

namespace tpu::models {

struct ShardableBlock {
  hlo::HloModule module;
  std::vector<spmd::Sharding> shardings;  // one per parameter, in order
  std::string description;
};

// Transformer layer at MLPerf "big" dimensions by default: Q/K/V and output
// projections plus the 4x FFN. Weights are feature-sharded (vocab/num_heads/
// hidden dims per Section 4.3): projection weights tiled on the output
// feature dim, the FFN second matmul and output projection tiled on the
// contracting dim (each contributes one partial-sum all-reduce).
ShardableBlock TransformerBlock(std::int64_t tokens = 1024,
                                std::int64_t hidden = 1024,
                                std::int64_t ff = 4096);

// SSD-style backbone stack on `image`^2 inputs: strided convolutions with
// spatial dims shrinking toward the tiny late layers that limit spatial
// partitioning (Section 4.4). The image parameter is tiled along H.
ShardableBlock SsdBackboneBlock(std::int64_t batch = 4,
                                std::int64_t image = 300);

// MaskRCNN-style block: large-image backbone convs, ROIAlign as one-hot
// matmul over a feature table, and proposal top-k (Section 4.5). Image tiled
// along H; the gather's one-hot matrix tiled on the ROI (row) dim.
ShardableBlock MaskRcnnBlock(std::int64_t batch = 1, std::int64_t image = 800,
                             std::int64_t rois = 1000);

}  // namespace tpu::models
