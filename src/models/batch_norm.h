// Distributed batch normalization (Section 4.2).
//
// At per-core batches of 8-16, per-core BN statistics are too noisy to hit
// the MLPerf quality target; the paper computes BN statistics across small
// *subgroups* of replicas with an auxiliary all-reduce. This module
// implements the statistics math functionally: the distributed computation
// (per-replica partial sums combined across a subgroup) must equal the
// pooled computation over the subgroup's combined batch, which the tests
// assert exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"

namespace tpu::models {

struct BatchNormStats {
  std::vector<double> mean;      // per channel
  std::vector<double> variance;  // per channel (biased, as in training BN)
  std::int64_t count = 0;        // examples contributing
};

// Per-replica partial sums: (sum, sum of squares, count) per channel.
struct BatchNormPartial {
  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::int64_t count = 0;
};

// Computes the partial sums of a local activation batch laid out
// [batch, channels] (row-major).
BatchNormPartial LocalBatchNormPartial(std::span<const float> activations,
                                       std::int64_t batch,
                                       std::int64_t channels);

// Combines subgroup members' partials (the payload of the auxiliary
// all-reduce: 2*channels + 1 values per replica).
BatchNormPartial CombinePartials(std::span<const BatchNormPartial> partials);

// Finalizes mean/variance from combined partials.
BatchNormStats FinalizeStats(const BatchNormPartial& partial);

// Reference: stats of the pooled batch, computed directly.
BatchNormStats PooledStats(std::span<const float> activations,
                           std::int64_t batch, std::int64_t channels);

// Simulated cost of the subgroup all-reduce per BN layer: payload is
// 2*channels doubles over a ring of `subgroup` chips.
SimTime BatchNormAllReduceSeconds(int subgroup, std::int64_t channels,
                                  Bandwidth link_bandwidth,
                                  SimTime per_step_overhead);

}  // namespace tpu::models
