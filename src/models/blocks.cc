#include "models/blocks.h"

namespace tpu::models {

using spmd::Sharding;

ShardableBlock TransformerBlock(std::int64_t tokens, std::int64_t hidden,
                                std::int64_t ff) {
  ShardableBlock block{hlo::HloModule("transformer_block"), {}, ""};
  hlo::HloModule& m = block.module;

  const auto x = m.Parameter({tokens, hidden}, "activations");
  block.shardings.push_back(Sharding::Replicated());

  // Q/K/V projections: weights split on the num_heads (output) dimension.
  const auto wq = m.Parameter({hidden, hidden}, "w_q");
  const auto wk = m.Parameter({hidden, hidden}, "w_k");
  const auto wv = m.Parameter({hidden, hidden}, "w_v");
  for (int i = 0; i < 3; ++i) block.shardings.push_back(Sharding::Tiled(1));
  const auto q = m.Dot(x, wq);
  const auto k = m.Dot(x, wk);
  const auto v = m.Dot(x, wv);

  // Multi-head attention, head-sharded end to end: the feature tiling of
  // q/k/v becomes a head tiling after the split, scores and context stay
  // local per head, and the merge restores the feature tiling.
  std::int64_t heads = 16;
  while (heads > 1 && hidden % heads != 0) heads /= 2;
  const auto qh = m.SplitHeads(q, heads);
  const auto kh = m.SplitHeads(k, heads);
  const auto vh = m.SplitHeads(v, heads);
  const auto scores =
      m.Softmax(m.Scale(m.BatchMatMul(qh, kh, /*transpose_rhs=*/true),
                        1.0f / 8.0f));
  const auto context = m.MergeHeads(m.BatchMatMul(scores, vh));

  // Output projection contracts the head dimension: partial sums across the
  // shards, resolved by an all-reduce.
  const auto wo = m.Parameter({hidden, hidden}, "w_o");
  block.shardings.push_back(Sharding::Tiled(0));
  const auto attn_out = m.Dot(context, wo);

  // FFN: hidden -> ff (split on ff), relu, ff -> hidden (split on ff,
  // contracting: second all-reduce).
  const auto w1 = m.Parameter({hidden, ff}, "ffn_w1");
  block.shardings.push_back(Sharding::Tiled(1));
  const auto w2 = m.Parameter({ff, hidden}, "ffn_w2");
  block.shardings.push_back(Sharding::Tiled(0));
  const auto h = m.Relu(m.Dot(attn_out, w1));
  const auto out = m.Dot(h, w2);
  m.Add(out, attn_out);  // residual

  block.description = "Transformer attention + FFN, feature/head-sharded";
  return block;
}

ShardableBlock SsdBackboneBlock(std::int64_t batch, std::int64_t image) {
  ShardableBlock block{hlo::HloModule("ssd_backbone"), {}, ""};
  hlo::HloModule& m = block.module;

  const auto img = m.Parameter({batch, image, image, 3}, "images");
  block.shardings.push_back(Sharding::Tiled(1));  // spatial partitioning on H

  struct Layer {
    std::int64_t kernel, out_channels, stride;
  };
  // ResNet-34-ish stem and stages; spatial dims shrink 300 -> 10.
  const std::vector<Layer> layers{
      {7, 64, 2},  {3, 64, 1},  {3, 128, 2}, {3, 128, 1},
      {3, 256, 2}, {3, 256, 1}, {3, 512, 2}, {3, 512, 1},
      {3, 256, 2}, {3, 256, 1},  // SSD extra feature layers (small spatial)
  };
  auto cur = img;
  std::int64_t in_channels = 3;
  int index = 0;
  for (const Layer& layer : layers) {
    const auto kernel = m.Parameter(
        {layer.kernel, layer.kernel, in_channels, layer.out_channels},
        "conv" + std::to_string(index++));
    block.shardings.push_back(Sharding::Replicated());
    cur = m.Relu(m.Conv2D(cur, kernel, layer.stride, /*same_padding=*/true));
    in_channels = layer.out_channels;
  }
  block.description = "SSD backbone convs, spatially partitioned on H";
  return block;
}

ShardableBlock MaskRcnnBlock(std::int64_t batch, std::int64_t image,
                             std::int64_t rois) {
  ShardableBlock block{hlo::HloModule("mask_rcnn_block"), {}, ""};
  hlo::HloModule& m = block.module;

  const auto img = m.Parameter({batch, image, image, 3}, "images");
  block.shardings.push_back(Sharding::Tiled(1));

  // ResNet-50-ish stem + early stages at the large MaskRCNN image size.
  struct Layer {
    std::int64_t kernel, out_channels, stride;
  };
  // Channel widths scaled so the block's compute/comm balance matches the
  // full model's measured ~10% optimized communication share (Section 4.5):
  // the real MaskRCNN spends much of its time in thin FPN/head layers.
  const std::vector<Layer> layers{
      {7, 24, 2}, {3, 48, 2}, {3, 96, 2}, {3, 96, 1}, {3, 192, 2}};
  auto cur = img;
  std::int64_t in_channels = 3;
  int index = 0;
  for (const Layer& layer : layers) {
    const auto kernel = m.Parameter(
        {layer.kernel, layer.kernel, in_channels, layer.out_channels},
        "conv" + std::to_string(index++));
    block.shardings.push_back(Sharding::Replicated());
    cur = m.Relu(m.Conv2D(cur, kernel, layer.stride, /*same_padding=*/true));
    in_channels = layer.out_channels;
  }

  // ROIAlign as one-hot matmul (Section 4.5): gather `rois` rows from a
  // flattened feature table. The one-hot matrix is row-sharded so each core
  // gathers its own proposals.
  const std::int64_t table_rows = 2048;
  const std::int64_t feature_width = 256;
  const auto onehot = m.Parameter({rois, table_rows}, "roi_onehot");
  block.shardings.push_back(Sharding::Tiled(0));
  const auto features = m.Parameter({table_rows, feature_width}, "features");
  block.shardings.push_back(Sharding::Replicated());
  const auto gathered = m.OneHotGather(onehot, features);

  // Per-ROI score head + proposal top-k over class scores.
  const auto w_head = m.Parameter({feature_width, 91}, "head");
  block.shardings.push_back(Sharding::Replicated());
  const auto scores = m.Dot(gathered, w_head);
  m.TopK(scores, 16);

  block.description =
      "MaskRCNN convs + onehot-matmul ROIAlign + top-k, spatially partitioned";
  return block;
}

}  // namespace tpu::models
