#include "models/batch_norm.h"

#include "common/check.h"

namespace tpu::models {

BatchNormPartial LocalBatchNormPartial(std::span<const float> activations,
                                       std::int64_t batch,
                                       std::int64_t channels) {
  TPU_CHECK_EQ(static_cast<std::int64_t>(activations.size()),
               batch * channels);
  BatchNormPartial partial;
  partial.sum.assign(channels, 0.0);
  partial.sum_sq.assign(channels, 0.0);
  partial.count = batch;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const double v = activations[b * channels + c];
      partial.sum[c] += v;
      partial.sum_sq[c] += v * v;
    }
  }
  return partial;
}

BatchNormPartial CombinePartials(std::span<const BatchNormPartial> partials) {
  TPU_CHECK(!partials.empty());
  BatchNormPartial combined;
  combined.sum.assign(partials[0].sum.size(), 0.0);
  combined.sum_sq.assign(partials[0].sum_sq.size(), 0.0);
  for (const BatchNormPartial& partial : partials) {
    TPU_CHECK_EQ(partial.sum.size(), combined.sum.size());
    combined.count += partial.count;
    for (std::size_t c = 0; c < combined.sum.size(); ++c) {
      combined.sum[c] += partial.sum[c];
      combined.sum_sq[c] += partial.sum_sq[c];
    }
  }
  return combined;
}

BatchNormStats FinalizeStats(const BatchNormPartial& partial) {
  TPU_CHECK_GT(partial.count, 0);
  BatchNormStats stats;
  stats.count = partial.count;
  const double n = static_cast<double>(partial.count);
  stats.mean.resize(partial.sum.size());
  stats.variance.resize(partial.sum.size());
  for (std::size_t c = 0; c < partial.sum.size(); ++c) {
    stats.mean[c] = partial.sum[c] / n;
    stats.variance[c] =
        partial.sum_sq[c] / n - stats.mean[c] * stats.mean[c];
  }
  return stats;
}

BatchNormStats PooledStats(std::span<const float> activations,
                           std::int64_t batch, std::int64_t channels) {
  return FinalizeStats(LocalBatchNormPartial(activations, batch, channels));
}

SimTime BatchNormAllReduceSeconds(int subgroup, std::int64_t channels,
                                  Bandwidth link_bandwidth,
                                  SimTime per_step_overhead) {
  TPU_CHECK_GT(subgroup, 0);
  if (subgroup == 1) return 0.0;
  // Ring all-reduce of (2*channels + 1) float32 values.
  const double bytes = (2.0 * channels + 1) * 4;
  return 2.0 * bytes * (subgroup - 1) / subgroup / link_bandwidth +
         2.0 * (subgroup - 1) * per_step_overhead;
}

}  // namespace tpu::models
