#include "models/model_specs.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace tpu::models {

const char* BenchmarkName(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kBert: return "BERT";
    case Benchmark::kResNet50: return "ResNet-50";
    case Benchmark::kTransformer: return "Transformer";
    case Benchmark::kSsd: return "SSD";
    case Benchmark::kMaskRcnn: return "MaskRCNN";
    case Benchmark::kDlrm: return "DLRM";
  }
  return "?";
}

std::vector<Benchmark> AllBenchmarks() {
  return {Benchmark::kBert,       Benchmark::kResNet50,
          Benchmark::kTransformer, Benchmark::kSsd,
          Benchmark::kMaskRcnn,    Benchmark::kDlrm};
}

double ModelSpec::ExamplesToConverge(std::int64_t global_batch) const {
  TPU_CHECK_GT(global_batch, 0);
  TPU_CHECK_LE(global_batch, max_global_batch)
      << name << " does not converge at batch " << global_batch;
  // At or below the reference batch the model is in the "perfect scaling"
  // regime (Shallue et al. 2018); above it, extra epochs are needed (e.g.
  // ResNet-50: 44 epochs at 4K -> 88 at 64K, exponent 0.25 over the 16x).
  const double ratio =
      static_cast<double>(global_batch) / static_cast<double>(reference_batch);
  const double penalty =
      ratio > 1.0 ? std::pow(ratio, batch_scaling_exponent) : 1.0;
  return static_cast<double>(reference_examples_to_converge) * penalty;
}

std::int64_t ModelSpec::StepsToConverge(std::int64_t global_batch) const {
  return static_cast<std::int64_t>(
      std::ceil(ExamplesToConverge(global_batch) / global_batch));
}

double ModelSpec::EpochsToConverge(std::int64_t global_batch) const {
  return ExamplesToConverge(global_batch) /
         static_cast<double>(examples_per_epoch);
}

namespace {

ModelSpec MakeBert() {
  ModelSpec spec;
  spec.benchmark = Benchmark::kBert;
  spec.name = "BERT";
  spec.parameters = 330'000'000;           // BERT-large
  // Effective training FLOPs per sequence: masked-LM objective with the
  // average sequence well under the 512 cap.
  spec.flops_per_example = 0.8e12;
  spec.rows_per_example = 512;
  spec.examples_per_epoch = 156'000'000;   // Wikipedia sequences
  spec.max_global_batch = 32768;           // LAMB large-batch regime
  spec.kind = ParallelismKind::kDataParallel;
  spec.reference_batch = 8192;             // per-chip batch 2 at 4096 chips
  spec.reference_examples_to_converge = 6'000'000;
  spec.batch_scaling_exponent = 0.3;
  spec.eval_examples = 10'000;
  spec.eval_flops_per_example = 3.3e11;    // forward only
  return spec;
}

ModelSpec MakeResNet50() {
  ModelSpec spec;
  spec.benchmark = Benchmark::kResNet50;
  spec.name = "ResNet-50";
  spec.parameters = 25'600'000;
  spec.flops_per_example = 12.3e9;         // ~3x the 4.1 GFLOP forward pass
  spec.rows_per_example = 784;
  spec.examples_per_epoch = 1'281'167;     // ImageNet-1K
  spec.max_global_batch = 65536;
  spec.kind = ParallelismKind::kDataParallel;
  spec.reference_batch = 4096;             // 44 epochs (Section 5)
  spec.reference_examples_to_converge = 44 * 1'281'167LL;
  spec.batch_scaling_exponent = 0.25;      // 88 epochs at 64K
  spec.eval_examples = 50'000;
  spec.eval_flops_per_example = 4.1e9;
  return spec;
}

ModelSpec MakeTransformer() {
  ModelSpec spec;
  spec.benchmark = Benchmark::kTransformer;
  spec.name = "Transformer";
  spec.parameters = 210'000'000;           // MLPerf "big" transformer
  spec.flops_per_example = 2.0e10;
  spec.rows_per_example = 64;
  spec.examples_per_epoch = 4'500'000;     // WMT en-de sentence pairs
  spec.max_global_batch = 2048;            // the fixed-batch wall (Section 4.3)
  spec.kind = ParallelismKind::kFeatureSharded;
  spec.max_model_parallel_cores = 4;       // weights sharded on 4 X-neighbors
  spec.reference_batch = 2048;
  spec.reference_examples_to_converge = 8'000'000;
  spec.batch_scaling_exponent = 0.0;       // batch never exceeds reference
  spec.eval_examples = 3'000;
  spec.eval_flops_per_example = 7.0e9;
  return spec;
}

ModelSpec MakeSsd() {
  ModelSpec spec;
  spec.benchmark = Benchmark::kSsd;
  spec.name = "SSD";
  spec.parameters = 36'000'000;            // SSD + ResNet-34 backbone
  spec.flops_per_example = 1.4e11;
  spec.rows_per_example = 1100;
  spec.examples_per_epoch = 118'287;       // COCO train2017
  spec.max_global_batch = 4096;            // new hyperparameters (Section 4.4)
  spec.kind = ParallelismKind::kSpatialPartition;
  spec.max_model_parallel_cores = 8;       // spatial partitioning to 8 cores
  spec.reference_batch = 2048;             // MLPerf v0.6 batch
  spec.reference_examples_to_converge = 49 * 118'287LL;  // ~49 epochs
  spec.batch_scaling_exponent = 0.15;
  spec.eval_examples = 5'000;
  spec.eval_flops_per_example = 3.4e10;
  return spec;
}

ModelSpec MakeMaskRcnn() {
  ModelSpec spec;
  spec.benchmark = Benchmark::kMaskRcnn;
  spec.name = "MaskRCNN";
  spec.parameters = 46'000'000;            // ResNet-50 + FPN + heads
  spec.flops_per_example = 9.0e11;         // 800x1333 two-stage detector
  // Two-stage detectors run many tiny RPN/ROI-head ops; the effective MXU
  // rows per example are far below the image size would suggest.
  spec.rows_per_example = 18;
  spec.examples_per_epoch = 118'287;
  spec.max_global_batch = 256;             // quality-limited (Section 4.5)
  spec.kind = ParallelismKind::kSpatialPartition;
  spec.max_model_parallel_cores = 4;       // 256 examples over 1024 cores
  spec.reference_batch = 128;              // MLPerf v0.6 batch
  spec.reference_examples_to_converge = 13 * 118'287LL;
  spec.batch_scaling_exponent = 0.2;
  spec.eval_examples = 5'000;
  spec.eval_flops_per_example = 3.0e11;
  return spec;
}

ModelSpec MakeDlrm() {
  ModelSpec spec;
  spec.benchmark = Benchmark::kDlrm;
  spec.name = "DLRM";
  spec.parameters = 500'000;                // dense MLPs (all-reduced)
  spec.embedding_parameters = 24'000'000'000;  // table-partitioned
  spec.flops_per_example = 1.0e7;
  spec.rows_per_example = 1;
  spec.examples_per_epoch = 4'000'000'000;  // Criteo Terabyte
  spec.max_global_batch = 65536;            // (Section 4.6)
  spec.kind = ParallelismKind::kDataParallel;
  spec.reference_batch = 65536;
  spec.reference_examples_to_converge = 4'000'000'000;  // ~1 epoch
  spec.batch_scaling_exponent = 0.0;
  spec.eval_examples = 90'000'000;          // the 90M-sample AUC eval set
  spec.eval_flops_per_example = 3.5e6;
  return spec;
}

}  // namespace

const ModelSpec& GetModelSpec(Benchmark benchmark) {
  static const ModelSpec bert = MakeBert();
  static const ModelSpec resnet = MakeResNet50();
  static const ModelSpec transformer = MakeTransformer();
  static const ModelSpec ssd = MakeSsd();
  static const ModelSpec mask_rcnn = MakeMaskRcnn();
  static const ModelSpec dlrm = MakeDlrm();
  switch (benchmark) {
    case Benchmark::kBert: return bert;
    case Benchmark::kResNet50: return resnet;
    case Benchmark::kTransformer: return transformer;
    case Benchmark::kSsd: return ssd;
    case Benchmark::kMaskRcnn: return mask_rcnn;
    case Benchmark::kDlrm: return dlrm;
  }
  return bert;  // unreachable
}

SubmissionScale GetSubmissionScale(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kBert: return {4096, 8192, 1};
    case Benchmark::kResNet50: return {4096, 65536, 1};
    case Benchmark::kTransformer: return {4096, 2048, 4};
    case Benchmark::kSsd: return {4096, 4096, 8};
    case Benchmark::kMaskRcnn: return {512, 256, 4};
    case Benchmark::kDlrm: return {256, 65536, 1};
  }
  return {};
}

double MlperfV06Minutes(Benchmark benchmark) {
  // Google's MLPerf v0.6 submissions (Table 1's speedup baseline).
  switch (benchmark) {
    case Benchmark::kBert: return 0.0;  // new in v0.7
    case Benchmark::kResNet50: return 1.28;
    case Benchmark::kTransformer: return 0.85;
    case Benchmark::kSsd: return 1.21;
    case Benchmark::kMaskRcnn: return 35.6;
    case Benchmark::kDlrm: return 0.0;  // new in v0.7
  }
  return 0.0;
}

}  // namespace tpu::models
