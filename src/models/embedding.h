// Partitioned embedding tables for DLRM (Section 4.6).
//
// The Criteo model's embedding tables are too large for any single chip's
// HBM, so the paper partitions the large tables across chips (row-sharded)
// while replicating the small ones. This module implements that placement
// functionally: lookups against the partitioned layout return exactly the
// same vectors as against a single-machine copy, while the traffic
// accounting records the all-to-all exchange the sharded lookups require —
// the communication the DLRM step-time model charges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace tpu::models {

struct EmbeddingTableSpec {
  std::int64_t rows = 0;
  std::int64_t dim = 128;
  Bytes bytes() const { return rows * dim * 4; }
};

enum class Placement { kReplicated, kRowSharded };

struct EmbeddingPlacement {
  std::vector<Placement> per_table;
  Bytes bytes_per_chip = 0;   // HBM cost of the layout
  int replicated_tables = 0;
  int sharded_tables = 0;
};

// The paper's policy: replicate a table when it is small enough that local
// lookups are cheaper than an all-to-all; shard the rest by rows.
EmbeddingPlacement ChoosePlacement(const std::vector<EmbeddingTableSpec>& tables,
                                   int num_chips,
                                   Bytes replicate_threshold = 64 * kMiB);

// A functional partitioned embedding bank across `num_chips` simulated
// chips. Tables are deterministic functions of (table, row, column) so the
// reference values need no storage; what is stored mirrors the real layout
// so lookups must route to the right owner.
class PartitionedEmbeddings {
 public:
  PartitionedEmbeddings(std::vector<EmbeddingTableSpec> tables, int num_chips,
                        Bytes replicate_threshold = 64 * kMiB);

  const EmbeddingPlacement& placement() const { return placement_; }
  int num_chips() const { return num_chips_; }

  // The value a single-machine (unpartitioned) embedding would return.
  static float ReferenceValue(int table, std::int64_t row, std::int64_t col);

  // Chip that owns `row` of `table` under the current placement (the asking
  // chip itself for replicated tables).
  int OwnerOf(int table, std::int64_t row, int asking_chip) const;

  struct LookupResult {
    std::vector<float> vector;      // the embedding row (dim floats)
    bool remote = false;            // required a cross-chip fetch
  };
  // Lookup as issued by `asking_chip`; remote lookups add to the traffic
  // counters (the per-step all-to-all payload).
  LookupResult Lookup(int table, std::int64_t row, int asking_chip);

  // Traffic accounting since construction.
  Bytes remote_bytes() const { return remote_bytes_; }
  std::int64_t remote_lookups() const { return remote_lookups_; }
  std::int64_t local_lookups() const { return local_lookups_; }

 private:
  std::vector<EmbeddingTableSpec> tables_;
  int num_chips_;
  EmbeddingPlacement placement_;
  Bytes remote_bytes_ = 0;
  std::int64_t remote_lookups_ = 0;
  std::int64_t local_lookups_ = 0;
};

}  // namespace tpu::models
