#include "models/embedding.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace tpu::models {

EmbeddingPlacement ChoosePlacement(const std::vector<EmbeddingTableSpec>& tables,
                                   int num_chips, Bytes replicate_threshold) {
  TPU_CHECK_GT(num_chips, 0);
  EmbeddingPlacement placement;
  placement.per_table.reserve(tables.size());
  for (const EmbeddingTableSpec& table : tables) {
    TPU_CHECK_GT(table.rows, 0);
    TPU_CHECK_GT(table.dim, 0);
    if (table.bytes() <= replicate_threshold) {
      placement.per_table.push_back(Placement::kReplicated);
      placement.bytes_per_chip += table.bytes();
      ++placement.replicated_tables;
    } else {
      placement.per_table.push_back(Placement::kRowSharded);
      placement.bytes_per_chip += CeilDiv(table.rows, num_chips) *
                                  table.dim * 4;
      ++placement.sharded_tables;
    }
  }
  return placement;
}

PartitionedEmbeddings::PartitionedEmbeddings(
    std::vector<EmbeddingTableSpec> tables, int num_chips,
    Bytes replicate_threshold)
    : tables_(std::move(tables)),
      num_chips_(num_chips),
      placement_(ChoosePlacement(tables_, num_chips, replicate_threshold)) {}

float PartitionedEmbeddings::ReferenceValue(int table, std::int64_t row,
                                            std::int64_t col) {
  // A cheap deterministic hash: the "trained" table contents.
  std::uint64_t h = static_cast<std::uint64_t>(table) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(row) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(col) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<float>(h % 2048) / 1024.0f - 1.0f;
}

int PartitionedEmbeddings::OwnerOf(int table, std::int64_t row,
                                   int asking_chip) const {
  TPU_CHECK_GE(table, 0);
  TPU_CHECK_LT(table, static_cast<int>(tables_.size()));
  TPU_CHECK_GE(row, 0);
  TPU_CHECK_LT(row, tables_[table].rows);
  if (placement_.per_table[table] == Placement::kReplicated) {
    return asking_chip;
  }
  // Row-sharded: contiguous row ranges per chip (ceil split).
  const std::int64_t chunk = CeilDiv(tables_[table].rows, num_chips_);
  return static_cast<int>(row / chunk);
}

PartitionedEmbeddings::LookupResult PartitionedEmbeddings::Lookup(
    int table, std::int64_t row, int asking_chip) {
  TPU_CHECK_GE(asking_chip, 0);
  TPU_CHECK_LT(asking_chip, num_chips_);
  const int owner = OwnerOf(table, row, asking_chip);
  LookupResult result;
  result.remote = owner != asking_chip;
  const std::int64_t dim = tables_[table].dim;
  result.vector.resize(dim);
  for (std::int64_t c = 0; c < dim; ++c) {
    result.vector[c] = ReferenceValue(table, row, c);
  }
  if (result.remote) {
    ++remote_lookups_;
    remote_bytes_ += dim * 4;
  } else {
    ++local_lookups_;
  }
  return result;
}

}  // namespace tpu::models
