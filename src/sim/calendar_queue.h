// Two-level indexed calendar queue for simulator events.
//
// The near future is an array of fixed-width time buckets; events beyond the
// bucketed window wait in a single overflow heap. Pops scan forward from the
// current bucket, so ordering work is paid per bucket-sized heap (tens of
// events) instead of per whole-queue heap (hundreds of thousands), and when
// the window drains the queue re-centers itself on the earliest overflow
// event — sparse stretches (a failed-link stall hours away) cost one refill,
// not a scan.
//
// Bucket nodes are 24-byte PODs (when, seq, slot index): reordering moves
// trivially-copyable keys the compiler inlines to register copies, while the
// event itself — with its callback — is written into a slab once on Push and
// moved out once on PopTop. Each bucket starts life as a plain sorted run
// (synchronous collectives push waves of same-timestamp events in ascending
// seq order, so push and pop are both O(1) appends/advances) and falls back
// to a binary min-heap only when an out-of-order push lands in it.
//
// Exactness is the contract: every bucket yields its events in ascending
// (when, seq) — trivially in sorted-run mode, by heap property otherwise —
// and the bucket index map is monotone in `when`, so extraction order is
// exactly the (when, seq) total order a single global heap would produce —
// bit-identical simulated time, independent of bucket geometry.
//
// Events whose timestamp precedes the current bucket (legal after the window
// re-centers past a deadline-paused clock) clamp into the current bucket:
// the in-bucket heap still orders them first, and every later bucket holds
// strictly later events, so the total order is preserved.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace tpu::sim {

// Event must expose `SimTime when` and an insertion sequence number `seq`;
// extraction follows ascending (when, seq).
template <typename Event>
class CalendarQueue {
 public:
  // Default geometry: ~15.6ns buckets, 256us window. Dense collective
  // simulations run thousands of events per microsecond, so narrow buckets
  // keep each in-bucket heap small enough to stay cache-resident; the window
  // is wide enough that normal link-latency scheduling never overflows.
  explicit CalendarQueue(SimTime bucket_width = 1.5625e-8,
                         std::size_t num_buckets = 16384)
      : bucket_width_(bucket_width),
        num_buckets_(num_buckets),
        buckets_(num_buckets),
        window_start_(0.0),
        window_end_(bucket_width * static_cast<SimTime>(num_buckets)) {
    TPU_CHECK_GT(bucket_width, 0.0);
    TPU_CHECK_GT(num_buckets, 0u);
  }

  bool empty() const { return near_count_ == 0 && overflow_.empty(); }
  std::size_t size() const { return near_count_ + overflow_.size(); }
  // Times the window re-centered on the overflow heap (event-core health).
  std::uint64_t refills() const { return refills_; }

  void Push(Event&& event) {
    const Node node{event.when, event.seq, Store(std::move(event))};
    if (node.when >= window_end_) {
      overflow_.push_back(node);
      std::push_heap(overflow_.begin(), overflow_.end(), After{});
      return;
    }
    PushNear(node);
  }

  // The next event in (when, seq) order. May advance the internal cursor or
  // re-center the window, hence non-const; the queue must not be empty.
  const Event& Top() {
    Normalize();
    return slab_[buckets_[cursor_].Min().slot];
  }

  // Removes and returns the next event (moved out, never copied).
  Event PopTop() {
    Normalize();
    const std::uint32_t slot = buckets_[cursor_].PopMin();
    --near_count_;
    Event event = std::move(slab_[slot]);
    free_slots_.push_back(slot);
    return event;
  }

 private:
  // What the buckets actually order: the sort key plus a slab index.
  // Trivially copyable, so reordering moves compile to plain register/stack
  // copies.
  struct Node {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Min-heap comparator: the STL heap primitives build a max-heap on the
  // comparator, so "after" ordering yields ascending (when, seq) extraction.
  struct After {
    bool operator()(const Node& a, const Node& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // One bucket. Synchronous collectives complete waves of messages at
  // identical timestamps in schedule order, so pushes into a bucket usually
  // arrive already in ascending (when, seq) order; the bucket exploits that
  // by staying a plain FIFO run (O(1) push, O(1) pop) until an out-of-order
  // push arrives, at which point the unconsumed tail is heapified once and
  // the bucket runs as a binary heap until it drains. Extraction order is
  // exact in both modes.
  struct Bucket {
    std::vector<Node> nodes;
    std::uint32_t head = 0;  // consumed prefix in sorted-run mode
    bool heaped = false;

    bool Empty() const {
      return heaped ? nodes.empty() : head == nodes.size();
    }

    void Push(const Node& node) {
      if (!heaped) {
        if (head == nodes.size()) {
          // Fully drained: restart the run.
          nodes.clear();
          head = 0;
          nodes.push_back(node);
          return;
        }
        if (!After{}(nodes.back(), node)) {  // node sorts at/after the back
          nodes.push_back(node);
          return;
        }
        // Out-of-order push: drop the consumed prefix and fall back to a
        // heap for the rest of this bucket's lifetime in the window.
        nodes.erase(nodes.begin(), nodes.begin() + head);
        head = 0;
        heaped = true;
        nodes.push_back(node);
        std::make_heap(nodes.begin(), nodes.end(), After{});
        return;
      }
      nodes.push_back(node);
      std::push_heap(nodes.begin(), nodes.end(), After{});
    }

    const Node& Min() const { return heaped ? nodes.front() : nodes[head]; }

    std::uint32_t PopMin() {
      if (!heaped) return nodes[head++].slot;
      std::pop_heap(nodes.begin(), nodes.end(), After{});
      const std::uint32_t slot = nodes.back().slot;
      nodes.pop_back();
      if (nodes.empty()) heaped = false;  // reset to FIFO mode for reuse
      return slot;
    }
  };

  std::uint32_t Store(Event&& event) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot] = std::move(event);
      return slot;
    }
    slab_.push_back(std::move(event));
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }

  void PushNear(const Node& node) {
    std::size_t index = cursor_;
    if (node.when > window_start_) {
      const double offset = (node.when - window_start_) / bucket_width_;
      // The index map only needs monotonicity for exactness; clamp fp
      // boundary spill into the window edges.
      std::size_t computed = offset >= static_cast<double>(num_buckets_)
                                 ? num_buckets_ - 1
                                 : static_cast<std::size_t>(offset);
      if (computed > index) index = computed;
      if (index >= num_buckets_) index = num_buckets_ - 1;
    }
    buckets_[index].Push(node);
    ++near_count_;
  }

  // Establishes: buckets_[cursor_] holds the globally minimal event.
  void Normalize() {
    TPU_CHECK(!empty()) << "Top/Pop on an empty CalendarQueue";
    if (near_count_ == 0) Refill();
    while (buckets_[cursor_].Empty()) {
      ++cursor_;
      TPU_CHECK_LT(cursor_, num_buckets_);
    }
  }

  // Re-centers the bucketed window on the earliest overflow event and pulls
  // every overflow event inside the new window into its bucket.
  void Refill() {
    ++refills_;
    cursor_ = 0;
    window_start_ = overflow_.front().when;
    window_end_ =
        window_start_ + bucket_width_ * static_cast<SimTime>(num_buckets_);
    while (!overflow_.empty() && overflow_.front().when < window_end_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), After{});
      PushNear(overflow_.back());
      overflow_.pop_back();
    }
  }

  SimTime bucket_width_;
  std::size_t num_buckets_;
  std::vector<Bucket> buckets_;  // each FIFO-run or min-heap on (when, seq)
  std::size_t cursor_ = 0;       // first possibly-nonempty bucket
  std::size_t near_count_ = 0;   // events across all buckets
  SimTime window_start_;
  SimTime window_end_;
  std::vector<Node> overflow_;   // min-heap of nodes at/after window_end_
  std::uint64_t refills_ = 0;
  std::vector<Event> slab_;              // parked events, indexed by slot
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace tpu::sim
