// Causal observation hook for the DES core.
//
// An EventObserver sees every event the simulator schedules and fires, plus
// the higher-level causal annotations the network and collectives volunteer:
// which message released a completion event, which join-counter a
// notification fed, and which collective phase is active. Together these
// turn one simulation into a causal DAG — the substrate for critical-path
// extraction and slack analysis (trace/critical_path.h implements the one
// real observer).
//
// Like the trace/metrics globals, the observer is a thread-local pointer
// that is null by default: every instrumentation site is one load and
// branch, the observer only records (it never schedules), and simulated
// times are bit-identical with observation on or off. The interface lives in
// sim (header-only, no topology/trace dependency) so the simulator, network
// and collectives can all feed it without layering inversions; link ids,
// pods and type names are carried as plain ints/strings.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace tpu::sim {

// Per-hop provenance of one simulated message, recorded by net::Network at
// Send time. Times are absolute simulated seconds; `healthy_serialize` is
// what the serialization would have cost on an undegraded link, which is
// what lets what-if analysis price healing a link without re-simulating.
struct MessageHopRecord {
  std::int32_t link = -1;        // topo::LinkId of the directed link
  std::int32_t pod = 0;          // pod of the hop's source chip
  const char* type_name = "";    // static string ("meshX", "wrapY", ...)
  SimTime queue = 0;             // FIFO wait before the link was free
  SimTime serialize = 0;         // actual occupancy (degradation + stalls)
  SimTime healthy_serialize = 0; // bytes / configured bandwidth
  SimTime latency = 0;           // propagation after serialization
  SimTime start = 0;             // absolute time serialization began
};

// A message and its route, attached to the completion event's seq.
struct MessageRecord {
  std::int32_t from = -1;
  std::int32_t to = -1;
  std::int64_t bytes = 0;
  SimTime overhead = 0;          // per-message sender overhead
  std::vector<MessageHopRecord> hops;  // empty for self-sends
};

class EventObserver {
 public:
  // parent_seq when the schedule happened outside any event callback.
  static constexpr std::int64_t kNoEvent = -1;

  virtual ~EventObserver() = default;

  // `seq` was scheduled at simulated time `now` to fire at `when`;
  // `parent_seq` is the event whose callback performed the scheduling
  // (kNoEvent when scheduled from outside the event loop).
  virtual void OnSchedule(std::uint64_t seq, std::int64_t parent_seq,
                          SimTime now, SimTime when) = 0;
  // `seq` is about to run its callback at time `when`.
  virtual void OnFire(std::uint64_t seq, SimTime when) = 0;

  // The event `seq` is the completion of `record` (called by net::Network
  // immediately after scheduling the completion).
  virtual void OnMessage(std::uint64_t seq, MessageRecord record) {
    (void)seq;
    (void)record;
  }

  // A join-counter (barrier) expecting `expected` notifications was created;
  // the returned handle is passed to each OnJoinNotify. Return a negative
  // handle to decline tracking this join.
  virtual int OnJoinOpen(int expected) {
    (void)expected;
    return -1;
  }
  // The event currently firing delivered one notification to `join`; the
  // last notification is the join's release (its continuation runs inside
  // the same callback).
  virtual void OnJoinNotify(int join) { (void)join; }

  // Collectives label the phase about to schedule events ("Y-reduce-scatter",
  // a lowered stage name, ...). Applies to subsequently scheduled events
  // until the next call.
  virtual void OnPhase(const char* name) { (void)name; }
};

namespace internal {
inline EventObserver*& EventObserverSlot() {
  thread_local EventObserver* observer = nullptr;
  return observer;
}
}  // namespace internal

// Thread-local current observer; null (the default) disables observation.
inline EventObserver* CurrentEventObserver() {
  return internal::EventObserverSlot();
}
inline void SetCurrentEventObserver(EventObserver* observer) {
  internal::EventObserverSlot() = observer;
}

// RAII install/uninstall (restores the previous observer).
class ScopedEventObserver {
 public:
  explicit ScopedEventObserver(EventObserver* observer)
      : previous_(CurrentEventObserver()) {
    SetCurrentEventObserver(observer);
  }
  ~ScopedEventObserver() { SetCurrentEventObserver(previous_); }
  ScopedEventObserver(const ScopedEventObserver&) = delete;
  ScopedEventObserver& operator=(const ScopedEventObserver&) = delete;

 private:
  EventObserver* previous_;
};

}  // namespace tpu::sim
