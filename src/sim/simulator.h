// Discrete-event simulation core.
//
// Every timed behaviour in the multipod model — link transfers, compute
// phases, host pipeline stages — is expressed as events on one global
// simulated clock. Events at equal timestamps run in insertion order, which
// together with the deterministic RNG makes every simulation bit-reproducible.
//
// The hot path is allocation-free: callbacks live inline in the event (or in
// recycled pool blocks — see event_callback.h) and pending events sit in an
// indexed calendar queue (calendar_queue.h) that extracts in exact
// (when, seq) order. A Simulator and everything it schedules is confined to
// one thread at a time; independent Simulators on different threads do not
// share state, which is what lets sweeps and planner searches run points in
// parallel with bit-identical results. partitioned_simulator.h builds a
// conservative synchronized-window parallel engine out of several Simulators
// (one per pod partition plus a global lane), draining each lane on exactly
// one worker per window with barriers in between.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/calendar_queue.h"
#include "sim/event_callback.h"
#include "sim/event_observer.h"

namespace tpu::sim {

class Simulator {
 public:
  using Callback = EventCallback;

  // Binds to the thread's active callback pool (the thread's own pool unless
  // the PDES engine has installed a per-partition override); pool health
  // accessors report deltas against that pool.
  Simulator() : Simulator(&CallbackPool::Active()) {}
  explicit Simulator(CallbackPool* pool)
      : pool_(pool), pool_baseline_(pool->stats()) {}

  SimTime now() const { return now_; }

  // Schedules `cb` to run at now() + delay. delay must be >= 0. Returns the
  // event's seq — its identity for causal observers (EventObserver).
  std::uint64_t Schedule(SimTime delay, Callback cb) {
    TPU_CHECK_GE(delay, 0.0);
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Schedules `cb` at an absolute simulated time >= now(). Returns the
  // event's seq.
  std::uint64_t ScheduleAt(SimTime when, Callback cb) {
    TPU_CHECK_GE(when, now_);
    if (cb.storage() == EventCallback::Storage::kInline) {
      ++callbacks_inline_;
    } else {
      ++callbacks_pooled_;
    }
    const std::uint64_t seq = next_seq_++;
    queue_.Push(Event{when, seq, std::move(cb)});
    ++events_scheduled_;
    // Pending telemetry/engine events share the queue but not the
    // accounting: the work-event high-water mark must read the same with
    // sampling on or off.
    const std::size_t depth =
        queue_.size() - telemetry_seqs_.size() - engine_seqs_.size();
    if (depth > peak_queue_depth_) peak_queue_depth_ = depth;
    if (EventObserver* observer = CurrentEventObserver()) {
      observer->OnSchedule(seq, current_seq_, now_, when);
    }
    return seq;
  }

  // Schedules a telemetry-class event (telemetry/sampler.h): it shares the
  // clock and the (when, seq) total order with work events — so sampling
  // reads a consistent instant of the simulation — but is excluded from the
  // user-visible accounting (events_scheduled/processed, peak_queue_depth,
  // callback-storage counters) and is invisible to any installed
  // EventObserver, keeping critical-path DAGs and exported counters
  // bit-identical with sampling on or off. Telemetry callbacks must only
  // observe and (re)schedule further telemetry events, never work events.
  std::uint64_t ScheduleTelemetryAt(SimTime when, Callback cb) {
    TPU_CHECK_GE(when, now_);
    const std::uint64_t seq = next_seq_++;
    queue_.Push(Event{when, seq, std::move(cb)});
    ++telemetry_events_scheduled_;
    telemetry_seqs_.push_back(seq);  // seqs are monotonic: stays sorted
    return seq;
  }

  // Schedules an engine-class event (the PDES engine's window protocol:
  // cross-partition deliveries and barrier-release continuations). Like
  // telemetry-class events these share the clock and the (when, seq) total
  // order but are excluded from the user-visible work accounting and
  // invisible to observers — a windowed run reports the same
  // events_scheduled/processed as the serial run it reproduces. Unlike
  // telemetry events their callbacks schedule real work (that is their whole
  // job); the engine only runs when no observer is installed, so the
  // "children of an invisible parent" case never reaches an observer.
  std::uint64_t ScheduleEngineAt(SimTime when, Callback cb) {
    TPU_CHECK_GE(when, now_);
    const std::uint64_t seq = next_seq_++;
    queue_.Push(Event{when, seq, std::move(cb)});
    ++engine_events_scheduled_;
    engine_seqs_.push_back(seq);  // seqs are monotonic: stays sorted
    return seq;
  }

  // Runs until the event queue drains. Returns the final clock value.
  SimTime Run() {
    while (!queue_.empty()) Step();
    return now_;
  }

  // Drains events strictly earlier than `bound` — the PDES engine's window
  // primitive (events at exactly the window boundary belong to the next
  // window). Stops early when *pause flips true (the engine sets it when a
  // globally-executing callback fans work out to partition lanes, so the
  // global lane never runs ahead of partition activity it just created).
  // Returns the number of events processed.
  std::uint64_t RunBefore(SimTime bound, const bool* pause = nullptr) {
    std::uint64_t processed = 0;
    while (!queue_.empty() && queue_.Top().when < bound) {
      Step();
      ++processed;
      if (pause != nullptr && *pause) break;
    }
    return processed;
  }

  // Earliest pending event time. Only valid when !empty(). Non-const because
  // peeking may re-center the calendar queue's window (an internal
  // reorganization; the event order is unchanged).
  SimTime NextEventTime() {
    TPU_CHECK(!queue_.empty());
    return queue_.Top().when;
  }

  // Advances the clock to `when` and runs `fn` as if it were the body of an
  // event at that time, without going through the queue or the accounting.
  // The PDES engine uses this to run partition kick-offs at the fan-out
  // instant; the serial run executes the identical code inline inside the
  // event that triggered the fan-out, so neither path counts an extra event.
  template <typename Fn>
  void ExecuteAt(SimTime when, Fn&& fn) {
    TPU_CHECK_GE(when, now_);
    now_ = when;
    std::forward<Fn>(fn)();
  }

  // What RunUntil does with the clock when the queue drains before the
  // deadline. kAdvanceToDeadline (the historical behaviour, and still the
  // default) jumps now() forward to the deadline — convenient for "simulate
  // exactly T seconds" loops, but it inflates any timestamp taken at
  // quiescence (e.g. trace spans closed after the run) to the deadline.
  // kStopAtLastEvent leaves now() at the final processed event, so
  // quiescence timestamps reflect when work actually finished.
  enum class DeadlinePolicy { kAdvanceToDeadline, kStopAtLastEvent };

  // Runs until the queue drains or the clock passes `deadline`; `policy`
  // selects the clock value when the queue drained early (see above).
  SimTime RunUntil(SimTime deadline,
                   DeadlinePolicy policy = DeadlinePolicy::kAdvanceToDeadline) {
    while (!queue_.empty() && queue_.Top().when <= deadline) Step();
    if (policy == DeadlinePolicy::kAdvanceToDeadline && now_ < deadline) {
      now_ = deadline;
    }
    return now_;
  }

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }
  // Total events ever scheduled (processed + still queued).
  std::uint64_t events_scheduled() const { return events_scheduled_; }
  // High-water mark of the pending-event queue.
  std::size_t peak_queue_depth() const { return peak_queue_depth_; }
  // Pending work events right now (telemetry- and engine-class events
  // excluded) — the quantity the telemetry sampler itself records as
  // "sim.queue_depth".
  std::size_t queue_depth() const {
    return queue_.size() - telemetry_seqs_.size() - engine_seqs_.size();
  }
  // Telemetry-class events, accounted separately from the user-visible
  // events_scheduled()/events_processed() counters.
  std::uint64_t telemetry_events_scheduled() const {
    return telemetry_events_scheduled_;
  }
  std::uint64_t telemetry_events_processed() const {
    return telemetry_events_processed_;
  }
  // Engine-class (PDES window protocol) events, likewise accounted apart
  // from the user-visible counters. Always zero in a serial run.
  std::uint64_t engine_events_scheduled() const {
    return engine_events_scheduled_;
  }
  std::uint64_t engine_events_processed() const {
    return engine_events_processed_;
  }

  // Event-core health: how callbacks were stored, and how the out-of-line
  // pool behaved over this simulator's lifetime (deltas against the owning
  // thread's pool at construction — exact while one simulator at a time runs
  // on the thread, which is how every driver here uses them).
  std::uint64_t callbacks_inline() const { return callbacks_inline_; }
  std::uint64_t callbacks_pooled() const { return callbacks_pooled_; }
  std::uint64_t pool_hits() const {
    return pool_->stats().hits - pool_baseline_.hits;
  }
  std::uint64_t pool_fresh_allocs() const {
    return pool_->stats().fresh - pool_baseline_.fresh;
  }
  std::uint64_t pool_oversize_allocs() const {
    return pool_->stats().oversize - pool_baseline_.oversize;
  }
  // Times the calendar queue re-centered its bucket window.
  std::uint64_t queue_refills() const { return queue_.refills(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: equal-time events run in schedule order
    Callback cb;
  };

  void Step() {
    // PopTop moves the event out before the callback runs, so callbacks are
    // free to schedule new events (no reference into the queue is held).
    Event ev = queue_.PopTop();
    TPU_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    // Telemetry events advance the clock to their own timestamp (which never
    // reorders work events — they only fire between work events at the same
    // instant boundaries the queue's total order already defines) but touch
    // none of the work-event accounting and stay invisible to observers.
    // The emptiness check keeps the telemetry-off hot path at one branch.
    if (!telemetry_seqs_.empty() && PopTelemetrySeq(ev.seq)) {
      ++telemetry_events_processed_;
      ev.cb();
      return;
    }
    // Engine-class events (cross-partition deliveries, barrier releases) get
    // the same treatment: clock and ordering yes, work accounting no. The
    // emptiness check keeps the serial hot path at one extra branch.
    if (!engine_seqs_.empty() && PopSeq(engine_seqs_, ev.seq)) {
      ++engine_events_processed_;
      ev.cb();
      return;
    }
    ++events_processed_;
    if (EventObserver* observer = CurrentEventObserver()) {
      // Events scheduled by ev.cb() are causally ev's children; current_seq_
      // only matters (and is only maintained) while an observer is installed,
      // so the disabled-path cost stays one load and branch.
      current_seq_ = static_cast<std::int64_t>(ev.seq);
      observer->OnFire(ev.seq, ev.when);
      ev.cb();
      current_seq_ = EventObserver::kNoEvent;
    } else {
      ev.cb();
    }
  }

  // True (and erases the entry) iff `seq` is a pending telemetry event.
  // telemetry_seqs_ is sorted (seqs are assigned monotonically) and tiny —
  // one self-rescheduling tick per sampler — so the lookup is a binary
  // search over a handful of entries.
  bool PopTelemetrySeq(std::uint64_t seq) {
    return PopSeq(telemetry_seqs_, seq);
  }

  static bool PopSeq(std::vector<std::uint64_t>& seqs, std::uint64_t seq) {
    auto it = std::lower_bound(seqs.begin(), seqs.end(), seq);
    if (it == seqs.end() || *it != seq) return false;
    seqs.erase(it);
    return true;
  }

  CalendarQueue<Event> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::int64_t current_seq_ = EventObserver::kNoEvent;
  std::uint64_t events_processed_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::uint64_t callbacks_inline_ = 0;
  std::uint64_t callbacks_pooled_ = 0;
  std::vector<std::uint64_t> telemetry_seqs_;
  std::uint64_t telemetry_events_scheduled_ = 0;
  std::uint64_t telemetry_events_processed_ = 0;
  std::vector<std::uint64_t> engine_seqs_;
  std::uint64_t engine_events_scheduled_ = 0;
  std::uint64_t engine_events_processed_ = 0;
  CallbackPool* pool_;
  CallbackPool::Stats pool_baseline_;
};

// A serially-reusable resource (e.g. a unidirectional link or a host CPU):
// acquisitions are granted FIFO, each holding the resource for a caller-
// specified service time. `Acquire` returns immediately; `on_done` fires at
// the simulated time the service completes.
class FifoResource {
 public:
  explicit FifoResource(Simulator* simulator) : simulator_(simulator) {
    TPU_CHECK(simulator != nullptr);
  }

  // Occupies the resource for `service_time`, then invokes on_done.
  void Acquire(SimTime service_time, Simulator::Callback on_done) {
    const SimTime end = ReserveFrom(simulator_->now(), service_time) +
                        service_time;
    simulator_->ScheduleAt(end, std::move(on_done));
  }

  // Reserves the resource for `duration` starting no earlier than
  // `earliest_start` and no earlier than the current end of the FIFO queue.
  // Returns the actual start time. Does not schedule anything.
  SimTime ReserveFrom(SimTime earliest_start, SimTime duration) {
    TPU_CHECK_GE(duration, 0.0);
    const SimTime start =
        std::max({free_at_, earliest_start, simulator_->now()});
    free_at_ = start + duration;
    busy_time_ += duration;
    return start;
  }

  // First simulated time at which the resource is idle.
  SimTime free_at() const { return free_at_; }
  // Total simulated time spent busy — used for link-utilization accounting.
  SimTime busy_time() const { return busy_time_; }

 private:
  Simulator* simulator_;
  SimTime free_at_ = 0.0;
  SimTime busy_time_ = 0.0;
};

// Join-counter: invokes `on_all_done` once Notify() has been called
// `expected` times. Used to express barriers between collective phases.
// When an EventObserver is installed the barrier registers itself as a join,
// so slack analysis can see which input arrived last.
class Barrier {
 public:
  Barrier(int expected, Simulator::Callback on_all_done)
      : remaining_(expected), on_all_done_(std::move(on_all_done)) {
    TPU_CHECK_GT(expected, 0);
    if (EventObserver* observer = CurrentEventObserver()) {
      join_ = observer->OnJoinOpen(expected);
    }
  }

  void Notify() {
    TPU_CHECK_GT(remaining_, 0);
    if (join_ >= 0) {
      if (EventObserver* observer = CurrentEventObserver()) {
        observer->OnJoinNotify(join_);
      }
    }
    if (--remaining_ == 0) on_all_done_();
  }

  // PDES engine support (partitioned_simulator.h). When a phase is fanned
  // out across partition lanes, each lane buffers its completions instead of
  // calling Notify() directly; the engine's coordinator applies them in a
  // fixed merge order at the next synchronization point. EngineDecrement
  // returns true when this notification is the last one; the engine then
  // moves the completion out with TakeOnAllDone and schedules it as an
  // engine-class event on the lane that created the barrier, at the maximum
  // buffered notify time — the instant the serial run would have fired it.
  bool EngineDecrement() {
    TPU_CHECK_GT(remaining_, 0);
    return --remaining_ == 0;
  }
  Simulator::Callback TakeOnAllDone() { return std::move(on_all_done_); }

 private:
  int remaining_;
  int join_ = -1;
  Simulator::Callback on_all_done_;
};

}  // namespace tpu::sim
