// Conservative synchronized-window parallel discrete-event simulation.
//
// A PartitionedSimulator runs one simulation across several event lanes: the
// caller's existing Simulator (the "global lane", which keeps executing
// everything that spans partitions) plus one owned Simulator per partition
// (one partition per pod — cross-pod optical links carry at least
// `lookahead` seconds of latency, so events a partition schedules toward
// another partition can never land earlier than `lookahead` in that
// partition's future). Execution proceeds in windows of width <= lookahead:
//
//   1. The earliest pending event across all lanes defines the window start
//      T0; the window covers [T0, T0 + W) with W <= lookahead.
//   2. Partition lanes drain their events with when < T0 + W in parallel on
//      a thread pool — each lane on exactly one worker per round, with its
//      own callback pool active, so lane state never crosses threads inside
//      a window.
//   3. At the barrier, partition-side completions of cross-partition joins
//      (sim::Barrier) are merged in fixed lane order and resolved joins are
//      scheduled on their home lane at the exact time the serial run would
//      have fired them; then the global lane drains the same window. A
//      globally-executing callback that fans new work out to partitions
//      pauses the global drain so steps 2–3 repeat until the window is
//      quiescent.
//   4. Cross-partition messages issued during the window (which conservatism
//      guarantees target times >= T0 + W) are exchanged at the boundary in
//      deterministic (when, seq, src-partition) order.
//
// Every ordering decision is protocol-determined — lane drain results are
// independent of which worker ran them, and all cross-lane effects are
// applied by the coordinator in a fixed merge order — so simulated
// timestamps, event counts and anything derived from them are bit-identical
// at any thread count. Protocol bookkeeping events (cross deliveries, join
// releases) are engine-class: excluded from the work-event counters, so a
// windowed run also reports the same events_processed/scheduled as the
// serial run it reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "sim/event_callback.h"
#include "sim/exec_context.h"
#include "sim/simulator.h"

namespace tpu::sim {

// Post-run protocol accounting, exported as pdes.* metrics
// (trace::ExportSimulatorMetrics) and sampled by telemetry probes
// (telemetry::RegisterPdesProbes).
struct PdesStats {
  bool engaged = false;
  int partitions = 0;
  int threads = 0;
  SimTime lookahead = 0.0;
  SimTime window = 0.0;
  std::uint64_t windows = 0;        // synchronized windows executed
  std::uint64_t barrier_waits = 0;  // worker-join barriers (one per sub-round)
  std::uint64_t cross_messages = 0;
  std::uint64_t join_notifications = 0;
  // Work events over all lanes (global + partitions) — matches the serial
  // run's Simulator counters bit-exactly.
  std::uint64_t events_processed = 0;
  std::uint64_t events_scheduled = 0;
  // Protocol (engine-class) events, excluded from the counters above.
  std::uint64_t engine_events = 0;
  std::vector<std::uint64_t> partition_events_processed;
};

// Ambient PDES request, installed with ScopedPdesConfig the same way trace /
// metrics / telemetry sessions are. Engine-capable drivers (the 2-D gradient
// summation) consult it and engage the windowed engine when it asks for >1
// thread and the workload qualifies; everything else ignores it, which *is*
// the serial fallback.
struct PdesConfig {
  bool enable = false;
  // Worker threads for partition drains. 1 leaves the serial path untouched
  // (the documented one-branch degeneration); the windowed protocol itself
  // is thread-count-invariant for any value >= 2.
  int threads = 1;
  // Window width in simulated seconds; 0 uses the lookahead floor derived
  // from the cross-pod link latency. Must not exceed the lookahead.
  SimTime window = 0.0;
  // Optional out-param: filled with protocol accounting after an engaged
  // run (left untouched when the run stayed serial, except `engaged`).
  PdesStats* stats = nullptr;
};

inline PdesConfig& PdesConfigSlot() {
  thread_local PdesConfig config;
  return config;
}
inline const PdesConfig& CurrentPdesConfig() { return PdesConfigSlot(); }

class ScopedPdesConfig {
 public:
  explicit ScopedPdesConfig(const PdesConfig& config)
      : previous_(PdesConfigSlot()) {
    PdesConfigSlot() = config;
  }
  ~ScopedPdesConfig() { PdesConfigSlot() = previous_; }

  ScopedPdesConfig(const ScopedPdesConfig&) = delete;
  ScopedPdesConfig& operator=(const ScopedPdesConfig&) = delete;

 private:
  PdesConfig previous_;
};

class PartitionedSimulator {
 public:
  // `global` is the caller's simulator (not owned): the lane for everything
  // that spans partitions, and the clock Run() ultimately reports.
  // `lookahead` is the minimum cross-partition latency in simulated seconds;
  // it must be strictly positive — zero lookahead admits no conservative
  // window. `window` <= lookahead; 0 picks the lookahead floor.
  PartitionedSimulator(Simulator* global, int partitions, SimTime lookahead,
                       int threads, SimTime window = 0.0);
  ~PartitionedSimulator();

  PartitionedSimulator(const PartitionedSimulator&) = delete;
  PartitionedSimulator& operator=(const PartitionedSimulator&) = delete;

  int partitions() const { return static_cast<int>(lanes_.size()); }
  int threads() const { return threads_; }
  SimTime lookahead() const { return lookahead_; }
  SimTime window() const { return window_; }
  Simulator& global() { return *global_; }
  const Simulator& global() const { return *global_; }
  Simulator& partition(int p) { return LaneAt(p).sim; }
  const Simulator& partition(int p) const { return LaneAt(p).sim; }

  // Coordinator-side seeding (tests, benchmarks): schedules a counted work
  // event on partition `p`. Must not be called from inside a lane drain.
  void Post(int p, SimTime when, std::function<void()> fn);

  // Runs starters[p] (when non-empty) in partition p's execution context at
  // the global lane's current time — the engine's fan-out primitive. Must be
  // called from the global lane (typically from inside a global event, e.g.
  // a phase-start continuation); the global drain pauses afterwards so the
  // new partition work is brought up to date before the global clock moves.
  // The serial run executes the identical starters inline at the same
  // instant, so fan-out adds no counted events.
  void FanOut(std::vector<std::function<void()>> starters);

  // From a partition drain: schedules `fn` on partition `target` at absolute
  // time `when`. Same-partition calls schedule directly; cross-partition
  // calls are buffered and merged at the window boundary in deterministic
  // (when, seq, src-partition) order. Conservatism is enforced: a cross
  // message must target a time at or beyond the current window's end.
  void ScheduleCross(int target, SimTime when, std::function<void()> fn);

  // From a partition drain: buffers a completion of `barrier` (created on
  // the global lane, e.g. a collective phase's outer join) at the lane's
  // current time. The coordinator applies buffered notifications in fixed
  // lane order at the next synchronization point and, when the last one
  // lands, schedules the barrier's completion on the global lane at the
  // maximum notified time — exactly when the serial run would have run it.
  void DeferJoinNotify(std::shared_ptr<Barrier> barrier);

  // Executes windows until every lane drains. Returns the global clock.
  SimTime Run();

  // Live protocol counters (also sampled by telemetry probes mid-run).
  std::uint64_t windows_executed() const { return windows_; }
  std::uint64_t barrier_waits() const { return barrier_waits_; }
  std::uint64_t cross_messages() const { return cross_messages_; }
  std::uint64_t join_notifications() const { return join_notifications_; }
  // Pending work events across all lanes. The telemetry stop-predicate for
  // sampled engine runs ("stop when the simulation is quiescent").
  std::size_t TotalQueueDepth() const;
  std::uint64_t TotalEventsProcessed() const;
  std::uint64_t TotalEventsScheduled() const;
  std::uint64_t TotalEngineEvents() const;
  std::uint64_t PartitionEventsProcessed(int p) const {
    return LaneAt(p).sim.events_processed();
  }

  PdesStats Stats() const;

 private:
  struct Lane {
    Lane() : sim(&pool) {}

    // Declared before `sim` so the simulator binds to (and outlives its use
    // of) this lane's pool: blocks a lane's callbacks draw recycle through
    // the same pool regardless of which worker drained the lane.
    CallbackPool pool;
    Simulator sim;

    struct JoinRecord {
      std::shared_ptr<Barrier> barrier;
      SimTime when;
    };
    struct CrossRecord {
      int target;
      SimTime when;
      std::uint64_t seq;  // per-source issue order
      std::function<void()> fn;
    };
    std::vector<JoinRecord> joins;
    std::vector<CrossRecord> cross;
    std::uint64_t cross_seq = 0;
    std::uint64_t processed_last_round = 0;
  };

  // RAII: makes `lane` the thread's execution context (engine, partition
  // index, simulator override, callback pool) for a drain or kick-off.
  class ScopedLaneContext {
   public:
    ScopedLaneContext(PartitionedSimulator* engine, int lane)
        : previous_engine_(EngineSlot()),
          previous_index_(PartitionIndexSlot()),
          previous_sim_(SimulatorOverrideSlot()),
          pool_scope_(&engine->LaneAt(lane).pool) {
      EngineSlot() = engine;
      PartitionIndexSlot() = lane;
      SimulatorOverrideSlot() = &engine->LaneAt(lane).sim;
    }
    ~ScopedLaneContext() {
      EngineSlot() = previous_engine_;
      PartitionIndexSlot() = previous_index_;
      SimulatorOverrideSlot() = previous_sim_;
    }

    ScopedLaneContext(const ScopedLaneContext&) = delete;
    ScopedLaneContext& operator=(const ScopedLaneContext&) = delete;

   private:
    PartitionedSimulator* previous_engine_;
    int previous_index_;
    Simulator* previous_sim_;
    ScopedCallbackPool pool_scope_;
  };

  Lane& LaneAt(int p) {
    TPU_CHECK_GE(p, 0);
    TPU_CHECK_LT(p, static_cast<int>(lanes_.size()));
    return *lanes_[p];
  }
  const Lane& LaneAt(int p) const {
    TPU_CHECK_GE(p, 0);
    TPU_CHECK_LT(p, static_cast<int>(lanes_.size()));
    return *lanes_[p];
  }

  // One parallel partition drain up to `bound`. Returns true if any lane
  // processed an event.
  bool DrainPartitions(SimTime bound);
  // Applies buffered join notifications in fixed lane order; schedules
  // completions on the global lane. Returns true if any were applied.
  bool MergeJoinNotifications();
  // Window-boundary exchange of buffered cross-partition messages.
  void DeliverCrossMessages();

  Simulator* global_;  // not owned
  std::vector<std::unique_ptr<Lane>> lanes_;
  SimTime lookahead_;
  SimTime window_;
  int threads_;
  std::unique_ptr<ThreadPool> pool_;

  SimTime current_window_end_ = std::numeric_limits<SimTime>::infinity();
  bool fanout_pending_ = false;

  struct OpenJoin {
    std::shared_ptr<Barrier> barrier;
    SimTime max_when = -std::numeric_limits<SimTime>::infinity();
  };
  // Keyed by barrier identity; kept alive via the shared_ptr until resolved.
  // Never iterated (lookups only), so unordered is determinism-safe.
  std::unordered_map<Barrier*, OpenJoin> open_joins_;

  std::uint64_t windows_ = 0;
  std::uint64_t barrier_waits_ = 0;
  std::uint64_t cross_messages_ = 0;
  std::uint64_t join_notifications_ = 0;
};

// Installs `engine` as the thread's current engine while leaving execution
// on the global lane — the scope under which an engine-capable driver sets
// up phases (so collective starts can see and use the engine) and calls
// PartitionedSimulator::Run().
class ScopedEngine {
 public:
  explicit ScopedEngine(PartitionedSimulator* engine)
      : previous_(EngineSlot()) {
    EngineSlot() = engine;
  }
  ~ScopedEngine() { EngineSlot() = previous_; }

  ScopedEngine(const ScopedEngine&) = delete;
  ScopedEngine& operator=(const ScopedEngine&) = delete;

 private:
  PartitionedSimulator* previous_;
};

}  // namespace tpu::sim
