// Small-buffer-optimized callback type for simulator events.
//
// std::function heap-allocates every capture larger than its tiny internal
// buffer (16 bytes on libstdc++), which on the event hot path means one
// malloc/free per simulated event — the dominant cost of large collective
// simulations. EventCallback stores the common capture sizes inline in the
// event itself; captures that do not fit are placed in recycled fixed-size
// blocks from a per-thread CallbackPool, so even the large-capture path stops
// allocating once the pool is warm.
//
// EventCallback is move-only (events are scheduled once and run once), which
// also lets callbacks own move-only resources such as pooled payload buffers.
// Pool blocks are freed back to the pool that allocated them; a callback must
// be constructed, run, and destroyed on the thread whose pool it drew from —
// true by construction here, since each Simulator (and everything it
// schedules) is confined to one thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace tpu::sim {

// Recycling size-class allocator for out-of-line callback captures. Blocks
// are allocated on first use (a "fresh" allocation) and recycled through
// per-class free lists forever after (a "hit"); captures beyond the largest
// class fall back to plain operator new ("oversize"). The stats make pool
// health observable via trace::ExportSimulatorMetrics.
class CallbackPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      // block reused from a free list
    std::uint64_t fresh = 0;     // new block allocated (cold pool)
    std::uint64_t oversize = 0;  // capture larger than the largest class
  };

  static CallbackPool& ThisThread() {
    thread_local CallbackPool pool;
    return pool;
  }

  // The pool new pooled captures draw from on this thread. Defaults to the
  // thread's own pool; the PDES engine points it at a per-partition pool for
  // the duration of a partition drain so a lane's blocks recycle through the
  // same pool no matter which worker thread runs the lane in a given window
  // (Free already routes blocks home via the block header). One extra
  // thread-local pointer load on the pooled-capture path; the serial path is
  // otherwise unchanged.
  static CallbackPool& Active() { return *ActiveSlot(); }

  static CallbackPool*& ActiveSlot() {
    thread_local CallbackPool* active = &ThisThread();
    return active;
  }

  CallbackPool() = default;
  CallbackPool(const CallbackPool&) = delete;
  CallbackPool& operator=(const CallbackPool&) = delete;

  ~CallbackPool() {
    for (Header*& head : free_lists_) {
      while (head != nullptr) {
        Header* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }

  void* Allocate(std::size_t bytes) {
    const int cls = ClassFor(bytes);
    if (cls < 0) {
      ++stats_.oversize;
      Header* header = NewBlock(bytes, -1);
      return header + 1;
    }
    if (free_lists_[cls] != nullptr) {
      ++stats_.hits;
      Header* header = free_lists_[cls];
      free_lists_[cls] = header->next;
      return header + 1;
    }
    ++stats_.fresh;
    Header* header = NewBlock(kClassBytes[cls], cls);
    return header + 1;
  }

  // Static: the block remembers its owning pool, so the callsite does not
  // need to know which thread's pool the capture came from.
  static void Free(void* payload) {
    Header* header = static_cast<Header*>(payload) - 1;
    if (header->size_class < 0) {
      ::operator delete(header);
      return;
    }
    CallbackPool* pool = header->owner;
    header->next = pool->free_lists_[header->size_class];
    pool->free_lists_[header->size_class] = header;
  }

  const Stats& stats() const { return stats_; }

 private:
  // alignas keeps sizeof(Header) a multiple of max alignment, so the payload
  // immediately after the header is suitably aligned for any capture.
  struct alignas(std::max_align_t) Header {
    CallbackPool* owner;
    int size_class;  // index into kClassBytes; -1 = oversize (plain new)
    Header* next;    // free-list link while recycled
  };

  static constexpr std::size_t kClassBytes[] = {64, 128, 256, 512, 1024};
  static constexpr int kNumClasses =
      static_cast<int>(sizeof(kClassBytes) / sizeof(kClassBytes[0]));

  static int ClassFor(std::size_t bytes) {
    for (int cls = 0; cls < kNumClasses; ++cls) {
      if (bytes <= kClassBytes[cls]) return cls;
    }
    return -1;
  }

  Header* NewBlock(std::size_t payload_bytes, int cls) {
    void* raw = ::operator new(sizeof(Header) + payload_bytes);
    Header* header = static_cast<Header*>(raw);
    header->owner = this;
    header->size_class = cls;
    header->next = nullptr;
    return header;
  }

  Header* free_lists_[kNumClasses] = {};
  Stats stats_;
};

// RAII override of the thread's active callback pool (see
// CallbackPool::Active). Installed by the PDES engine around every stretch of
// code that executes in a partition lane's context.
class ScopedCallbackPool {
 public:
  explicit ScopedCallbackPool(CallbackPool* pool)
      : previous_(CallbackPool::ActiveSlot()) {
    TPU_CHECK(pool != nullptr);
    CallbackPool::ActiveSlot() = pool;
  }
  ~ScopedCallbackPool() { CallbackPool::ActiveSlot() = previous_; }

  ScopedCallbackPool(const ScopedCallbackPool&) = delete;
  ScopedCallbackPool& operator=(const ScopedCallbackPool&) = delete;

 private:
  CallbackPool* previous_;
};

class EventCallback {
 public:
  // Sized so a Simulator event (when + seq + vtable + this buffer) is exactly
  // one 64-byte cache line: the common captures — a barrier pointer, a pooled
  // payload handle plus a destination, a shared_ptr and a couple of scalars —
  // fit inline; larger or over-aligned captures take one pooled block.
  static constexpr std::size_t kInlineCapacity = 40;
  static constexpr std::size_t kInlineAlign = 8;

  enum class Storage : std::uint8_t { kEmpty, kInline, kPooled };

  EventCallback() noexcept = default;
  EventCallback(std::nullptr_t) noexcept {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit, like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      void* mem = CallbackPool::Active().Allocate(sizeof(Fn));
      Fn* obj = ::new (mem) Fn(std::forward<F>(f));
      void* p = obj;
      std::memcpy(buffer_, &p, sizeof(p));
      ops_ = &PooledOps<Fn>::ops;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buffer_, other.buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() {
    TPU_CHECK(ops_ != nullptr) << "invoking an empty EventCallback";
    ops_->invoke(buffer_);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  Storage storage() const { return ops_ != nullptr ? ops_->storage
                                                   : Storage::kEmpty; }

 private:
  struct Ops {
    void (*invoke)(void* buffer);
    // Move-construct the representation at dst from src and tear src down.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buffer) noexcept;
    Storage storage;
  };

  template <typename Fn>
  static Fn* InlineTarget(void* buffer) {
    return std::launder(reinterpret_cast<Fn*>(buffer));
  }

  template <typename Fn>
  static Fn* PooledTarget(void* buffer) {
    void* p;
    std::memcpy(&p, buffer, sizeof(p));
    return static_cast<Fn*>(p);
  }

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* buffer) { (*InlineTarget<Fn>(buffer))(); }
    static void Relocate(void* dst, void* src) noexcept {
      Fn* from = InlineTarget<Fn>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* buffer) noexcept {
      InlineTarget<Fn>(buffer)->~Fn();
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, Storage::kInline};
  };

  template <typename Fn>
  struct PooledOps {
    static void Invoke(void* buffer) { (*PooledTarget<Fn>(buffer))(); }
    static void Relocate(void* dst, void* src) noexcept {
      std::memcpy(dst, src, sizeof(void*));
    }
    static void Destroy(void* buffer) noexcept {
      Fn* obj = PooledTarget<Fn>(buffer);
      obj->~Fn();
      CallbackPool::Free(obj);
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, Storage::kPooled};
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) unsigned char buffer_[kInlineCapacity];
};

}  // namespace tpu::sim
