#include "sim/partitioned_simulator.h"

#include <algorithm>

namespace tpu::sim {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
}  // namespace

PartitionedSimulator::PartitionedSimulator(Simulator* global, int partitions,
                                           SimTime lookahead, int threads,
                                           SimTime window)
    : global_(global),
      lookahead_(lookahead),
      window_(window == 0.0 ? lookahead : window),
      threads_(threads) {
  TPU_CHECK(global != nullptr);
  TPU_CHECK_GE(partitions, 1);
  TPU_CHECK_GT(lookahead, 0.0)
      << "cross-partition lookahead must be strictly positive: with zero "
         "lookahead a partition can affect its neighbours at the current "
         "instant and no conservative window exists";
  TPU_CHECK_GT(window_, 0.0);
  TPU_CHECK_LE(window_, lookahead_)
      << "window wider than the lookahead floor breaks conservatism: events "
         "issued inside a window could target times before the next boundary";
  TPU_CHECK_GE(threads, 1);
  lanes_.reserve(partitions);
  for (int p = 0; p < partitions; ++p) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(std::min(threads, partitions)));
}

PartitionedSimulator::~PartitionedSimulator() = default;

void PartitionedSimulator::Post(int p, SimTime when, std::function<void()> fn) {
  TPU_CHECK_EQ(CurrentPartitionIndex(), -1)
      << "Post is a coordinator-side API; use ScheduleCross (or the lane's "
         "own simulator) from inside a partition drain";
  LaneAt(p).sim.ScheduleAt(when, Simulator::Callback(std::move(fn)));
}

void PartitionedSimulator::FanOut(std::vector<std::function<void()>> starters) {
  TPU_CHECK_EQ(static_cast<int>(starters.size()), partitions());
  TPU_CHECK_EQ(CurrentPartitionIndex(), -1)
      << "fan-out must originate on the global lane";
  const SimTime now = global_->now();
  for (int p = 0; p < partitions(); ++p) {
    if (!starters[p]) continue;
    ScopedLaneContext context(this, p);
    LaneAt(p).sim.ExecuteAt(now, starters[p]);
  }
  fanout_pending_ = true;
}

void PartitionedSimulator::ScheduleCross(int target, SimTime when,
                                         std::function<void()> fn) {
  const int src = CurrentPartitionIndex();
  TPU_CHECK_GE(src, 0) << "ScheduleCross must be called from a partition "
                          "drain; coordinator code uses Post";
  TPU_CHECK_GE(target, 0);
  TPU_CHECK_LT(target, partitions());
  if (target == src) {
    LaneAt(src).sim.ScheduleAt(when, Simulator::Callback(std::move(fn)));
    return;
  }
  TPU_CHECK_GE(when, current_window_end_)
      << "conservative lookahead violated: partition " << src
      << " scheduled a cross-partition event inside the current window "
         "(target times must be >= the window boundary)";
  Lane& lane = LaneAt(src);
  lane.cross.push_back(
      Lane::CrossRecord{target, when, lane.cross_seq++, std::move(fn)});
}

void PartitionedSimulator::DeferJoinNotify(std::shared_ptr<Barrier> barrier) {
  const int src = CurrentPartitionIndex();
  TPU_CHECK_GE(src, 0)
      << "DeferJoinNotify must be called from a partition drain; global-lane "
         "code notifies barriers inline";
  TPU_CHECK(barrier != nullptr);
  Lane& lane = LaneAt(src);
  const SimTime when = lane.sim.now();
  lane.joins.push_back(Lane::JoinRecord{std::move(barrier), when});
}

bool PartitionedSimulator::DrainPartitions(SimTime bound) {
  // Fast path: skip the pool dispatch when no lane has an event inside the
  // window (common while a cross-partition phase runs on the global lane).
  bool pending = false;
  for (const auto& lane : lanes_) {
    if (!lane->sim.empty() && lane->sim.NextEventTime() < bound) {
      pending = true;
      break;
    }
  }
  if (!pending) return false;

  ++barrier_waits_;
  pool_->ParallelFor(lanes_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t p = begin; p < end; ++p) {
      Lane& lane = *lanes_[p];
      ScopedLaneContext context(this, static_cast<int>(p));
      lane.processed_last_round = lane.sim.RunBefore(bound);
    }
  });
  bool any = false;
  for (const auto& lane : lanes_) {
    any = any || lane->processed_last_round > 0;
  }
  return any;
}

bool PartitionedSimulator::MergeJoinNotifications() {
  bool any = false;
  for (const auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    for (Lane::JoinRecord& record : lane.joins) {
      any = true;
      ++join_notifications_;
      Barrier* key = record.barrier.get();
      auto [it, inserted] = open_joins_.try_emplace(key);
      OpenJoin& join = it->second;
      if (inserted) join.barrier = record.barrier;
      join.max_when = std::max(join.max_when, record.when);
      if (key->EngineDecrement()) {
        const SimTime when = join.max_when;
        TPU_CHECK_GE(when, global_->now())
            << "join resolved behind the global clock — a fan-out failed to "
               "pause the global drain";
        global_->ScheduleEngineAt(when, key->TakeOnAllDone());
        open_joins_.erase(it);
      }
    }
    lane.joins.clear();
  }
  return any;
}

void PartitionedSimulator::DeliverCrossMessages() {
  struct Keyed {
    SimTime when;
    std::uint64_t seq;
    int src;
    Lane::CrossRecord* record;
  };
  std::vector<Keyed> batch;
  for (int src = 0; src < partitions(); ++src) {
    for (Lane::CrossRecord& record : lanes_[src]->cross) {
      batch.push_back(Keyed{record.when, record.seq, src, &record});
    }
  }
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(), [](const Keyed& a, const Keyed& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.src < b.src;
  });
  for (Keyed& entry : batch) {
    // Delivered as an engine-class event: the serial equivalent schedules
    // the payload exactly once on its home lane, which the wrapped counted
    // schedule inside `fn` (if any) still performs; the delivery envelope
    // itself is protocol bookkeeping.
    LaneAt(entry.record->target)
        .sim.ScheduleEngineAt(entry.record->when,
                              Simulator::Callback(std::move(entry.record->fn)));
    ++cross_messages_;
  }
  for (const auto& lane : lanes_) {
    lane->cross.clear();
  }
}

SimTime PartitionedSimulator::Run() {
  TPU_CHECK_EQ(CurrentPartitionIndex(), -1)
      << "PartitionedSimulator::Run must be called from the global lane";
  ScopedEngine engine_scope(this);
  for (;;) {
    DeliverCrossMessages();

    SimTime partition_next = kInf;
    for (const auto& lane : lanes_) {
      if (!lane->sim.empty()) {
        partition_next = std::min(partition_next, lane->sim.NextEventTime());
      }
    }

    if (partition_next == kInf) {
      // No partition-side work pending: the global lane can run free (still
      // pausing at fan-outs, which re-seed the partitions).
      fanout_pending_ = false;
      global_->RunBefore(kInf, &fanout_pending_);
      if (fanout_pending_) continue;
      break;  // everything drained
    }

    SimTime start = partition_next;
    if (!global_->empty()) start = std::min(start, global_->NextEventTime());
    current_window_end_ = start + window_;
    ++windows_;

    // Sub-rounds until the window is quiescent: partitions first (so join
    // completions are known before the global clock moves), then the merge,
    // then the global lane — which pauses whenever it fans new work out.
    for (;;) {
      bool progress = DrainPartitions(current_window_end_);
      progress = MergeJoinNotifications() || progress;
      fanout_pending_ = false;
      progress = global_->RunBefore(current_window_end_, &fanout_pending_) > 0 ||
                 progress;
      if (!progress && !fanout_pending_) break;
    }
    current_window_end_ = kInf;
  }
  // Joins still open at quiescence would not have completed serially either
  // (their remaining notifications never happened); drop the bookkeeping.
  open_joins_.clear();
  return global_->now();
}

std::size_t PartitionedSimulator::TotalQueueDepth() const {
  std::size_t depth = global_->queue_depth();
  for (const auto& lane : lanes_) depth += lane->sim.queue_depth();
  return depth;
}

std::uint64_t PartitionedSimulator::TotalEventsProcessed() const {
  std::uint64_t total = global_->events_processed();
  for (const auto& lane : lanes_) total += lane->sim.events_processed();
  return total;
}

std::uint64_t PartitionedSimulator::TotalEventsScheduled() const {
  std::uint64_t total = global_->events_scheduled();
  for (const auto& lane : lanes_) total += lane->sim.events_scheduled();
  return total;
}

std::uint64_t PartitionedSimulator::TotalEngineEvents() const {
  std::uint64_t total = global_->engine_events_processed();
  for (const auto& lane : lanes_) total += lane->sim.engine_events_processed();
  return total;
}

PdesStats PartitionedSimulator::Stats() const {
  PdesStats stats;
  stats.engaged = true;
  stats.partitions = partitions();
  stats.threads = threads_;
  stats.lookahead = lookahead_;
  stats.window = window_;
  stats.windows = windows_;
  stats.barrier_waits = barrier_waits_;
  stats.cross_messages = cross_messages_;
  stats.join_notifications = join_notifications_;
  stats.events_processed = TotalEventsProcessed();
  stats.events_scheduled = TotalEventsScheduled();
  stats.engine_events = TotalEngineEvents();
  stats.partition_events_processed.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    stats.partition_events_processed.push_back(lane->sim.events_processed());
  }
  return stats;
}

}  // namespace tpu::sim
