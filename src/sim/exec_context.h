// Thread-local execution context for the parallel event core.
//
// The PDES engine (partitioned_simulator.h) drains several Simulators — one
// per pod partition plus the caller's global lane — and code deep inside the
// network/collectives layers must route clock reads, event scheduling and
// traffic accounting to the lane currently executing. These slots follow the
// repo's null-by-default observability idiom (event_observer.h,
// trace/metrics.h): a serial run pays one thread-local load and branch.
#pragma once

namespace tpu::sim {

class Simulator;
class PartitionedSimulator;

// The engine currently executing on this thread, or nullptr (serial run).
inline PartitionedSimulator*& EngineSlot() {
  thread_local PartitionedSimulator* engine = nullptr;
  return engine;
}
inline PartitionedSimulator* CurrentEngine() { return EngineSlot(); }

// Index of the partition lane this thread is currently draining, or -1 when
// executing on the global lane (or with no engine at all).
inline int& PartitionIndexSlot() {
  thread_local int index = -1;
  return index;
}
inline int CurrentPartitionIndex() { return PartitionIndexSlot(); }

// When non-null, the Simulator that now()/Schedule/ScheduleAt calls made
// through a Network (or any other holder of a Simulator*) should target
// instead of the member pointer: the engine points it at the active
// partition lane during drains and kick-offs.
inline Simulator*& SimulatorOverrideSlot() {
  thread_local Simulator* simulator = nullptr;
  return simulator;
}

// Resolves the simulator an engine-agnostic component should use: the
// thread's active lane when a PDES drain is underway, `fallback` otherwise.
inline Simulator& ActiveSimulatorOr(Simulator* fallback) {
  Simulator* active = SimulatorOverrideSlot();
  return active != nullptr ? *active : *fallback;
}

}  // namespace tpu::sim
