#include "hlo/hlo.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tpu::hlo {

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kParameter: return "parameter";
    case Opcode::kConstant: return "constant";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kRelu: return "relu";
    case Opcode::kTanh: return "tanh";
    case Opcode::kExp: return "exp";
    case Opcode::kScale: return "scale";
    case Opcode::kDot: return "dot";
    case Opcode::kConv2D: return "conv2d";
    case Opcode::kReduceSum: return "reduce-sum";
    case Opcode::kSoftmax: return "softmax";
    case Opcode::kReshape: return "reshape";
    case Opcode::kTranspose: return "transpose";
    case Opcode::kOneHotGather: return "onehot-gather";
    case Opcode::kTopK: return "top-k";
    case Opcode::kBatchMatMul: return "batch-matmul";
    case Opcode::kSplitHeads: return "split-heads";
    case Opcode::kMergeHeads: return "merge-heads";
  }
  return "?";
}

const tensor::Tensor& HloModule::constant_value(InstrId id) const {
  TPU_CHECK_GE(id, 0);
  TPU_CHECK_LT(id, static_cast<InstrId>(constant_index_.size()));
  const int index = constant_index_[id];
  TPU_CHECK_GE(index, 0) << "instruction " << id << " is not a constant";
  return constants_[index];
}

InstrId HloModule::Emit(HloInstruction instr) {
  instr.id = static_cast<InstrId>(instrs_.size());
  for (InstrId operand : instr.operands) {
    TPU_CHECK_GE(operand, 0);
    TPU_CHECK_LT(operand, instr.id) << "operands must precede users";
  }
  instrs_.push_back(std::move(instr));
  constant_index_.push_back(-1);
  return instrs_.back().id;
}

InstrId HloModule::Parameter(Shape shape, std::string name) {
  HloInstruction instr;
  instr.opcode = Opcode::kParameter;
  instr.shape = std::move(shape);
  instr.name = std::move(name);
  ++num_parameters_;
  return Emit(std::move(instr));
}

InstrId HloModule::Constant(tensor::Tensor value, std::string name) {
  HloInstruction instr;
  instr.opcode = Opcode::kConstant;
  instr.shape = value.shape();
  instr.name = std::move(name);
  const InstrId id = Emit(std::move(instr));
  constant_index_[id] = static_cast<int>(constants_.size());
  constants_.push_back(std::move(value));
  return id;
}

namespace {

HloInstruction Elementwise(Opcode opcode, const HloInstruction& a,
                           const HloInstruction* b) {
  HloInstruction instr;
  instr.opcode = opcode;
  instr.shape = a.shape;
  instr.operands = {a.id};
  if (b != nullptr) {
    TPU_CHECK(a.shape == b->shape)
        << OpcodeName(opcode) << ": shape mismatch";
    instr.operands.push_back(b->id);
  }
  return instr;
}

}  // namespace

InstrId HloModule::Add(InstrId a, InstrId b) {
  return Emit(Elementwise(Opcode::kAdd, Operand(a), &Operand(b)));
}
InstrId HloModule::Sub(InstrId a, InstrId b) {
  return Emit(Elementwise(Opcode::kSub, Operand(a), &Operand(b)));
}
InstrId HloModule::Mul(InstrId a, InstrId b) {
  return Emit(Elementwise(Opcode::kMul, Operand(a), &Operand(b)));
}
InstrId HloModule::Relu(InstrId a) {
  return Emit(Elementwise(Opcode::kRelu, Operand(a), nullptr));
}
InstrId HloModule::Tanh(InstrId a) {
  return Emit(Elementwise(Opcode::kTanh, Operand(a), nullptr));
}
InstrId HloModule::Exp(InstrId a) {
  return Emit(Elementwise(Opcode::kExp, Operand(a), nullptr));
}
InstrId HloModule::Scale(InstrId a, float scale) {
  HloInstruction instr = Elementwise(Opcode::kScale, Operand(a), nullptr);
  instr.scale = scale;
  return Emit(std::move(instr));
}

InstrId HloModule::Dot(InstrId a, InstrId b) {
  const HloInstruction& lhs = Operand(a);
  const HloInstruction& rhs = Operand(b);
  TPU_CHECK_EQ(lhs.shape.size(), 2u);
  TPU_CHECK_EQ(rhs.shape.size(), 2u);
  TPU_CHECK_EQ(lhs.shape[1], rhs.shape[0]) << "dot contraction mismatch";
  HloInstruction instr;
  instr.opcode = Opcode::kDot;
  instr.shape = {lhs.shape[0], rhs.shape[1]};
  instr.operands = {a, b};
  return Emit(std::move(instr));
}

InstrId HloModule::Conv2D(InstrId input, InstrId kernel, tensor::Index stride,
                          bool same_padding) {
  const HloInstruction& in = Operand(input);
  const HloInstruction& k = Operand(kernel);
  TPU_CHECK_EQ(in.shape.size(), 4u);
  TPU_CHECK_EQ(k.shape.size(), 4u);
  TPU_CHECK_EQ(in.shape[3], k.shape[2]) << "conv channel mismatch";
  HloInstruction instr;
  instr.opcode = Opcode::kConv2D;
  instr.operands = {input, kernel};
  instr.conv.stride_h = stride;
  instr.conv.stride_w = stride;
  if (same_padding) {
    // SAME: output spatial = ceil(input / stride).
    auto pad_for = [&](tensor::Index size, tensor::Index ksize,
                       tensor::Index* lo, tensor::Index* hi) {
      const tensor::Index out = (size + stride - 1) / stride;
      const tensor::Index total =
          std::max<tensor::Index>(0, (out - 1) * stride + ksize - size);
      *lo = total / 2;
      *hi = total - total / 2;
    };
    pad_for(in.shape[1], k.shape[0], &instr.conv.pad_top,
            &instr.conv.pad_bottom);
    pad_for(in.shape[2], k.shape[1], &instr.conv.pad_left,
            &instr.conv.pad_right);
  }
  const tensor::Index ho = tensor::ConvOutputSize(
      in.shape[1], k.shape[0], stride, instr.conv.pad_top,
      instr.conv.pad_bottom);
  const tensor::Index wo = tensor::ConvOutputSize(
      in.shape[2], k.shape[1], stride, instr.conv.pad_left,
      instr.conv.pad_right);
  instr.shape = {in.shape[0], ho, wo, k.shape[3]};
  return Emit(std::move(instr));
}

InstrId HloModule::ReduceSum(InstrId a, tensor::Index axis) {
  const HloInstruction& in = Operand(a);
  TPU_CHECK_GE(axis, 0);
  TPU_CHECK_LT(axis, static_cast<tensor::Index>(in.shape.size()));
  HloInstruction instr;
  instr.opcode = Opcode::kReduceSum;
  instr.operands = {a};
  instr.axis = axis;
  for (std::size_t i = 0; i < in.shape.size(); ++i) {
    if (static_cast<tensor::Index>(i) != axis) {
      instr.shape.push_back(in.shape[i]);
    }
  }
  return Emit(std::move(instr));
}

InstrId HloModule::Softmax(InstrId a) {
  return Emit(Elementwise(Opcode::kSoftmax, Operand(a), nullptr));
}

InstrId HloModule::Reshape(InstrId a, Shape new_shape) {
  const HloInstruction& in = Operand(a);
  TPU_CHECK_EQ(NumElements(in.shape), NumElements(new_shape));
  HloInstruction instr;
  instr.opcode = Opcode::kReshape;
  instr.shape = std::move(new_shape);
  instr.operands = {a};
  return Emit(std::move(instr));
}

InstrId HloModule::Transpose(InstrId a) {
  const HloInstruction& in = Operand(a);
  TPU_CHECK_EQ(in.shape.size(), 2u);
  HloInstruction instr;
  instr.opcode = Opcode::kTranspose;
  instr.shape = {in.shape[1], in.shape[0]};
  instr.operands = {a};
  return Emit(std::move(instr));
}

InstrId HloModule::OneHotGather(InstrId onehot, InstrId data) {
  const HloInstruction& oh = Operand(onehot);
  const HloInstruction& d = Operand(data);
  TPU_CHECK_EQ(oh.shape.size(), 2u);
  TPU_CHECK_EQ(d.shape.size(), 2u);
  TPU_CHECK_EQ(oh.shape[1], d.shape[0]);
  HloInstruction instr;
  instr.opcode = Opcode::kOneHotGather;
  instr.shape = {oh.shape[0], d.shape[1]};
  instr.operands = {onehot, data};
  return Emit(std::move(instr));
}

InstrId HloModule::TopK(InstrId a, tensor::Index k) {
  const HloInstruction& in = Operand(a);
  TPU_CHECK_GE(in.shape.size(), 1u);
  TPU_CHECK_LE(k, in.shape.back());
  HloInstruction instr;
  instr.opcode = Opcode::kTopK;
  instr.shape = in.shape;
  instr.shape.back() = k;
  instr.operands = {a};
  instr.k = k;
  return Emit(std::move(instr));
}

InstrId HloModule::BatchMatMul(InstrId a, InstrId b, bool transpose_rhs) {
  const HloInstruction& lhs = Operand(a);
  const HloInstruction& rhs = Operand(b);
  TPU_CHECK_EQ(lhs.shape.size(), 3u);
  TPU_CHECK_EQ(rhs.shape.size(), 3u);
  TPU_CHECK_EQ(lhs.shape[0], rhs.shape[0]);
  const tensor::Index contracted = transpose_rhs ? rhs.shape[2] : rhs.shape[1];
  TPU_CHECK_EQ(lhs.shape[2], contracted) << "batch-matmul contraction";
  HloInstruction instr;
  instr.opcode = Opcode::kBatchMatMul;
  instr.shape = {lhs.shape[0], lhs.shape[1],
                 transpose_rhs ? rhs.shape[1] : rhs.shape[2]};
  instr.operands = {a, b};
  instr.transpose_rhs = transpose_rhs;
  return Emit(std::move(instr));
}

InstrId HloModule::SplitHeads(InstrId a, tensor::Index heads) {
  const HloInstruction& in = Operand(a);
  TPU_CHECK_EQ(in.shape.size(), 2u);
  TPU_CHECK_GT(heads, 0);
  TPU_CHECK_EQ(in.shape[1] % heads, 0);
  HloInstruction instr;
  instr.opcode = Opcode::kSplitHeads;
  instr.shape = {heads, in.shape[0], in.shape[1] / heads};
  instr.operands = {a};
  instr.k = heads;
  return Emit(std::move(instr));
}

InstrId HloModule::MergeHeads(InstrId a) {
  const HloInstruction& in = Operand(a);
  TPU_CHECK_EQ(in.shape.size(), 3u);
  HloInstruction instr;
  instr.opcode = Opcode::kMergeHeads;
  instr.shape = {in.shape[1], in.shape[0] * in.shape[2]};
  instr.operands = {a};
  return Emit(std::move(instr));
}

InstrId HloModule::CloneFrom(const HloModule& source, InstrId id,
                             const std::vector<InstrId>& new_operands) {
  const HloInstruction& original = source.instr(id);
  TPU_CHECK_EQ(new_operands.size(), original.operands.size());
  if (original.opcode == Opcode::kConstant) {
    TPU_CHECK(new_operands.empty());
    return Constant(source.constant_value(id), original.name);
  }
  if (original.opcode == Opcode::kParameter) {
    TPU_CHECK(new_operands.empty());
    return Parameter(original.shape, original.name);
  }
  HloInstruction instr = original;
  instr.operands = new_operands;
  return Emit(std::move(instr));
}

std::string HloModule::ToString() const {
  std::ostringstream os;
  os << "HloModule " << name_ << " {\n";
  for (const HloInstruction& instr : instrs_) {
    os << "  %" << instr.id << " = " << OpcodeName(instr.opcode) << "[";
    for (std::size_t i = 0; i < instr.shape.size(); ++i) {
      if (i > 0) os << ",";
      os << instr.shape[i];
    }
    os << "](";
    for (std::size_t i = 0; i < instr.operands.size(); ++i) {
      if (i > 0) os << ", ";
      os << "%" << instr.operands[i];
    }
    os << ")";
    if (!instr.name.empty()) os << " // " << instr.name;
    os << "\n";
  }
  os << "}";
  return os.str();
}

std::vector<tensor::Tensor> EvaluateAll(
    const HloModule& module, const std::vector<tensor::Tensor>& params) {
  TPU_CHECK_EQ(static_cast<int>(params.size()), module.num_parameters());
  std::vector<tensor::Tensor> values(module.instructions().size());
  int param_index = 0;
  for (const HloInstruction& instr : module.instructions()) {
    auto operand = [&](int i) -> const tensor::Tensor& {
      return values[instr.operands[i]];
    };
    switch (instr.opcode) {
      case Opcode::kParameter: {
        const tensor::Tensor& p = params[param_index++];
        TPU_CHECK(p.shape() == instr.shape)
            << "parameter " << instr.name << " shape mismatch: got "
            << p.ShapeString();
        values[instr.id] = p;
        break;
      }
      case Opcode::kConstant:
        values[instr.id] = module.constant_value(instr.id);
        break;
      case Opcode::kAdd:
        values[instr.id] = tensor::Add(operand(0), operand(1));
        break;
      case Opcode::kSub:
        values[instr.id] = tensor::Sub(operand(0), operand(1));
        break;
      case Opcode::kMul:
        values[instr.id] = tensor::Mul(operand(0), operand(1));
        break;
      case Opcode::kRelu:
        values[instr.id] = tensor::Relu(operand(0));
        break;
      case Opcode::kTanh:
        values[instr.id] = tensor::Tanh(operand(0));
        break;
      case Opcode::kExp:
        values[instr.id] = tensor::Exp(operand(0));
        break;
      case Opcode::kScale:
        values[instr.id] = tensor::Scale(operand(0), instr.scale);
        break;
      case Opcode::kDot:
        values[instr.id] = tensor::MatMul(operand(0), operand(1));
        break;
      case Opcode::kConv2D:
        values[instr.id] = tensor::Conv2D(operand(0), operand(1), instr.conv);
        break;
      case Opcode::kReduceSum:
        values[instr.id] = tensor::ReduceSum(operand(0), instr.axis);
        break;
      case Opcode::kSoftmax:
        values[instr.id] = tensor::Softmax(operand(0));
        break;
      case Opcode::kReshape:
        values[instr.id] = tensor::Reshape(operand(0), instr.shape);
        break;
      case Opcode::kTranspose:
        values[instr.id] = tensor::Transpose2D(operand(0));
        break;
      case Opcode::kOneHotGather:
        values[instr.id] = tensor::MatMul(operand(0), operand(1));
        break;
      case Opcode::kBatchMatMul:
        values[instr.id] =
            tensor::BatchMatMul(operand(0), operand(1), instr.transpose_rhs);
        break;
      case Opcode::kSplitHeads:
        values[instr.id] = tensor::SplitHeads(operand(0), instr.k);
        break;
      case Opcode::kMergeHeads:
        values[instr.id] = tensor::MergeHeads(operand(0));
        break;
      case Opcode::kTopK: {
        const tensor::Tensor& in = operand(0);
        const tensor::Index last = in.shape().back();
        const tensor::Index rows = in.num_elements() / last;
        tensor::Tensor out(instr.shape);
        std::vector<float> row(last);
        for (tensor::Index r = 0; r < rows; ++r) {
          for (tensor::Index j = 0; j < last; ++j) {
            row[j] = in.flat(r * last + j);
          }
          std::partial_sort(row.begin(), row.begin() + instr.k, row.end(),
                            std::greater<float>());
          for (tensor::Index j = 0; j < instr.k; ++j) {
            out.flat(r * instr.k + j) = row[j];
          }
        }
        values[instr.id] = std::move(out);
        break;
      }
    }
    TPU_CHECK(values[instr.id].shape() == instr.shape)
        << "shape inference mismatch at %" << instr.id << " "
        << OpcodeName(instr.opcode) << ": inferred "
        << NumElements(instr.shape) << " got "
        << values[instr.id].ShapeString();
  }
  return values;
}

tensor::Tensor Evaluate(const HloModule& module,
                        const std::vector<tensor::Tensor>& params) {
  return EvaluateAll(module, params)[module.root()];
}

}  // namespace tpu::hlo
