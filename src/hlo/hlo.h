// Mini-HLO: a small operator graph IR standing in for XLA's HLO.
//
// It carries just enough structure for the paper's techniques to be
// implemented and tested against it: dense contractions (dot, conv2d) that
// the SPMD partitioner splits, elementwise/reduction/softmax glue, and the
// two op patterns Section 4.5 singles out (gather executed as one-hot matmul,
// top-k). Every instruction has a static shape; a reference evaluator
// executes modules on dense tensors, and a cost model assigns FLOP/byte
// counts used by the simulated step-time model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "tensor/tensor.h"

namespace tpu::hlo {

using Shape = std::vector<tensor::Index>;
using InstrId = std::int32_t;

inline tensor::Index NumElements(const Shape& shape) {
  tensor::Index n = 1;
  for (tensor::Index d : shape) n *= d;
  return n;
}

enum class Opcode {
  kParameter,
  kConstant,
  kAdd,
  kSub,
  kMul,
  kRelu,
  kTanh,
  kExp,
  kScale,      // multiply by a compile-time scalar
  kDot,        // [m,k] x [k,n] -> [m,n]
  kConv2D,     // NHWC x HWIO
  kReduceSum,  // remove one axis
  kSoftmax,    // over last axis
  kReshape,
  kTranspose,     // 2-D
  kOneHotGather,  // row gather as one-hot matmul: [m,n] x [n,d] -> [m,d]
  kTopK,          // top-k over last axis (values only)
  kBatchMatMul,   // [b,m,k] x [b,k,n] (or [b,n,k] with transpose_rhs)
  kSplitHeads,    // [t, h*d] -> [h, t, d]
  kMergeHeads,    // [h, t, d] -> [t, h*d]
};

const char* OpcodeName(Opcode opcode);

struct HloInstruction {
  InstrId id = -1;
  Opcode opcode = Opcode::kParameter;
  Shape shape;
  std::vector<InstrId> operands;
  std::string name;

  // Opcode-specific attributes.
  tensor::Index axis = -1;           // kReduceSum
  tensor::Index k = 0;               // kTopK / kSplitHeads (head count)
  bool transpose_rhs = false;        // kBatchMatMul
  float scale = 1.0f;                // kScale
  tensor::Conv2DConfig conv;         // kConv2D (explicit padding)
};

// A module is a DAG in topological order (operands always precede users).
// Builder methods infer output shapes and validate operand shapes.
class HloModule {
 public:
  explicit HloModule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<HloInstruction>& instructions() const { return instrs_; }
  const HloInstruction& instr(InstrId id) const { return instrs_[id]; }
  HloInstruction& mutable_instr(InstrId id) { return instrs_[id]; }
  int num_parameters() const { return num_parameters_; }
  const tensor::Tensor& constant_value(InstrId id) const;

  InstrId Parameter(Shape shape, std::string name);
  InstrId Constant(tensor::Tensor value, std::string name);
  InstrId Add(InstrId a, InstrId b);
  InstrId Sub(InstrId a, InstrId b);
  InstrId Mul(InstrId a, InstrId b);
  InstrId Relu(InstrId a);
  InstrId Tanh(InstrId a);
  InstrId Exp(InstrId a);
  InstrId Scale(InstrId a, float scale);
  InstrId Dot(InstrId a, InstrId b);
  // SAME or VALID padding; strides apply to both spatial dims.
  InstrId Conv2D(InstrId input, InstrId kernel, tensor::Index stride,
                 bool same_padding);
  InstrId ReduceSum(InstrId a, tensor::Index axis);
  InstrId Softmax(InstrId a);
  InstrId Reshape(InstrId a, Shape new_shape);
  InstrId Transpose(InstrId a);
  InstrId OneHotGather(InstrId onehot, InstrId data);
  InstrId TopK(InstrId a, tensor::Index k);
  InstrId BatchMatMul(InstrId a, InstrId b, bool transpose_rhs = false);
  InstrId SplitHeads(InstrId a, tensor::Index heads);
  InstrId MergeHeads(InstrId a);

  // Clones instruction `id` of `source` into this module with operands
  // remapped to `new_operands` (shape and attributes copied verbatim;
  // constant values are copied too). Used by the rewrite passes to rebuild
  // modules.
  InstrId CloneFrom(const HloModule& source, InstrId id,
                    const std::vector<InstrId>& new_operands);

  // The root is the last instruction added.
  InstrId root() const {
    TPU_CHECK(!instrs_.empty());
    return instrs_.back().id;
  }

  std::string ToString() const;

 private:
  InstrId Emit(HloInstruction instr);
  const HloInstruction& Operand(InstrId id) const {
    TPU_CHECK_GE(id, 0);
    TPU_CHECK_LT(id, static_cast<InstrId>(instrs_.size()));
    return instrs_[id];
  }

  std::string name_;
  std::vector<HloInstruction> instrs_;
  std::vector<tensor::Tensor> constants_;  // parallel sparse: by constant idx
  std::vector<int> constant_index_;        // instr id -> index or -1
  int num_parameters_ = 0;
};

// Reference evaluation: executes the module on dense tensors. `params` must
// match the module's parameters in declaration order. Returns the value of
// every instruction (indexed by id).
std::vector<tensor::Tensor> EvaluateAll(const HloModule& module,
                                        const std::vector<tensor::Tensor>& params);
// Convenience: value of the root only.
tensor::Tensor Evaluate(const HloModule& module,
                        const std::vector<tensor::Tensor>& params);

}  // namespace tpu::hlo
