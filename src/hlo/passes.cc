#include "hlo/passes.h"

#include <cstring>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace tpu::hlo {
namespace {

bool IsElementwise(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kRelu:
    case Opcode::kTanh:
    case Opcode::kExp:
    case Opcode::kScale:
    case Opcode::kSoftmax:
      return true;
    default:
      return false;
  }
}

bool IsTrivial(Opcode opcode) {
  return opcode == Opcode::kParameter || opcode == Opcode::kConstant ||
         opcode == Opcode::kReshape;
}

// Rebuilds `module` keeping instructions where keep[id] is true (parameters
// are always kept so the calling convention is stable). Returns the new
// module; old-to-new id map in `remap`.
HloModule Rebuild(const HloModule& module, const std::vector<bool>& keep,
                  std::vector<InstrId>* remap) {
  HloModule rebuilt(module.name());
  remap->assign(module.instructions().size(), -1);
  for (const HloInstruction& instr : module.instructions()) {
    if (!keep[instr.id] && instr.opcode != Opcode::kParameter) continue;
    std::vector<InstrId> operands;
    operands.reserve(instr.operands.size());
    for (InstrId o : instr.operands) {
      TPU_CHECK_GE((*remap)[o], 0) << "operand dropped before user";
      operands.push_back((*remap)[o]);
    }
    (*remap)[instr.id] = rebuilt.CloneFrom(module, instr.id, operands);
  }
  return rebuilt;
}

}  // namespace

HloModule EliminateDeadCode(const HloModule& module, int* removed) {
  std::vector<bool> live(module.instructions().size(), false);
  // Walk backwards from the root marking reachable instructions.
  std::vector<InstrId> stack{module.root()};
  while (!stack.empty()) {
    const InstrId id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    for (InstrId o : module.instr(id).operands) stack.push_back(o);
  }
  int dropped = 0;
  for (const HloInstruction& instr : module.instructions()) {
    if (!live[instr.id] && instr.opcode != Opcode::kParameter) ++dropped;
  }
  if (removed != nullptr) *removed = dropped;
  std::vector<InstrId> remap;
  return Rebuild(module, live, &remap);
}

HloModule CommonSubexpressionElimination(const HloModule& module,
                                         int* merged) {
  HloModule rebuilt(module.name());
  std::vector<InstrId> remap(module.instructions().size(), -1);
  std::unordered_map<std::string, InstrId> seen;
  int merges = 0;
  for (const HloInstruction& instr : module.instructions()) {
    std::vector<InstrId> operands;
    for (InstrId o : instr.operands) operands.push_back(remap[o]);

    // Structural key over opcode + remapped operands + attributes. Constants
    // key on their bytes; parameters never merge.
    std::ostringstream key;
    if (instr.opcode != Opcode::kParameter) {
      key << static_cast<int>(instr.opcode);
      for (InstrId o : operands) key << "," << o;
      key << "|" << instr.axis << "|" << instr.k << "|" << instr.transpose_rhs
          << "|" << instr.scale << "|" << instr.conv.stride_h << ","
          << instr.conv.stride_w << "," << instr.conv.pad_top << ","
          << instr.conv.pad_bottom << "," << instr.conv.pad_left << ","
          << instr.conv.pad_right;
      if (instr.opcode == Opcode::kConstant) {
        const tensor::Tensor& value = module.constant_value(instr.id);
        key << "#";
        for (tensor::Index i = 0; i < value.num_elements(); ++i) {
          key << value.flat(i) << ";";
        }
      }
      const auto it = seen.find(key.str());
      if (it != seen.end()) {
        remap[instr.id] = it->second;
        ++merges;
        continue;
      }
    }
    const InstrId clone = rebuilt.CloneFrom(module, instr.id, operands);
    remap[instr.id] = clone;
    if (instr.opcode != Opcode::kParameter) seen.emplace(key.str(), clone);
  }
  if (merged != nullptr) *merged = merges;
  return rebuilt;
}

HloModule MoveScalesToSmallerSide(const HloModule& module, int* rewrites) {
  HloModule rebuilt(module.name());
  std::vector<InstrId> remap(module.instructions().size(), -1);
  int moved = 0;
  for (const HloInstruction& instr : module.instructions()) {
    // Pattern 1: Scale(Dot(a, b), s) with the dot output larger than the
    // smaller operand — fold the scale into that operand instead.
    if (instr.opcode == Opcode::kScale) {
      const HloInstruction& producer = module.instr(instr.operands[0]);
      if (producer.opcode == Opcode::kDot) {
        const HloInstruction& a = module.instr(producer.operands[0]);
        const HloInstruction& b = module.instr(producer.operands[1]);
        const tensor::Index smaller =
            std::min(NumElements(a.shape), NumElements(b.shape));
        if (smaller < NumElements(instr.shape)) {
          const bool scale_lhs = NumElements(a.shape) <= NumElements(b.shape);
          InstrId lhs = remap[a.id];
          InstrId rhs = remap[b.id];
          if (scale_lhs) {
            lhs = rebuilt.Scale(lhs, instr.scale);
          } else {
            rhs = rebuilt.Scale(rhs, instr.scale);
          }
          remap[instr.id] = rebuilt.Dot(lhs, rhs);
          ++moved;
          continue;
        }
      }
    }
    // Pattern 2: Dot(Scale(a, s), b) where b is smaller than a.
    if (instr.opcode == Opcode::kDot) {
      const HloInstruction& lhs = module.instr(instr.operands[0]);
      const HloInstruction& rhs = module.instr(instr.operands[1]);
      if (lhs.opcode == Opcode::kScale) {
        const HloInstruction& inner = module.instr(lhs.operands[0]);
        if (NumElements(rhs.shape) < NumElements(inner.shape)) {
          const InstrId scaled_rhs =
              rebuilt.Scale(remap[rhs.id], lhs.scale);
          remap[instr.id] = rebuilt.Dot(remap[inner.id], scaled_rhs);
          ++moved;
          continue;
        }
      }
      if (rhs.opcode == Opcode::kScale) {
        const HloInstruction& inner = module.instr(rhs.operands[0]);
        if (NumElements(lhs.shape) < NumElements(inner.shape)) {
          const InstrId scaled_lhs =
              rebuilt.Scale(remap[lhs.id], rhs.scale);
          remap[instr.id] = rebuilt.Dot(scaled_lhs, remap[inner.id]);
          ++moved;
          continue;
        }
      }
    }
    std::vector<InstrId> operands;
    for (InstrId o : instr.operands) operands.push_back(remap[o]);
    remap[instr.id] = rebuilt.CloneFrom(module, instr.id, operands);
  }
  if (rewrites != nullptr) *rewrites = moved;
  // Moving scales can strand the original producers; clean them up.
  return EliminateDeadCode(rebuilt);
}

FusionSummary AnalyzeElementwiseFusion(const HloModule& module) {
  // Union-find over elementwise instructions connected by producer/consumer
  // edges: each component is one fused kernel.
  std::vector<InstrId> parent(module.instructions().size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<InstrId>(i);
  }
  std::function<InstrId(InstrId)> find = [&](InstrId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  FusionSummary summary;
  for (const HloInstruction& instr : module.instructions()) {
    if (IsTrivial(instr.opcode)) continue;
    ++summary.original_kernels;
    if (!IsElementwise(instr.opcode)) continue;
    for (InstrId o : instr.operands) {
      if (IsElementwise(module.instr(o).opcode)) {
        parent[find(instr.id)] = find(o);
      }
    }
  }
  // Count kernels: non-elementwise ops individually, elementwise components
  // once.
  std::vector<bool> counted(module.instructions().size(), false);
  for (const HloInstruction& instr : module.instructions()) {
    if (IsTrivial(instr.opcode)) continue;
    if (!IsElementwise(instr.opcode)) {
      ++summary.fused_kernels;
      continue;
    }
    const InstrId root = find(instr.id);
    if (!counted[root]) {
      counted[root] = true;
      ++summary.fused_kernels;
    }
  }
  return summary;
}

SimTime FusedModuleSeconds(const HloModule& module, const TpuCoreModel& core) {
  TpuCoreModel no_overhead = core;
  no_overhead.op_overhead = 0;
  SimTime seconds = 0;
  for (const HloInstruction& instr : module.instructions()) {
    if (instr.opcode == Opcode::kParameter ||
        instr.opcode == Opcode::kConstant) {
      continue;
    }
    seconds += no_overhead.SecondsFor(CostOf(module, instr));
  }
  return seconds + core.op_overhead * AnalyzeElementwiseFusion(module).fused_kernels;
}

}  // namespace tpu::hlo
