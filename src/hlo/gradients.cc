#include "hlo/gradients.h"

#include <cmath>

#include "common/check.h"
#include "hlo/cost_model.h"

namespace tpu::hlo {

using tensor::Tensor;

ForwardBackwardResult EvaluateWithGradients(
    const HloModule& module, const std::vector<Tensor>& params) {
  // Forward pass, keeping every activation.
  const std::vector<Tensor> values = EvaluateAll(module, params);

  ForwardBackwardResult result;
  result.root_value = values[module.root()];
  for (tensor::Index i = 0; i < result.root_value.num_elements(); ++i) {
    result.loss += result.root_value.flat(i);
  }

  // Adjoints, lazily allocated (an empty tensor means "no gradient flowed
  // here yet").
  std::vector<Tensor> adjoints(module.instructions().size());
  auto accumulate = [&](InstrId id, Tensor grad) {
    if (adjoints[id].num_elements() == 0) {
      adjoints[id] = std::move(grad);
    } else {
      adjoints[id] = tensor::Add(adjoints[id], grad);
    }
  };
  accumulate(module.root(),
             Tensor::Full(module.instr(module.root()).shape, 1.0f));

  for (int i = static_cast<int>(module.instructions().size()) - 1; i >= 0;
       --i) {
    const HloInstruction& instr = module.instr(static_cast<InstrId>(i));
    const Tensor& g = adjoints[instr.id];
    if (g.num_elements() == 0) continue;  // nothing flowed here
    const Tensor& out = values[instr.id];
    auto operand_value = [&](int idx) -> const Tensor& {
      return values[instr.operands[idx]];
    };
    auto op = [&](int idx) { return instr.operands[idx]; };

    switch (instr.opcode) {
      case Opcode::kParameter:
      case Opcode::kConstant:
        break;  // leaves
      case Opcode::kAdd:
        accumulate(op(0), g);
        accumulate(op(1), g);
        break;
      case Opcode::kSub:
        accumulate(op(0), g);
        accumulate(op(1), tensor::Scale(g, -1.0f));
        break;
      case Opcode::kMul:
        accumulate(op(0), tensor::Mul(g, operand_value(1)));
        accumulate(op(1), tensor::Mul(g, operand_value(0)));
        result.backward_flops += 2.0 * g.num_elements();
        break;
      case Opcode::kRelu: {
        Tensor masked = g;
        const Tensor& x = operand_value(0);
        for (tensor::Index j = 0; j < masked.num_elements(); ++j) {
          if (x.flat(j) <= 0.0f) masked.flat(j) = 0.0f;
        }
        accumulate(op(0), std::move(masked));
        break;
      }
      case Opcode::kTanh: {
        // d tanh = 1 - tanh^2, using the stored output.
        Tensor dx = g;
        for (tensor::Index j = 0; j < dx.num_elements(); ++j) {
          dx.flat(j) *= 1.0f - out.flat(j) * out.flat(j);
        }
        accumulate(op(0), std::move(dx));
        break;
      }
      case Opcode::kExp:
        accumulate(op(0), tensor::Mul(g, out));
        break;
      case Opcode::kScale:
        accumulate(op(0), tensor::Scale(g, instr.scale));
        break;
      case Opcode::kDot:
      case Opcode::kOneHotGather: {
        const Tensor& a = operand_value(0);
        const Tensor& b = operand_value(1);
        accumulate(op(0), tensor::MatMul(g, tensor::Transpose2D(b)));
        accumulate(op(1), tensor::MatMul(tensor::Transpose2D(a), g));
        result.backward_flops +=
            4.0 * a.dim(0) * a.dim(1) * b.dim(1);  // two matmuls
        break;
      }
      case Opcode::kConv2D: {
        const auto grads = tensor::Conv2DBackward(
            operand_value(0), operand_value(1), g, instr.conv);
        accumulate(op(0), grads.dinput);
        accumulate(op(1), grads.dkernel);
        result.backward_flops += 2.0 * CostOf(module, instr).flops;
        break;
      }
      case Opcode::kReduceSum: {
        // Broadcast g back along the reduced axis.
        const Tensor& in = operand_value(0);
        Tensor dx(in.shape());
        tensor::Index outer = 1, inner = 1;
        for (tensor::Index d = 0; d < instr.axis; ++d) outer *= in.dim(d);
        for (tensor::Index d = instr.axis + 1; d < in.rank(); ++d) {
          inner *= in.dim(d);
        }
        const tensor::Index mid = in.dim(instr.axis);
        for (tensor::Index o = 0; o < outer; ++o) {
          for (tensor::Index m = 0; m < mid; ++m) {
            for (tensor::Index j = 0; j < inner; ++j) {
              dx.flat((o * mid + m) * inner + j) = g.flat(o * inner + j);
            }
          }
        }
        accumulate(op(0), std::move(dx));
        break;
      }
      case Opcode::kSoftmax: {
        // dx = (g - sum(g * y)) * y per row over the last axis.
        const tensor::Index last = out.shape().back();
        const tensor::Index rows = out.num_elements() / last;
        Tensor dx(out.shape());
        for (tensor::Index r = 0; r < rows; ++r) {
          double dot = 0;
          for (tensor::Index j = 0; j < last; ++j) {
            dot += static_cast<double>(g.flat(r * last + j)) *
                   out.flat(r * last + j);
          }
          for (tensor::Index j = 0; j < last; ++j) {
            dx.flat(r * last + j) =
                (g.flat(r * last + j) - static_cast<float>(dot)) *
                out.flat(r * last + j);
          }
        }
        accumulate(op(0), std::move(dx));
        break;
      }
      case Opcode::kReshape:
        accumulate(op(0), tensor::Reshape(g, operand_value(0).shape()));
        break;
      case Opcode::kTranspose:
        accumulate(op(0), tensor::Transpose2D(g));
        break;
      case Opcode::kBatchMatMul: {
        const Tensor& a = operand_value(0);
        const Tensor& b = operand_value(1);
        if (!instr.transpose_rhs) {
          // out = A B: dA = g B^T (bmm with transpose_rhs), dB = A^T g.
          accumulate(op(0), tensor::BatchMatMul(g, b, /*transpose_rhs=*/true));
          // dB[bi] = A[bi]^T g[bi]; express via per-batch transpose.
          Tensor db(b.shape());
          const tensor::Index batch = a.dim(0), m = a.dim(1), k = a.dim(2),
                              n = b.dim(2);
          for (tensor::Index bi = 0; bi < batch; ++bi) {
            for (tensor::Index p = 0; p < k; ++p) {
              for (tensor::Index j = 0; j < n; ++j) {
                double acc = 0;
                for (tensor::Index i2 = 0; i2 < m; ++i2) {
                  acc += static_cast<double>(a.flat((bi * m + i2) * k + p)) *
                         g.flat((bi * m + i2) * n + j);
                }
                db.flat((bi * k + p) * n + j) = static_cast<float>(acc);
              }
            }
          }
          accumulate(op(1), std::move(db));
        } else {
          // out = A B^T: dA = g B, dB = g^T A (per batch).
          accumulate(op(0), tensor::BatchMatMul(g, b, /*transpose_rhs=*/false));
          Tensor db(b.shape());
          const tensor::Index batch = a.dim(0), m = a.dim(1), k = a.dim(2),
                              n = b.dim(1);
          for (tensor::Index bi = 0; bi < batch; ++bi) {
            for (tensor::Index j = 0; j < n; ++j) {
              for (tensor::Index p = 0; p < k; ++p) {
                double acc = 0;
                for (tensor::Index i2 = 0; i2 < m; ++i2) {
                  acc += static_cast<double>(g.flat((bi * m + i2) * n + j)) *
                         a.flat((bi * m + i2) * k + p);
                }
                db.flat((bi * n + j) * k + p) = static_cast<float>(acc);
              }
            }
          }
          accumulate(op(1), std::move(db));
        }
        const tensor::Index contracted = a.dim(2);
        result.backward_flops +=
            4.0 * a.dim(0) * a.dim(1) * contracted * g.dim(2);
        break;
      }
      case Opcode::kSplitHeads:
        accumulate(op(0), tensor::MergeHeads(g));
        break;
      case Opcode::kMergeHeads: {
        const tensor::Index heads = operand_value(0).dim(0);
        accumulate(op(0), tensor::SplitHeads(g, heads));
        break;
      }
      case Opcode::kTopK:
        // Piecewise-constant selection: gradient treated as zero. A
        // parameter whose only path runs through top-k gets a zero gradient
        // below; callers doing real training should keep top-k out of the
        // loss path.
        break;
    }
  }

  int param_index = 0;
  for (const HloInstruction& instr : module.instructions()) {
    if (instr.opcode != Opcode::kParameter) continue;
    (void)param_index;
    if (adjoints[instr.id].num_elements() == 0) {
      result.param_grads.push_back(Tensor::Zeros(instr.shape));
    } else {
      result.param_grads.push_back(adjoints[instr.id]);
    }
  }
  return result;
}

tensor::Tensor FiniteDifferenceGradient(const HloModule& module,
                                        const std::vector<Tensor>& params,
                                        int param_index, float epsilon) {
  TPU_CHECK_GE(param_index, 0);
  TPU_CHECK_LT(param_index, static_cast<int>(params.size()));
  auto loss_of = [&](const std::vector<Tensor>& p) {
    const Tensor root = Evaluate(module, p);
    double loss = 0;
    for (tensor::Index i = 0; i < root.num_elements(); ++i) {
      loss += root.flat(i);
    }
    return loss;
  };
  Tensor grad(params[param_index].shape());
  std::vector<Tensor> perturbed = params;
  for (tensor::Index i = 0; i < grad.num_elements(); ++i) {
    const float original = params[param_index].flat(i);
    perturbed[param_index].flat(i) = original + epsilon;
    const double up = loss_of(perturbed);
    perturbed[param_index].flat(i) = original - epsilon;
    const double down = loss_of(perturbed);
    perturbed[param_index].flat(i) = original;
    grad.flat(i) = static_cast<float>((up - down) / (2.0 * epsilon));
  }
  return grad;
}

}  // namespace tpu::hlo
