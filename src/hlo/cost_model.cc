#include "hlo/cost_model.h"

#include <algorithm>

#include "common/math_util.h"

namespace tpu::hlo {
namespace {

constexpr tensor::Index kMxuDim = 128;
// bf16 accounting at the op level (activations and weights are bf16 on-chip
// per Section 4.1).
constexpr Bytes kElemBytes = 2;

}  // namespace

OpCost& OpCost::operator+=(const OpCost& other) {
  // Aggregate utilization as the flop-weighted mean over MXU ops.
  const Flops mxu_flops_self = uses_mxu ? flops : 0;
  const Flops mxu_flops_other = other.uses_mxu ? other.flops : 0;
  if (mxu_flops_self + mxu_flops_other > 0) {
    mxu_utilization = (mxu_utilization * mxu_flops_self +
                       other.mxu_utilization * mxu_flops_other) /
                      (mxu_flops_self + mxu_flops_other);
    uses_mxu = true;
  }
  flops += other.flops;
  bytes += other.bytes;
  return *this;
}

double MxuUtilization(tensor::Index m, tensor::Index k, tensor::Index n) {
  if (m <= 0 || k <= 0 || n <= 0) return 1e-3;
  const double um = static_cast<double>(m) / RoundUp(m, kMxuDim);
  const double un = static_cast<double>(n) / RoundUp(n, kMxuDim);
  // The contraction dimension pipelines through the array; short k only
  // costs pipeline fill, modeled as k / (k + 128).
  const double uk = static_cast<double>(k) / (k + kMxuDim);
  return um * un * uk;
}

SimTime TpuCoreModel::SecondsFor(const OpCost& cost) const {
  const double peak =
      cost.uses_mxu ? peak_mxu_flops * std::max(cost.mxu_utilization, 1e-3)
                    : peak_vector_flops;
  const SimTime compute = cost.flops > 0 ? cost.flops / peak : 0.0;
  const SimTime memory =
      hbm_bandwidth > 0 ? static_cast<double>(cost.bytes) / hbm_bandwidth : 0.0;
  return std::max(compute, memory) + op_overhead;
}

OpCost ElementwiseCost(tensor::Index elems, int arity, bool transcendental) {
  OpCost cost;
  cost.flops = static_cast<Flops>(elems) * (transcendental ? 8 : 1);
  cost.bytes = elems * kElemBytes * (arity + 1);
  return cost;
}

OpCost SoftmaxCost(tensor::Index elems) {
  OpCost cost;
  cost.flops = static_cast<Flops>(elems) * 12;  // max, exp, sum, divide
  cost.bytes = elems * kElemBytes * 3;
  return cost;
}

OpCost ReduceCost(tensor::Index in_elems, tensor::Index out_elems) {
  OpCost cost;
  cost.flops = static_cast<Flops>(in_elems);
  cost.bytes = (in_elems + out_elems) * kElemBytes;
  return cost;
}

OpCost TransposeCost(tensor::Index elems) {
  OpCost cost;
  cost.bytes = elems * kElemBytes * 2;
  return cost;
}

OpCost DotCost(tensor::Index m, tensor::Index k, tensor::Index n) {
  OpCost cost;
  cost.flops = 2.0 * m * k * n;
  cost.bytes = (m * k + k * n + m * n) * kElemBytes;
  cost.uses_mxu = true;
  cost.mxu_utilization = MxuUtilization(m, k, n);
  return cost;
}

OpCost Conv2DCost(tensor::Index batch, tensor::Index ho, tensor::Index wo,
                  tensor::Index co, tensor::Index kh, tensor::Index kw,
                  tensor::Index ci, tensor::Index in_elems) {
  OpCost cost;
  cost.flops = 2.0 * batch * ho * wo * co * kh * kw * ci;
  cost.bytes =
      (in_elems + kh * kw * ci * co + batch * ho * wo * co) * kElemBytes;
  cost.uses_mxu = true;
  // Convs lower to matmuls of (batch*ho*wo) x (kh*kw*ci) x co.
  cost.mxu_utilization = MxuUtilization(batch * ho * wo, kh * kw * ci, co);
  return cost;
}

OpCost TopKCost(tensor::Index in_elems, tensor::Index out_elems,
                tensor::Index k) {
  OpCost cost;
  const tensor::Index logk =
      std::max<tensor::Index>(1, Log2Floor(std::max<tensor::Index>(2, k)));
  cost.flops = static_cast<Flops>(in_elems) * logk * 4;  // vector sort network
  cost.bytes = (in_elems + out_elems) * kElemBytes;
  return cost;
}

OpCost CostOf(const HloModule& module, const HloInstruction& instr) {
  auto operand_shape = [&](int i) -> const Shape& {
    return module.instr(instr.operands[i]).shape;
  };
  switch (instr.opcode) {
    case Opcode::kParameter:
    case Opcode::kConstant:
    case Opcode::kReshape:  // layout no-op on TPU
      return {};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
      return ElementwiseCost(NumElements(instr.shape), 2, false);
    case Opcode::kRelu:
    case Opcode::kScale:
      return ElementwiseCost(NumElements(instr.shape), 1, false);
    case Opcode::kTanh:
    case Opcode::kExp:
      return ElementwiseCost(NumElements(instr.shape), 1, true);
    case Opcode::kSoftmax:
      return SoftmaxCost(NumElements(instr.shape));
    case Opcode::kReduceSum:
      return ReduceCost(NumElements(operand_shape(0)),
                        NumElements(instr.shape));
    case Opcode::kTranspose:
      return TransposeCost(NumElements(instr.shape));
    case Opcode::kDot:
    case Opcode::kOneHotGather: {
      const Shape& a = operand_shape(0);
      const Shape& b = operand_shape(1);
      return DotCost(a[0], a[1], b[1]);
    }
    case Opcode::kConv2D: {
      const Shape& in = operand_shape(0);
      const Shape& kshape = operand_shape(1);
      return Conv2DCost(instr.shape[0], instr.shape[1], instr.shape[2],
                        instr.shape[3], kshape[0], kshape[1], kshape[2],
                        NumElements(in));
    }
    case Opcode::kTopK:
      return TopKCost(NumElements(operand_shape(0)), NumElements(instr.shape),
                      instr.k);
    case Opcode::kBatchMatMul: {
      const Shape& a = operand_shape(0);
      const tensor::Index contracted = a[2];
      OpCost cost = DotCost(a[1], contracted, instr.shape[2]);
      cost.flops *= a[0];
      cost.bytes = (NumElements(a) + NumElements(operand_shape(1)) +
                    NumElements(instr.shape)) * 2;
      return cost;
    }
    case Opcode::kSplitHeads:
    case Opcode::kMergeHeads:
      return TransposeCost(NumElements(instr.shape));
  }
  return {};
}

ModuleCost CostOfModule(const HloModule& module, const TpuCoreModel& core) {
  ModuleCost result;
  for (const HloInstruction& instr : module.instructions()) {
    if (instr.opcode == Opcode::kParameter ||
        instr.opcode == Opcode::kConstant) {
      continue;
    }
    const OpCost cost = CostOf(module, instr);
    result.total += cost;
    result.seconds += core.SecondsFor(cost);
    ++result.ops;
  }
  return result;
}

OpCost NonContiguousGatherCost(tensor::Index rows, tensor::Index width,
                               Bytes bytes_per_elem) {
  OpCost cost;
  // The TPU-v3 non-contiguous gather path runs on the scalar/vector units at
  // ~2% of streaming HBM bandwidth (each row is a separate short DMA);
  // model that as 50x the streamed byte count.
  cost.bytes = rows * width * bytes_per_elem * 50;
  cost.flops = 0;
  return cost;
}

}  // namespace tpu::hlo
