// Analytic TPU-v3 core cost model.
//
// Substitutes for real hardware timing (substitution table in DESIGN.md):
// each HLO instruction gets a FLOP count, memory traffic, and an MXU
// utilization estimate from its shapes; a roofline over peak matrix-unit
// throughput and HBM bandwidth converts that to simulated seconds. The
// small-tile utilization rolloff (tiles below the 128x128 systolic array)
// is what produces the compute-efficiency loss at small per-core batch that
// Figures 6 and 8 exhibit.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "hlo/hlo.h"

namespace tpu::hlo {

struct OpCost {
  Flops flops = 0;
  Bytes bytes = 0;              // HBM traffic: operands read + output written
  double mxu_utilization = 1.0; // fraction of peak MXU throughput achievable
  bool uses_mxu = false;        // matrix unit vs vector unit

  OpCost& operator+=(const OpCost& other);
};

// TPU-v3 per-core parameters (one chip = two cores). Peak numbers follow the
// published TPU-v3 specs: ~123 TFLOP/s bf16 and ~900 GB/s HBM per chip.
struct TpuCoreModel {
  double peak_mxu_flops = 61.5e12;    // bf16 matrix unit, per core
  double peak_vector_flops = 1.5e12;  // vector unit, per core
  double hbm_bandwidth = 450e9;       // bytes/s, per core
  Bytes bytes_per_elem = 2;           // bf16 activations (Section 4.1)
  SimTime op_overhead = Micros(0.5);  // fixed per-op issue overhead

  // Roofline execution time for one op.
  SimTime SecondsFor(const OpCost& cost) const;
};

// Shape-level cost helpers. These are shared with the SPMD partitioner,
// which evaluates them on *local* (per-partition) shapes.
OpCost ElementwiseCost(tensor::Index elems, int arity, bool transcendental);
OpCost SoftmaxCost(tensor::Index elems);
OpCost ReduceCost(tensor::Index in_elems, tensor::Index out_elems);
OpCost TransposeCost(tensor::Index elems);
OpCost DotCost(tensor::Index m, tensor::Index k, tensor::Index n);
OpCost Conv2DCost(tensor::Index batch, tensor::Index ho, tensor::Index wo,
                  tensor::Index co, tensor::Index kh, tensor::Index kw,
                  tensor::Index ci, tensor::Index in_elems);
OpCost TopKCost(tensor::Index in_elems, tensor::Index out_elems,
                tensor::Index k);

// Cost of a single instruction (parameters/constants are free).
OpCost CostOf(const HloModule& module, const HloInstruction& instr);

// Summed cost over the module, plus total roofline seconds on `core`.
struct ModuleCost {
  OpCost total;
  SimTime seconds = 0;
  int ops = 0;
};
ModuleCost CostOfModule(const HloModule& module, const TpuCoreModel& core);

// MXU utilization for a (m x k) . (k x n) contraction: tiles smaller than
// the 128x128 systolic array waste the remainder of the array.
double MxuUtilization(tensor::Index m, tensor::Index k, tensor::Index n);

// Cost of a *non-contiguous* row gather (rows x width elements) executed on
// the memory system instead of the MXU — the slow path that Section 4.5's
// one-hot-matmul optimization replaces. Non-contiguous access achieves only
// a small fraction of HBM bandwidth.
OpCost NonContiguousGatherCost(tensor::Index rows, tensor::Index width,
                               Bytes bytes_per_elem);

}  // namespace tpu::hlo
