// Reverse-mode differentiation over the mini-HLO IR — the role XLA's
// training graphs play in the paper's benchmarks (every per-step cost is
// forward + backward). Gradients are computed numerically by the evaluator:
// a forward pass stores every activation, then vector-Jacobian products run
// in reverse topological order.
//
// Convention: the loss is the SUM of the root instruction's elements, so
// the backward pass is seeded with ones. Wrap the root in the reduction of
// your choice to express other losses.
//
// Every rule is verified against central finite differences in the tests.
#pragma once

#include <vector>

#include "common/units.h"
#include "hlo/hlo.h"
#include "tensor/tensor.h"

namespace tpu::hlo {

struct ForwardBackwardResult {
  tensor::Tensor root_value;
  double loss = 0;  // sum of root elements
  // Gradient of the loss w.r.t. each parameter, in declaration order.
  std::vector<tensor::Tensor> param_grads;
  // FLOPs of the backward pass (for step-cost accounting): roughly 2x the
  // forward contraction FLOPs, matching the usual fwd:bwd = 1:2 rule.
  Flops backward_flops = 0;
};

// Differentiable opcodes: everything except kTopK (piecewise-constant
// selection; its gradient is treated as zero, and a CHECK fires if a
// parameter's only path to the root passes through one).
ForwardBackwardResult EvaluateWithGradients(
    const HloModule& module, const std::vector<tensor::Tensor>& params);

// Central finite-difference gradient of the summed root w.r.t. parameter
// `param_index` (test utility; O(elements) forward evaluations).
tensor::Tensor FiniteDifferenceGradient(const HloModule& module,
                                        const std::vector<tensor::Tensor>& params,
                                        int param_index, float epsilon = 1e-3f);

}  // namespace tpu::hlo
