// Compiler passes over the mini-HLO IR — the XLA-side optimizations the
// paper leans on (Section 4.1):
//   * MoveScalesToSmallerSide: "we move the scalar multiplications and
//     divisions to the smaller side of matrix multiplication by leveraging
//     the commutativity of scalar multiplication and matrix multiplication"
//     — relieves the vector units of full-activation-sized multiplies;
//   * elementwise fusion analysis: "we combine small variables ... into one
//     large tensor [to] reduce register spilling" — modeled as fusing
//     maximal elementwise chains into single kernels, so the per-op issue
//     overhead (the register/dispatch tax) is paid once per chain;
//   * classic cleanups every compiler needs: dead-code elimination and
//     common-subexpression elimination.
// All rewrites are semantics-preserving; tests check random-input
// equivalence and that the cost model agrees the rewrite helped.
#pragma once

#include "hlo/cost_model.h"
#include "hlo/hlo.h"

namespace tpu::hlo {

// Rebuilds the module keeping only instructions reachable from the root.
// `removed` (optional) reports how many instructions were dropped.
HloModule EliminateDeadCode(const HloModule& module, int* removed = nullptr);

// Rebuilds the module merging structurally identical instructions (same
// opcode, operands and attributes). Constants merge only when their values
// are bitwise equal. `merged` reports the number of instructions eliminated.
HloModule CommonSubexpressionElimination(const HloModule& module,
                                         int* merged = nullptr);

// Rewrites Scale/Dot patterns so the scalar multiply lands on the dot
// operand with the fewest elements:
//   Scale(Dot(a, b), s)   -> Dot(Scale(a, s), b) or Dot(a, Scale(b, s))
//   Dot(Scale(a, s), b)   -> Dot(a, Scale(b, s))   (when b is smaller)
// `rewrites` reports how many scales moved. The returned module computes
// the same function (scalar multiplication commutes with matmul).
HloModule MoveScalesToSmallerSide(const HloModule& module,
                                  int* rewrites = nullptr);

// Fusion analysis: partitions the module's non-trivial instructions into
// kernels, where maximal chains of elementwise ops (add/sub/mul/relu/tanh/
// exp/scale/softmax) fuse into their consumer chain.
struct FusionSummary {
  int original_kernels = 0;  // one kernel per instruction, unfused
  int fused_kernels = 0;     // kernels after elementwise-chain fusion
};
FusionSummary AnalyzeElementwiseFusion(const HloModule& module);

// Module execution seconds with fusion applied: compute/memory costs are
// unchanged, but the per-op issue overhead is charged per fused kernel
// instead of per instruction.
SimTime FusedModuleSeconds(const HloModule& module, const TpuCoreModel& core);

}  // namespace tpu::hlo
