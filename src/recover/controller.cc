#include "recover/controller.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"

namespace tpu::recover {

RecoveryController::RecoveryController(net::Network* network,
                                       fault::FaultInjector* injector,
                                       ControllerConfig config)
    : network_(network),
      injector_(injector),
      config_(std::move(config)),
      sim_(&network->simulator()) {
  TPU_CHECK(network_ != nullptr);
  TPU_CHECK(injector_ != nullptr);
  TPU_CHECK_GT(config_.total_work, 0.0);
  TPU_CHECK_GT(config_.pricer.healthy_step, 0.0);
  TPU_CHECK_GT(config_.detection_deadline, 0.0);
  TPU_CHECK(config_.pricer.degraded_step != nullptr);
  TPU_CHECK(config_.pricer.replanned_step != nullptr);
  TPU_CHECK(config_.pricer.shrunk_step != nullptr);
}

void RecoveryController::Begin() {
  TPU_CHECK(!begun_);
  begun_ = true;
  if (config_.auto_subscribe) {
    injector_->set_on_apply(
        [this](const fault::FaultEvent& event) { OnFault(event); });
    injector_->set_on_heal(
        [this](const fault::FaultEvent& event) { OnHeal(event); });
  }
  spares_left_ = config_.policy.spare_hosts;
  timeline_.total_work = config_.total_work;
  timeline_.base_seconds =
      config_.total_work / RateFor(config_.pricer.healthy_step);
  last_advance_ = interval_start_ = sim_->now();
  SetRate(config_.pricer.healthy_step, "healthy");
}

RecoveryTimeline RecoveryController::Run(SimTime horizon) {
  Begin();
  sim_->RunUntil(sim_->now() + horizon,
                 sim::Simulator::DeadlinePolicy::kStopAtLastEvent);
  if (!done_) {
    // Horizon expired with work outstanding: close the books where the
    // clock stopped and report the truncation.
    AdvanceWork();
    CloseInterval();
    timeline_.makespan = sim_->now();
    timeline_.completed = false;
  }
  return timeline_;
}

RecoveryTimeline RecoveryController::Stop() {
  if (!done_) {
    AdvanceWork();
    CloseInterval();
    timeline_.makespan = sim_->now();
    timeline_.completed = false;
    done_ = true;
    // Retire every pending finish / detect / probe / verify callback.
    ++rate_epoch_;
    ++stall_seq_;
    ++decision_seq_;
  }
  return timeline_;
}

plan::LinkHealthSet RecoveryController::ObserveHealth() const {
  return config_.observe_health != nullptr
             ? config_.observe_health()
             : plan::LinkHealthSet::FromNetwork(*network_);
}

double RecoveryController::RateFor(SimTime step) const {
  return EffectiveWorkRate(config_.pricer.healthy_step, step,
                           config_.checkpoint_interval,
                           config_.costs.checkpoint_write);
}

void RecoveryController::TraceInstant(const char* name) {
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    recorder->Instant(recorder->Track("system", "recovery"), name,
                      sim_->now());
  }
}

void RecoveryController::TelemetryEvent(const char* name, const char* detail) {
  if (telemetry::TelemetrySession* session = telemetry::CurrentTelemetry()) {
    session->RecordEvent(sim_->now(), name, detail == nullptr ? "" : detail);
  }
}

void RecoveryController::AdvanceWork() {
  const SimTime elapsed = sim_->now() - last_advance_;
  if (elapsed > 0) {
    if (rate_ > 0) {
      work_done_ += elapsed * rate_;
    } else {
      timeline_.stalled_seconds += elapsed;
    }
  }
  last_advance_ = sim_->now();
}

void RecoveryController::CloseInterval() {
  if (sim_->now() > interval_start_) {
    timeline_.intervals.push_back({interval_start_, sim_->now(), rate_,
                                   step_seconds_, interval_label_});
  }
  interval_start_ = sim_->now();
}

void RecoveryController::SetRate(SimTime step_seconds, const char* label) {
  AdvanceWork();
  CloseInterval();
  mode_ = Mode::kRunning;
  step_seconds_ = step_seconds;
  rate_ = RateFor(step_seconds);
  interval_label_ = label;
  ++rate_epoch_;
  const SimTime remaining = config_.total_work - work_done_;
  const SimTime delay = remaining > 0 ? remaining / rate_ : 0.0;
  sim_->Schedule(delay,
                 [this, epoch = rate_epoch_] { OnFinish(epoch); });
}

void RecoveryController::OnFinish(std::uint64_t rate_epoch) {
  if (done_ || rate_epoch != rate_epoch_) return;
  AdvanceWork();
  CloseInterval();
  done_ = true;
  timeline_.completed = true;
  timeline_.makespan = sim_->now();
  if (config_.on_finished) config_.on_finished();
}

const char* RecoveryController::LabelFor(SimTime step) const {
  if (exec_mode_ == ExecMode::kShrunk) return "shrunk";
  if (exec_mode_ == ExecMode::kRouted) return "routed";
  return step == config_.pricer.healthy_step ? "healthy" : "degraded";
}

SimTime RecoveryController::CurrentStepEstimate() {
  const plan::LinkHealthSet health = ObserveHealth();
  switch (exec_mode_) {
    case ExecMode::kShrunk: {
      // The shrunk job only touches chips and interior links of the carved
      // rectangle. Faults outside are invisible; inside, degradations
      // multiply the step by their worst factor (a coarse but conservative
      // proxy) and anything failing a link or chip stalls it outright.
      const topo::MeshTopology& topo = mesh();
      double worst = 1.0;
      for (const fault::FaultEvent& event : active_faults_) {
        switch (event.kind) {
          case fault::FaultKind::kChipFailure:
            if (rect_.Contains(topo.CoordOf(event.chip))) {
              return shrunk_step_ + net::Network::kFailedLinkStall;
            }
            break;
          case fault::FaultKind::kLinkFlap: {
            const topo::Link& link = topo.links()[event.link];
            if (rect_.Contains(topo.CoordOf(link.from)) &&
                rect_.Contains(topo.CoordOf(link.to))) {
              if (event.permanent()) {
                return shrunk_step_ + net::Network::kFailedLinkStall;
              }
              worst = std::max(worst, event.degrade_factor);
            }
            break;
          }
          case fault::FaultKind::kHostPreemption:
          case fault::FaultKind::kSlowHost:
            for (const topo::ChipId chip : topo.ChipsOfHost(event.host)) {
              if (!rect_.Contains(topo.CoordOf(chip))) continue;
              if (event.kind == fault::FaultKind::kHostPreemption) {
                return shrunk_step_ + net::Network::kFailedLinkStall;
              }
              worst = std::max(worst, event.degrade_factor);
              break;
            }
            break;
        }
      }
      return shrunk_step_ * worst;
    }
    case ExecMode::kRouted:
      return health.healthy() ? config_.pricer.healthy_step
                              : config_.pricer.replanned_step(health);
    case ExecMode::kNormal:
      return health.healthy() ? config_.pricer.healthy_step
                              : config_.pricer.degraded_step(health);
  }
  return config_.pricer.healthy_step;  // unreachable
}

bool RecoveryController::RectClean(const topo::SubmeshRect& rect) const {
  const topo::MeshTopology& topo = mesh();
  for (const fault::FaultEvent& event : active_faults_) {
    switch (event.kind) {
      case fault::FaultKind::kChipFailure:
        if (rect.Contains(topo.CoordOf(event.chip))) return false;
        break;
      case fault::FaultKind::kLinkFlap: {
        const topo::Link& link = topo.links()[event.link];
        if (rect.Contains(topo.CoordOf(link.from)) &&
            rect.Contains(topo.CoordOf(link.to))) {
          return false;
        }
        break;
      }
      case fault::FaultKind::kHostPreemption:
      case fault::FaultKind::kSlowHost:
        for (const topo::ChipId chip : topo.ChipsOfHost(event.host)) {
          if (rect.Contains(topo.CoordOf(chip))) return false;
        }
        break;
    }
  }
  return true;
}

void RecoveryController::OnFault(const fault::FaultEvent& event) {
  if (done_) return;
  ++timeline_.faults_applied;
  active_faults_.push_back(event);
  if (mode_ != Mode::kRunning) {
    // Already stalled or mid-recovery: the next probe / verify re-prices
    // under the union of active faults.
    return;
  }
  const SimTime estimate = CurrentStepEstimate();
  if (estimate > config_.detection_deadline) {
    EnterStall();
    return;
  }
  if (estimate != step_seconds_) {
    // Silent degradation: the step slows but clears its deadline, so no
    // alarm fires — the run just proceeds at the degraded rate.
    SetRate(estimate, LabelFor(estimate));
  }
}

void RecoveryController::OnHeal(const fault::FaultEvent& event) {
  if (done_) return;
  ++timeline_.faults_healed;
  const auto it =
      std::find(active_faults_.begin(), active_faults_.end(), event);
  if (it != active_faults_.end()) active_faults_.erase(it);
  switch (mode_) {
    case Mode::kRunning: {
      const SimTime estimate = CurrentStepEstimate();
      if (estimate > config_.detection_deadline) {
        // A heal cannot stall a running machine; re-pricing says otherwise
        // only if another still-active fault does. Treat it as a stall.
        EnterStall();
      } else if (estimate != step_seconds_) {
        SetRate(estimate, LabelFor(estimate));
      }
      return;
    }
    case Mode::kStalled: {
      // Pre-detection window: if the heal clears the stall before the alarm
      // fires, the overrunning step just completes late — no recovery pass.
      const SimTime estimate = CurrentStepEstimate();
      if (estimate <= config_.detection_deadline) {
        ++timeline_.micro_stalls;
        ++stall_seq_;  // invalidates the pending detection event
        stall_start_ = -1;
        TraceInstant("recovery: stall healed before detection");
        TelemetryEvent("recovery.micro_stall");
        SetRate(estimate, LabelFor(estimate));
      }
      return;
    }
    case Mode::kWaiting:
    case Mode::kExecuting:
      // The probe / verify event re-prices when it fires.
      return;
  }
}

void RecoveryController::EnterStall() {
  AdvanceWork();
  CloseInterval();
  mode_ = Mode::kStalled;
  rate_ = 0;
  step_seconds_ = 0;
  interval_label_ = "stalled";
  ++rate_epoch_;  // invalidates the scheduled finish
  stall_start_ = sim_->now();
  ++stall_seq_;
  attempt_ = 0;
  exhausted_ = 0;
  TraceInstant("recovery: stall");
  TelemetryEvent("recovery.stall");
  sim_->Schedule(config_.detection_deadline,
                 [this, seq = stall_seq_] { OnDetect(seq); });
}

void RecoveryController::OnDetect(std::uint64_t stall_seq) {
  if (done_ || stall_seq != stall_seq_ || mode_ != Mode::kStalled) return;
  ++timeline_.detections;
  TraceInstant("recovery: detected");
  // Recorded at exactly the detection instant; the telemetry session's
  // dump_on_events default makes this the flight recorder's trigger, so the
  // dump's triggered_at *is* the fault's detection time.
  TelemetryEvent("recovery.detected");
  Decide();
}

Diagnosis RecoveryController::Diagnose() const {
  Diagnosis diagnosis;
  diagnosis.health = ObserveHealth();
  SimTime residual = 0;
  for (const fault::FaultEvent& event : active_faults_) {
    if (event.permanent()) {
      diagnosis.transient_only = false;
      switch (event.kind) {
        case fault::FaultKind::kChipFailure:
          diagnosis.dead_chips.push_back(event.chip);
          break;
        case fault::FaultKind::kLinkFlap:
          diagnosis.broken_links.push_back(event.link);
          break;
        case fault::FaultKind::kHostPreemption:
        case fault::FaultKind::kSlowHost:
          diagnosis.lost_hosts.push_back(event.host);
          break;
      }
      continue;
    }
    SimTime mean = 0;
    switch (event.kind) {
      case fault::FaultKind::kLinkFlap:
        mean = config_.faults.link_flap_mean_duration;
        break;
      case fault::FaultKind::kHostPreemption:
        mean = config_.faults.host_preemption_mean_duration;
        break;
      case fault::FaultKind::kSlowHost:
        mean = config_.faults.slow_host_mean_duration;
        break;
      case fault::FaultKind::kChipFailure:
        break;  // chip failures are never transient
    }
    residual = std::max(residual, mean);
  }
  const auto dedupe = [](auto* values) {
    std::sort(values->begin(), values->end());
    values->erase(std::unique(values->begin(), values->end()), values->end());
  };
  dedupe(&diagnosis.dead_chips);
  dedupe(&diagnosis.lost_hosts);
  dedupe(&diagnosis.broken_links);
  diagnosis.expected_residual_heal = residual;
  return diagnosis;
}

PricingContext RecoveryController::Context() {
  PricingContext context;
  context.topo = &mesh();
  context.policy = config_.policy;
  context.costs = config_.costs;
  context.pricer = &config_.pricer;
  context.checkpoint_interval = config_.checkpoint_interval;
  context.remaining_work = config_.total_work - work_done_;
  const SimTime tau = config_.checkpoint_interval;
  const SimTime checkpointed =
      tau > 0 ? std::floor(work_done_ / tau) * tau : 0.0;
  context.lost_work = work_done_ - checkpointed;
  context.detection_deadline = config_.detection_deadline;
  context.spares_left = spares_left_;
  context.x_granularity = config_.x_granularity;
  context.exhausted = exhausted_;
  if (attempt_ >= config_.policy.max_attempts_per_fault) {
    // Out of patience: everything but the fallback is off the table.
    context.exhausted = ~StrategyBit(Strategy::kCheckpointRestart);
  }
  return context;
}

void RecoveryController::Decide() {
  ++attempt_;
  const Diagnosis diagnosis = Diagnose();
  const PricingContext context = Context();
  pending_ = ChooseStrategy(PriceStrategies(context, diagnosis));

  RecoveryDecision decision;
  decision.stall_start = stall_start_;
  decision.decided_at = sim_->now();
  decision.attempt = attempt_;
  decision.strategy = pending_.strategy;
  decision.transient_only = diagnosis.transient_only;
  decision.dead_chips = static_cast<int>(diagnosis.dead_chips.size());
  decision.failed_links = static_cast<int>(diagnosis.health.failed.size());
  decision.degraded_links =
      static_cast<int>(diagnosis.health.degraded.size());
  decision.predicted_downtime = pending_.downtime;
  decision.predicted_step_after = pending_.step_after;
  decision.lost_work = pending_.lost_work;
  decision.predicted_extra_seconds =
      (sim_->now() - stall_start_) + pending_.future_seconds -
      context.remaining_work / RateFor(config_.pricer.healthy_step);
  timeline_.decisions.push_back(decision);
  if (trace::CurrentTrace() != nullptr) {
    const std::string name =
        std::string("recovery: select ") + StrategyName(pending_.strategy);
    TraceInstant(name.c_str());
  }
  if (telemetry::TelemetrySession* session = telemetry::CurrentTelemetry()) {
    // Attribute the anomaly to the concrete links the diagnosis blames —
    // the same links the critical-path report ranks — so the open watchdog
    // firings carry the offending interval's suspect set.
    std::vector<int> suspects;
    suspects.reserve(diagnosis.health.failed.size() +
                     diagnosis.health.degraded.size());
    for (const topo::LinkId link : diagnosis.health.failed) {
      suspects.push_back(static_cast<int>(link));
    }
    for (const auto& [link, factor] : diagnosis.health.degraded) {
      suspects.push_back(static_cast<int>(link));
    }
    session->NoteSuspectLinks(suspects);
    session->RecordEvent(sim_->now(), "recovery.select",
                         StrategyName(pending_.strategy));
  }

  ++decision_seq_;
  if (pending_.strategy == Strategy::kWaitForHeal) {
    mode_ = Mode::kWaiting;
    const SimTime gap = config_.policy.backoff.initial_probe;
    sim_->Schedule(gap, [this, seq = decision_seq_, gap] {
      OnProbe(seq, gap);
    });
  } else {
    mode_ = Mode::kExecuting;
    sim_->Schedule(pending_.downtime,
                   [this, seq = decision_seq_] { OnVerify(seq); });
  }
}

void RecoveryController::OnProbe(std::uint64_t decision_seq, SimTime gap) {
  if (done_ || decision_seq != decision_seq_ || mode_ != Mode::kWaiting) {
    return;
  }
  ++timeline_.probes;
  const SimTime estimate = CurrentStepEstimate();
  if (estimate <= config_.detection_deadline) {
    CompleteDecision(estimate);
    return;
  }
  const bool still_transient =
      std::none_of(active_faults_.begin(), active_faults_.end(),
                   [](const fault::FaultEvent& e) { return e.permanent(); });
  const RecoveryDecision& decision = timeline_.decisions.back();
  if (!still_transient ||
      sim_->now() - decision.decided_at >=
          config_.policy.backoff.wait_deadline) {
    // Timeout (or the fault turned out not to be transient): promote to a
    // heavier strategy.
    exhausted_ |= StrategyBit(Strategy::kWaitForHeal);
    TraceInstant("recovery: wait exhausted");
    Decide();
    return;
  }
  const SimTime next = std::min(gap * config_.policy.backoff.multiplier,
                                config_.policy.backoff.max_probe);
  sim_->Schedule(next, [this, seq = decision_seq_, next] {
    OnProbe(seq, next);
  });
}

void RecoveryController::Rollback() {
  // Work was frozen the moment the stall began (rate zero), so this matches
  // the lost_work the decision was priced with.
  const SimTime tau = config_.checkpoint_interval;
  const SimTime checkpointed =
      tau > 0 ? std::floor(work_done_ / tau) * tau : 0.0;
  timeline_.lost_work_seconds += work_done_ - checkpointed;
  work_done_ = checkpointed;
}

void RecoveryController::OnVerify(std::uint64_t decision_seq) {
  if (done_ || decision_seq != decision_seq_ || mode_ != Mode::kExecuting) {
    return;
  }
  const SimTime healthy = config_.pricer.healthy_step;
  switch (pending_.strategy) {
    case Strategy::kWaitForHeal:
      break;  // wait resolves through probes, never a verify event
    case Strategy::kRouteAround: {
      const plan::LinkHealthSet health = ObserveHealth();
      if (health.healthy()) {
        // Everything healed while the replan ran; the original schedule is
        // fine again.
        exec_mode_ = ExecMode::kNormal;
        CompleteDecision(healthy);
        return;
      }
      const SimTime step = config_.pricer.replanned_step(health);
      if (step <= config_.detection_deadline &&
          step <= config_.policy.max_step_slowdown * healthy) {
        exec_mode_ = ExecMode::kRouted;
        CompleteDecision(step);
        return;
      }
      exhausted_ |= StrategyBit(Strategy::kRouteAround);
      TraceInstant("recovery: route-around verify failed");
      Decide();
      return;
    }
    case Strategy::kElasticShrink: {
      if (!RectClean(pending_.rect)) {
        // A new fault landed inside the carved rectangle while state was
        // resharding: re-diagnose (the next carve excludes it too).
        TraceInstant("recovery: shrink rectangle dirtied");
        Decide();
        return;
      }
      Rollback();
      rect_ = pending_.rect;
      shrunk_step_ = pending_.step_after;
      exec_mode_ = ExecMode::kShrunk;
      CompleteDecision(shrunk_step_);
      if (config_.on_shrunk) config_.on_shrunk(rect_);
      return;
    }
    case Strategy::kSpareSwapIn: {
      Rollback();
      // Replace every host owning a permanently lost chip: its links come
      // back (fresh hardware) and its faults leave the active set.
      const topo::MeshTopology& topo = mesh();
      std::vector<topo::HostId> hosts;
      for (const fault::FaultEvent& event : active_faults_) {
        if (!event.permanent()) continue;
        if (event.kind == fault::FaultKind::kChipFailure) {
          hosts.push_back(topo.HostOf(event.chip));
        } else if (event.kind == fault::FaultKind::kHostPreemption ||
                   event.kind == fault::FaultKind::kSlowHost) {
          hosts.push_back(event.host);
        }
      }
      std::sort(hosts.begin(), hosts.end());
      hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
      for (const topo::HostId host : hosts) {
        for (const topo::LinkId link : injector_->LinksOfHost(host)) {
          network_->RestoreLink(link);
        }
      }
      spares_left_ -= static_cast<int>(hosts.size());
      std::erase_if(active_faults_, [&](const fault::FaultEvent& event) {
        if (!event.permanent()) return false;
        if (event.kind == fault::FaultKind::kChipFailure) {
          return std::binary_search(hosts.begin(), hosts.end(),
                                    topo.HostOf(event.chip));
        }
        if (event.kind == fault::FaultKind::kHostPreemption ||
            event.kind == fault::FaultKind::kSlowHost) {
          return std::binary_search(hosts.begin(), hosts.end(), event.host);
        }
        return false;
      });
      exec_mode_ = ExecMode::kNormal;
      const SimTime estimate = CurrentStepEstimate();
      if (estimate <= config_.detection_deadline) {
        CompleteDecision(estimate);
      } else {
        // Another fault still pins the step over its deadline.
        Decide();
      }
      return;
    }
    case Strategy::kCheckpointRestart: {
      Rollback();
      ++timeline_.restarts;
      if (config_.reschedule_on_restart) {
        // Cluster semantics: the restart does not repair this slice — the
        // job leaves the machine with its last checkpoint and the caller
        // requeues the remaining work on whatever hardware is healthy.
        RecoveryDecision& decision = timeline_.decisions.back();
        decision.resumed_at = sim_->now();
        decision.verified = true;
        ++decision_seq_;
        stall_start_ = -1;
        AdvanceWork();
        CloseInterval();
        timeline_.makespan = sim_->now();
        timeline_.completed = false;
        done_ = true;
        ++rate_epoch_;
        ++stall_seq_;
        TraceInstant("recovery: rescheduled");
        TelemetryEvent("recovery.rescheduled");
        if (config_.on_restart) config_.on_restart();
        return;
      }
      // A restart lands on replacement hardware: every link returns to its
      // configured parameters and no pre-restart fault survives. In-flight
      // heal events from the old incarnation release nothing (the network's
      // per-source bookkeeping makes them no-ops).
      const std::size_t num_links = mesh().links().size();
      for (std::size_t link = 0; link < num_links; ++link) {
        const topo::LinkId id = static_cast<topo::LinkId>(link);
        if (config_.restore_link != nullptr) {
          config_.restore_link(id);
        } else {
          network_->RestoreLink(id);
        }
      }
      active_faults_.clear();
      exec_mode_ = ExecMode::kNormal;
      CompleteDecision(healthy);
      return;
    }
  }
}

void RecoveryController::CompleteDecision(SimTime step_after) {
  RecoveryDecision& decision = timeline_.decisions.back();
  decision.resumed_at = sim_->now();
  decision.verified = true;
  ++decision_seq_;  // retires any still-scheduled probe / verify event
  stall_start_ = -1;
  TraceInstant("recovery: resumed");
  TelemetryEvent("recovery.resumed", LabelFor(step_after));
  SetRate(step_after, LabelFor(step_after));
}

void RegisterRecoveryProbes(telemetry::TimeSeriesSampler& sampler,
                            const RecoveryController& controller) {
  const RecoveryController* ctl = &controller;
  sampler.RegisterProbe("run.work_rate", [ctl] { return ctl->work_rate(); });
  sampler.RegisterProbe("run.step_seconds",
                        [ctl] { return ctl->step_seconds(); });
  sampler.RegisterProbe("run.work_done", [ctl] { return ctl->work_done(); });
  sampler.RegisterProbe("run.mode", [ctl] {
    return static_cast<double>(ctl->mode_index());
  });
  sampler.RegisterProbe("run.active_faults", [ctl] {
    return static_cast<double>(ctl->active_fault_count());
  });
}

}  // namespace tpu::recover
