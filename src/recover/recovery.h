// Policy-driven fault recovery: the strategy space, its pricing, and the
// recovered timeline.
//
// The paper's multipod run is one globally synchronous program: a dead chip,
// a preempted host or a flapping optical link stalls every step until
// *something* restores a working machine. This module names the somethings —
// wait out a transient with exponential backoff, re-plan the collective
// around bad links, carve the largest healthy sub-mesh and continue narrow,
// swap in a standby host, or fall back to a full checkpoint restart — and
// prices each one as the predicted makespan from the decision point, using
// the same two-tier step estimates the planner searches with. The
// RecoveryController (recover/controller.h) drives detect -> diagnose ->
// select -> execute -> verify over the live discrete-event simulation;
// everything here is pure data + pure pricing so tests can interrogate a
// decision without running a simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "plan/plan_ir.h"
#include "topology/topology.h"
#include "trace/metrics.h"

namespace tpu::recover {

// Ordered lightest-first: ties in predicted makespan resolve to the lower
// enum value, so the controller prefers the least disruptive strategy.
enum class Strategy {
  kWaitForHeal = 0,    // transient: probe with exponential backoff
  kRouteAround,        // re-plan the collective schedule off the bad links
  kElasticShrink,      // continue on the largest healthy sub-mesh
  kSpareSwapIn,        // attach standby host(s), re-shard from checkpoint
  kCheckpointRestart,  // full restore + framework re-init (always feasible)
};
inline constexpr int kNumStrategies = 5;

const char* StrategyName(Strategy strategy);

inline constexpr unsigned StrategyBit(Strategy strategy) {
  return 1u << static_cast<int>(strategy);
}

struct BackoffConfig {
  SimTime initial_probe = Seconds(1);  // first probe after the decision
  double multiplier = 2.0;             // gap growth per unanswered probe
  SimTime max_probe = Seconds(60);     // gap cap
  SimTime wait_deadline = Seconds(120);  // give up waiting after this long
};

struct RecoveryPolicy {
  // Off (the default) preserves the analytic checkpoint/restart goodput
  // model byte-for-byte; on replaces it with the event-driven controller.
  bool enabled = false;

  BackoffConfig backoff;
  bool allow_wait_for_heal = true;
  bool allow_route_around = true;
  bool allow_elastic_shrink = true;
  bool allow_spare_swap_in = true;

  // Standby pool: whole hosts (4 chips each) held out of the job, attachable
  // after a permanent chip/host loss. 0 disables swap-in.
  int spare_hosts = 0;
  SimTime spare_attach_seconds = Seconds(30);

  // Cost of a route-around: the planner search plus distributing the new
  // schedule to every worker.
  SimTime replan_seconds = Seconds(5);

  // A degraded/shrunk configuration whose step exceeds this multiple of the
  // healthy step is not worth keeping — the strategy prices as infeasible
  // (checkpoint restart never does).
  double max_step_slowdown = 4.0;
  // An elastic shrink below this fraction of the original chips is refused.
  double min_shrink_fraction = 0.25;
  // After this many strategy attempts for one stall, everything but the
  // checkpoint-restart fallback is considered exhausted.
  int max_attempts_per_fault = 4;

  // Worker threads for the planner searches the controller issues. The
  // chosen plans and times are thread-invariant (plan::PlanRequest), so this
  // changes wall-clock only, never the recovered timeline.
  int search_threads = 1;
};

// What the controller concluded about the machine when the alarm fired.
struct Diagnosis {
  bool transient_only = true;  // every active fault will heal on its own
  std::vector<topo::ChipId> dead_chips;   // permanent chip failures, sorted
  std::vector<topo::HostId> lost_hosts;   // permanent host preemptions
  std::vector<topo::LinkId> broken_links; // permanent link faults
  plan::LinkHealthSet health;             // live link-state snapshot
  // Memoryless residual: the mean duration of the slowest active transient
  // class (exponential durations forget elapsed time).
  SimTime expected_residual_heal = 0;
};

// Step-time oracles the pricing runs on. All three are pure functions of
// their argument (and the healthy baseline), deterministic, and silent —
// implementations must not emit trace events or metrics.
struct StepPricer {
  SimTime healthy_step = 0;
  // Step time of the *current* schedule under a link-health snapshot (the
  // closed-form tier: stalls price at hours, so a failed link on the
  // schedule's route trips any deadline).
  std::function<SimTime(const plan::LinkHealthSet&)> degraded_step;
  // Step time after re-planning the collective under the snapshot (the
  // planner's two-tier search; >= healthy_step by construction).
  std::function<SimTime(const plan::LinkHealthSet&)> replanned_step;
  // Step time of the same job carved down to a healthy sub-mesh (same
  // global batch on fewer chips).
  std::function<SimTime(const topo::SubmeshRect&)> shrunk_step;
};

struct RecoveryCosts {
  SimTime checkpoint_write = 0;   // delta: one checkpoint write
  SimTime restore_seconds = 0;    // read back + redistribute (no re-init)
  SimTime restart_seconds = 0;    // restore + full framework re-init
};

// Everything PriceStrategies needs, bundled so the controller and tests
// price identically.
struct PricingContext {
  const topo::MeshTopology* topo = nullptr;
  RecoveryPolicy policy;
  RecoveryCosts costs;
  const StepPricer* pricer = nullptr;
  SimTime checkpoint_interval = 0;  // tau; <= 0 means no checkpointing
  SimTime remaining_work = 0;       // useful seconds still to run
  SimTime lost_work = 0;            // work since the last checkpoint
  SimTime detection_deadline = 0;   // the healthy-step alarm threshold
  int spares_left = 0;
  int x_granularity = 1;  // shrink carve quantum (model-parallel group width)
  unsigned exhausted = 0;  // StrategyBit mask of already-failed strategies
};

struct StrategyOption {
  Strategy strategy = Strategy::kCheckpointRestart;
  bool feasible = false;
  const char* why = "";     // infeasibility reason (empty when feasible)
  SimTime downtime = 0;     // zero-throughput seconds before resuming
  SimTime lost_work = 0;    // work rolled back and redone
  SimTime step_after = 0;   // step time once training resumes
  // Predicted makespan from the decision point: downtime plus the remaining
  // (and redone) work at the post-recovery rate. The selection objective.
  SimTime future_seconds = 0;
  topo::SubmeshRect rect;   // kElasticShrink: the carved sub-mesh
};

// Useful-work seconds per wall second at a given step time: the slowdown
// ratio times the checkpoint-write discount tau / (tau + delta). This is the
// accrual rate the controller's timeline integrates, so pricing with it makes
// the predicted makespan directly comparable to the simulated one.
double EffectiveWorkRate(SimTime healthy_step, SimTime step, SimTime tau,
                         SimTime delta);

// Prices all five strategies for one diagnosis. Pure and deterministic:
// identical (context, diagnosis) give identical options in enum order.
std::vector<StrategyOption> PriceStrategies(const PricingContext& context,
                                            const Diagnosis& diagnosis);

// The feasible option with the minimum predicted makespan; ties resolve to
// the lightest strategy. Checkpoint restart is always feasible, so this
// never returns an infeasible option.
StrategyOption ChooseStrategy(const std::vector<StrategyOption>& options);

// One piecewise-constant throughput segment of the recovered run.
struct ThroughputInterval {
  SimTime start = 0;
  SimTime end = 0;
  double work_rate = 0;     // useful-work seconds per wall second
  SimTime step_seconds = 0; // 0 while stalled or recovering
  const char* mode = "";    // healthy / degraded / routed / shrunk /
                            // stalled / recovering
};

// One detect -> diagnose -> select -> execute -> verify pass.
struct RecoveryDecision {
  SimTime stall_start = 0;
  SimTime decided_at = 0;  // detection + any earlier failed attempts
  int attempt = 1;         // 1-based attempt number for this stall
  Strategy strategy = Strategy::kCheckpointRestart;
  bool transient_only = true;
  int dead_chips = 0;
  int failed_links = 0;
  int degraded_links = 0;
  SimTime predicted_downtime = 0;
  SimTime predicted_step_after = 0;
  // Predicted extra makespan attributable to this fault versus the fault-free
  // schedule: the stall already elapsed plus the priced future, minus what
  // the healthy machine would have needed. Tests hold the simulated extra
  // makespan within 10% of this.
  SimTime predicted_extra_seconds = 0;
  SimTime lost_work = 0;
  SimTime resumed_at = -1;  // filled when the verify step passes
  bool verified = false;
};

// The event-driven recovery timeline: fault -> decision -> downtime ->
// degraded-throughput intervals, composing into goodput.
struct RecoveryTimeline {
  SimTime total_work = 0;    // useful seconds the run had to complete
  SimTime base_seconds = 0;  // fault-free makespan (incl. checkpoint writes)
  SimTime makespan = 0;      // simulated clock when the work completed
  bool completed = false;    // false: the horizon expired first (truncated)

  int faults_applied = 0;
  int faults_healed = 0;
  int detections = 0;
  int micro_stalls = 0;  // stalls that healed before the alarm fired
  int probes = 0;
  int restarts = 0;
  SimTime lost_work_seconds = 0;  // total work rolled back and redone
  SimTime stalled_seconds = 0;    // total zero-throughput time

  std::vector<ThroughputInterval> intervals;
  std::vector<RecoveryDecision> decisions;

  double goodput() const {
    return makespan > 0 ? base_seconds / makespan : 1.0;
  }

  // Stable JSON document (%.12g doubles): scalars, then decisions, then
  // intervals. Byte-identical across repeats and thread counts.
  std::string ToJson() const;

  // Dumps recovery.* counters/gauges/histograms (decision counts by
  // strategy, downtime and time-to-recover distributions, goodput) into
  // `metrics`. Counters add; call once per timeline.
  void ExportMetrics(trace::MetricsRegistry& metrics) const;
};

}  // namespace tpu::recover
