#include "recover/recovery.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "common/check.h"

namespace tpu::recover {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Chips that can no longer participate at full width: dead chips, every chip
// of a permanently lost host, and one endpoint of each permanently bad link
// (a rectangle excluding either endpoint cannot route over the link, since
// dimension-ordered routes between in-rectangle chips stay inside the
// rectangle's bounding box).
std::vector<topo::ChipId> UnusableChips(const topo::MeshTopology& topo,
                                        const Diagnosis& diagnosis) {
  std::vector<topo::ChipId> chips = diagnosis.dead_chips;
  for (const topo::HostId host : diagnosis.lost_hosts) {
    for (const topo::ChipId chip : topo.ChipsOfHost(host)) {
      chips.push_back(chip);
    }
  }
  for (const topo::LinkId link : diagnosis.broken_links) {
    TPU_CHECK_GE(link, 0);
    TPU_CHECK_LT(static_cast<std::size_t>(link), topo.links().size());
    chips.push_back(topo.links()[link].from);
  }
  std::sort(chips.begin(), chips.end());
  chips.erase(std::unique(chips.begin(), chips.end()), chips.end());
  return chips;
}

// Standby hosts a swap-in must attach: the hosts owning the permanently
// lost chips. Permanent link faults are cables, not hosts — a swap cannot
// fix them, so they make swap-in infeasible upstream.
int HostsNeeded(const topo::MeshTopology& topo, const Diagnosis& diagnosis) {
  std::vector<topo::HostId> hosts = diagnosis.lost_hosts;
  for (const topo::ChipId chip : diagnosis.dead_chips) {
    hosts.push_back(topo.HostOf(chip));
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  return static_cast<int>(hosts.size());
}

void AppendSeconds(std::string* out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%.12g", key, value);
  *out += buffer;
}

void AppendInt(std::string* out, const char* key, long long value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%lld", key, value);
  *out += buffer;
}

}  // namespace

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kWaitForHeal:
      return "wait-for-heal";
    case Strategy::kRouteAround:
      return "route-around";
    case Strategy::kElasticShrink:
      return "elastic-shrink";
    case Strategy::kSpareSwapIn:
      return "spare-swap-in";
    case Strategy::kCheckpointRestart:
      return "checkpoint-restart";
  }
  return "unknown";
}

double EffectiveWorkRate(SimTime healthy_step, SimTime step, SimTime tau,
                         SimTime delta) {
  if (healthy_step <= 0 || step <= 0) return 0;
  const double discount = tau > 0 ? tau / (tau + delta) : 1.0;
  return healthy_step / step * discount;
}

std::vector<StrategyOption> PriceStrategies(const PricingContext& context,
                                            const Diagnosis& diagnosis) {
  TPU_CHECK(context.topo != nullptr);
  TPU_CHECK(context.pricer != nullptr);
  const RecoveryPolicy& policy = context.policy;
  const StepPricer& pricer = *context.pricer;
  const SimTime healthy = pricer.healthy_step;
  TPU_CHECK_GT(healthy, 0.0);
  const SimTime tau = context.checkpoint_interval;
  const SimTime delta = context.costs.checkpoint_write;
  const double healthy_rate = EffectiveWorkRate(healthy, healthy, tau, delta);
  const SimTime slowdown_cap = policy.max_step_slowdown * healthy;

  const std::vector<topo::ChipId> unusable =
      UnusableChips(*context.topo, diagnosis);

  // Rate at the post-recovery step time, or 0 when the step is unusable
  // (slower than the slowdown cap, or degenerate).
  const auto rate_after = [&](SimTime step) {
    if (step <= 0 || step > slowdown_cap) return 0.0;
    return EffectiveWorkRate(healthy, step, tau, delta);
  };

  std::vector<StrategyOption> options;
  options.reserve(kNumStrategies);
  const auto infeasible = [&](Strategy strategy, const char* why) {
    StrategyOption option;
    option.strategy = strategy;
    option.feasible = false;
    option.why = why;
    option.future_seconds = kInfeasible;
    options.push_back(option);
  };
  const auto feasible = [&](Strategy strategy, SimTime downtime,
                            SimTime lost_work, SimTime step_after,
                            double rate) {
    StrategyOption option;
    option.strategy = strategy;
    option.feasible = true;
    option.downtime = downtime;
    option.lost_work = lost_work;
    option.step_after = step_after;
    option.future_seconds =
        downtime + (context.remaining_work + lost_work) / rate;
    options.push_back(option);
  };

  // 1. Wait for heal: only when every active fault heals on its own. The
  // machine stays stalled for the (memoryless) expected residual, then
  // resumes at full health with nothing lost — the synchronous step simply
  // completes late.
  if (!policy.allow_wait_for_heal) {
    infeasible(Strategy::kWaitForHeal, "disabled by policy");
  } else if (context.exhausted & StrategyBit(Strategy::kWaitForHeal)) {
    infeasible(Strategy::kWaitForHeal, "wait deadline exhausted");
  } else if (!diagnosis.transient_only) {
    infeasible(Strategy::kWaitForHeal, "permanent fault active");
  } else {
    feasible(Strategy::kWaitForHeal, diagnosis.expected_residual_heal,
             /*lost_work=*/0, healthy, healthy_rate);
  }

  // 2. Route around: re-plan the collective off the bad links. Fixes link
  // faults only — a dead chip cannot compute, no schedule routes around
  // that.
  if (!policy.allow_route_around) {
    infeasible(Strategy::kRouteAround, "disabled by policy");
  } else if (context.exhausted & StrategyBit(Strategy::kRouteAround)) {
    infeasible(Strategy::kRouteAround, "replan did not clear the deadline");
  } else if (!diagnosis.dead_chips.empty() || !diagnosis.lost_hosts.empty()) {
    infeasible(Strategy::kRouteAround, "chips lost, not just links");
  } else if (diagnosis.health.healthy()) {
    infeasible(Strategy::kRouteAround, "no link fault to route around");
  } else {
    const SimTime step = pricer.replanned_step(diagnosis.health);
    const double rate = rate_after(step);
    if (rate <= 0) {
      infeasible(Strategy::kRouteAround, "replanned step over slowdown cap");
    } else {
      feasible(Strategy::kRouteAround, policy.replan_seconds, /*lost_work=*/0,
               step, rate);
    }
  }

  // 3. Elastic shrink: carve the largest healthy rectangle (quantized to the
  // model-parallel group width along X), restore the missing shards from the
  // last checkpoint, continue narrow. Work since the checkpoint is redone at
  // the shrunk rate.
  if (!policy.allow_elastic_shrink) {
    infeasible(Strategy::kElasticShrink, "disabled by policy");
  } else if (context.exhausted & StrategyBit(Strategy::kElasticShrink)) {
    infeasible(Strategy::kElasticShrink, "shrink attempt failed");
  } else if (unusable.empty()) {
    infeasible(Strategy::kElasticShrink, "no permanently lost chips");
  } else {
    const topo::SubmeshRect rect = topo::LargestHealthySubmesh(
        *context.topo, unusable, context.x_granularity);
    const int min_chips = static_cast<int>(policy.min_shrink_fraction *
                                           context.topo->num_chips());
    if (rect.chips() < std::max(1, min_chips)) {
      infeasible(Strategy::kElasticShrink, "healthy sub-mesh too small");
    } else {
      const SimTime step = pricer.shrunk_step(rect);
      const double rate = rate_after(step);
      if (rate <= 0) {
        infeasible(Strategy::kElasticShrink, "shrunk step over slowdown cap");
      } else {
        feasible(Strategy::kElasticShrink, context.costs.restore_seconds,
                 context.lost_work, step, rate);
        options.back().rect = rect;
      }
    }
  }

  // 4. Spare swap-in: attach standby hosts for the lost ones and re-shard
  // state from the checkpoint; resumes at full width. Cables (permanent link
  // faults) are not hosts, so they rule this out.
  const int hosts_needed = HostsNeeded(*context.topo, diagnosis);
  if (!policy.allow_spare_swap_in || policy.spare_hosts <= 0) {
    infeasible(Strategy::kSpareSwapIn, "no spare pool");
  } else if (context.exhausted & StrategyBit(Strategy::kSpareSwapIn)) {
    infeasible(Strategy::kSpareSwapIn, "swap attempt failed");
  } else if (hosts_needed == 0) {
    infeasible(Strategy::kSpareSwapIn, "no lost host to replace");
  } else if (!diagnosis.broken_links.empty()) {
    infeasible(Strategy::kSpareSwapIn, "permanent link fault not host-bound");
  } else if (hosts_needed > context.spares_left) {
    infeasible(Strategy::kSpareSwapIn, "spare pool exhausted");
  } else {
    feasible(Strategy::kSpareSwapIn,
             policy.spare_attach_seconds + context.costs.restore_seconds,
             context.lost_work, healthy, healthy_rate);
  }

  // 5. Checkpoint restart: the universal fallback — a replacement machine,
  // full restore plus framework re-init, work since the checkpoint redone.
  feasible(Strategy::kCheckpointRestart, context.costs.restart_seconds,
           context.lost_work, healthy, healthy_rate);

  return options;
}

StrategyOption ChooseStrategy(const std::vector<StrategyOption>& options) {
  const StrategyOption* best = nullptr;
  for (const StrategyOption& option : options) {
    if (!option.feasible) continue;
    // Strict <: options arrive in enum order, so ties keep the lightest.
    if (best == nullptr || option.future_seconds < best->future_seconds) {
      best = &option;
    }
  }
  TPU_CHECK(best != nullptr) << "checkpoint restart must always be feasible";
  return *best;
}

std::string RecoveryTimeline::ToJson() const {
  std::string out = "{";
  AppendSeconds(&out, "total_work", total_work);
  out += ",";
  AppendSeconds(&out, "base_seconds", base_seconds);
  out += ",";
  AppendSeconds(&out, "makespan", makespan);
  out += ",";
  AppendSeconds(&out, "goodput", goodput());
  out += ",\"completed\":";
  out += completed ? "true" : "false";
  out += ",";
  AppendInt(&out, "faults_applied", faults_applied);
  out += ",";
  AppendInt(&out, "faults_healed", faults_healed);
  out += ",";
  AppendInt(&out, "detections", detections);
  out += ",";
  AppendInt(&out, "micro_stalls", micro_stalls);
  out += ",";
  AppendInt(&out, "probes", probes);
  out += ",";
  AppendInt(&out, "restarts", restarts);
  out += ",";
  AppendSeconds(&out, "lost_work_seconds", lost_work_seconds);
  out += ",";
  AppendSeconds(&out, "stalled_seconds", stalled_seconds);
  out += ",\"decisions\":[";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const RecoveryDecision& decision = decisions[i];
    if (i > 0) out += ",";
    out += "{\"strategy\":\"";
    out += StrategyName(decision.strategy);
    out += "\",";
    AppendSeconds(&out, "stall_start", decision.stall_start);
    out += ",";
    AppendSeconds(&out, "decided_at", decision.decided_at);
    out += ",";
    AppendInt(&out, "attempt", decision.attempt);
    out += ",\"transient_only\":";
    out += decision.transient_only ? "true" : "false";
    out += ",";
    AppendInt(&out, "dead_chips", decision.dead_chips);
    out += ",";
    AppendInt(&out, "failed_links", decision.failed_links);
    out += ",";
    AppendInt(&out, "degraded_links", decision.degraded_links);
    out += ",";
    AppendSeconds(&out, "predicted_downtime", decision.predicted_downtime);
    out += ",";
    AppendSeconds(&out, "predicted_step_after", decision.predicted_step_after);
    out += ",";
    AppendSeconds(&out, "predicted_extra_seconds",
                  decision.predicted_extra_seconds);
    out += ",";
    AppendSeconds(&out, "lost_work", decision.lost_work);
    out += ",";
    AppendSeconds(&out, "resumed_at", decision.resumed_at);
    out += ",\"verified\":";
    out += decision.verified ? "true" : "false";
    out += "}";
  }
  out += "],\"intervals\":[";
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const ThroughputInterval& interval = intervals[i];
    if (i > 0) out += ",";
    out += "{\"mode\":\"";
    out += interval.mode;
    out += "\",";
    AppendSeconds(&out, "start", interval.start);
    out += ",";
    AppendSeconds(&out, "end", interval.end);
    out += ",";
    AppendSeconds(&out, "work_rate", interval.work_rate);
    out += ",";
    AppendSeconds(&out, "step_seconds", interval.step_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

void RecoveryTimeline::ExportMetrics(trace::MetricsRegistry& metrics) const {
  metrics.Counter("recovery.faults_applied").Add(faults_applied);
  metrics.Counter("recovery.faults_healed").Add(faults_healed);
  metrics.Counter("recovery.detections").Add(detections);
  metrics.Counter("recovery.micro_stalls").Add(micro_stalls);
  metrics.Counter("recovery.probes").Add(probes);
  metrics.Counter("recovery.restarts").Add(restarts);
  metrics.Counter("recovery.decisions")
      .Add(static_cast<std::int64_t>(decisions.size()));
  for (const RecoveryDecision& decision : decisions) {
    metrics
        .Counter(std::string("recovery.strategy.") +
                 StrategyName(decision.strategy))
        .Add(1);
    if (decision.verified) {
      metrics.Histogram("recovery.time_to_recover_us")
          .Record(ToMicros(decision.resumed_at - decision.stall_start));
      metrics.Histogram("recovery.downtime_us")
          .Record(ToMicros(decision.resumed_at - decision.decided_at));
    }
  }
  metrics.Gauge("recovery.goodput").Set(goodput());
  metrics.Gauge("recovery.lost_work_seconds").Set(lost_work_seconds);
  metrics.Gauge("recovery.stalled_seconds").Set(stalled_seconds);
}

}  // namespace tpu::recover
