// Event-driven recovery orchestration over the live simulation.
//
// The RecoveryController subscribes to a FaultInjector's apply/heal events
// and drives a per-fault state machine — detect -> diagnose -> select ->
// execute -> verify — on the same simulator clock the faults fire on. The
// run itself is modeled as a piecewise-constant work accumulator: between
// events, training accrues useful seconds at the current effective rate
// (healthy, silently degraded, routed or shrunk); a fault whose priced step
// overruns the detection deadline stalls the machine at rate zero until a
// recovery strategy restores an acceptable step time. The result is a
// RecoveryTimeline: every fault, decision, downtime and throughput interval
// on the simulated clock, composing into goodput.
//
// Determinism: the controller schedules plain simulator events, prices with
// the deterministic StepPricer oracles, and never consults wall-clock or
// randomness — a seeded fault schedule replays to a bit-identical timeline
// at any planner thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "fault/fault_injector.h"
#include "network/network.h"
#include "plan/plan_ir.h"
#include "recover/recovery.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace tpu::telemetry {
class TimeSeriesSampler;
}  // namespace tpu::telemetry

namespace tpu::recover {

struct ControllerConfig {
  RecoveryPolicy policy;
  RecoveryCosts costs;
  StepPricer pricer;
  // Useful training seconds the run must accumulate (the fault-free
  // makespan, before the checkpoint-write discount).
  SimTime total_work = 0;
  // The stall alarm: a priced step above this stalls the machine and fires
  // detection after exactly this long (the health monitor's deadline).
  SimTime detection_deadline = 0;
  // Checkpoint cadence tau in useful seconds; <= 0 disables checkpointing
  // (a rollback then redoes the whole run so far).
  SimTime checkpoint_interval = 0;
  // Mean transient durations for the memoryless residual-heal estimate.
  fault::FaultModelConfig faults;
  // Elastic-shrink carve quantum along X (the model-parallel group width).
  int x_granularity = 1;

  // --- Cluster-mode extension points. The defaults reproduce the
  //     single-job behaviour exactly; a cluster driver running many
  //     controllers on one shared machine overrides them so each job
  //     observes only its carved slice.

  // Mesh the controller diagnoses and prices against; nullptr = the
  // network's own topology. A cluster job passes its slice topology, so
  // every chip / link / host id the controller handles is slice-local.
  const topo::MeshTopology* mesh = nullptr;
  // Link-health observation; null = LinkHealthSet::FromNetwork(network). A
  // cluster job reads only its slice's interior links, translated to
  // slice-local ids.
  std::function<plan::LinkHealthSet()> observe_health;
  // Restores one mesh-local link after an in-place restart; null = the
  // network's RestoreLink.
  std::function<void(topo::LinkId)> restore_link;
  // When false the caller owns the injector's observer hooks and dispatches
  // events via HandleFault / HandleHeal — required when several controllers
  // share one injector.
  bool auto_subscribe = true;
  // Cluster semantics for kCheckpointRestart: instead of restoring links in
  // place, the job leaves the machine — rollback to the last checkpoint,
  // close the books (timeline.completed stays false) and fire on_restart so
  // the caller can requeue the remaining work elsewhere.
  bool reschedule_on_restart = false;
  // Fired right after the work completes (cluster: free the slice).
  std::function<void()> on_finished;
  // Fired when an elastic shrink commits, with the carved mesh-local rect
  // (cluster: shrink the allocation and free the complement).
  std::function<void(const topo::SubmeshRect&)> on_shrunk;
  // Fired when reschedule_on_restart sends the job back to the queue.
  std::function<void()> on_restart;
};

class RecoveryController {
 public:
  // The controller registers itself as the injector's apply/heal observer;
  // the caller arms the injector (Arm / ArmScripted) before Run, and both
  // must outlive the run.
  RecoveryController(net::Network* network, fault::FaultInjector* injector,
                     ControllerConfig config);

  // Drives the simulator until the work completes or the clock passes
  // `horizon`; the timeline's `completed` flag says which. Call once.
  RecoveryTimeline Run(SimTime horizon);

  // Externally driven mode (cluster): Begin() starts accruing work at the
  // current simulated time without running the simulator — the caller owns
  // the event loop and feeds this controller fault events. Call once.
  void Begin();
  // Dispatch one injector event to this controller (auto_subscribe=false).
  void HandleFault(const fault::FaultEvent& event) { OnFault(event); }
  void HandleHeal(const fault::FaultEvent& event) { OnHeal(event); }
  // Stops an externally driven controller before its work completed —
  // preemption, migration or horizon truncation. Closes the books at the
  // current simulated time (completed stays false) and retires every
  // pending callback; further events are ignored. Returns the timeline.
  RecoveryTimeline Stop();
  const RecoveryTimeline& timeline() const { return timeline_; }

  // Instantaneous state for telemetry probes (RegisterRecoveryProbes) and
  // the sampler's stop predicate. Safe to call at any simulated time.
  double work_rate() const { return rate_; }
  SimTime step_seconds() const { return step_seconds_; }
  SimTime work_done() const { return work_done_; }
  // 0 running, 1 stalled, 2 waiting (backoff probes), 3 executing.
  int mode_index() const { return static_cast<int>(mode_); }
  int active_fault_count() const {
    return static_cast<int>(active_faults_.size());
  }
  bool finished() const { return done_; }
  double healthy_rate() const { return RateFor(config_.pricer.healthy_step); }

 private:
  // Control state: kRunning accrues work; kStalled is the pre-detection
  // window (a heal here resolves the stall silently); kWaiting is the
  // backoff probe loop; kExecuting is a strategy's downtime.
  enum class Mode { kRunning, kStalled, kWaiting, kExecuting };
  // What schedule the machine is executing while running.
  enum class ExecMode { kNormal, kRouted, kShrunk };

  void OnFault(const fault::FaultEvent& event);
  void OnHeal(const fault::FaultEvent& event);
  void OnDetect(std::uint64_t stall_seq);
  void OnProbe(std::uint64_t decision_seq, SimTime gap);
  void OnVerify(std::uint64_t decision_seq);
  void OnFinish(std::uint64_t rate_epoch);

  // Mode-aware step estimate under the network's current link state.
  SimTime CurrentStepEstimate();
  Diagnosis Diagnose() const;
  const topo::MeshTopology& mesh() const {
    return config_.mesh != nullptr ? *config_.mesh : network_->topology();
  }
  plan::LinkHealthSet ObserveHealth() const;
  PricingContext Context();
  void Decide();
  void EnterStall();
  void CompleteDecision(SimTime step_after);
  void Rollback();
  // No active fault touches the carved rectangle's chips or interior links.
  bool RectClean(const topo::SubmeshRect& rect) const;

  void AdvanceWork();
  void CloseInterval();
  void SetRate(SimTime step_seconds, const char* label);
  double RateFor(SimTime step) const;
  const char* LabelFor(SimTime step) const;
  void TraceInstant(const char* name);
  void TelemetryEvent(const char* name, const char* detail = nullptr);

  net::Network* network_;
  fault::FaultInjector* injector_;
  ControllerConfig config_;
  sim::Simulator* sim_;

  RecoveryTimeline timeline_;
  Mode mode_ = Mode::kRunning;
  ExecMode exec_mode_ = ExecMode::kNormal;
  double rate_ = 0;
  SimTime step_seconds_ = 0;
  SimTime interval_start_ = 0;
  const char* interval_label_ = "healthy";
  SimTime work_done_ = 0;
  SimTime last_advance_ = 0;
  bool done_ = false;
  bool begun_ = false;

  // Epoch guards: the simulator has no event cancellation, so every
  // scheduled callback carries the epoch it was issued under and no-ops if
  // the state moved on.
  std::uint64_t rate_epoch_ = 0;      // guards the finish event
  std::uint64_t stall_seq_ = 0;       // guards the detection event
  std::uint64_t decision_seq_ = 0;    // guards probes and verify

  SimTime stall_start_ = -1;
  int attempt_ = 0;
  unsigned exhausted_ = 0;
  int spares_left_ = 0;
  std::vector<fault::FaultEvent> active_faults_;
  StrategyOption pending_;
  topo::SubmeshRect rect_;
  SimTime shrunk_step_ = 0;
};

// Wires the controller's run-level signals into the sampler: run.work_rate
// (feeds the goodput-SLO watchdog), run.step_seconds (feeds the step-time
// regression watchdog; 0 while stalled), run.work_done, run.mode and
// run.active_faults. The controller must outlive the sampler's run.
void RegisterRecoveryProbes(telemetry::TimeSeriesSampler& sampler,
                            const RecoveryController& controller);

}  // namespace tpu::recover
