#include "collectives/all_reduce.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/math_util.h"
#include "sim/simulator.h"

namespace tpu::coll {
namespace {

int PosIn(const std::vector<topo::ChipId>& ring, topo::ChipId chip) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring[i] == chip) return static_cast<int>(i);
  }
  TPU_CHECK(false) << "chip " << chip << " not on ring";
  return -1;
}

std::vector<float*> DataFor(const std::vector<float*>& chip_buffers,
                            const std::vector<topo::ChipId>& order) {
  std::vector<float*> data;
  if (chip_buffers.empty()) return data;
  data.reserve(order.size());
  for (topo::ChipId chip : order) data.push_back(chip_buffers[chip]);
  return data;
}

}  // namespace

std::vector<topo::ChipId> SnakeRingOverMesh(const topo::MeshTopology& topo) {
  std::vector<topo::ChipId> ring;
  ring.reserve(topo.num_chips());
  for (int y = 0; y < topo.size_y(); ++y) {
    if (y % 2 == 0) {
      for (int x = 0; x < topo.size_x(); ++x) ring.push_back(topo.ChipAt({x, y}));
    } else {
      for (int x = topo.size_x() - 1; x >= 0; --x) {
        ring.push_back(topo.ChipAt({x, y}));
      }
    }
  }
  return ring;
}

GradientSummationResult TwoDGradientSummation(
    net::Network& network, const GradientSummationConfig& config,
    std::vector<float*> chip_buffers) {
  const topo::MeshTopology& topo = network.topology();
  TPU_CHECK_GT(config.elems, 0);
  TPU_CHECK_GT(config.model_parallel_stride, 0);
  TPU_CHECK_EQ(topo.size_x() % config.model_parallel_stride, 0)
      << "model-parallel groups must tile the X dimension";
  if (!chip_buffers.empty()) {
    TPU_CHECK_EQ(static_cast<int>(chip_buffers.size()), topo.num_chips());
  }

  GradientSummationResult result;
  const Range full{0, config.elems};

  // Phase 1: reduce-scatter along Y (one torus ring per column, all
  // concurrent). The Y ring ordering is a function of the y coordinate only,
  // so every column shares the same rank layout.
  std::vector<RingSpec> y_rings;
  y_rings.reserve(topo.size_x());
  for (int x = 0; x < topo.size_x(); ++x) {
    std::vector<topo::ChipId> order =
        topo.RingAlong(topo::Dim::kY, topo.ChipAt({x, 0}));
    RingSpec spec;
    spec.data = DataFor(chip_buffers, order);
    spec.order = std::move(order);
    spec.range = full;
    y_rings.push_back(std::move(spec));
  }
  // Rank of each row within the (shared) Y ring layout.
  const std::vector<topo::ChipId> y_ring0 =
      topo.RingAlong(topo::Dim::kY, topo.ChipAt({0, 0}));
  std::vector<int> y_rank(topo.size_y());
  for (int y = 0; y < topo.size_y(); ++y) {
    y_rank[y] = PosIn(y_ring0, topo.ChipAt({0, y}));
  }

  result.reduce_seconds += ReduceScatter(network, y_rings, config.collective);

  // Phase 2: reduce-scatter along X over each Y-owned sub-range. Rings hop
  // over model-parallel peers when stride > 1.
  const int ny = static_cast<int>(y_ring0.size());
  std::vector<RingSpec> x_rings;
  for (int y = 0; y < topo.size_y(); ++y) {
    const std::vector<Range> y_owned =
        OwnedAfterReduceScatter(full, ny, y_rank[y], config.collective);
    for (int offset = 0; offset < config.model_parallel_stride; ++offset) {
      std::vector<topo::ChipId> order = topo.StridedRingAlong(
          topo::Dim::kX, topo.ChipAt({offset, y}),
          config.model_parallel_stride);
      for (const Range& range : y_owned) {
        if (range.size() == 0) continue;
        RingSpec spec;
        spec.data = DataFor(chip_buffers, order);
        spec.order = order;
        spec.range = range;
        x_rings.push_back(std::move(spec));
      }
    }
  }
  result.reduce_seconds += ReduceScatter(network, x_rings, config.collective);

  // Ownership after both reduce phases, per chip.
  auto owned_elems_of = [&](topo::ChipId chip) {
    const topo::Coord c = topo.CoordOf(chip);
    const std::vector<Range> y_owned =
        OwnedAfterReduceScatter(full, ny, y_rank[c.y], config.collective);
    const std::vector<topo::ChipId> x_ring = topo.StridedRingAlong(
        topo::Dim::kX, chip, config.model_parallel_stride);
    const int x_rank = PosIn(x_ring, chip);
    std::int64_t elems = 0;
    for (const Range& range : y_owned) {
      if (range.size() == 0) continue;
      for (const Range& owned : OwnedAfterReduceScatter(
               range, static_cast<int>(x_ring.size()), x_rank,
               config.collective)) {
        elems += owned.size();
      }
    }
    return elems;
  };

  for (int chip = 0; chip < topo.num_chips(); ++chip) {
    result.max_owned_elems =
        std::max(result.max_owned_elems, owned_elems_of(chip));
  }

  // Phase 3: sharded weight update (weight-update sharding, Section 3.2).
  if (config.shard_update_seconds) {
    sim::Simulator& simulator = network.simulator();
    const SimTime start = simulator.now();
    for (int chip = 0; chip < topo.num_chips(); ++chip) {
      simulator.Schedule(config.shard_update_seconds(owned_elems_of(chip)),
                         [] {});
    }
    simulator.Run();
    result.update_seconds = simulator.now() - start;
  }

  // Phase 4: all-gather back, X first then Y ("broadcast first along X and
  // then Y").
  result.broadcast_seconds += AllGather(network, x_rings, config.collective);
  result.broadcast_seconds += AllGather(network, y_rings, config.collective);
  return result;
}

SimTime PipelinedTwoDGradientSummation(
    net::Network& network, const GradientSummationConfig& config, int chunks,
    std::vector<float*> chip_buffers) {
  const topo::MeshTopology& topo = network.topology();
  TPU_CHECK_GT(config.elems, 0);
  TPU_CHECK_GT(chunks, 0);
  TPU_CHECK_EQ(topo.size_x() % config.model_parallel_stride, 0);
  if (!chip_buffers.empty()) {
    TPU_CHECK_EQ(static_cast<int>(chip_buffers.size()), topo.num_chips());
  }
  sim::Simulator& simulator = network.simulator();
  const SimTime start = simulator.now();

  // Shared ring layouts (identical for every slice).
  const std::vector<topo::ChipId> y_ring0 =
      topo.RingAlong(topo::Dim::kY, topo.ChipAt({0, 0}));
  const int ny = static_cast<int>(y_ring0.size());
  std::vector<int> y_rank(topo.size_y());
  for (int y = 0; y < topo.size_y(); ++y) {
    y_rank[y] = PosIn(y_ring0, topo.ChipAt({0, y}));
  }

  auto all_done = std::make_shared<sim::Barrier>(chunks, [] {});
  const std::int64_t slice = CeilDiv(config.elems, chunks);
  for (int c = 0; c < chunks; ++c) {
    const Range range{std::min<std::int64_t>(config.elems, c * slice),
                      std::min<std::int64_t>(config.elems, (c + 1) * slice)};
    if (range.size() == 0) {
      all_done->Notify();
      continue;
    }
    // Per-slice ring specs.
    auto y_rings = std::make_shared<std::vector<RingSpec>>();
    for (int x = 0; x < topo.size_x(); ++x) {
      std::vector<topo::ChipId> order =
          topo.RingAlong(topo::Dim::kY, topo.ChipAt({x, 0}));
      RingSpec spec;
      spec.data = DataFor(chip_buffers, order);
      spec.order = std::move(order);
      spec.range = range;
      y_rings->push_back(std::move(spec));
    }
    auto x_rings = std::make_shared<std::vector<RingSpec>>();
    for (int y = 0; y < topo.size_y(); ++y) {
      const std::vector<Range> y_owned =
          OwnedAfterReduceScatter(range, ny, y_rank[y], config.collective);
      for (int offset = 0; offset < config.model_parallel_stride; ++offset) {
        std::vector<topo::ChipId> order = topo.StridedRingAlong(
            topo::Dim::kX, topo.ChipAt({offset, y}),
            config.model_parallel_stride);
        for (const Range& owned : y_owned) {
          if (owned.size() == 0) continue;
          RingSpec spec;
          spec.data = DataFor(chip_buffers, order);
          spec.order = order;
          spec.range = owned;
          x_rings->push_back(std::move(spec));
        }
      }
    }

    // Phase chain for this slice: Y-RS -> X-RS -> [update] -> X-AG -> Y-AG.
    net::Network* net_ptr = &network;
    const auto options = config.collective;
    auto update_hook = config.shard_update_seconds;
    auto after_xag = [net_ptr, y_rings, options, all_done] {
      StartAllGather(*net_ptr, *y_rings, options,
                     [all_done] { all_done->Notify(); });
    };
    auto after_update = [net_ptr, x_rings, options, after_xag] {
      StartAllGather(*net_ptr, *x_rings, options, after_xag);
    };
    auto after_xrs = [net_ptr, &topo, range, ny, y_rank, update_hook, config,
                      after_update]() {
      if (!update_hook) {
        after_update();
        return;
      }
      // Sharded weight update on each chip's owned slice portion.
      sim::Simulator& sim_ref = net_ptr->simulator();
      auto barrier = std::make_shared<sim::Barrier>(topo.num_chips(),
                                                    after_update);
      for (int chip = 0; chip < topo.num_chips(); ++chip) {
        const topo::Coord coord = topo.CoordOf(chip);
        const std::vector<topo::ChipId> x_ring = topo.StridedRingAlong(
            topo::Dim::kX, chip, config.model_parallel_stride);
        const int x_rank = PosIn(x_ring, chip);
        std::int64_t owned_elems = 0;
        for (const Range& r : OwnedAfterReduceScatter(
                 range, ny, y_rank[coord.y], config.collective)) {
          if (r.size() == 0) continue;
          for (const Range& owned : OwnedAfterReduceScatter(
                   r, static_cast<int>(x_ring.size()), x_rank,
                   config.collective)) {
            owned_elems += owned.size();
          }
        }
        sim_ref.Schedule(update_hook(owned_elems),
                         [barrier] { barrier->Notify(); });
      }
    };
    StartReduceScatter(network, *y_rings, options,
                       [net_ptr, x_rings, options, after_xrs] {
                         StartReduceScatter(*net_ptr, *x_rings, options,
                                            after_xrs);
                       });
  }
  simulator.Run();
  return simulator.now() - start;
}

SimTime OneDGradientSummation(net::Network& network,
                              const GradientSummationConfig& config,
                              std::vector<float*> chip_buffers) {
  const topo::MeshTopology& topo = network.topology();
  RingSpec spec;
  spec.order = SnakeRingOverMesh(topo);
  spec.data = DataFor(chip_buffers, spec.order);
  spec.range = Range{0, config.elems};
  std::vector<RingSpec> rings;
  rings.push_back(std::move(spec));
  return AllReduce(network, rings, config.collective);
}

}  // namespace tpu::coll
