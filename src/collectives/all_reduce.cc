#include "collectives/all_reduce.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/math_util.h"
#include "sim/partitioned_simulator.h"
#include "sim/simulator.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::coll {
namespace {

int PosIn(const std::vector<topo::ChipId>& ring, topo::ChipId chip) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring[i] == chip) return static_cast<int>(i);
  }
  TPU_CHECK(false) << "chip " << chip << " not on ring";
  return -1;
}

std::vector<float*> DataFor(const std::vector<float*>& chip_buffers,
                            const std::vector<topo::ChipId>& order) {
  std::vector<float*> data;
  if (chip_buffers.empty()) return data;
  data.reserve(order.size());
  for (topo::ChipId chip : order) data.push_back(chip_buffers[chip]);
  return data;
}

}  // namespace

// All rings run concurrently; a ring pass is (n-1) barrier-synchronized
// steps, each as long as its slowest hop, so the phase estimate is max over
// rings of (n-1) * slowest-hop time. Uses EstimateArrival, which
// deliberately ignores injected degradation — the deadline compares sick
// reality against healthy expectation. Folded (mesh-dimension) rings put two
// ring edges on each physical link; the resulting ~2x contention is not
// modeled here, which is why deadline multiples below ~2 are prone to false
// positives on X rings.
SimTime ExpectedRingPhaseSeconds(net::Network& network,
                                 const std::vector<RingSpec>& rings,
                                 const CollectiveOptions& options) {
  const SimTime now = network.simulator().now();
  SimTime worst = 0;
  for (const RingSpec& spec : rings) {
    const int n = spec.size();
    if (n <= 1 || spec.range.size() == 0) continue;
    // Per-direction payload split mirrors the bidirectional schedule.
    std::int64_t dir_elems[2] = {spec.range.size(), 0};
    if (options.bidirectional && n > 2) {
      dir_elems[0] = spec.range.size() / 2;
      dir_elems[1] = spec.range.size() - dir_elems[0];
    }
    for (const std::int64_t elems : dir_elems) {
      if (elems == 0) continue;
      const Bytes bytes = CeilDiv(elems, n) * options.wire_bytes_per_elem();
      SimTime slowest_hop = 0;
      for (int rank = 0; rank < n; ++rank) {
        const topo::ChipId from = spec.order[rank];
        const topo::ChipId to = spec.order[(rank + 1) % n];
        slowest_hop = std::max(slowest_hop,
                               network.EstimateArrival(from, to, bytes) - now);
      }
      worst = std::max(worst, (n - 1) * slowest_hop);
    }
  }
  return worst;
}

std::vector<topo::ChipId> SnakeRingOverMesh(const topo::MeshTopology& topo) {
  std::vector<topo::ChipId> ring;
  ring.reserve(topo.num_chips());
  for (int y = 0; y < topo.size_y(); ++y) {
    if (y % 2 == 0) {
      for (int x = 0; x < topo.size_x(); ++x) ring.push_back(topo.ChipAt({x, y}));
    } else {
      for (int x = topo.size_x() - 1; x >= 0; --x) {
        ring.push_back(topo.ChipAt({x, y}));
      }
    }
  }
  return ring;
}

GradientSummationResult TwoDGradientSummation(
    net::Network& network, const GradientSummationConfig& config,
    std::vector<float*> chip_buffers) {
  const topo::MeshTopology& topo = network.topology();
  TPU_CHECK_GT(config.elems, 0);
  TPU_CHECK_GT(config.model_parallel_stride, 0);
  TPU_CHECK_EQ(topo.size_x() % config.model_parallel_stride, 0)
      << "model-parallel groups must tile the X dimension";
  if (!chip_buffers.empty()) {
    TPU_CHECK_EQ(static_cast<int>(chip_buffers.size()), topo.num_chips());
  }

  GradientSummationResult result;
  const Range full{0, config.elems};

  sim::Simulator& simulator = network.simulator();
  trace::TraceRecorder* recorder = trace::CurrentTrace();

  // Phase 1: reduce-scatter along Y (one torus ring per column, all
  // concurrent). The Y ring ordering is a function of the y coordinate only,
  // so every column shares the same rank layout.
  std::vector<RingSpec> y_rings;
  y_rings.reserve(topo.size_x());
  for (int x = 0; x < topo.size_x(); ++x) {
    std::vector<topo::ChipId> order =
        topo.RingAlong(topo::Dim::kY, topo.ChipAt({x, 0}));
    RingSpec spec;
    spec.data = DataFor(chip_buffers, order);
    spec.order = std::move(order);
    spec.range = full;
    if (recorder != nullptr) spec.label = "Y x=" + std::to_string(x);
    y_rings.push_back(std::move(spec));
  }
  // Rank of each row within the (shared) Y ring layout.
  const std::vector<topo::ChipId> y_ring0 =
      topo.RingAlong(topo::Dim::kY, topo.ChipAt({0, 0}));
  std::vector<int> y_rank(topo.size_y());
  for (int y = 0; y < topo.size_y(); ++y) {
    y_rank[y] = PosIn(y_ring0, topo.ChipAt({0, y}));
  }

  // Phase 2: reduce-scatter along X over each Y-owned sub-range. Rings hop
  // over model-parallel peers when stride > 1.
  const int ny = static_cast<int>(y_ring0.size());
  std::vector<RingSpec> x_rings;
  for (int y = 0; y < topo.size_y(); ++y) {
    const std::vector<Range> y_owned =
        OwnedAfterReduceScatter(full, ny, y_rank[y], config.collective);
    for (int offset = 0; offset < config.model_parallel_stride; ++offset) {
      std::vector<topo::ChipId> order = topo.StridedRingAlong(
          topo::Dim::kX, topo.ChipAt({offset, y}),
          config.model_parallel_stride);
      for (const Range& range : y_owned) {
        if (range.size() == 0) continue;
        RingSpec spec;
        spec.data = DataFor(chip_buffers, order);
        spec.order = order;
        spec.range = range;
        if (recorder != nullptr) {
          spec.label = "X y=" + std::to_string(y);
          if (config.model_parallel_stride > 1) {
            spec.label += " g" + std::to_string(offset);
          }
        }
        x_rings.push_back(std::move(spec));
      }
    }
  }
  // Ownership after both reduce phases, per chip.
  auto owned_elems_of = [&](topo::ChipId chip) {
    const topo::Coord c = topo.CoordOf(chip);
    const std::vector<Range> y_owned =
        OwnedAfterReduceScatter(full, ny, y_rank[c.y], config.collective);
    const std::vector<topo::ChipId> x_ring = topo.StridedRingAlong(
        topo::Dim::kX, chip, config.model_parallel_stride);
    const int x_rank = PosIn(x_ring, chip);
    std::int64_t elems = 0;
    for (const Range& range : y_owned) {
      if (range.size() == 0) continue;
      for (const Range& owned : OwnedAfterReduceScatter(
               range, static_cast<int>(x_ring.size()), x_rank,
               config.collective)) {
        elems += owned.size();
      }
    }
    return elems;
  };

  for (int chip = 0; chip < topo.num_chips(); ++chip) {
    result.max_owned_elems =
        std::max(result.max_owned_elems, owned_elems_of(chip));
  }

  // The five phases chain through completion callbacks and the simulator
  // runs once at the end, instead of draining the queue between phases.
  // Timing is identical when the collective owns the event queue, but this
  // lets externally scheduled events — armed fault injections and their
  // healings (fault::FaultInjector) — fire *during* the collective rather
  // than being absorbed into one phase's drain. Phase boundaries are the
  // recorded callback timestamps; events left in the queue after the final
  // all-gather (e.g. pending link healings) do not affect the result.
  const bool monitored = config.deadline.enabled();
  const SimTime start = simulator.now();
  SimTime end_y_rs = -1, end_x_rs = -1, end_update = -1, end_x_ag = -1,
          end_y_ag = -1;
  SimTime exp_y_rs = 0, exp_x_rs = 0, exp_x_ag = 0, exp_y_ag = 0;

  // Phase labels for the causal observer (critical-path attribution): set
  // just before each phase schedules its events. Pure observation.
  sim::EventObserver* observer = sim::CurrentEventObserver();

  // PDES engagement (sim/partitioned_simulator.h): when the ambient config
  // asks for >1 worker and the workload qualifies — a multi-pod topology,
  // time-only (no gradient buffers, so no shared payload state), and no
  // observation session installed (trace/metrics record per-event state on
  // the issuing thread; observed runs and sweeps force the serial path the
  // same way threaded sweeps do) — the run executes on the windowed engine:
  // pod-confined Y phases drain on parallel partition lanes while the
  // pod-spanning X phases and the phase chain stay on the global lane.
  // Timestamps, event counts and traffic totals are bit-identical to the
  // serial path at any thread count. threads <= 1 never constructs the
  // engine, so the legacy path pays exactly one branch here.
  const sim::PdesConfig& pdes = sim::CurrentPdesConfig();
  const bool pdes_engaged =
      pdes.enable && pdes.threads > 1 && topo.num_pods() > 1 &&
      chip_buffers.empty() && recorder == nullptr && observer == nullptr &&
      trace::CurrentMetrics() == nullptr;
  std::unique_ptr<sim::PartitionedSimulator> engine;
  std::unique_ptr<sim::ScopedEngine> engine_scope;
  if (pdes_engaged) {
    engine = std::make_unique<sim::PartitionedSimulator>(
        &simulator, topo.num_pods(), network.CrossPodLookahead(), pdes.threads,
        pdes.window);
    engine_scope = std::make_unique<sim::ScopedEngine>(engine.get());
  }

  // Declared in reverse chain order; each stage captures its successor by
  // reference (all outlive the Run() below). Expectations are estimated at
  // each phase's start so they see the then-current link occupancy.
  std::function<void()> after_y_ag = [&] { end_y_ag = simulator.now(); };
  std::function<void()> start_y_ag = [&] {
    end_x_ag = simulator.now();
    if (monitored) {
      exp_y_ag = ExpectedRingPhaseSeconds(network, y_rings, config.collective);
    }
    if (observer != nullptr) observer->OnPhase("Y-all-gather");
    StartAllGather(network, y_rings, config.collective, after_y_ag);
  };
  std::function<void()> start_x_ag = [&] {
    end_update = simulator.now();
    if (monitored) {
      exp_x_ag = ExpectedRingPhaseSeconds(network, x_rings, config.collective);
    }
    if (observer != nullptr) observer->OnPhase("X-all-gather");
    StartAllGather(network, x_rings, config.collective, start_y_ag);
  };
  // Phase 3: sharded weight update (weight-update sharding, Section 3.2).
  std::function<void()> start_update = [&] {
    end_x_rs = simulator.now();
    if (!config.shard_update_seconds) {
      start_x_ag();
      return;
    }
    if (observer != nullptr) observer->OnPhase("sharded-update");
    auto barrier =
        std::make_shared<sim::Barrier>(topo.num_chips(), start_x_ag);
    for (int chip = 0; chip < topo.num_chips(); ++chip) {
      simulator.Schedule(config.shard_update_seconds(owned_elems_of(chip)),
                         [barrier] { barrier->Notify(); });
    }
  };
  std::function<void()> start_x_rs = [&] {
    end_y_rs = simulator.now();
    if (monitored) {
      exp_x_rs = ExpectedRingPhaseSeconds(network, x_rings, config.collective);
    }
    if (observer != nullptr) observer->OnPhase("X-reduce-scatter");
    StartReduceScatter(network, x_rings, config.collective, start_update);
  };
  if (monitored) {
    exp_y_rs = ExpectedRingPhaseSeconds(network, y_rings, config.collective);
  }
  if (observer != nullptr) observer->OnPhase("Y-reduce-scatter");
  StartReduceScatter(network, y_rings, config.collective, start_x_rs);
  if (engine != nullptr) {
    engine->Run();
    if (pdes.stats != nullptr) *pdes.stats = engine->Stats();
  } else {
    simulator.Run();
    if (pdes.stats != nullptr) pdes.stats->engaged = false;
  }
  TPU_CHECK_GE(end_y_ag, 0.0);

  result.reduce_seconds = end_x_rs - start;
  result.update_seconds = end_update - end_x_rs;
  result.broadcast_seconds = end_y_ag - end_update;
  result.phase_seconds.y_reduce_scatter = end_y_rs - start;
  result.phase_seconds.x_reduce_scatter = end_x_rs - end_y_rs;
  result.phase_seconds.update = end_update - end_x_rs;
  result.phase_seconds.x_all_gather = end_x_ag - end_update;
  result.phase_seconds.y_all_gather = end_y_ag - end_x_ag;

  // Phase boundaries are known only after the run, so spans are emitted
  // retroactively with explicit timestamps: one umbrella B/E pair wrapping a
  // complete span per phase on the shared summation track.
  if (recorder != nullptr) {
    const trace::TraceRecorder::TrackId track =
        recorder->Track("system", "summation");
    recorder->Begin(track, "2d-summation", start);
    recorder->Complete(track, "reduce-scatter-Y", start, end_y_rs);
    recorder->Complete(track, "reduce-scatter-X", end_y_rs, end_x_rs);
    recorder->Complete(track, "sharded-update", end_x_rs, end_update);
    recorder->Complete(track, "broadcast-X", end_update, end_x_ag);
    recorder->Complete(track, "broadcast-Y", end_x_ag, end_y_ag);
    recorder->End(track, end_y_ag);
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter("summation.runs").Add(1);
    metrics->Histogram("summation.total_us").Record(ToMicros(end_y_ag - start));
    metrics->Histogram("summation.y_reduce_scatter_us")
        .Record(ToMicros(result.phase_seconds.y_reduce_scatter));
    metrics->Histogram("summation.x_reduce_scatter_us")
        .Record(ToMicros(result.phase_seconds.x_reduce_scatter));
    metrics->Histogram("summation.update_us")
        .Record(ToMicros(result.phase_seconds.update));
    metrics->Histogram("summation.x_all_gather_us")
        .Record(ToMicros(result.phase_seconds.x_all_gather));
    metrics->Histogram("summation.y_all_gather_us")
        .Record(ToMicros(result.phase_seconds.y_all_gather));
  }

  if (monitored) {
    auto record = [&result, &config](const char* name, SimTime phase_start,
                                     SimTime phase_end, SimTime expected) {
      PhaseTiming timing;
      timing.name = name;
      timing.start = phase_start;
      timing.expected = expected;
      timing.actual = phase_end - phase_start;
      timing.deadline = config.deadline.DeadlineFor(expected);
      timing.timed_out = timing.actual > timing.deadline;
      if (timing.timed_out && !result.timed_out) {
        result.timed_out = true;
        result.detected_at = phase_start + timing.deadline;
        result.timed_out_phase = name;
      }
      result.phases.push_back(timing);
    };
    record("Y-reduce-scatter", start, end_y_rs, exp_y_rs);
    record("X-reduce-scatter", end_y_rs, end_x_rs, exp_x_rs);
    record("X-all-gather", end_update, end_x_ag, exp_x_ag);
    record("Y-all-gather", end_x_ag, end_y_ag, exp_y_ag);
  }
  return result;
}

// Deliberately ignores the ambient PdesConfig and always runs serially:
// slices interleave Y and X phases in time, so no window ever has all
// pending work pod-confined and the engine would degenerate to the serial
// schedule while paying the protocol overhead.
SimTime PipelinedTwoDGradientSummation(
    net::Network& network, const GradientSummationConfig& config, int chunks,
    std::vector<float*> chip_buffers, PipelinedSummationReport* report) {
  const topo::MeshTopology& topo = network.topology();
  TPU_CHECK_GT(config.elems, 0);
  TPU_CHECK_GT(chunks, 0);
  TPU_CHECK_EQ(topo.size_x() % config.model_parallel_stride, 0);
  if (!chip_buffers.empty()) {
    TPU_CHECK_EQ(static_cast<int>(chip_buffers.size()), topo.num_chips());
  }
  sim::Simulator& simulator = network.simulator();
  trace::TraceRecorder* recorder = trace::CurrentTrace();
  const SimTime start = simulator.now();
  if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
    // Chunk phases overlap, so a single label covers the fused collective.
    observer->OnPhase("pipelined-2d");
  }

  // Shared ring layouts (identical for every slice).
  const std::vector<topo::ChipId> y_ring0 =
      topo.RingAlong(topo::Dim::kY, topo.ChipAt({0, 0}));
  const int ny = static_cast<int>(y_ring0.size());
  std::vector<int> y_rank(topo.size_y());
  for (int y = 0; y < topo.size_y(); ++y) {
    y_rank[y] = PosIn(y_ring0, topo.ChipAt({0, y}));
  }

  // Slice phases overlap, so deadline monitoring watches the fused collective
  // as a whole: the expectation is the *sequential* full-payload schedule
  // (Y-RS + X-RS + X-AG + Y-AG), an upper bound on the pipelined time, so
  // pipelining itself can never trip the deadline. The sharded-update hook is
  // compute, not communication, and is excluded from the expectation.
  const bool monitored = report != nullptr && config.deadline.enabled();
  if (monitored) {
    std::vector<RingSpec> estimate_y;
    for (int x = 0; x < topo.size_x(); ++x) {
      RingSpec spec;
      spec.order = topo.RingAlong(topo::Dim::kY, topo.ChipAt({x, 0}));
      spec.range = Range{0, config.elems};
      estimate_y.push_back(std::move(spec));
    }
    std::vector<RingSpec> estimate_x;
    for (int y = 0; y < topo.size_y(); ++y) {
      const std::vector<Range> y_owned = OwnedAfterReduceScatter(
          Range{0, config.elems}, ny, y_rank[y], config.collective);
      for (int offset = 0; offset < config.model_parallel_stride; ++offset) {
        std::vector<topo::ChipId> order = topo.StridedRingAlong(
            topo::Dim::kX, topo.ChipAt({offset, y}),
            config.model_parallel_stride);
        for (const Range& owned : y_owned) {
          if (owned.size() == 0) continue;
          RingSpec spec;
          spec.order = order;
          spec.range = owned;
          estimate_x.push_back(std::move(spec));
        }
      }
    }
    const SimTime y_phase =
        ExpectedRingPhaseSeconds(network, estimate_y, config.collective);
    const SimTime x_phase =
        ExpectedRingPhaseSeconds(network, estimate_x, config.collective);
    report->expected = 2 * y_phase + 2 * x_phase;
    report->deadline = config.deadline.DeadlineFor(report->expected);
  }

  // Completion is timestamped by the barrier callback (not by queue drain),
  // so armed fault events pending past the collective don't inflate it.
  SimTime completed_at = -1;
  auto all_done = std::make_shared<sim::Barrier>(
      chunks, [&completed_at, &simulator] { completed_at = simulator.now(); });
  const std::int64_t slice = CeilDiv(config.elems, chunks);
  for (int c = 0; c < chunks; ++c) {
    const Range range{std::min<std::int64_t>(config.elems, c * slice),
                      std::min<std::int64_t>(config.elems, (c + 1) * slice)};
    if (range.size() == 0) {
      all_done->Notify();
      continue;
    }
    // Per-slice ring specs.
    auto y_rings = std::make_shared<std::vector<RingSpec>>();
    for (int x = 0; x < topo.size_x(); ++x) {
      std::vector<topo::ChipId> order =
          topo.RingAlong(topo::Dim::kY, topo.ChipAt({x, 0}));
      RingSpec spec;
      spec.data = DataFor(chip_buffers, order);
      spec.order = std::move(order);
      spec.range = range;
      if (recorder != nullptr) {
        spec.label = "Y s" + std::to_string(c) + " x=" + std::to_string(x);
      }
      y_rings->push_back(std::move(spec));
    }
    auto x_rings = std::make_shared<std::vector<RingSpec>>();
    for (int y = 0; y < topo.size_y(); ++y) {
      const std::vector<Range> y_owned =
          OwnedAfterReduceScatter(range, ny, y_rank[y], config.collective);
      for (int offset = 0; offset < config.model_parallel_stride; ++offset) {
        std::vector<topo::ChipId> order = topo.StridedRingAlong(
            topo::Dim::kX, topo.ChipAt({offset, y}),
            config.model_parallel_stride);
        for (const Range& owned : y_owned) {
          if (owned.size() == 0) continue;
          RingSpec spec;
          spec.data = DataFor(chip_buffers, order);
          spec.order = order;
          spec.range = owned;
          if (recorder != nullptr) {
            spec.label = "X s" + std::to_string(c) + " y=" + std::to_string(y);
          }
          x_rings->push_back(std::move(spec));
        }
      }
    }

    // Phase chain for this slice: Y-RS -> X-RS -> [update] -> X-AG -> Y-AG.
    net::Network* net_ptr = &network;
    const auto options = config.collective;
    auto update_hook = config.shard_update_seconds;
    auto after_xag = [net_ptr, y_rings, options, all_done] {
      StartAllGather(*net_ptr, *y_rings, options,
                     [all_done] { all_done->Notify(); });
    };
    auto after_update = [net_ptr, x_rings, options, after_xag] {
      StartAllGather(*net_ptr, *x_rings, options, after_xag);
    };
    auto after_xrs = [net_ptr, &topo, range, ny, y_rank, update_hook, config,
                      after_update]() {
      if (!update_hook) {
        after_update();
        return;
      }
      // Sharded weight update on each chip's owned slice portion.
      sim::Simulator& sim_ref = net_ptr->simulator();
      auto barrier = std::make_shared<sim::Barrier>(topo.num_chips(),
                                                    after_update);
      for (int chip = 0; chip < topo.num_chips(); ++chip) {
        const topo::Coord coord = topo.CoordOf(chip);
        const std::vector<topo::ChipId> x_ring = topo.StridedRingAlong(
            topo::Dim::kX, chip, config.model_parallel_stride);
        const int x_rank = PosIn(x_ring, chip);
        std::int64_t owned_elems = 0;
        for (const Range& r : OwnedAfterReduceScatter(
                 range, ny, y_rank[coord.y], config.collective)) {
          if (r.size() == 0) continue;
          for (const Range& owned : OwnedAfterReduceScatter(
                   r, static_cast<int>(x_ring.size()), x_rank,
                   config.collective)) {
            owned_elems += owned.size();
          }
        }
        sim_ref.Schedule(update_hook(owned_elems),
                         [barrier] { barrier->Notify(); });
      }
    };
    StartReduceScatter(network, *y_rings, options,
                       [net_ptr, x_rings, options, after_xrs] {
                         StartReduceScatter(*net_ptr, *x_rings, options,
                                            after_xrs);
                       });
  }
  simulator.Run();
  TPU_CHECK_GE(completed_at, 0.0);
  const SimTime elapsed = completed_at - start;
  // Slice phases interleave, so the fused collective gets a single umbrella
  // span; per-slice phase activity is visible through the ring spans.
  if (recorder != nullptr) {
    recorder->Complete(recorder->Track("system", "summation"),
                       "pipelined-2d-summation x" + std::to_string(chunks),
                       start, completed_at);
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter("summation.pipelined_runs").Add(1);
    metrics->Histogram("summation.pipelined_total_us")
        .Record(ToMicros(elapsed));
  }
  if (monitored) {
    report->actual = elapsed;
    report->timed_out = elapsed > report->deadline;
    report->detected_at = report->timed_out ? start + report->deadline : -1.0;
  }
  return elapsed;
}

SimTime OneDGradientSummation(net::Network& network,
                              const GradientSummationConfig& config,
                              std::vector<float*> chip_buffers) {
  const topo::MeshTopology& topo = network.topology();
  RingSpec spec;
  spec.order = SnakeRingOverMesh(topo);
  spec.data = DataFor(chip_buffers, spec.order);
  spec.range = Range{0, config.elems};
  std::vector<RingSpec> rings;
  rings.push_back(std::move(spec));
  return AllReduce(network, rings, config.collective);
}

}  // namespace tpu::coll
