// Recursive halving-doubling collectives (Thakur et al.'s MPI algorithms,
// the schedule XLA picks for small payloads on power-of-two groups).
//
// Recursive halving (reduce-scatter): log2(n) barrier-synchronized rounds;
// in round k each rank exchanges half of its live payload with a partner at
// chunk distance n/2^(k+1), so the payload shrinks geometrically while the
// message count stays logarithmic. Recursive doubling (all-gather) is the
// exact reverse. Compared with rings this trades bandwidth efficiency for
// latency: fewer rounds, but partners are far apart on a mesh, so each
// message crosses many physical hops. The collective planner (src/plan)
// enumerates both and lets the cost model decide.
//
// Like the ring collectives these are functional when participant buffers
// are supplied and timing-only otherwise. Ownership after the halving phase
// is the *natural* chunk layout: rank r owns chunk r of the range
// (HdOwnedAfterReduceScatter), unlike the ring layout which is rotated.
#pragma once

#include <functional>
#include <vector>

#include "collectives/ring.h"
#include "common/units.h"
#include "network/network.h"

namespace tpu::coll {

// The contiguous chunk rank `rank` owns after recursive halving on a group
// of `group_size` participants (group_size must be a power of two).
Range HdOwnedAfterReduceScatter(const Range& range, int group_size, int rank);

// Non-blocking recursive-halving reduce-scatter / recursive-doubling
// all-gather over every group in `groups` concurrently. Each RingSpec is
// reused as a participant list (`order`, `data`, `range`); its
// `bidirectional` option is ignored (exchanges are already symmetric
// full-duplex pairs). Group sizes must be powers of two. `on_done` fires
// when every group completes; the caller runs the simulator.
void StartHdReduceScatter(net::Network& network, std::vector<RingSpec> groups,
                          const CollectiveOptions& options,
                          std::function<void()> on_done);
void StartHdAllGather(net::Network& network, std::vector<RingSpec> groups,
                      const CollectiveOptions& options,
                      std::function<void()> on_done);

// Blocking forms: run the simulator to completion and return elapsed
// simulated time.
SimTime HdReduceScatter(net::Network& network, std::vector<RingSpec> groups,
                        const CollectiveOptions& options);
SimTime HdAllGather(net::Network& network, std::vector<RingSpec> groups,
                    const CollectiveOptions& options);

// Healthy-network estimate of one halving/doubling phase: max over groups of
// the sum over rounds of the slowest pairwise exchange, via
// Network::EstimateArrival (which ignores injected degradation — the
// expectation phase-deadline detection compares reality against). The
// halving and doubling directions are time-symmetric, so one estimate
// serves both.
SimTime ExpectedHdPhaseSeconds(net::Network& network,
                               const std::vector<RingSpec>& groups,
                               const CollectiveOptions& options);

}  // namespace tpu::coll
