// Reusable wire-payload buffers for data-carrying collectives.
//
// Every simulated hop of a functional collective used to snapshot its
// outgoing values into a fresh shared_ptr<vector<float>> — one heap
// allocation (and one release) per simulated message. PayloadPool recycles
// those buffers through a per-thread free list instead: a snapshot is a copy
// into a recycled vector, and the RAII Handle returns the vector to the pool
// when the completion callback is destroyed. Values are exact copies, so the
// simulated arithmetic is bit-identical to the unpooled path.
//
// Like CallbackPool, a handle must be created, used, and destroyed on the
// thread whose pool it came from — true by construction, since collectives
// run entirely on their simulator's thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tpu::coll {

class PayloadPool {
 public:
  // Move-only owner of one pooled buffer; hands the buffer back on
  // destruction. A default-constructed handle is empty (no buffer).
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept
        : pool_(other.pool_), buffer_(other.buffer_) {
      other.pool_ = nullptr;
      other.buffer_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        buffer_ = other.buffer_;
        other.pool_ = nullptr;
        other.buffer_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { Release(); }

    explicit operator bool() const { return buffer_ != nullptr; }
    float* data() { return buffer_->data(); }
    const float* data() const { return buffer_->data(); }
    std::size_t size() const { return buffer_->size(); }

   private:
    friend class PayloadPool;
    Handle(PayloadPool* pool, std::vector<float>* buffer)
        : pool_(pool), buffer_(buffer) {}

    void Release() {
      if (buffer_ != nullptr) {
        pool_->free_.push_back(buffer_);
        pool_ = nullptr;
        buffer_ = nullptr;
      }
    }

    PayloadPool* pool_ = nullptr;
    std::vector<float>* buffer_ = nullptr;
  };

  struct Stats {
    std::uint64_t hits = 0;   // buffer reused from the free list
    std::uint64_t fresh = 0;  // new buffer allocated (cold pool)
  };

  static PayloadPool& ThisThread() {
    thread_local PayloadPool pool;
    return pool;
  }

  PayloadPool() = default;
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  ~PayloadPool() {
    // Buffers still owned by live handles leak intentionally: the thread is
    // exiting, and touching the destroyed pool from a late handle would be
    // worse. In practice handles never outlive their simulation run.
    for (std::vector<float>* buffer : free_) delete buffer;
  }

  // Copies [begin, end) into a recycled buffer sized exactly to the range.
  Handle Snapshot(const float* begin, const float* end) {
    std::vector<float>* buffer;
    if (!free_.empty()) {
      ++stats_.hits;
      buffer = free_.back();
      free_.pop_back();
    } else {
      ++stats_.fresh;
      buffer = new std::vector<float>();
    }
    buffer->assign(begin, end);
    return Handle(this, buffer);
  }

  const Stats& stats() const { return stats_; }

 private:
  std::vector<std::vector<float>*> free_;
  Stats stats_;
};

}  // namespace tpu::coll
