// Ring collectives over the simulated interconnect.
//
// These are *functional* implementations: when participant buffers are
// supplied, real float data moves between simulated chips chunk-by-chunk and
// the final buffer contents can be checked for exact correctness (reduction
// order on a ring is deterministic). When buffers are omitted, the same
// schedule runs timing-only, which is what the large-scale step-time
// simulations use.
//
// Algorithms follow Section 3.3: bidirectional rings (payload split across
// the two ring directions, which are independent full-duplex links), ring
// reduce-scatter and ring all-gather, optional bfloat16 wire compression.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "network/network.h"
#include "topology/topology.h"

namespace tpu::coll {

struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
  friend bool operator==(const Range&, const Range&) = default;
};

struct CollectiveOptions {
  // Split the payload across both ring directions (doubles effective ring
  // bandwidth on torus dimensions).
  bool bidirectional = true;
  // Transmit gradients as bfloat16: halves wire bytes; when data buffers are
  // present, transmitted values are quantized (Section 3.3/4.1).
  bool bfloat16_wire = false;

  std::int64_t wire_bytes_per_elem() const { return bfloat16_wire ? 2 : 4; }
};

// One ring participating in a collective. `order[i]` is the chip at ring
// position i; `data[i]`, when non-null, points to that chip's full payload
// buffer (the collective touches only `range`). Distinct rings passed to one
// call run concurrently on the simulated network.
struct RingSpec {
  std::vector<topo::ChipId> order;
  std::vector<float*> data;  // empty, or one pointer per ring position
  Range range;               // payload subrange covered by this collective
  // Trace label prefix for this ring's spans (e.g. "Y x=3"); purely
  // observational, ignored when tracing is off.
  std::string label;

  int size() const { return static_cast<int>(order.size()); }
  bool has_data() const { return !data.empty(); }
};

// The contiguous chunk layout shared by the ring and halving-doubling
// collectives: `range` divided into `parts` chunks of ceil(len / parts)
// elements (trailing chunks may be short or empty).
Range ChunkOfRange(const Range& range, int parts, int index);

// The chunk of `range` that ring position `rank` owns after a reduce-scatter
// (and therefore contributes during the matching all-gather). With
// bidirectional rings the result is two ranges (one per direction); either
// may be empty for tiny payloads.
std::vector<Range> OwnedAfterReduceScatter(const Range& range, int ring_size,
                                           int rank,
                                           const CollectiveOptions& options);

// Non-blocking forms: schedule the collective on the network's simulator
// and fire `on_done` when every ring completes; the caller decides when to
// run the simulator. These are the building blocks of pipelined schedules
// that overlap phases of different payload chunks.
void StartReduceScatter(net::Network& network, std::vector<RingSpec> rings,
                        const CollectiveOptions& options,
                        std::function<void()> on_done);
void StartAllGather(net::Network& network, std::vector<RingSpec> rings,
                    const CollectiveOptions& options,
                    std::function<void()> on_done);

// Runs ring reduce-scatter on all rings concurrently. On return, simulated
// time has advanced past the completion of every ring; the returned value is
// the elapsed simulated time. If data buffers are present, each rank's owned
// chunks contain the cross-ring sums.
SimTime ReduceScatter(net::Network& network, std::vector<RingSpec> rings,
                      const CollectiveOptions& options);

// Inverse of ReduceScatter: each rank contributes its owned chunks and all
// ranks end with the full `range` contents.
SimTime AllGather(net::Network& network, std::vector<RingSpec> rings,
                  const CollectiveOptions& options);

// reduce-scatter followed by all-gather on each ring (the classic 1-D ring
// all-reduce). All rings run concurrently; RS->AG transition is per-ring.
SimTime AllReduce(net::Network& network, std::vector<RingSpec> rings,
                  const CollectiveOptions& options);

}  // namespace tpu::coll
