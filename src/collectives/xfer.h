// Point-to-point transfer patterns used by the SPMD partitioner's inserted
// communication: halo exchange (spatially partitioned convolutions,
// Section 3.1), all-to-all (resharding), and collective-permute.
//
// These are timing primitives: the SPMD evaluator performs the functional
// data movement directly; the partitioned cost model charges time through
// these schedules.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"
#include "network/network.h"
#include "topology/topology.h"

namespace tpu::coll {

// Spatial-partitioning halo exchange: `parts` are the participants of one
// partitioned operator, laid out as a grid_x x grid_y tile grid over the
// image (parts[gy * grid_x + gx]). Each part exchanges `halo_bytes_x` with
// its left/right tile neighbors and `halo_bytes_y` with its up/down
// neighbors. Two cores of one chip may both appear in `parts`; transfers
// between them cost only the per-message overhead (on-chip).
// Returns elapsed simulated time.
SimTime HaloExchange(net::Network& network,
                     const std::vector<topo::ChipId>& parts, int grid_x,
                     int grid_y, Bytes halo_bytes_x, Bytes halo_bytes_y);

// Dense all-to-all among `chips`: every ordered pair exchanges
// `per_pair_bytes`. Used to model resharding between different SPMD
// shardings (e.g. spatial split -> feature split in MaskRCNN einsums).
SimTime AllToAll(net::Network& network, const std::vector<topo::ChipId>& chips,
                 Bytes per_pair_bytes);

// Collective-permute: each (src, dst) pair transfers `bytes` concurrently.
SimTime CollectivePermute(
    net::Network& network,
    const std::vector<std::pair<topo::ChipId, topo::ChipId>>& pairs,
    Bytes bytes);

}  // namespace tpu::coll
