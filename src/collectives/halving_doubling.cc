#include "collectives/halving_doubling.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "collectives/payload_pool.h"
#include "common/bfloat16.h"
#include "common/check.h"
#include "common/math_util.h"
#include "sim/simulator.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::coll {
namespace {

// Element range covered by chunk indices [first, last) of the natural
// `parts`-way chunk layout.
Range ChunkSpan(const Range& range, int parts, int first, int last) {
  const Range lo = ChunkOfRange(range, parts, first);
  const Range hi = ChunkOfRange(range, parts, last - 1);
  return Range{lo.begin, hi.end};
}

// Join-counter for the per-round rendezvous, owned by its own notifications
// (see the identical pattern in ring.cc): raw-pointer captures keep the hot
// per-message callbacks free of refcount traffic.
class StepBarrier {
 public:
  StepBarrier(int expected, sim::Simulator::Callback on_all_done)
      : remaining_(expected), on_all_done_(std::move(on_all_done)) {
    TPU_CHECK_GT(expected, 0);
    if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
      join_ = observer->OnJoinOpen(expected);
    }
  }

  void Notify() {
    if (join_ >= 0) {
      if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
        observer->OnJoinNotify(join_);
      }
    }
    if (--remaining_ == 0) {
      on_all_done_();
      delete this;
    }
  }

 private:
  int remaining_;
  int join_ = -1;
  sim::Simulator::Callback on_all_done_;
};

// One group executing recursive halving (reduce-scatter) or recursive
// doubling (all-gather). Rounds are separated by a per-group barrier, the
// same synchronous discipline as RingPass.
class HdPass : public std::enable_shared_from_this<HdPass> {
 public:
  enum class Kind { kHalving, kDoubling };

  HdPass(net::Network* network, std::vector<topo::ChipId> order,
         std::vector<float*> data, Range range, Kind kind,
         const CollectiveOptions& options, sim::Simulator::Callback on_done)
      : network_(network),
        order_(std::move(order)),
        data_(std::move(data)),
        range_(range),
        kind_(kind),
        options_(options),
        on_done_(std::move(on_done)) {
    TPU_CHECK(IsPowerOfTwo(static_cast<std::int64_t>(order_.size())))
        << "halving-doubling needs a power-of-two group, got "
        << order_.size();
  }

  void Start() {
    if (n() <= 1 || range_.size() == 0) {
      network_->simulator().Schedule(0.0, std::move(on_done_));
      return;
    }
    rounds_ = static_cast<int>(Log2Floor(n()));
    RunRound(0);
  }

 private:
  int n() const { return static_cast<int>(order_.size()); }

  // Chunk-index block rank r holds *after* `completed` rounds. Halving
  // shrinks blocks n -> 1; doubling grows them 1 -> n.
  std::pair<int, int> BlockAfter(int rank, int completed) const {
    const int size = kind_ == Kind::kHalving ? n() >> completed
                                             : 1 << completed;
    const int start = rank / size * size;
    return {start, start + size};
  }

  void RunRound(int round) {
    auto self = shared_from_this();
    // The barrier's continuation holds the shared_ptr that keeps this pass
    // alive; the hot per-message callbacks hold only the raw pointer.
    StepBarrier* barrier = new StepBarrier(n(), [self, round] {
      if (round + 1 < self->rounds_) {
        self->RunRound(round + 1);
      } else {
        self->on_done_();
      }
    });

    // Partner distance in ranks: n/2, n/4, ..., 1 for halving; 1, 2, ...,
    // n/2 for doubling.
    const int distance = kind_ == Kind::kHalving ? n() >> (round + 1)
                                                 : 1 << round;
    for (int rank = 0; rank < n(); ++rank) {
      const int partner = rank ^ distance;
      // Halving sends the half of the live block the *partner* keeps;
      // doubling sends the whole block this rank currently holds.
      const auto send_block =
          kind_ == Kind::kHalving ? BlockAfter(partner, round + 1)
                                  : BlockAfter(rank, round);
      const Range send = ChunkSpan(range_, n(), send_block.first,
                                   send_block.second);
      const Bytes wire_bytes = send.size() * options_.wire_bytes_per_elem();

      // Time-only groups complete with a bare barrier notification (inline
      // capture); data-carrying groups snapshot the outgoing values into a
      // pooled buffer (this round's incoming data must not contaminate what
      // travels within the same round).
      if (data_.empty() || send.size() == 0) {
        network_->Send(order_[rank], order_[partner], wire_bytes,
                       [barrier] { barrier->Notify(); });
        continue;
      }
      PayloadPool::Handle payload = PayloadPool::ThisThread().Snapshot(
          data_[rank] + send.begin, data_[rank] + send.end);
      if (options_.bfloat16_wire) {
        float* p = payload.data();
        for (std::size_t i = 0; i < payload.size(); ++i) {
          p[i] = QuantizeToBFloat16(p[i]);
        }
      }
      float* const out = data_[partner] + send.begin;
      if (kind_ == Kind::kHalving) {
        network_->Send(order_[rank], order_[partner], wire_bytes,
                       [barrier, payload = std::move(payload), out] {
                         const float* p = payload.data();
                         for (std::size_t i = 0; i < payload.size(); ++i) {
                           out[i] += p[i];
                         }
                         barrier->Notify();
                       });
      } else {
        network_->Send(order_[rank], order_[partner], wire_bytes,
                       [barrier, payload = std::move(payload), out] {
                         std::copy(payload.data(),
                                   payload.data() + payload.size(), out);
                         barrier->Notify();
                       });
      }
    }
  }

  net::Network* network_;
  std::vector<topo::ChipId> order_;
  std::vector<float*> data_;
  Range range_;
  Kind kind_;
  CollectiveOptions options_;
  sim::Simulator::Callback on_done_;
  int rounds_ = 0;
};

void StartHdGroup(net::Network& network, const RingSpec& spec,
                  HdPass::Kind kind, const CollectiveOptions& options,
                  sim::Simulator::Callback on_done) {
  TPU_CHECK(!spec.order.empty());
  if (spec.has_data()) {
    TPU_CHECK_EQ(spec.data.size(), spec.order.size());
  }

  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    const trace::TraceRecorder::TrackId track =
        recorder->Track("system", "rings");
    std::string name = spec.label.empty() ? "hd" : spec.label;
    name += kind == HdPass::Kind::kHalving ? " hd-reduce-scatter"
                                           : " hd-all-gather";
    const std::uint64_t async_id = recorder->NextAsyncId();
    sim::Simulator* simulator = &network.simulator();
    const SimTime begin = simulator->now();
    recorder->AsyncBegin(track, std::move(name), async_id, begin);
    on_done = [recorder, track, async_id, simulator, begin,
               done = std::move(on_done)]() mutable {
      const SimTime end = simulator->now();
      recorder->AsyncEnd(track, async_id, end);
      if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
        metrics->Histogram("coll.hd_us").Record(ToMicros(end - begin));
      }
      done();
    };
  }

  auto pass = std::make_shared<HdPass>(&network, spec.order, spec.data,
                                       spec.range, kind, options,
                                       std::move(on_done));
  pass->Start();
}

void StartHdGroups(net::Network& network, const std::vector<RingSpec>& groups,
                   HdPass::Kind kind, const CollectiveOptions& options,
                   std::function<void()> on_done) {
  auto outer = std::make_shared<sim::Barrier>(
      static_cast<int>(groups.size()),
      [done = std::move(on_done)]() mutable { done(); });
  for (const RingSpec& spec : groups) {
    StartHdGroup(network, spec, kind, options, [outer] { outer->Notify(); });
  }
}

SimTime RunHdGroups(net::Network& network, const std::vector<RingSpec>& groups,
                    HdPass::Kind kind, const CollectiveOptions& options) {
  sim::Simulator& simulator = network.simulator();
  const SimTime start = simulator.now();
  StartHdGroups(network, groups, kind, options, [] {});
  simulator.Run();
  return simulator.now() - start;
}

}  // namespace

Range HdOwnedAfterReduceScatter(const Range& range, int group_size, int rank) {
  TPU_CHECK(IsPowerOfTwo(group_size));
  TPU_CHECK_GE(rank, 0);
  TPU_CHECK_LT(rank, group_size);
  if (group_size == 1) return range;
  return ChunkOfRange(range, group_size, rank);
}

void StartHdReduceScatter(net::Network& network, std::vector<RingSpec> groups,
                          const CollectiveOptions& options,
                          std::function<void()> on_done) {
  StartHdGroups(network, groups, HdPass::Kind::kHalving, options,
                std::move(on_done));
}

void StartHdAllGather(net::Network& network, std::vector<RingSpec> groups,
                      const CollectiveOptions& options,
                      std::function<void()> on_done) {
  StartHdGroups(network, groups, HdPass::Kind::kDoubling, options,
                std::move(on_done));
}

SimTime HdReduceScatter(net::Network& network, std::vector<RingSpec> groups,
                        const CollectiveOptions& options) {
  return RunHdGroups(network, groups, HdPass::Kind::kHalving, options);
}

SimTime HdAllGather(net::Network& network, std::vector<RingSpec> groups,
                    const CollectiveOptions& options) {
  return RunHdGroups(network, groups, HdPass::Kind::kDoubling, options);
}

SimTime ExpectedHdPhaseSeconds(net::Network& network,
                               const std::vector<RingSpec>& groups,
                               const CollectiveOptions& options) {
  const SimTime now = network.simulator().now();
  SimTime worst = 0;
  for (const RingSpec& spec : groups) {
    const int n = spec.size();
    if (n <= 1 || spec.range.size() == 0) continue;
    const int rounds = static_cast<int>(Log2Floor(n));
    SimTime total = 0;
    for (int round = 0; round < rounds; ++round) {
      // Halving-round geometry (doubling mirrors it): partner at rank
      // distance n/2^(round+1), message of that many chunks.
      const int distance = n >> (round + 1);
      SimTime slowest = 0;
      for (int rank = 0; rank < n; ++rank) {
        const int partner = rank ^ distance;
        const int start = partner / distance * distance;
        const Range span = ChunkSpan(spec.range, n, start, start + distance);
        const Bytes bytes = span.size() * options.wire_bytes_per_elem();
        slowest = std::max(
            slowest, network.EstimateArrival(spec.order[rank],
                                             spec.order[partner], bytes) -
                         now);
      }
      total += slowest;
    }
    worst = std::max(worst, total);
  }
  return worst;
}

}  // namespace tpu::coll
