// The paper's optimized global gradient summation (Section 3.3).
//
// 2-D hierarchical schedule on the multipod mesh:
//   1. bidirectional ring reduce-scatter along the Y dimension (torus rings),
//   2. reduce-scatter along X over the Y-shards (payload already 1/|Y|,
//      which is the "32 times less data along X" property),
//   3. optional per-chip shard update hook — this is where weight-update
//      sharding (Section 3.2) computes the optimizer step on the shard,
//   4. all-gather along X, then along Y ("broadcast first along X and then
//      Y in two steps").
//
// With model parallelism (Transformer), the X rings are *strided*: they hop
// over the chips that are model-parallel neighbors and connect each shard to
// its peer on every other model-parallel group (Figure 4, dotted blue rings).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collectives/ring.h"
#include "network/network.h"
#include "topology/topology.h"

namespace tpu::coll {

// Per-collective-phase failure detection, the way a real synchronous runtime
// notices a stall: each phase gets a deadline of `multiple` times its expected
// duration (computed from the healthy-network EstimateArrival model before
// the phase starts); a phase that overruns its deadline is reported as timed
// out at the moment the deadline expired — the collective itself still runs
// to completion so the caller also learns the true stall length.
struct PhaseDeadlineConfig {
  // Deadline = max(multiple * expected_phase_seconds, min_deadline).
  // 0 disables monitoring (the default: figures/benches pay no overhead).
  double multiple = 0.0;
  // Floor so microsecond-scale phases don't trip on estimation error.
  SimTime min_deadline = Micros(50);

  bool enabled() const { return multiple > 0.0; }
  SimTime DeadlineFor(SimTime expected_seconds) const {
    const SimTime scaled = multiple * expected_seconds;
    return scaled > min_deadline ? scaled : min_deadline;
  }
};

struct GradientSummationConfig {
  std::int64_t elems = 0;  // per-chip gradient payload, in float elements
  CollectiveOptions collective;
  // 1 for pure data parallelism. For model parallelism, the number of
  // X-neighbor chips one model is sharded across; the X reduction rings then
  // connect every stride-th chip.
  int model_parallel_stride = 1;
  // Optional weight-update-sharding hook: given the number of elements a chip
  // owns after the reduce phase, returns the simulated seconds its sharded
  // optimizer update takes. Null hook skips the update phase.
  std::function<SimTime(std::int64_t owned_elems)> shard_update_seconds;
  // Optional per-phase timeout detection (see PhaseDeadlineConfig).
  PhaseDeadlineConfig deadline;
};

// Timing of one monitored collective phase (Y-RS / X-RS / X-AG / Y-AG).
struct PhaseTiming {
  const char* name = "";
  SimTime start = 0;     // sim-time the phase began
  SimTime expected = 0;  // healthy-network estimate
  SimTime actual = 0;    // observed duration
  SimTime deadline = 0;  // max(multiple * expected, min_deadline)
  bool timed_out = false;
};

// Per-phase wall-clock of one 2-D summation, in schedule order. Always
// filled (unlike `phases` below, which needs deadline monitoring); feeds the
// step profiler and trace spans.
struct SummationPhaseSeconds {
  SimTime y_reduce_scatter = 0;
  SimTime x_reduce_scatter = 0;
  SimTime update = 0;  // sharded weight update (0 when no hook)
  SimTime x_all_gather = 0;
  SimTime y_all_gather = 0;
};

struct GradientSummationResult {
  SimTime reduce_seconds = 0;     // Y reduce-scatter + X reduce-scatter
  SimTime update_seconds = 0;     // sharded weight update (if hooked)
  SimTime broadcast_seconds = 0;  // X all-gather + Y all-gather
  SummationPhaseSeconds phase_seconds;
  // Elements each chip owned at the update point (uniform up to rounding;
  // this is the max across chips).
  std::int64_t max_owned_elems = 0;

  // Filled when config.deadline is enabled: the four communication phases in
  // schedule order, plus the first-detection summary below.
  std::vector<PhaseTiming> phases;
  bool timed_out = false;
  // Sim-time the first phase deadline expired (phase start + deadline);
  // negative when nothing timed out. On a stalled collective this is far
  // earlier than the stall's eventual completion — the gap is what a
  // checkpoint/restart system saves by detecting instead of waiting.
  SimTime detected_at = -1.0;
  const char* timed_out_phase = nullptr;

  SimTime total() const {
    return reduce_seconds + update_seconds + broadcast_seconds;
  }
};

// Runs the full 2-D summation on the network's topology. `chip_buffers` is
// either empty (timing-only) or holds one payload pointer per chip id; after
// the call every participating chip's buffer contains the global sum
// (across its Y column and its strided X peers).
GradientSummationResult TwoDGradientSummation(
    net::Network& network, const GradientSummationConfig& config,
    std::vector<float*> chip_buffers = {});

// Chunk-pipelined variant of the 2-D summation: the payload is split into
// `chunks` slices whose four phases (Y-RS, X-RS, X-AG, Y-AG) overlap —
// slice i+1 reduces on the Y links while slice i reduces on the X links.
// This is how production XLA hides the smaller phase; the sequential
// schedule above is the conservative default. Functionally identical
// (slices are disjoint); returns elapsed simulated time. The weight-update
// hook, when present, runs per slice on the owned shard.
//
// Phases of different slices overlap, so deadline monitoring (when
// config.deadline is enabled and `report` is non-null) watches the fused
// collective as a whole: expected time is the sum of the healthy-network
// phase estimates for the full payload (an upper bound on the pipelined
// schedule, hence conservative — no false positives from pipelining itself).
struct PipelinedSummationReport {
  SimTime expected = 0;
  SimTime actual = 0;
  SimTime deadline = 0;
  bool timed_out = false;
  SimTime detected_at = -1.0;  // start + deadline when timed out, else -1
};
SimTime PipelinedTwoDGradientSummation(
    net::Network& network, const GradientSummationConfig& config, int chunks,
    std::vector<float*> chip_buffers = {},
    PipelinedSummationReport* report = nullptr);

// Baseline for the ablation bench: a single ring over the whole mesh
// (boustrophedon over rows), the schedule 2-D summation replaces. Exposes
// the O(num_chips) latency term that makes 1-D rings uncompetitive at 4096
// chips.
SimTime OneDGradientSummation(net::Network& network,
                              const GradientSummationConfig& config,
                              std::vector<float*> chip_buffers = {});

// Row-major boustrophedon ring visiting every chip; consecutive ring
// positions are physical neighbors.
std::vector<topo::ChipId> SnakeRingOverMesh(const topo::MeshTopology& topo);

// Healthy-network estimate of one ring-collective phase: max over rings of
// (n-1) barrier-synchronized steps, each as long as its slowest hop (via
// Network::EstimateArrival, which deliberately ignores injected
// degradation). This is the expectation phase-deadline detection compares
// reality against; the collective planner reuses it for plan execution
// deadlines.
SimTime ExpectedRingPhaseSeconds(net::Network& network,
                                 const std::vector<RingSpec>& rings,
                                 const CollectiveOptions& options);

}  // namespace tpu::coll
