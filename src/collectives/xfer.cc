#include "collectives/xfer.h"

#include <memory>

#include "common/check.h"
#include "sim/simulator.h"

namespace tpu::coll {
namespace {

// Runs a batch of concurrent point-to-point sends to completion and returns
// elapsed simulated time.
SimTime RunSends(
    net::Network& network,
    const std::vector<std::pair<topo::ChipId, topo::ChipId>>& pairs,
    Bytes bytes) {
  sim::Simulator& simulator = network.simulator();
  const SimTime start = simulator.now();
  for (const auto& [src, dst] : pairs) {
    network.Send(src, dst, bytes, [] {});
  }
  simulator.Run();
  return simulator.now() - start;
}

}  // namespace

SimTime HaloExchange(net::Network& network,
                     const std::vector<topo::ChipId>& parts, int grid_x,
                     int grid_y, Bytes halo_bytes_x, Bytes halo_bytes_y) {
  TPU_CHECK_EQ(static_cast<int>(parts.size()), grid_x * grid_y);
  sim::Simulator& simulator = network.simulator();
  const SimTime start = simulator.now();
  auto part_at = [&](int gx, int gy) { return parts[gy * grid_x + gx]; };
  for (int gy = 0; gy < grid_y; ++gy) {
    for (int gx = 0; gx < grid_x; ++gx) {
      const topo::ChipId self = part_at(gx, gy);
      // Each tile pushes its edge regions to the neighbor that needs them;
      // both directions of every tile boundary are sent.
      if (gx + 1 < grid_x) {
        network.Send(self, part_at(gx + 1, gy), halo_bytes_x, [] {});
        network.Send(part_at(gx + 1, gy), self, halo_bytes_x, [] {});
      }
      if (gy + 1 < grid_y) {
        network.Send(self, part_at(gx, gy + 1), halo_bytes_y, [] {});
        network.Send(part_at(gx, gy + 1), self, halo_bytes_y, [] {});
      }
    }
  }
  simulator.Run();
  return simulator.now() - start;
}

SimTime AllToAll(net::Network& network, const std::vector<topo::ChipId>& chips,
                 Bytes per_pair_bytes) {
  std::vector<std::pair<topo::ChipId, topo::ChipId>> pairs;
  pairs.reserve(chips.size() * (chips.size() - 1));
  for (topo::ChipId src : chips) {
    for (topo::ChipId dst : chips) {
      if (src != dst) pairs.emplace_back(src, dst);
    }
  }
  return RunSends(network, pairs, per_pair_bytes);
}

SimTime CollectivePermute(
    net::Network& network,
    const std::vector<std::pair<topo::ChipId, topo::ChipId>>& pairs,
    Bytes bytes) {
  return RunSends(network, pairs, bytes);
}

}  // namespace tpu::coll
