#include "collectives/ring.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "collectives/payload_pool.h"
#include "common/bfloat16.h"
#include "common/check.h"
#include "common/math_util.h"
#include "sim/partitioned_simulator.h"
#include "sim/simulator.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::coll {
namespace {

// Contiguous chunk layout used by both reduce-scatter and all-gather: the
// range is divided into ring_size chunks of ceil(len / ring_size) elements
// (the last chunk may be short or empty).
Range ChunkOf(const Range& range, int ring_size, int chunk) {
  const std::int64_t base = CeilDiv(range.size(), ring_size);
  const std::int64_t begin = std::min(range.end, range.begin + chunk * base);
  const std::int64_t end = std::min(range.end, begin + base);
  return Range{begin, end};
}

// Splits a range into the two per-direction halves used by bidirectional
// rings. halves[0] travels clockwise (ring order as given), halves[1]
// counter-clockwise (ring order reversed).
std::pair<Range, Range> DirectionHalves(const Range& range) {
  const std::int64_t mid = range.begin + range.size() / 2;
  return {Range{range.begin, mid}, Range{mid, range.end}};
}

// Join-counter for the per-step rendezvous, owned by its own notifications:
// the last Notify fires the continuation and deletes the barrier. Callbacks
// capture it as a raw pointer (8 inline bytes, no refcount traffic), which is
// safe because every simulated message completes — even failed-link sends
// finish after their stall — so the notification count always reaches n.
// Under a causal observer the barrier registers as a join, so slack analysis
// sees which rank's transfer released each ring step.
class StepBarrier {
 public:
  StepBarrier(int expected, sim::Simulator::Callback on_all_done)
      : remaining_(expected), on_all_done_(std::move(on_all_done)) {
    TPU_CHECK_GT(expected, 0);
    if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
      join_ = observer->OnJoinOpen(expected);
    }
  }

  void Notify() {
    if (join_ >= 0) {
      if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
        observer->OnJoinNotify(join_);
      }
    }
    if (--remaining_ == 0) {
      on_all_done_();
      delete this;
    }
  }

 private:
  int remaining_;
  int join_ = -1;
  sim::Simulator::Callback on_all_done_;
};

// One direction of one ring executing reduce-scatter or all-gather over a
// contiguous payload sub-range. Steps are separated by a per-ring barrier:
// every rank finishes its step-s transfer before step s+1 starts, which is
// how the synchronous XLA ring collectives behave.
class RingPass : public std::enable_shared_from_this<RingPass> {
 public:
  enum class Kind { kReduceScatter, kAllGather };

  RingPass(net::Network* network, std::vector<topo::ChipId> order,
           std::vector<float*> data, Range range, Kind kind,
           const CollectiveOptions& options, sim::Simulator::Callback on_done)
      : network_(network),
        order_(std::move(order)),
        data_(std::move(data)),
        range_(range),
        kind_(kind),
        options_(options),
        on_done_(std::move(on_done)) {}

  void Start() {
    const int n = static_cast<int>(order_.size());
    if (n <= 1 || range_.size() == 0) {
      // Nothing to exchange; complete immediately.
      network_->simulator().Schedule(0.0, std::move(on_done_));
      return;
    }
    RunStep(0);
  }

 private:
  int n() const { return static_cast<int>(order_.size()); }

  int SendChunkIndex(int rank, int step) const {
    const int ring = n();
    if (kind_ == Kind::kReduceScatter) {
      return ((rank - step) % ring + ring) % ring;
    }
    // All-gather: rank starts owning chunk (rank+1) % n (the reduce-scatter
    // output) and forwards the chunk it most recently received.
    return ((rank + 1 - step) % ring + ring) % ring;
  }

  void RunStep(int step) {
    auto self = shared_from_this();
    // The barrier's continuation holds the shared_ptr that keeps this pass
    // alive until the step completes; the hot per-message callbacks hold only
    // the raw barrier pointer.
    StepBarrier* barrier = new StepBarrier(n(), [self, step] {
      if (step + 1 < self->n() - 1) {
        self->RunStep(step + 1);
      } else {
        self->on_done_();
      }
    });

    for (int rank = 0; rank < n(); ++rank) {
      const int next = (rank + 1) % n();
      const int chunk_index = SendChunkIndex(rank, step);
      const Range chunk = ChunkOf(range_, n(), chunk_index);
      const Bytes wire_bytes = chunk.size() * options_.wire_bytes_per_elem();

      // Time-only rings (no data pointers) complete with a bare barrier
      // notification — the capture is two pointers, stored inline in the
      // event. Data-carrying rings snapshot the outgoing values now (this
      // step's incoming data must not contaminate what we forward within the
      // same step) into a pooled buffer the callback owns.
      if (data_.empty() || chunk.size() == 0) {
        network_->Send(order_[rank], order_[next], wire_bytes,
                       [barrier] { barrier->Notify(); });
        continue;
      }
      PayloadPool::Handle payload = PayloadPool::ThisThread().Snapshot(
          data_[rank] + chunk.begin, data_[rank] + chunk.end);
      if (options_.bfloat16_wire) {
        float* p = payload.data();
        for (std::size_t i = 0; i < payload.size(); ++i) {
          p[i] = QuantizeToBFloat16(p[i]);
        }
      }
      float* const out = data_[next] + chunk.begin;
      if (kind_ == Kind::kReduceScatter) {
        network_->Send(order_[rank], order_[next], wire_bytes,
                       [barrier, payload = std::move(payload), out] {
                         const float* p = payload.data();
                         for (std::size_t i = 0; i < payload.size(); ++i) {
                           out[i] += p[i];
                         }
                         barrier->Notify();
                       });
      } else {
        network_->Send(order_[rank], order_[next], wire_bytes,
                       [barrier, payload = std::move(payload), out] {
                         std::copy(payload.data(),
                                   payload.data() + payload.size(), out);
                         barrier->Notify();
                       });
      }
    }
  }

  net::Network* network_;
  std::vector<topo::ChipId> order_;
  std::vector<float*> data_;
  Range range_;
  Kind kind_;
  CollectiveOptions options_;
  sim::Simulator::Callback on_done_;
};

// Builds the direction passes (one or two) for a ring and starts them;
// `on_done` fires when all passes complete.
void StartRing(net::Network& network, const RingSpec& spec,
               RingPass::Kind kind, const CollectiveOptions& options,
               sim::Simulator::Callback on_done) {
  TPU_CHECK(!spec.order.empty());
  if (spec.has_data()) {
    TPU_CHECK_EQ(spec.data.size(), spec.order.size());
  }
  TPU_CHECK_GE(spec.range.begin, 0);
  TPU_CHECK_GE(spec.range.size(), 0);

  // Rings within one collective phase overlap in time, so each gets an async
  // span (b/e pair keyed by a fresh id) on a shared track rather than a
  // nested B/E span. Purely observational: the schedule is unchanged.
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    const trace::TraceRecorder::TrackId track =
        recorder->Track("system", "rings");
    std::string name = spec.label.empty() ? "ring" : spec.label;
    name += kind == RingPass::Kind::kReduceScatter ? " reduce-scatter"
                                                   : " all-gather";
    const std::uint64_t async_id = recorder->NextAsyncId();
    sim::Simulator* simulator = &network.simulator();
    const SimTime begin = simulator->now();
    recorder->AsyncBegin(track, std::move(name), async_id, begin);
    on_done = [recorder, track, async_id, simulator, begin,
               done = std::move(on_done)]() mutable {
      const SimTime end = simulator->now();
      recorder->AsyncEnd(track, async_id, end);
      if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
        metrics->Histogram("coll.ring_us").Record(ToMicros(end - begin));
      }
      done();
    };
  }

  if (!options.bidirectional || spec.size() <= 2) {
    auto pass = std::make_shared<RingPass>(&network, spec.order, spec.data,
                                           spec.range, kind, options,
                                           std::move(on_done));
    pass->Start();
    return;
  }

  const auto [cw, ccw] = DirectionHalves(spec.range);
  auto barrier = std::make_shared<sim::Barrier>(
      2, [done = std::move(on_done)]() mutable { done(); });

  auto cw_pass = std::make_shared<RingPass>(
      &network, spec.order, spec.data, cw, kind, options,
      [barrier] { barrier->Notify(); });

  std::vector<topo::ChipId> reversed_order(spec.order.rbegin(),
                                           spec.order.rend());
  std::vector<float*> reversed_data(spec.data.rbegin(), spec.data.rend());
  auto ccw_pass = std::make_shared<RingPass>(
      &network, std::move(reversed_order), std::move(reversed_data), ccw, kind,
      options, [barrier] { barrier->Notify(); });

  cw_pass->Start();
  ccw_pass->Start();
}

// PDES fan-out: when a partitioned engine is installed on this thread and
// every ring in the phase is time-only and confined to a single pod, the
// phase runs on the engine's partition lanes instead of the global one. Each
// pod's rings start in that pod's lane context at the global lane's current
// instant (exactly when the serial run would start them inline), and each
// ring's completion is buffered with DeferJoinNotify so the engine releases
// the outer barrier on the global lane at the maximum per-ring finish time —
// the same instant the serial outer barrier would fire. Phases with data
// payloads, rings spanning pods, or an active trace recorder fall back to
// the serial path (returns false, `*on_done` untouched).
bool MaybeStartPartitioned(net::Network& network,
                           const std::vector<RingSpec>& rings,
                           RingPass::Kind kind, const CollectiveOptions& options,
                           std::function<void()>* on_done) {
  sim::PartitionedSimulator* engine = sim::CurrentEngine();
  if (engine == nullptr || sim::CurrentPartitionIndex() >= 0) return false;
  if (trace::CurrentTrace() != nullptr) return false;
  if (rings.empty()) return false;
  std::vector<std::vector<const RingSpec*>> by_pod(engine->partitions());
  for (const RingSpec& spec : rings) {
    if (spec.has_data() || spec.order.empty()) return false;
    if (!network.topology().SamePod(spec.order)) return false;
    const int pod = network.PodOf(spec.order.front());
    if (pod < 0 || pod >= engine->partitions()) return false;
    by_pod[pod].push_back(&spec);
  }

  auto outer = std::make_shared<sim::Barrier>(
      static_cast<int>(rings.size()),
      [done = std::move(*on_done)]() mutable { done(); });
  net::Network* net_ptr = &network;
  std::vector<std::function<void()>> starters(by_pod.size());
  for (std::size_t p = 0; p < by_pod.size(); ++p) {
    if (by_pod[p].empty()) continue;
    // Starters run synchronously inside FanOut (each under its lane's
    // execution context), so the RingSpec pointers into the caller's vector
    // stay valid — RingPass copies the spec contents immediately.
    starters[p] = [net_ptr, kind, options, outer, engine,
                   group = std::move(by_pod[p])] {
      for (const RingSpec* spec : group) {
        StartRing(*net_ptr, *spec, kind, options,
                  [engine, outer] { engine->DeferJoinNotify(outer); });
      }
    };
  }
  engine->FanOut(std::move(starters));
  return true;
}

SimTime RunRings(net::Network& network, const std::vector<RingSpec>& rings,
                 RingPass::Kind kind, const CollectiveOptions& options) {
  sim::Simulator& simulator = network.simulator();
  const SimTime start = simulator.now();
  auto outer =
      std::make_shared<sim::Barrier>(static_cast<int>(rings.size()), [] {});
  for (const RingSpec& spec : rings) {
    StartRing(network, spec, kind, options, [outer] { outer->Notify(); });
  }
  simulator.Run();
  return simulator.now() - start;
}

}  // namespace

Range ChunkOfRange(const Range& range, int parts, int index) {
  TPU_CHECK_GT(parts, 0);
  TPU_CHECK_GE(index, 0);
  TPU_CHECK_LT(index, parts);
  return ChunkOf(range, parts, index);
}

std::vector<Range> OwnedAfterReduceScatter(const Range& range, int ring_size,
                                           int rank,
                                           const CollectiveOptions& options) {
  TPU_CHECK_GT(ring_size, 0);
  TPU_CHECK_GE(rank, 0);
  TPU_CHECK_LT(rank, ring_size);
  if (ring_size == 1) return {range};
  if (!options.bidirectional || ring_size <= 2) {
    return {ChunkOf(range, ring_size, (rank + 1) % ring_size)};
  }
  const auto [cw, ccw] = DirectionHalves(range);
  // Clockwise pass: position == rank. Counter-clockwise pass: position is
  // mirrored, so rank owns chunk ((n-1-rank)+1) % n of the CCW half.
  std::vector<Range> owned;
  owned.push_back(ChunkOf(cw, ring_size, (rank + 1) % ring_size));
  owned.push_back(ChunkOf(ccw, ring_size, (ring_size - rank) % ring_size));
  return owned;
}

void StartReduceScatter(net::Network& network, std::vector<RingSpec> rings,
                        const CollectiveOptions& options,
                        std::function<void()> on_done) {
  if (MaybeStartPartitioned(network, rings, RingPass::Kind::kReduceScatter,
                            options, &on_done)) {
    return;
  }
  auto outer = std::make_shared<sim::Barrier>(
      static_cast<int>(rings.size()),
      [done = std::move(on_done)]() mutable { done(); });
  for (const RingSpec& spec : rings) {
    StartRing(network, spec, RingPass::Kind::kReduceScatter, options,
              [outer] { outer->Notify(); });
  }
}

void StartAllGather(net::Network& network, std::vector<RingSpec> rings,
                    const CollectiveOptions& options,
                    std::function<void()> on_done) {
  if (MaybeStartPartitioned(network, rings, RingPass::Kind::kAllGather,
                            options, &on_done)) {
    return;
  }
  auto outer = std::make_shared<sim::Barrier>(
      static_cast<int>(rings.size()),
      [done = std::move(on_done)]() mutable { done(); });
  for (const RingSpec& spec : rings) {
    StartRing(network, spec, RingPass::Kind::kAllGather, options,
              [outer] { outer->Notify(); });
  }
}

SimTime ReduceScatter(net::Network& network, std::vector<RingSpec> rings,
                      const CollectiveOptions& options) {
  return RunRings(network, rings, RingPass::Kind::kReduceScatter, options);
}

SimTime AllGather(net::Network& network, std::vector<RingSpec> rings,
                  const CollectiveOptions& options) {
  return RunRings(network, rings, RingPass::Kind::kAllGather, options);
}

SimTime AllReduce(net::Network& network, std::vector<RingSpec> rings,
                  const CollectiveOptions& options) {
  sim::Simulator& simulator = network.simulator();
  const SimTime start = simulator.now();
  auto outer =
      std::make_shared<sim::Barrier>(static_cast<int>(rings.size()), [] {});
  for (const RingSpec& spec : rings) {
    // Chain: reduce-scatter, then all-gather on the same ring. The copy of
    // `spec` kept by the lambda restarts the all-gather phase.
    net::Network* net_ptr = &network;
    StartRing(network, spec, RingPass::Kind::kReduceScatter, options,
              [net_ptr, spec, options, outer] {
                StartRing(*net_ptr, spec, RingPass::Kind::kAllGather, options,
                          [outer] { outer->Notify(); });
              });
  }
  simulator.Run();
  return simulator.now() - start;
}

}  // namespace tpu::coll
