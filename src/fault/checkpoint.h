// Checkpoint/restart cost model and expected-makespan ("goodput") math.
//
// Checkpoint write: every host drains its chips' weight shards over PCIe and
// ships them (with replication) over the datacenter network; hosts work in
// parallel, so the write time is per-host bytes over the slower of the two
// pipes, plus a small quiesce barrier. Restore pays the reverse path plus the
// framework re-initialization measured by frameworks::EstimateInitTime —
// Table 2's minutes-long TF init is exactly why restart cost dominates
// recovery at multipod scale.
//
// Expected end-to-end time under failures follows the classic first-order
// checkpoint model (Young '74 / Daly '06): useful work in intervals of tau,
// each followed by a write of delta; failures arrive Poisson with system
// MTBF M; each failure costs detection + restart R plus the partial interval
// redone. Small tau wastes time writing checkpoints, large tau wastes time
// re-executing lost work — the expected time is decreasing-then-increasing
// in tau with an interior optimum near Young's sqrt(2 * delta * M).
#pragma once

#include <vector>

#include "common/units.h"
#include "frameworks/runtime_model.h"
#include "models/model_specs.h"

namespace tpu::fault {

struct CheckpointConfig {
  // Device -> host readback, per host (4 chips share one host's PCIe).
  Bandwidth host_pcie_bandwidth = GBps(16.0);
  // Host -> durable storage over the datacenter network, per host.
  Bandwidth host_dcn_bandwidth = GBps(1.5);
  // Bytes written to storage per byte of state (durability replication).
  double storage_replication = 2.0;
  // Quiesce/barrier overhead to get a consistent cut of the weights.
  SimTime barrier_overhead = Millis(10);
  // Optimizer slot variables checkpointed alongside each weight (momentum,
  // LAMB/LARS norms...): bytes multiplier on the dense parameters.
  double optimizer_state_factor = 2.0;
};

// Bytes of training state a checkpoint must capture for `spec`: dense
// weights + optimizer slots (f32) + partitioned embedding tables.
Bytes TrainingStateBytes(const models::ModelSpec& spec,
                         const CheckpointConfig& config = {});

struct CheckpointCosts {
  Bytes state_bytes = 0;
  SimTime write_seconds = 0;    // one checkpoint write
  SimTime restore_seconds = 0;  // read back + redistribute (no re-init)
};

// State is sharded across hosts, so per-host bytes shrink with scale: at
// 4096 chips (1024 hosts) checkpointing is cheap, which is what makes short
// checkpoint intervals affordable exactly where MTBF is worst.
CheckpointCosts EstimateCheckpointCosts(const models::ModelSpec& spec,
                                        int num_hosts,
                                        const CheckpointConfig& config = {});

struct GoodputConfig {
  // System-level mean time between fatal failures. <= 0 or +inf means
  // failure-free: no failures can occur, no checkpoints are needed, and the
  // expected time degenerates *exactly* to the failure-free time.
  SimTime system_mtbf = 0;
  // Useful work between checkpoints (tau).
  SimTime checkpoint_interval = 0;
  SimTime checkpoint_write = 0;      // delta
  SimTime detection_latency = 0;     // health-monitor deadline
  SimTime restart_seconds = 0;       // restore + framework re-init
};

struct GoodputResult {
  SimTime base_seconds = 0;      // failure-free makespan
  SimTime expected_seconds = 0;  // expected makespan under failures
  double expected_failures = 0;  // expected fatal faults over the run
  SimTime checkpoint_overhead_seconds = 0;  // writes alone, failure-free

  // Fraction of the expected wall time that is useful training.
  double goodput() const {
    return expected_seconds > 0 ? base_seconds / expected_seconds : 1.0;
  }
};

// Daly's expected makespan: M * e^{R/M} * (e^{(tau+delta)/M} - 1) * base/tau,
// with R = detection + restart. Exact degeneration to `base_seconds` when
// the MTBF is non-finite (see GoodputConfig::system_mtbf).
GoodputResult ExpectedRunTime(SimTime base_seconds,
                              const GoodputConfig& config);

// Young's closed-form near-optimal interval sqrt(2 * delta * M).
SimTime YoungCheckpointInterval(SimTime checkpoint_write, SimTime system_mtbf);

struct IntervalSample {
  SimTime interval = 0;
  SimTime expected_seconds = 0;
};

// Expected makespan at each interval in `intervals` (the classic sweep).
std::vector<IntervalSample> SweepCheckpointInterval(
    SimTime base_seconds, const GoodputConfig& config,
    const std::vector<SimTime>& intervals);

// Numeric argmin of the expected makespan over [lo, hi] (golden-section on
// the unimodal Daly curve). Returns the optimal interval.
SimTime OptimalCheckpointInterval(SimTime base_seconds,
                                  const GoodputConfig& config, SimTime lo,
                                  SimTime hi);

// System MTBF from per-unit rates: failure rates add, so
// 1/M = chips/chip_mtbf + hosts/host_mtbf (terms with mtbf <= 0 drop out).
// Returns a value <= 0 when no fatal fault class is enabled (failure-free).
SimTime SystemMtbf(int num_chips, SimTime chip_mtbf, int num_hosts,
                   SimTime host_preemption_mtbf);

}  // namespace tpu::fault
