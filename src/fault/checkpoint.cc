#include "fault/checkpoint.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tpu::fault {
namespace {

bool FailureFree(SimTime mtbf) { return mtbf <= 0 || std::isinf(mtbf); }

}  // namespace

Bytes TrainingStateBytes(const models::ModelSpec& spec,
                         const CheckpointConfig& config) {
  const double dense =
      static_cast<double>(spec.parameters) * 4.0 *
      (1.0 + config.optimizer_state_factor);
  const double embedding = static_cast<double>(spec.embedding_parameters) * 4.0;
  return static_cast<Bytes>(dense + embedding);
}

CheckpointCosts EstimateCheckpointCosts(const models::ModelSpec& spec,
                                        int num_hosts,
                                        const CheckpointConfig& config) {
  TPU_CHECK_GT(num_hosts, 0);
  CheckpointCosts costs;
  costs.state_bytes = TrainingStateBytes(spec, config);
  const double per_host =
      static_cast<double>(costs.state_bytes) / num_hosts;
  // Readback and the replicated storage write pipeline; the slower pipe
  // bounds throughput.
  const SimTime pcie = per_host / config.host_pcie_bandwidth;
  const SimTime dcn =
      per_host * config.storage_replication / config.host_dcn_bandwidth;
  costs.write_seconds = std::max(pcie, dcn) + config.barrier_overhead;
  // Restore reads one replica back and pushes it over PCIe.
  costs.restore_seconds =
      std::max(per_host / config.host_dcn_bandwidth, pcie) +
      config.barrier_overhead;
  return costs;
}

GoodputResult ExpectedRunTime(SimTime base_seconds,
                              const GoodputConfig& config) {
  TPU_CHECK_GE(base_seconds, 0.0);
  GoodputResult result;
  result.base_seconds = base_seconds;
  if (FailureFree(config.system_mtbf) || base_seconds == 0) {
    // No failures can occur: checkpoints buy nothing, a rational runtime
    // writes none, and the makespan is exactly the failure-free time.
    result.expected_seconds = base_seconds;
    return result;
  }
  TPU_CHECK_GT(config.checkpoint_interval, 0.0)
      << "finite MTBF requires a checkpoint interval";
  const SimTime m = config.system_mtbf;
  const SimTime tau = config.checkpoint_interval;
  const SimTime delta = config.checkpoint_write;
  const SimTime r = config.detection_latency + config.restart_seconds;
  const double segments = base_seconds / tau;
  result.expected_seconds =
      m * std::exp(r / m) * std::expm1((tau + delta) / m) * segments;
  result.expected_failures = result.expected_seconds / m;
  result.checkpoint_overhead_seconds = segments * delta;
  return result;
}

SimTime YoungCheckpointInterval(SimTime checkpoint_write,
                                SimTime system_mtbf) {
  TPU_CHECK_GT(checkpoint_write, 0.0);
  TPU_CHECK_GT(system_mtbf, 0.0);
  return std::sqrt(2.0 * checkpoint_write * system_mtbf);
}

std::vector<IntervalSample> SweepCheckpointInterval(
    SimTime base_seconds, const GoodputConfig& config,
    const std::vector<SimTime>& intervals) {
  std::vector<IntervalSample> samples;
  samples.reserve(intervals.size());
  GoodputConfig point = config;
  for (const SimTime interval : intervals) {
    point.checkpoint_interval = interval;
    samples.push_back(
        {interval, ExpectedRunTime(base_seconds, point).expected_seconds});
  }
  return samples;
}

SimTime OptimalCheckpointInterval(SimTime base_seconds,
                                  const GoodputConfig& config, SimTime lo,
                                  SimTime hi) {
  TPU_CHECK_GT(lo, 0.0);
  TPU_CHECK_GT(hi, lo);
  const auto expected = [&](SimTime tau) {
    GoodputConfig point = config;
    point.checkpoint_interval = tau;
    return ExpectedRunTime(base_seconds, point).expected_seconds;
  };
  // Golden-section search; the Daly curve is unimodal in tau.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  SimTime a = lo, b = hi;
  SimTime c = b - phi * (b - a);
  SimTime d = a + phi * (b - a);
  SimTime fc = expected(c), fd = expected(d);
  for (int i = 0; i < 80 && (b - a) > 1e-9 * hi; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = expected(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = expected(d);
    }
  }
  return (a + b) / 2;
}

SimTime SystemMtbf(int num_chips, SimTime chip_mtbf, int num_hosts,
                   SimTime host_preemption_mtbf) {
  TPU_CHECK_GT(num_chips, 0);
  TPU_CHECK_GT(num_hosts, 0);
  double rate = 0;
  if (chip_mtbf > 0 && !std::isinf(chip_mtbf)) rate += num_chips / chip_mtbf;
  if (host_preemption_mtbf > 0 && !std::isinf(host_preemption_mtbf)) {
    rate += num_hosts / host_preemption_mtbf;
  }
  return rate > 0 ? 1.0 / rate : 0.0;
}

}  // namespace tpu::fault
