// Failure detection the way a real synchronous runtime does it: per
// collective-phase deadlines.
//
// A globally synchronous step cannot distinguish "slow" from "dead" except by
// time: the runtime knows how long a phase *should* take on a healthy
// interconnect (Network::EstimateArrival) and raises an alarm when the
// observed phase overruns a configurable multiple of that expectation. The
// monitor aggregates those observations against the injector's ground truth
// into the three quantities a recovery design needs: detection latency,
// false-positive rate, and missed faults.
#pragma once

#include "collectives/all_reduce.h"
#include "common/units.h"

namespace tpu::fault {

struct HealthMonitorConfig {
  // Deadline = max(deadline_multiple * expected, min_deadline). Multiples
  // below ~2 risk false positives on folded (mesh-dimension) rings, whose
  // two-edges-per-link contention the healthy estimate does not model.
  double deadline_multiple = 3.0;
  SimTime min_deadline = Micros(50);

  coll::PhaseDeadlineConfig ToPhaseDeadline() const {
    coll::PhaseDeadlineConfig deadline;
    deadline.multiple = deadline_multiple;
    deadline.min_deadline = min_deadline;
    return deadline;
  }
};

// One monitored phase, paired with the injector's ground truth.
struct PhaseObservation {
  SimTime start = 0;
  SimTime expected = 0;
  SimTime actual = 0;
  bool fault_active = false;  // was an injected fault live during the phase?
};

struct DetectionStats {
  int phases_observed = 0;
  int detections = 0;        // deadline exceeded (true or false)
  int true_detections = 0;   // exceeded while a fault was active
  int false_positives = 0;   // exceeded with no fault active
  int missed_faults = 0;     // fault active but the phase met its deadline
  SimTime total_detection_latency = 0;  // sum over detections of the deadline

  double false_positive_rate() const {
    return phases_observed > 0
               ? static_cast<double>(false_positives) / phases_observed
               : 0.0;
  }
  SimTime mean_detection_latency() const {
    return detections > 0 ? total_detection_latency / detections : 0.0;
  }
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorConfig config = {});

  const HealthMonitorConfig& config() const { return config_; }
  SimTime DeadlineFor(SimTime expected) const;

  // Scores one phase. Returns the detection time (start + deadline) when the
  // phase overran its deadline, -1 otherwise. Detection latency is the
  // deadline itself: the runtime learns of the fault that long after the
  // phase began, regardless of how much longer the stall actually lasts.
  SimTime Observe(const PhaseObservation& observation);

  // Feeds every monitored phase of a sequential 2-D summation result.
  // `fault_active` is the injector's ground truth for the whole summation.
  void ObserveSummation(const coll::GradientSummationResult& result,
                        bool fault_active);

  const DetectionStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DetectionStats{}; }

 private:
  HealthMonitorConfig config_;
  DetectionStats stats_;
};

}  // namespace tpu::fault
