// Deterministic, seeded fault injection for the multipod simulation.
//
// The paper's 4096-chip runs assume a dedicated, healthy machine: every step
// is a globally synchronous barrier, so a single flaky optical link, a
// preempted host or a dead chip stalls or kills the whole run. This module
// supplies the missing failure model: an MTBF-driven Poisson schedule of
// fault events over the simulated clock, applied to the Network's per-link
// state (DegradeLink / FailLink / RestoreLink). Everything is a pure function
// of (seed, topology, config, horizon) — same inputs, bit-identical schedule
// and simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "network/network.h"
#include "topology/topology.h"

namespace tpu::fault {

enum class FaultKind {
  kChipFailure,     // permanent: every link touching the chip fails
  kLinkFlap,        // transient: one directed link degrades, then heals
  kHostPreemption,  // transient: all links of the host's chips fail, then heal
  kSlowHost,        // transient straggler: the host's links degrade mildly
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkFlap;
  SimTime at = 0;        // injection time on the simulated clock
  SimTime duration = 0;  // healing delay; 0 = permanent
  topo::ChipId chip = -1;  // kChipFailure
  topo::LinkId link = -1;  // kLinkFlap
  topo::HostId host = -1;  // kHostPreemption / kSlowHost
  double degrade_factor = 1.0;  // kLinkFlap / kSlowHost

  SimTime heal_at() const { return duration > 0 ? at + duration : -1.0; }
  bool permanent() const { return duration <= 0; }
  bool ActiveAt(SimTime now) const {
    return now >= at && (permanent() || now < at + duration);
  }
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultModelConfig {
  std::uint64_t seed = 0;

  // Mean time between failures per unit (chip / directed link / host).
  // A rate of <= 0 disables that fault class.
  SimTime chip_mtbf = 0;             // permanent chip death
  SimTime link_flap_mtbf = 0;        // transient optical-link flap
  SimTime host_preemption_mtbf = 0;  // scheduler reclaims the host
  SimTime slow_host_mtbf = 0;        // thermally/os-noise slowed host

  // Transient-fault shapes.
  SimTime link_flap_mean_duration = Seconds(30);
  double link_flap_degrade_factor = 8.0;
  SimTime host_preemption_mean_duration = Seconds(120);
  SimTime slow_host_mean_duration = Seconds(300);
  double slow_host_degrade_factor = 2.0;

  bool any_enabled() const {
    return chip_mtbf > 0 || link_flap_mtbf > 0 || host_preemption_mtbf > 0 ||
           slow_host_mtbf > 0;
  }
};

// Samples the fault schedule over [0, horizon): per unit, exponential
// inter-arrival times at the configured MTBF (chip failures keep only the
// first arrival — the chip stays dead). Events are sorted by (time, kind,
// unit id), and each unit draws from its own seed-derived RNG stream, so the
// schedule is independent of iteration order and bit-reproducible.
std::vector<FaultEvent> GenerateFaultSchedule(const topo::MeshTopology& topo,
                                              const FaultModelConfig& config,
                                              SimTime horizon);

// Binds a fault schedule to a live Network: Arm() schedules every event (and
// its healing) on the network's simulator clock, so faults fire while a
// collective is in flight — exactly the mid-phase stall a HealthMonitor's
// deadlines are meant to catch.
// Transient heals release exactly what their fault applied (the network's
// depth-counted / per-source link state), so overlapping schedules on the
// same link compose in any order. The injector must outlive the simulator
// run it armed: heal events capture `this` for accounting and observer
// callbacks.
class FaultInjector {
 public:
  using EventHook = std::function<void(const FaultEvent&)>;

  FaultInjector(net::Network* network, const FaultModelConfig& config);

  // Generates the schedule over [0, horizon) and schedules each event.
  // Returns the number of events armed.
  int Arm(SimTime horizon);

  // Arms a hand-written schedule (e.g. a canonical recovery scenario)
  // instead of a generated one. Events fire at now() + event.at in the given
  // order. Returns the number of events armed.
  int ArmScripted(const std::vector<FaultEvent>& schedule);

  // Applies one event to the network now, scheduling its healing if the
  // event is transient. Exposed so tests can inject hand-written faults.
  void Apply(const FaultEvent& event);

  // Observers for a recovery controller: `on_apply` fires right after an
  // event's link-state change lands, `on_heal` right after a transient
  // event's heal releases it. Both run on the simulated clock.
  void set_on_apply(EventHook hook) { on_apply_ = std::move(hook); }
  void set_on_heal(EventHook hook) { on_heal_ = std::move(hook); }

  // Every event applied so far (armed events appear once they fire).
  const std::vector<FaultEvent>& injected() const { return injected_; }
  // Schedule produced by the last Arm()/ArmScripted() call, in firing order.
  const std::vector<FaultEvent>& schedule() const { return schedule_; }

  // Ground truth for detector accounting: was any injected fault active
  // (i.e. its links still degraded/failed) during [begin, end)?
  bool AnyFaultActiveIn(SimTime begin, SimTime end) const;
  // Rect-scoped variant: only faults observable from inside `rect` count. A
  // per-job HealthMonitor on a carved slice uses this as its ground truth —
  // faults entirely outside the slice are invisible to it.
  bool AnyFaultActiveIn(SimTime begin, SimTime end,
                        const topo::SubmeshRect& rect) const;
  int permanent_failures() const;
  // Injected events whose heal has not fired yet, per kind.
  int active_count(FaultKind kind) const {
    return active_[static_cast<int>(kind)];
  }

  // The directed links a chip-level or host-level fault touches.
  std::vector<topo::LinkId> LinksOfChip(topo::ChipId chip) const;
  std::vector<topo::LinkId> LinksOfHost(topo::HostId host) const;
  // The directed links `event` fails or degrades when applied: the chip's
  // links for kChipFailure, the single flapped link for kLinkFlap, and the
  // host's chips' links for host-level faults.
  std::vector<topo::LinkId> LinksOfEvent(const FaultEvent& event) const;
  // True when the event's effect is observable from inside `rect`: a dead
  // chip inside the rect, or any affected directed link with at least one
  // endpoint inside. This deliberately includes faults that merely *cross*
  // the rect boundary — a dead cross-pod cable is shared hardware, visible
  // to every slice it borders at once.
  bool EventTouchesRect(const FaultEvent& event,
                        const topo::SubmeshRect& rect) const;

 private:
  void ScheduleHeal(const FaultEvent& event, std::vector<topo::LinkId> links);
  void SetActiveGauge(FaultKind kind) const;

  net::Network* network_;
  FaultModelConfig config_;
  std::vector<FaultEvent> schedule_;
  std::vector<FaultEvent> injected_;
  int active_[4] = {0, 0, 0, 0};  // indexed by FaultKind
  EventHook on_apply_;
  EventHook on_heal_;
};

}  // namespace tpu::fault
