#include "fault/health_monitor.h"

#include "common/check.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::fault {

HealthMonitor::HealthMonitor(HealthMonitorConfig config) : config_(config) {
  TPU_CHECK_GT(config_.deadline_multiple, 0.0);
  TPU_CHECK_GE(config_.min_deadline, 0.0);
}

SimTime HealthMonitor::DeadlineFor(SimTime expected) const {
  return config_.ToPhaseDeadline().DeadlineFor(expected);
}

SimTime HealthMonitor::Observe(const PhaseObservation& observation) {
  const SimTime deadline = DeadlineFor(observation.expected);
  const bool detected = observation.actual > deadline;
  ++stats_.phases_observed;
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter("health.phases_observed").Add(1);
    metrics->Histogram("health.phase_actual_us")
        .Record(ToMicros(observation.actual));
  }
  if (detected) {
    ++stats_.detections;
    stats_.total_detection_latency += deadline;
    if (observation.fault_active) {
      ++stats_.true_detections;
    } else {
      ++stats_.false_positives;
    }
    // The detection fires on the timeline at start + deadline — the moment
    // the runtime's watchdog would have raised the alarm.
    if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
      recorder->Instant(recorder->Track("system", "faults"),
                        observation.fault_active ? "detected fault"
                                                 : "false positive",
                        observation.start + deadline);
    }
    if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
      metrics->Counter(observation.fault_active ? "health.true_detections"
                                                : "health.false_positives")
          .Add(1);
      metrics->Histogram("health.detection_latency_us")
          .Record(ToMicros(deadline));
      // The fault.* view pairs with the injector's fault.injected.* /
      // fault.active.* series: total alarms raised and the latency
      // distribution (p50/p95/p99 in the registry dump) a recovery
      // controller reacts to.
      metrics->Counter("fault.detections").Add(1);
      metrics->Histogram("fault.detection_latency_us")
          .Record(ToMicros(deadline));
    }
    return observation.start + deadline;
  }
  if (observation.fault_active) {
    ++stats_.missed_faults;
    if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
      metrics->Counter("health.missed_faults").Add(1);
    }
  }
  return -1.0;
}

void HealthMonitor::ObserveSummation(
    const coll::GradientSummationResult& result, bool fault_active) {
  for (const coll::PhaseTiming& phase : result.phases) {
    PhaseObservation observation;
    observation.start = phase.start;
    observation.expected = phase.expected;
    observation.actual = phase.actual;
    observation.fault_active = fault_active;
    Observe(observation);
  }
}

}  // namespace tpu::fault
