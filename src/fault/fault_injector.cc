#include "fault/fault_injector.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "common/check.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::fault {
namespace {

// Seed-derived stream per (fault class, unit index): SplitMix64-style mixing
// so neighboring units get uncorrelated streams regardless of how many units
// each class has.
std::uint64_t UnitSeed(std::uint64_t seed, FaultKind kind, std::int64_t unit) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(kind) + 1));
  x ^= 0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(unit + 1);
  return x;
}

// Poisson arrivals for one unit over [0, horizon). `first_only` models
// permanent faults (the unit cannot fail twice).
void AppendArrivals(FaultKind kind, std::int64_t unit, SimTime mtbf,
                    SimTime horizon, std::uint64_t seed, bool first_only,
                    const std::function<FaultEvent(SimTime, Rng&)>& make,
                    std::vector<FaultEvent>* out) {
  if (mtbf <= 0) return;
  Rng rng(UnitSeed(seed, kind, unit));
  SimTime t = rng.NextExponential(mtbf);
  while (t < horizon) {
    out->push_back(make(t, rng));
    if (first_only) break;
    t += rng.NextExponential(mtbf);
  }
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kChipFailure:
      return "chip-failure";
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kHostPreemption:
      return "host-preemption";
    case FaultKind::kSlowHost:
      return "slow-host";
  }
  return "unknown";
}

std::vector<FaultEvent> GenerateFaultSchedule(const topo::MeshTopology& topo,
                                              const FaultModelConfig& config,
                                              SimTime horizon) {
  TPU_CHECK_GE(horizon, 0.0);
  std::vector<FaultEvent> events;

  for (topo::ChipId chip = 0; chip < topo.num_chips(); ++chip) {
    AppendArrivals(FaultKind::kChipFailure, chip, config.chip_mtbf, horizon,
                   config.seed, /*first_only=*/true,
                   [&](SimTime t, Rng&) {
                     FaultEvent e;
                     e.kind = FaultKind::kChipFailure;
                     e.at = t;
                     e.chip = chip;
                     return e;
                   },
                   &events);
  }
  for (std::size_t link = 0; link < topo.links().size(); ++link) {
    AppendArrivals(
        FaultKind::kLinkFlap, static_cast<std::int64_t>(link),
        config.link_flap_mtbf, horizon, config.seed, /*first_only=*/false,
        [&](SimTime t, Rng& rng) {
          FaultEvent e;
          e.kind = FaultKind::kLinkFlap;
          e.at = t;
          e.link = static_cast<topo::LinkId>(link);
          e.duration = rng.NextExponential(config.link_flap_mean_duration);
          e.degrade_factor = config.link_flap_degrade_factor;
          return e;
        },
        &events);
  }
  for (topo::HostId host = 0; host < topo.num_hosts(); ++host) {
    AppendArrivals(
        FaultKind::kHostPreemption, host, config.host_preemption_mtbf, horizon,
        config.seed, /*first_only=*/false,
        [&](SimTime t, Rng& rng) {
          FaultEvent e;
          e.kind = FaultKind::kHostPreemption;
          e.at = t;
          e.host = host;
          e.duration =
              rng.NextExponential(config.host_preemption_mean_duration);
          return e;
        },
        &events);
    AppendArrivals(
        FaultKind::kSlowHost, host, config.slow_host_mtbf, horizon,
        config.seed, /*first_only=*/false,
        [&](SimTime t, Rng& rng) {
          FaultEvent e;
          e.kind = FaultKind::kSlowHost;
          e.at = t;
          e.host = host;
          e.duration = rng.NextExponential(config.slow_host_mean_duration);
          e.degrade_factor = config.slow_host_degrade_factor;
          return e;
        },
        &events);
  }

  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.chip != b.chip) return a.chip < b.chip;
              if (a.link != b.link) return a.link < b.link;
              return a.host < b.host;
            });
  return events;
}

FaultInjector::FaultInjector(net::Network* network,
                             const FaultModelConfig& config)
    : network_(network), config_(config) {
  TPU_CHECK(network != nullptr);
}

std::vector<topo::LinkId> FaultInjector::LinksOfChip(topo::ChipId chip) const {
  std::vector<topo::LinkId> links;
  for (const topo::Link& link : network_->topology().links()) {
    if (link.from == chip || link.to == chip) links.push_back(link.id);
  }
  return links;
}

std::vector<topo::LinkId> FaultInjector::LinksOfHost(topo::HostId host) const {
  std::vector<topo::LinkId> links;
  const std::vector<topo::ChipId> chips =
      network_->topology().ChipsOfHost(host);
  for (const topo::Link& link : network_->topology().links()) {
    for (const topo::ChipId chip : chips) {
      if (link.from == chip || link.to == chip) {
        links.push_back(link.id);
        break;
      }
    }
  }
  return links;
}

void FaultInjector::SetActiveGauge(FaultKind kind) const {
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Gauge(std::string("fault.active.") + FaultKindName(kind))
        .Set(active_[static_cast<int>(kind)]);
  }
}

void FaultInjector::ScheduleHeal(const FaultEvent& event,
                                 std::vector<topo::LinkId> links) {
  if (event.duration <= 0) return;
  // The heal releases exactly what the fault applied — depth-counted fails
  // and per-source degradations — so overlapping faults on the same link
  // compose in any order: the link stays broken until every live fault
  // touching it has healed, and a heal can never resurrect a link a later
  // (or permanent) fault still holds down.
  network_->simulator().Schedule(
      event.duration, [this, event, links = std::move(links)] {
        switch (event.kind) {
          case FaultKind::kChipFailure:
            break;  // permanent: never scheduled
          case FaultKind::kLinkFlap:
            network_->ReleaseDegradedLink(event.link, event.degrade_factor);
            break;
          case FaultKind::kHostPreemption:
            for (const topo::LinkId link : links) {
              network_->ReleaseFailedLink(link);
            }
            break;
          case FaultKind::kSlowHost:
            for (const topo::LinkId link : links) {
              network_->ReleaseDegradedLink(link, event.degrade_factor);
            }
            break;
        }
        --active_[static_cast<int>(event.kind)];
        SetActiveGauge(event.kind);
        if (on_heal_) on_heal_(event);
      });
}

void FaultInjector::Apply(const FaultEvent& event) {
  sim::Simulator& simulator = network_->simulator();
  switch (event.kind) {
    case FaultKind::kChipFailure: {
      TPU_CHECK_GE(event.chip, 0);
      for (const topo::LinkId link : LinksOfChip(event.chip)) {
        network_->FailLink(link);
      }
      break;
    }
    case FaultKind::kLinkFlap: {
      TPU_CHECK_GE(event.link, 0);
      network_->DegradeLink(event.link, event.degrade_factor);
      ScheduleHeal(event, {event.link});
      break;
    }
    case FaultKind::kHostPreemption: {
      TPU_CHECK_GE(event.host, 0);
      std::vector<topo::LinkId> links = LinksOfHost(event.host);
      for (const topo::LinkId link : links) network_->FailLink(link);
      ScheduleHeal(event, std::move(links));
      break;
    }
    case FaultKind::kSlowHost: {
      TPU_CHECK_GE(event.host, 0);
      std::vector<topo::LinkId> links = LinksOfHost(event.host);
      for (const topo::LinkId link : links) {
        network_->DegradeLink(link, event.degrade_factor);
      }
      ScheduleHeal(event, std::move(links));
      break;
    }
  }
  injected_.push_back(event);
  ++active_[static_cast<int>(event.kind)];
  SetActiveGauge(event.kind);

  // Fault injections show on the timeline as instant events on a shared
  // "faults" track, named by class and unit (e.g. "link-flap link=42").
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    char name[64];
    if (event.kind == FaultKind::kChipFailure) {
      std::snprintf(name, sizeof(name), "chip-failure chip=%d", event.chip);
    } else if (event.kind == FaultKind::kLinkFlap) {
      std::snprintf(name, sizeof(name), "link-flap link=%d x%.0f %.3gms",
                    event.link, event.degrade_factor,
                    ToMillis(event.duration));
    } else {
      std::snprintf(name, sizeof(name), "%s host=%d %.3gms",
                    FaultKindName(event.kind), event.host,
                    ToMillis(event.duration));
    }
    recorder->Instant(recorder->Track("system", "faults"), name,
                      simulator.now());
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter(std::string("fault.injected.") + FaultKindName(event.kind))
        .Add(1);
  }
  if (on_apply_) on_apply_(event);
}

int FaultInjector::Arm(SimTime horizon) {
  schedule_ = GenerateFaultSchedule(network_->topology(), config_, horizon);
  sim::Simulator& simulator = network_->simulator();
  for (const FaultEvent& event : schedule_) {
    simulator.ScheduleAt(simulator.now() + event.at,
                         [this, event] { Apply(event); });
  }
  return static_cast<int>(schedule_.size());
}

int FaultInjector::ArmScripted(const std::vector<FaultEvent>& schedule) {
  schedule_ = schedule;
  sim::Simulator& simulator = network_->simulator();
  for (const FaultEvent& event : schedule_) {
    simulator.ScheduleAt(simulator.now() + event.at,
                         [this, event] { Apply(event); });
  }
  return static_cast<int>(schedule_.size());
}

bool FaultInjector::AnyFaultActiveIn(SimTime begin, SimTime end) const {
  for (const FaultEvent& event : injected_) {
    const SimTime fault_end =
        event.permanent() ? end : std::min(end, event.at + event.duration);
    if (event.at < end && fault_end > begin) return true;
  }
  return false;
}

std::vector<topo::LinkId> FaultInjector::LinksOfEvent(
    const FaultEvent& event) const {
  switch (event.kind) {
    case FaultKind::kChipFailure:
      return LinksOfChip(event.chip);
    case FaultKind::kLinkFlap:
      return {event.link};
    case FaultKind::kHostPreemption:
    case FaultKind::kSlowHost:
      return LinksOfHost(event.host);
  }
  return {};
}

bool FaultInjector::EventTouchesRect(const FaultEvent& event,
                                     const topo::SubmeshRect& rect) const {
  const topo::MeshTopology& topo = network_->topology();
  if (event.kind == FaultKind::kChipFailure &&
      rect.Contains(topo.CoordOf(event.chip))) {
    return true;
  }
  for (const topo::LinkId id : LinksOfEvent(event)) {
    const topo::Link& link = topo.links()[id];
    if (rect.Contains(topo.CoordOf(link.from)) ||
        rect.Contains(topo.CoordOf(link.to))) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::AnyFaultActiveIn(SimTime begin, SimTime end,
                                     const topo::SubmeshRect& rect) const {
  for (const FaultEvent& event : injected_) {
    const SimTime fault_end =
        event.permanent() ? end : std::min(end, event.at + event.duration);
    if (event.at < end && fault_end > begin && EventTouchesRect(event, rect)) {
      return true;
    }
  }
  return false;
}

int FaultInjector::permanent_failures() const {
  int count = 0;
  for (const FaultEvent& event : injected_) {
    count += event.kind == FaultKind::kChipFailure ? 1 : 0;
  }
  return count;
}

}  // namespace tpu::fault
