// GPU cluster baseline for the cross-vendor comparisons (Figures 10, 11).
//
// Models an NVIDIA-style cluster: islands of 8 GPUs with all-to-all NVLink
// inside a node, and a ring all-reduce across nodes over InfiniBand rails
// (the NCCL hierarchical schedule). The structural difference from the TPU
// multipod — a very fast small island feeding a much slower inter-node
// fabric with O(nodes) latency — is what produces the different scaling
// regime Figure 11 exhibits.
//
// Published MLPerf v0.7 NVIDIA submissions are carried as constants for the
// absolute-time bars of Figure 10 (approximate transcriptions; see
// EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "models/model_specs.h"

namespace tpu::telemetry {
class TimeSeriesSampler;
}  // namespace tpu::telemetry

namespace tpu::gpu {

struct GpuSystemConfig {
  std::string name = "A100";
  int gpus_per_node = 8;
  double peak_flops = 312e12;          // A100 bf16 dense
  double peak_fraction = 0.45;         // achievable fraction at large batch
  double batch_half_saturation = 16;   // per-GPU batch where util halves
  Bandwidth nvlink_bandwidth = GBps(300);  // per GPU, intra-node
  SimTime nvlink_latency = Micros(2.0);
  Bandwidth ib_bandwidth_per_gpu = GBps(25);  // per-GPU IB rail share
  SimTime ib_latency = Micros(5.0);
  SimTime step_launch_overhead = Micros(30);  // kernel launch / NCCL setup

  static GpuSystemConfig A100();
  static GpuSystemConfig V100();
};

// Hierarchical all-reduce: intra-node reduce-scatter (NVLink), inter-node
// ring over the per-GPU IB rails on the 1/8 shards, intra-node all-gather.
SimTime GpuAllReduceSeconds(const GpuSystemConfig& config, int num_gpus,
                            Bytes payload_bytes);

struct GpuStepBreakdown {
  SimTime compute = 0;
  SimTime allreduce = 0;
  SimTime embedding_comm = 0;  // DLRM partitioned-table all-to-all over IB
  SimTime step() const { return compute + allreduce + embedding_comm; }
};

// Per-step time of a data-parallel model on `num_gpus`.
GpuStepBreakdown GpuStepTime(const GpuSystemConfig& config,
                             const models::ModelSpec& spec, int num_gpus,
                             std::int64_t global_batch);

// End-to-end training minutes: steps-to-converge x step time plus the same
// evaluation-schedule overheads the TPU model carries (so the cross-vendor
// comparison is apples-to-apples).
double GpuEndToEndMinutes(const GpuSystemConfig& config,
                          const models::ModelSpec& spec, int num_gpus,
                          std::int64_t global_batch);

// Wires the GPU backend's first time-series signal into the telemetry
// sampler: probe "gpu.step_rate" — examples/second of a data-parallel run
// at the given shape, global_batch / GpuStepTime(...).step(). The value is
// a pure function of the (constant) inputs, so the series is flat today;
// the probe exists so the cross-backend planner work samples TPU and GPU
// backends through one pipeline. Config and spec must outlive the
// sampler's run.
void RegisterGpuStepRateProbe(telemetry::TimeSeriesSampler& sampler,
                              const GpuSystemConfig& config,
                              const models::ModelSpec& spec, int num_gpus,
                              std::int64_t global_batch);

// Published MLPerf v0.7 NVIDIA results (approximate, minutes).
struct PublishedGpuResult {
  std::string system;  // "A100" or "V100"
  int accelerators = 0;
  double minutes = 0;
};
std::vector<PublishedGpuResult> NvidiaV07Results(models::Benchmark benchmark);

}  // namespace tpu::gpu
