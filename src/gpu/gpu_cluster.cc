#include "gpu/gpu_cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "telemetry/sampler.h"
#include "trace/metrics.h"

namespace tpu::gpu {

GpuSystemConfig GpuSystemConfig::A100() { return GpuSystemConfig{}; }

GpuSystemConfig GpuSystemConfig::V100() {
  GpuSystemConfig config;
  config.name = "V100";
  config.peak_flops = 125e12;  // fp16 tensor cores
  config.peak_fraction = 0.40;
  config.nvlink_bandwidth = GBps(150);
  config.ib_bandwidth_per_gpu = GBps(12.5);
  return config;
}

SimTime GpuAllReduceSeconds(const GpuSystemConfig& config, int num_gpus,
                            Bytes payload_bytes) {
  TPU_CHECK_GT(num_gpus, 0);
  const double payload = static_cast<double>(payload_bytes);
  const int g = std::min(num_gpus, config.gpus_per_node);

  // Intra-node reduce-scatter + all-gather over NVLink.
  SimTime intra = 0;
  if (g > 1) {
    intra = 2.0 * payload * (g - 1) / g / config.nvlink_bandwidth +
            2.0 * (g - 1) * config.nvlink_latency;
  }
  // Inter-node ring on the 1/g shards, one ring per GPU rail.
  const int nodes = (num_gpus + config.gpus_per_node - 1) /
                    config.gpus_per_node;
  SimTime inter = 0;
  if (nodes > 1) {
    const double shard = payload / g;
    inter = 2.0 * shard * (nodes - 1) / nodes / config.ib_bandwidth_per_gpu +
            2.0 * (nodes - 1) * config.ib_latency;
  }
  return intra + inter + config.step_launch_overhead;
}

GpuStepBreakdown GpuStepTime(const GpuSystemConfig& config,
                             const models::ModelSpec& spec, int num_gpus,
                             std::int64_t global_batch) {
  TPU_CHECK_GT(num_gpus, 0);
  GpuStepBreakdown step;
  const double per_gpu_batch =
      static_cast<double>(global_batch) / num_gpus;
  const double utilization =
      config.peak_fraction * per_gpu_batch /
      (per_gpu_batch + config.batch_half_saturation);
  step.compute = spec.flops_per_example * per_gpu_batch /
                     (config.peak_flops * std::max(utilization, 1e-3)) +
                 config.step_launch_overhead;
  step.allreduce =
      GpuAllReduceSeconds(config, num_gpus, spec.gradient_elements() * 2);
  if (spec.embedding_parameters > 0) {
    // Partitioned embedding tables: per-step all-to-all of activations and
    // gradients crosses the IB fabric (NVLink islands only help 1/nodes of
    // the traffic).
    const double bytes =
        static_cast<double>(global_batch) * 26 * 128 * 4 * 2;
    const double fabric =
        static_cast<double>(num_gpus) * config.ib_bandwidth_per_gpu;
    step.embedding_comm = bytes / 2 / fabric + config.ib_latency * 8;
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    // The GPU baseline is analytic (no simulator run to export from), so the
    // step estimate itself is the observable: gauges under gpu.<system>.*
    // land next to the simulated multipod.* metrics in the same dump.
    const std::string prefix = "gpu." + config.name + ".";
    metrics->Gauge(prefix + "compute_seconds").Set(step.compute);
    metrics->Gauge(prefix + "allreduce_seconds").Set(step.allreduce);
    if (spec.embedding_parameters > 0) {
      metrics->Gauge(prefix + "embedding_comm_seconds")
          .Set(step.embedding_comm);
    }
    metrics->Gauge(prefix + "step_seconds").Set(step.step());
    metrics->Gauge(prefix + "utilization").Set(utilization);
    metrics->Gauge(prefix + "max_gpus").Max(static_cast<double>(num_gpus));
    metrics->Counter(prefix + "step_estimates").Add(1);
  }
  return step;
}

double GpuEndToEndMinutes(const GpuSystemConfig& config,
                          const models::ModelSpec& spec, int num_gpus,
                          std::int64_t global_batch) {
  const std::int64_t steps = spec.StepsToConverge(global_batch);
  const GpuStepBreakdown step = GpuStepTime(config, spec, num_gpus,
                                            global_batch);
  // Evaluation schedule, mirroring the TPU model: ~every 4 epochs (20 fixed
  // points for DLRM), with per-eval forward passes and loop overhead.
  const double epochs = spec.EpochsToConverge(global_batch);
  const int num_evals = spec.embedding_parameters > 0
                            ? 20
                            : std::max(5, static_cast<int>(epochs / 4.0));
  const double cluster_flops =
      config.peak_flops * config.peak_fraction * num_gpus;
  const SimTime eval_seconds =
      num_evals * (spec.eval_examples * spec.eval_flops_per_example /
                       cluster_flops +
                   Millis(500));
  return ToMinutes(steps * step.step() + eval_seconds);
}

std::vector<PublishedGpuResult> NvidiaV07Results(models::Benchmark benchmark) {
  // Approximate transcriptions of NVIDIA's MLPerf v0.7 "Available On-prem"
  // submissions (A100 Selene / V100 DGX SuperPOD), in minutes.
  switch (benchmark) {
    case models::Benchmark::kResNet50:
      return {{"A100", 1536, 0.83}, {"V100", 1536, 1.93}};
    case models::Benchmark::kBert:
      return {{"A100", 2048, 0.81}, {"V100", 1472, 3.36}};
    case models::Benchmark::kSsd:
      return {{"A100", 1024, 0.82}, {"V100", 1024, 2.67}};
    case models::Benchmark::kTransformer:
      return {{"A100", 480, 1.02}, {"V100", 480, 1.90}};
    case models::Benchmark::kMaskRcnn:
      return {{"A100", 256, 10.46}, {"V100", 192, 18.5}};
    case models::Benchmark::kDlrm:
      return {{"A100", 16, 3.33}, {"V100", 16, 4.4}};
  }
  return {};
}

void RegisterGpuStepRateProbe(telemetry::TimeSeriesSampler& sampler,
                              const GpuSystemConfig& config,
                              const models::ModelSpec& spec, int num_gpus,
                              std::int64_t global_batch) {
  const GpuSystemConfig* cfg = &config;
  const models::ModelSpec* model = &spec;
  sampler.RegisterProbe("gpu.step_rate", [cfg, model, num_gpus, global_batch] {
    const SimTime step = GpuStepTime(*cfg, *model, num_gpus, global_batch).step();
    return step > 0 ? static_cast<double>(global_batch) / step : 0.0;
  });
}

}  // namespace tpu::gpu
