#include "input/host_pipeline.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::input {

HostPipelineStats SimulateHostPipeline(const HostPipelineConfig& config,
                                       std::uint64_t seed) {
  TPU_CHECK_GT(config.num_hosts, 0);
  TPU_CHECK_GT(config.threads_per_host, 0);
  TPU_CHECK_GT(config.steps, 0);
  TPU_CHECK_GT(config.prefetch_capacity, 0);
  Rng rng(seed);

  // Persistent per-host slowness from shard composition.
  std::vector<double> host_multiplier(config.num_hosts, 1.0);
  if (!config.uncompressed_cache) {
    for (double& m : host_multiplier) {
      m = 1.0 + config.host_skew_coef *
                    (rng.NextPareto(1.0, config.host_skew_alpha) - 1.0);
    }
  }

  // Per-host production schedule. A host's workers produce batch b starting
  // when the previous batch finished, but no earlier than allowed by the
  // prefetch buffer (the device must have consumed batch b - capacity).
  // available[h][b] = when host h's batch b is in the prefetch buffer.
  const int total_batches = config.steps;
  std::vector<std::vector<SimTime>> available(
      config.num_hosts, std::vector<SimTime>(total_batches));
  std::vector<SimTime> produce_free(config.num_hosts, 0.0);
  HostPipelineStats stats;

  // Batch production time: per-image cost divided over the worker threads.
  // The prefetch queue decouples production latency from consumption, so a
  // host is throughput-bound (total work / threads), not bound by its
  // slowest single image; the slowest image is tracked for reporting.
  auto batch_cost = [&](Rng& r, double multiplier) {
    SimTime total = 0;
    for (int i = 0; i < config.per_host_batch; ++i) {
      SimTime cost = config.light_prep;
      if (!config.uncompressed_cache) {
        cost += multiplier *
                r.NextPareto(config.decode_scale, config.decode_alpha);
      }
      total += cost;
    }
    return total / config.threads_per_host;
  };

  // Pass 1: unconstrained production times (buffer constraint applied in the
  // device loop below, interleaved, because consumption times feed back).
  // Observability only: the pipeline model is analytic (no event queue), so
  // spans are emitted directly from the computed schedule.
  trace::TraceRecorder* recorder = trace::CurrentTrace();
  trace::MetricsRegistry* metrics = trace::CurrentMetrics();
  const trace::TraceRecorder::TrackId input_track =
      recorder != nullptr ? recorder->Track("system", "host-input") : 0;

  std::vector<std::vector<SimTime>> cost(config.num_hosts,
                                         std::vector<SimTime>(total_batches));
  for (int h = 0; h < config.num_hosts; ++h) {
    for (int b = 0; b < total_batches; ++b) {
      cost[h][b] = batch_cost(rng, host_multiplier[h]);
      stats.worst_batch_seconds = std::max(stats.worst_batch_seconds,
                                           cost[h][b]);
      if (metrics != nullptr) {
        metrics->Histogram("input.batch_cost_us").Record(ToMicros(cost[h][b]));
      }
    }
  }

  // Device loop: step s consumes batch s from every host simultaneously
  // (synchronous training). consumed[b] = time batch b was consumed.
  std::vector<SimTime> consumed(total_batches, 0.0);
  SimTime device_time = 0;
  for (int s = 0; s < total_batches; ++s) {
    SimTime ready = 0;
    for (int h = 0; h < config.num_hosts; ++h) {
      // Host h produces batch s as soon as its pipeline and the prefetch
      // buffer allow.
      SimTime start = produce_free[h];
      if (s >= config.prefetch_capacity) {
        start = std::max(start, consumed[s - config.prefetch_capacity]);
      }
      const SimTime done = start + cost[h][s];
      produce_free[h] = done;
      available[h][s] = done;
      ready = std::max(ready, done);
    }
    const SimTime step_start = std::max(device_time, ready);
    stats.total_stall += step_start - device_time;
    if (recorder != nullptr) {
      if (step_start > device_time) {
        recorder->Complete(input_track, "input-wait", device_time, step_start);
      }
      recorder->Complete(input_track, "device-step", step_start,
                         step_start + config.device_step);
    }
    if (metrics != nullptr) {
      metrics->Histogram("input.step_stall_us")
          .Record(ToMicros(step_start - device_time));
    }
    device_time = step_start + config.device_step;
    consumed[s] = device_time;
  }
  stats.total_train_time = device_time;
  stats.stall_fraction =
      stats.total_train_time > 0 ? stats.total_stall / stats.total_train_time
                                 : 0.0;
  if (metrics != nullptr) {
    metrics->Counter("input.steps").Add(total_batches);
    metrics->Gauge("input.stall_fraction").Max(stats.stall_fraction);
    metrics->Gauge("input.worst_batch_us")
        .Max(ToMicros(stats.worst_batch_seconds));
  }
  return stats;
}

}  // namespace tpu::input
