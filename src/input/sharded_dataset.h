// File-sharded dataset shuffling for BERT at scale (Section 3.5).
//
// The BERT corpus ships as 500 files; at 128+ hosts each host sees only a
// handful of files, so the *order of the shuffle and repeat stages* and the
// sequence-level shuffle-buffer size decide (a) whether a run covers the
// whole dataset and (b) how much run-to-run variance the sampled batches
// carry. This module simulates the per-host tf.data stage orders and
// measures both quantities, reproducing the paper's recommendations:
// shuffle *before* repeat at file level, and use a large sequence buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace tpu::input {

enum class StageOrder {
  kShuffleThenRepeat,  // recommended: files reshuffled, all covered per epoch
  kRepeatThenShuffle,  // a small shuffle window over an already-repeated
                       // stream: poor coverage, biased batches
};

struct BertShuffleConfig {
  int num_files = 500;
  int sequences_per_file = 1000;
  int num_hosts = 128;
  std::size_t shuffle_buffer_size = 1000;  // sequence-level buffer
  StageOrder order = StageOrder::kShuffleThenRepeat;
  int epochs_to_draw = 1;  // how much data each measurement consumes
};

struct BertShuffleStats {
  // Fraction of all sequences drawn at least once within the first
  // epoch-equivalent of draws (coverage).
  double sequence_coverage = 0;
  // Across independently seeded runs: standard deviation of the per-batch
  // mean sequence id, normalized by the uniform-sampling expectation. ~1.0
  // means batches are as unbiased as true uniform sampling; >> 1 means
  // batches are biased toward file neighborhoods (the run-to-run convergence
  // spread the paper observed with small buffers).
  double batch_bias_ratio = 0;
};

BertShuffleStats MeasureBertShuffle(const BertShuffleConfig& config,
                                    int num_runs, std::uint64_t seed);

}  // namespace tpu::input
