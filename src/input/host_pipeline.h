// Host input-pipeline simulation for ResNet-50 at multipod scale
// (Section 3.5).
//
// Synchronous data parallelism makes every training step wait for the
// *slowest* of the ~1024 host pipelines. JPEG decode times are heavy-tailed
// (large images decompress slowly), so at multipod scale some host hits a
// tail image nearly every step — the load imbalance the paper describes.
// The fix it describes is also modeled: store uncompressed images in host
// memory so the pipeline only does crop/flip/normalize, raising throughput
// enough for the prefetch buffer to absorb the remaining variance.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace tpu::input {

struct HostPipelineConfig {
  int num_hosts = 1024;
  int threads_per_host = 16;
  int per_host_batch = 16;  // images each host must deliver per step

  // Heavy-tailed JPEG decode: Pareto(scale, alpha) per image.
  SimTime decode_scale = Millis(0.85);
  double decode_alpha = 2.5;
  // Host-level heterogeneity: dataset shards differ in average image size,
  // so some hosts are *persistently* slower. Per-host decode multiplier is
  // 1 + skew_coef * (Pareto(1, skew_alpha) - 1); synchronous training runs
  // at the slowest host's rate, which is what makes scale hurt.
  double host_skew_alpha = 2.5;
  double host_skew_coef = 0.04;
  // Light preprocessing (random crop, flip, normalize) per image.
  SimTime light_prep = Micros(300);
  // Uncompressed-cache mode: decode is skipped entirely.
  bool uncompressed_cache = false;

  int prefetch_capacity = 32;  // batches a host may run ahead
  SimTime device_step = Millis(2.0);
  int steps = 200;
};

struct HostPipelineStats {
  SimTime total_train_time = 0;   // steps * device_step + stalls
  SimTime total_stall = 0;        // device idle waiting for input
  double stall_fraction = 0;      // total_stall / total_train_time
  SimTime worst_batch_seconds = 0;  // slowest single host-batch production
};

HostPipelineStats SimulateHostPipeline(const HostPipelineConfig& config,
                                       std::uint64_t seed);

}  // namespace tpu::input
