// tf.data-style shuffle buffer: a fixed-capacity reservoir that emits a
// uniformly random resident element as each new element streams through.
// This is the exact mechanism whose buffer size drives BERT's run-to-run
// convergence variance (Section 3.5).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tpu::input {

template <typename T>
class ShuffleBuffer {
 public:
  ShuffleBuffer(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    TPU_CHECK_GT(capacity, 0u);
    buffer_.reserve(capacity);
  }

  bool full() const { return buffer_.size() >= capacity_; }
  bool empty() const { return buffer_.empty(); }
  std::size_t size() const { return buffer_.size(); }

  // Inserts an element; the buffer must not be full.
  void Push(T value) {
    TPU_CHECK(!full());
    buffer_.push_back(std::move(value));
  }

  // Removes and returns a uniformly random resident element.
  T Pop() {
    TPU_CHECK(!empty());
    const std::size_t i = rng_.NextBounded(buffer_.size());
    std::swap(buffer_[i], buffer_.back());
    T out = std::move(buffer_.back());
    buffer_.pop_back();
    return out;
  }

  // Streams `input` through the buffer (fill, then pop-push, then drain),
  // producing the shuffled order tf.data would emit.
  static std::vector<T> ShuffleStream(const std::vector<T>& input,
                                      std::size_t capacity,
                                      std::uint64_t seed) {
    ShuffleBuffer<T> buffer(capacity, seed);
    std::vector<T> out;
    out.reserve(input.size());
    for (const T& value : input) {
      if (buffer.full()) out.push_back(buffer.Pop());
      buffer.Push(value);
    }
    while (!buffer.empty()) out.push_back(buffer.Pop());
    return out;
  }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<T> buffer_;
};

}  // namespace tpu::input
