#include "input/dlrm_input.h"

#include "common/check.h"
#include "common/math_util.h"

namespace tpu::input {

SimTime DlrmParseSeconds(const DlrmInputConfig& config,
                         bool batch_granularity) {
  TPU_CHECK_GT(config.parse_threads, 0);
  // Per-sample parsing pays the call overhead once per example; batch
  // granularity pays it once per batch. The payload cost is identical.
  const std::int64_t calls = batch_granularity ? 1 : config.per_host_batch;
  const SimTime overhead = config.per_call_overhead * calls;
  const SimTime payload = config.per_example_payload * config.per_host_batch *
                          config.num_features;
  return (overhead + payload) / config.parse_threads;
}

SimTime DlrmPcieSeconds(const DlrmInputConfig& config, bool stacked) {
  const Bytes total = config.per_host_batch * config.num_features *
                      config.bytes_per_feature_per_example;
  const int transfers = stacked ? 1 : config.num_features;
  return config.per_transfer_overhead * transfers +
         static_cast<double>(total) / config.pcie_bandwidth;
}

SimTime DlrmEvalSeconds(std::int64_t total_steps, int steps_per_round_trip,
                        SimTime device_step, SimTime host_round_trip) {
  TPU_CHECK_GT(steps_per_round_trip, 0);
  const std::int64_t round_trips = CeilDiv(total_steps, steps_per_round_trip);
  return total_steps * device_step + round_trips * host_round_trip;
}

}  // namespace tpu::input
