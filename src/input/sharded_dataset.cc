#include "input/sharded_dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "input/shuffle_buffer.h"

namespace tpu::input {
namespace {

// The per-host tf.data stream: file stage (order-dependent) feeding the
// sequence-level shuffle buffer. Returns the first `draws` sequence ids the
// host would feed its TPUs.
std::vector<std::int64_t> HostDraws(const BertShuffleConfig& config, int host,
                                    std::int64_t draws, Rng& rng) {
  std::vector<int> files;
  for (int f = host; f < config.num_files; f += config.num_hosts) {
    files.push_back(f);
  }
  TPU_CHECK(!files.empty()) << "more hosts than files";

  // Enough file passes to satisfy `draws` plus the buffer fill.
  const std::int64_t per_pass =
      static_cast<std::int64_t>(files.size()) * config.sequences_per_file;
  const int passes =
      static_cast<int>((draws + config.shuffle_buffer_size) / per_pass + 2);

  std::vector<std::int64_t> stream;
  stream.reserve(passes * per_pass);
  std::vector<int> order = files;
  for (int pass = 0; pass < passes; ++pass) {
    if (config.order == StageOrder::kShuffleThenRepeat) {
      // shuffle-before-repeat: a fresh file permutation every pass, so each
      // pass covers every assigned file exactly once.
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
    }
    // repeat-before-shuffle: fixed file order each pass; only the (small)
    // sequence buffer below provides any mixing.
    for (int file : order) {
      for (int s = 0; s < config.sequences_per_file; ++s) {
        stream.push_back(static_cast<std::int64_t>(file) *
                             config.sequences_per_file +
                         s);
      }
    }
  }

  const std::vector<std::int64_t> shuffled =
      ShuffleBuffer<std::int64_t>::ShuffleStream(
          stream, config.shuffle_buffer_size, rng.NextU64());
  return std::vector<std::int64_t>(shuffled.begin(), shuffled.begin() + draws);
}

}  // namespace

BertShuffleStats MeasureBertShuffle(const BertShuffleConfig& config,
                                    int num_runs, std::uint64_t seed) {
  TPU_CHECK_GT(num_runs, 0);
  const std::int64_t total =
      static_cast<std::int64_t>(config.num_files) * config.sequences_per_file;
  const std::int64_t draws_per_host =
      total * config.epochs_to_draw / config.num_hosts;
  const std::int64_t batch_size = 4096;

  double coverage_sum = 0;
  double bias_ratio_sum = 0;
  for (int run = 0; run < num_runs; ++run) {
    Rng rng(seed + run * 7919);
    std::vector<std::vector<std::int64_t>> per_host(config.num_hosts);
    for (int host = 0; host < config.num_hosts; ++host) {
      per_host[host] = HostDraws(config, host, draws_per_host, rng);
    }

    // Coverage within the first epoch-equivalent of draws.
    std::unordered_set<std::int64_t> seen;
    for (const auto& draws : per_host) {
      seen.insert(draws.begin(), draws.end());
    }
    coverage_sum += static_cast<double>(seen.size()) /
                    static_cast<double>(total);

    // Global batches: round-robin across hosts (how synchronous data
    // parallelism actually composes them). Per-batch mean id vs. the uniform
    // sampling expectation.
    std::vector<double> batch_means;
    std::int64_t index = 0;
    double acc = 0;
    std::int64_t in_batch = 0;
    for (std::int64_t d = 0; d < draws_per_host; ++d) {
      for (int host = 0; host < config.num_hosts; ++host) {
        acc += static_cast<double>(per_host[host][d]);
        if (++in_batch == batch_size) {
          batch_means.push_back(acc / batch_size);
          acc = 0;
          in_batch = 0;
        }
        ++index;
      }
    }
    TPU_CHECK_GT(batch_means.size(), 1u);
    const double grand_mean =
        std::accumulate(batch_means.begin(), batch_means.end(), 0.0) /
        batch_means.size();
    double var = 0;
    for (double m : batch_means) var += (m - grand_mean) * (m - grand_mean);
    var /= batch_means.size();
    // Uniform sampling of ids in [0, total): var(mean of B) = total^2/12/B.
    const double expected_var =
        static_cast<double>(total) * total / 12.0 / batch_size;
    bias_ratio_sum += std::sqrt(var / expected_var);
  }

  BertShuffleStats stats;
  stats.sequence_coverage = coverage_sum / num_runs;
  stats.batch_bias_ratio = bias_ratio_sum / num_runs;
  return stats;
}

}  // namespace tpu::input
