// DLRM input-pipeline optimizations (Sections 3.5, 4.6).
//
// DLRM runs a huge per-core batch at a tiny step latency, so the host side
// is the bottleneck. Three optimizations are modeled, each against its
// naive baseline:
//   1. batch-granularity parsing: parse one record of `batch` examples
//      instead of `batch` records (amortizes per-call overhead);
//   2. PCIe feature stacking: send the ~40 input features as one stacked
//      transfer instead of 40 separate DMAs;
//   3. on-device multi-step eval: run E inference steps per host round-trip
//      instead of one.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace tpu::input {

struct DlrmInputConfig {
  std::int64_t per_host_batch = 65536 / 64;  // examples per host per step
  int num_features = 40;
  Bytes bytes_per_feature_per_example = 4;
  int parse_threads = 16;

  // Parsing costs.
  SimTime per_call_overhead = Micros(15);   // function/proto dispatch
  SimTime per_example_payload = Nanos(120); // unavoidable byte handling

  // PCIe.
  Bandwidth pcie_bandwidth = GBps(12.0);
  SimTime per_transfer_overhead = Micros(20);
};

// Host-side parse time for one step's batch.
SimTime DlrmParseSeconds(const DlrmInputConfig& config,
                         bool batch_granularity);

// Host->device PCIe time for one step's features.
SimTime DlrmPcieSeconds(const DlrmInputConfig& config, bool stacked);

// Wall time to evaluate `total_steps` inference steps when the device runs
// `steps_per_round_trip` steps per host interaction (Section 4.6's
// "evaluate multiple steps without host communication").
SimTime DlrmEvalSeconds(std::int64_t total_steps, int steps_per_round_trip,
                        SimTime device_step, SimTime host_round_trip);

}  // namespace tpu::input
