// TPU-v3 multipod topology.
//
// The paper's machine is a 128x32 2-D mesh of 4096 TPU-v3 chips, built from
// four 32x32 pods joined along the X dimension by cross-pod optical links
// (Figures 1-2). The Y dimension keeps the within-pod torus wrap links; the
// X dimension is a mesh (no global wrap). Each chip has two cores, and each
// host machine drives four chips (eight cores).
//
// Because the TPU-v3 routing table holds only 1024 entries, a chip only
// "sees" the chips in its own row and column (sparse routing); all routes are
// dimension-ordered within that visibility set, which is sufficient for the
// ring collectives used in training (Section 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace tpu::topo {

using ChipId = std::int32_t;
using LinkId = std::int32_t;
using HostId = std::int32_t;

struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

enum class Dim { kX, kY };

enum class LinkType {
  kMeshX,      // standard within-pod X link
  kCrossPodX,  // longer optical link joining neighboring pods along X
  kMeshY,      // standard within-pod Y link
  kWrapY,      // torus wrap link at the Y edges
};

// A directed physical link between neighboring chips. Each undirected cable
// is modeled as two directed links since TPU ICI links are full duplex.
struct Link {
  LinkId id = -1;
  ChipId from = -1;
  ChipId to = -1;
  LinkType type = LinkType::kMeshX;
};

struct TopologyConfig {
  int pod_size_x = 32;
  int pod_size_y = 32;
  int num_pods = 4;     // pods are laid out side by side along X
  bool wrap_y = true;   // within-pod torus links at the Y edges (kept in the
                        // multipod per the paper)
  bool wrap_x = false;  // the multipod X dimension is a mesh
  int cores_per_chip = 2;
  int chips_per_host = 4;
  int routing_table_entries = 1024;

  int size_x() const { return pod_size_x * num_pods; }
  int size_y() const { return pod_size_y; }
  int num_chips() const { return size_x() * size_y(); }

  static TopologyConfig Multipod(int num_pods) {
    TopologyConfig config;
    config.num_pods = num_pods;
    return config;
  }

  // A slice: a sub-rectangle of one pod (e.g. the 512-chip MaskRCNN or
  // 256-chip DLRM slices). Slices lose the Y wrap unless they span the
  // full Y extent of the pod.
  static TopologyConfig Slice(int size_x, int size_y, bool wrap_y) {
    TopologyConfig config;
    config.pod_size_x = size_x;
    config.pod_size_y = size_y;
    config.num_pods = 1;
    config.wrap_y = wrap_y;
    return config;
  }
};

class MeshTopology {
 public:
  explicit MeshTopology(const TopologyConfig& config);

  const TopologyConfig& config() const { return config_; }
  int size_x() const { return config_.size_x(); }
  int size_y() const { return config_.size_y(); }
  int num_chips() const { return config_.num_chips(); }
  int num_cores() const { return num_chips() * config_.cores_per_chip; }
  int num_hosts() const { return num_chips() / config_.chips_per_host; }

  ChipId ChipAt(Coord c) const {
    TPU_CHECK_GE(c.x, 0);
    TPU_CHECK_LT(c.x, size_x());
    TPU_CHECK_GE(c.y, 0);
    TPU_CHECK_LT(c.y, size_y());
    return static_cast<ChipId>(c.y) * size_x() + c.x;
  }
  Coord CoordOf(ChipId chip) const {
    TPU_CHECK_GE(chip, 0);
    TPU_CHECK_LT(chip, num_chips());
    return Coord{chip % size_x(), chip / size_x()};
  }

  // Hosts are assigned contiguous groups of chips along X rows.
  HostId HostOf(ChipId chip) const {
    const Coord c = CoordOf(chip);
    const int hosts_per_row = size_x() / config_.chips_per_host;
    return c.y * hosts_per_row + c.x / config_.chips_per_host;
  }
  std::vector<ChipId> ChipsOfHost(HostId host) const;

  const std::vector<Link>& links() const { return links_; }
  const Link& link(LinkId id) const { return links_[id]; }

  // Directed link from `from` to neighboring chip `to`; aborts if the chips
  // are not physical neighbors.
  LinkId LinkBetween(ChipId from, ChipId to) const;
  bool AreNeighbors(ChipId a, ChipId b) const;

  // Dimension-ordered route (X first, then Y), including wrap shortcuts when
  // the dimension is a torus. Returns the chip sequence from `from` to `to`
  // inclusive.
  std::vector<ChipId> Route(ChipId from, ChipId to) const;
  // The directed links traversed by Route(from, to).
  std::vector<LinkId> RouteLinks(ChipId from, ChipId to) const;

  // Sparse-routing visibility: the chips in the same row or column (the
  // neighbor set the 1024-entry routing table can hold).
  std::vector<ChipId> VisibleChips(ChipId chip) const;
  // Largest visibility set across chips; must fit the routing table.
  int MaxRoutingEntriesUsed() const;

  // The chips of one line along `dim` passing through `through`, ordered by
  // coordinate. For a torus dimension this order is already a physical ring.
  std::vector<ChipId> LineAlong(Dim dim, ChipId through) const;

  // Ring order for collectives along `dim`. On a torus dimension this is the
  // natural ring. On a mesh dimension the ring is "folded" (0,2,4,...,5,3,1)
  // so consecutive ring positions stay within two physical hops and every
  // physical link carries at most two ring edges.
  std::vector<ChipId> RingAlong(Dim dim, ChipId through) const;

  // Ring over every stride-th chip along `dim` starting at the line offset of
  // `through`. Used for gradient reduction that "hops over peers that are
  // model parallelism neighbors" (Section 3.3, Figure 4 dotted blue rings).
  std::vector<ChipId> StridedRingAlong(Dim dim, ChipId through,
                                       int stride) const;

  // True if the given X coordinate boundary (x -> x+1) crosses pods.
  bool IsCrossPodBoundary(int x) const {
    return (x + 1) % config_.pod_size_x == 0 && x + 1 < size_x();
  }

  // Pod -> partition carving for the parallel event core: pods are laid out
  // side by side along X, so a chip's pod index is its X coordinate divided
  // by the pod width. Every chip of a Y column (and hence every Y-dimension
  // ring) lives in exactly one pod; only X-dimension traffic crosses pods.
  int num_pods() const { return config_.num_pods; }
  int PodOf(ChipId chip) const { return CoordOf(chip).x / config_.pod_size_x; }
  // True when `chips` all fall in the same pod (the condition for running
  // their events on one PDES partition).
  bool SamePod(const std::vector<ChipId>& chips) const {
    if (chips.empty()) return true;
    const int pod = PodOf(chips.front());
    for (ChipId chip : chips) {
      if (PodOf(chip) != pod) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  void BuildLinks();
  LinkId AddLink(ChipId from, ChipId to, LinkType type);

  TopologyConfig config_;
  std::vector<Link> links_;
  // link_index_[from * 4 + direction] -> LinkId (directions: +x,-x,+y,-y)
  std::vector<LinkId> link_index_;

  static constexpr int kDirPlusX = 0;
  static constexpr int kDirMinusX = 1;
  static constexpr int kDirPlusY = 2;
  static constexpr int kDirMinusY = 3;
};

// An axis-aligned rectangle of chips: [x0, x0+size_x) x [y0, y0+size_y).
// The unit of elastic shrink and of cluster slice carving — a carved
// sub-mesh is itself a legal Slice topology (same X-then-Y dimension-ordered
// routes, folded rings).
struct SubmeshRect {
  int x0 = 0;
  int y0 = 0;
  int size_x = 0;
  int size_y = 0;

  int chips() const { return size_x * size_y; }
  // Alias for chips(); zero when either extent is zero or negative.
  int area() const { return size_x <= 0 || size_y <= 0 ? 0 : chips(); }
  // Chip-sides on the rectangle boundary; zero for an empty rect.
  int perimeter() const { return area() == 0 ? 0 : 2 * (size_x + size_y); }
  bool empty() const { return area() == 0; }
  bool Contains(Coord c) const {
    return c.x >= x0 && c.x < x0 + size_x && c.y >= y0 && c.y < y0 + size_y;
  }
  // Every chip of `other` lies inside this rect. An empty `other` is
  // contained nowhere (a zero-area allocation is meaningless).
  bool Contains(const SubmeshRect& other) const {
    return !other.empty() && other.x0 >= x0 && other.y0 >= y0 &&
           other.x0 + other.size_x <= x0 + size_x &&
           other.y0 + other.size_y <= y0 + size_y;
  }
  // The two rects share at least one chip. Empty rects intersect nothing —
  // touching edges (adjacent slices) do not count as overlap.
  bool Intersects(const SubmeshRect& other) const {
    return !empty() && !other.empty() && x0 < other.x0 + other.size_x &&
           other.x0 < x0 + size_x && y0 < other.y0 + other.size_y &&
           other.y0 < y0 + size_y;
  }
  friend bool operator==(const SubmeshRect&, const SubmeshRect&) = default;
};

// Largest axis-aligned rectangular sub-mesh of `topo` containing none of
// `dead_chips` (maximal-rectangle-in-binary-matrix, histogram-stack form).
// `x_granularity` quantizes x0 and size_x to multiples of the given width —
// pass the model-parallel group width so a carved slice keeps tiling into
// whole groups; it must divide topo.size_x(). Ties on area break toward the
// first rectangle in (y, then x) scan order, so the carve is deterministic.
// Returns a zero-area rect when every granule contains a dead chip.
SubmeshRect LargestHealthySubmesh(const MeshTopology& topo,
                                  const std::vector<ChipId>& dead_chips,
                                  int x_granularity = 1);

}  // namespace tpu::topo
