#include "topology/topology.h"

#include <algorithm>
#include <sstream>

namespace tpu::topo {

MeshTopology::MeshTopology(const TopologyConfig& config) : config_(config) {
  TPU_CHECK_GT(config.pod_size_x, 0);
  TPU_CHECK_GT(config.pod_size_y, 0);
  TPU_CHECK_GT(config.num_pods, 0);
  TPU_CHECK_GT(config.chips_per_host, 0);
  // Hosts drive contiguous groups of chips along a row; clamp the group size
  // to the largest divisor of the row length so tiny slices remain valid.
  int chips_per_host = std::min(config_.chips_per_host, config_.size_x());
  while (config_.size_x() % chips_per_host != 0) --chips_per_host;
  config_.chips_per_host = chips_per_host;
  BuildLinks();
  TPU_CHECK_LE(MaxRoutingEntriesUsed(), config.routing_table_entries)
      << "sparse row/column routing must fit the TPU-v3 routing table";
}

void MeshTopology::BuildLinks() {
  link_index_.assign(static_cast<std::size_t>(num_chips()) * 4, -1);
  for (int y = 0; y < size_y(); ++y) {
    for (int x = 0; x < size_x(); ++x) {
      const ChipId chip = ChipAt({x, y});
      // +X neighbor.
      if (x + 1 < size_x()) {
        const LinkType type = IsCrossPodBoundary(x) ? LinkType::kCrossPodX
                                                    : LinkType::kMeshX;
        const ChipId other = ChipAt({x + 1, y});
        link_index_[chip * 4 + kDirPlusX] = AddLink(chip, other, type);
        link_index_[other * 4 + kDirMinusX] = AddLink(other, chip, type);
      } else if (config_.wrap_x && size_x() > 2) {
        const ChipId other = ChipAt({0, y});
        link_index_[chip * 4 + kDirPlusX] =
            AddLink(chip, other, LinkType::kMeshX);
        link_index_[other * 4 + kDirMinusX] =
            AddLink(other, chip, LinkType::kMeshX);
      }
      // +Y neighbor.
      if (y + 1 < size_y()) {
        const ChipId other = ChipAt({x, y + 1});
        link_index_[chip * 4 + kDirPlusY] =
            AddLink(chip, other, LinkType::kMeshY);
        link_index_[other * 4 + kDirMinusY] =
            AddLink(other, chip, LinkType::kMeshY);
      } else if (config_.wrap_y && size_y() > 2) {
        const ChipId other = ChipAt({x, 0});
        link_index_[chip * 4 + kDirPlusY] =
            AddLink(chip, other, LinkType::kWrapY);
        link_index_[other * 4 + kDirMinusY] =
            AddLink(other, chip, LinkType::kWrapY);
      }
    }
  }
}

LinkId MeshTopology::AddLink(ChipId from, ChipId to, LinkType type) {
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, from, to, type});
  return id;
}

std::vector<ChipId> MeshTopology::ChipsOfHost(HostId host) const {
  TPU_CHECK_GE(host, 0);
  TPU_CHECK_LT(host, num_hosts());
  const int hosts_per_row = size_x() / config_.chips_per_host;
  const int y = host / hosts_per_row;
  const int x0 = (host % hosts_per_row) * config_.chips_per_host;
  std::vector<ChipId> chips;
  chips.reserve(config_.chips_per_host);
  for (int dx = 0; dx < config_.chips_per_host; ++dx) {
    chips.push_back(ChipAt({x0 + dx, y}));
  }
  return chips;
}

bool MeshTopology::AreNeighbors(ChipId a, ChipId b) const {
  for (int dir = 0; dir < 4; ++dir) {
    const LinkId id = link_index_[a * 4 + dir];
    if (id >= 0 && links_[id].to == b) return true;
  }
  return false;
}

LinkId MeshTopology::LinkBetween(ChipId from, ChipId to) const {
  for (int dir = 0; dir < 4; ++dir) {
    const LinkId id = link_index_[from * 4 + dir];
    if (id >= 0 && links_[id].to == to) return id;
  }
  TPU_CHECK(false) << "chips " << from << " and " << to
                   << " are not physical neighbors";
  return -1;
}

namespace {

// Steps along one dimension of length `size`, possibly via the wrap link,
// choosing the shorter direction. Returns the coordinate sequence excluding
// the start, including the destination.
std::vector<int> StepsAlongDim(int from, int to, int size, bool wrap) {
  std::vector<int> steps;
  if (from == to) return steps;
  int direction;
  if (!wrap) {
    direction = to > from ? 1 : -1;
  } else {
    const int forward = (to - from + size) % size;
    const int backward = (from - to + size) % size;
    direction = forward <= backward ? 1 : -1;
  }
  int cur = from;
  while (cur != to) {
    cur = (cur + direction + size) % size;
    steps.push_back(cur);
  }
  return steps;
}

}  // namespace

std::vector<ChipId> MeshTopology::Route(ChipId from, ChipId to) const {
  const Coord a = CoordOf(from);
  const Coord b = CoordOf(to);
  // Sparse routing: a chip only holds routes to its row and column, so a
  // dimension-ordered route (X, then Y) is exactly what the hardware table
  // supports: travel within the source row to the target column, then within
  // the target column.
  std::vector<ChipId> path{from};
  for (int x : StepsAlongDim(a.x, b.x, size_x(), config_.wrap_x)) {
    path.push_back(ChipAt({x, a.y}));
  }
  for (int y : StepsAlongDim(a.y, b.y, size_y(), config_.wrap_y)) {
    path.push_back(ChipAt({b.x, y}));
  }
  return path;
}

std::vector<LinkId> MeshTopology::RouteLinks(ChipId from, ChipId to) const {
  const std::vector<ChipId> path = Route(from, to);
  std::vector<LinkId> result;
  result.reserve(path.size() > 0 ? path.size() - 1 : 0);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    result.push_back(LinkBetween(path[i], path[i + 1]));
  }
  return result;
}

std::vector<ChipId> MeshTopology::VisibleChips(ChipId chip) const {
  const Coord c = CoordOf(chip);
  std::vector<ChipId> visible;
  visible.reserve(size_x() + size_y() - 2);
  for (int x = 0; x < size_x(); ++x) {
    if (x != c.x) visible.push_back(ChipAt({x, c.y}));
  }
  for (int y = 0; y < size_y(); ++y) {
    if (y != c.y) visible.push_back(ChipAt({c.x, y}));
  }
  return visible;
}

int MeshTopology::MaxRoutingEntriesUsed() const {
  // Row + column visibility is uniform over chips.
  return size_x() + size_y() - 2;
}

std::vector<ChipId> MeshTopology::LineAlong(Dim dim, ChipId through) const {
  const Coord c = CoordOf(through);
  std::vector<ChipId> line;
  if (dim == Dim::kX) {
    line.reserve(size_x());
    for (int x = 0; x < size_x(); ++x) line.push_back(ChipAt({x, c.y}));
  } else {
    line.reserve(size_y());
    for (int y = 0; y < size_y(); ++y) line.push_back(ChipAt({c.x, y}));
  }
  return line;
}

namespace {

// Folds a line into a ring: 0,2,4,...,(back),...,5,3,1. Consecutive ring
// positions are at most two physical hops apart, and every physical link is
// used by at most two ring edges — the standard way to run ring collectives
// on a mesh (non-wrapped) dimension at half link bandwidth.
std::vector<ChipId> FoldLine(const std::vector<ChipId>& line) {
  std::vector<ChipId> ring;
  ring.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); i += 2) ring.push_back(line[i]);
  const std::size_t last_odd = (line.size() % 2 == 0) ? line.size() - 1
                                                      : line.size() - 2;
  for (std::size_t i = last_odd;; i -= 2) {
    ring.push_back(line[i]);
    if (i <= 1) break;
  }
  return ring;
}

}  // namespace

std::vector<ChipId> MeshTopology::RingAlong(Dim dim, ChipId through) const {
  std::vector<ChipId> line = LineAlong(dim, through);
  const bool wrapped = dim == Dim::kX ? config_.wrap_x : config_.wrap_y;
  if (wrapped || line.size() <= 2) return line;
  return FoldLine(line);
}

std::vector<ChipId> MeshTopology::StridedRingAlong(Dim dim, ChipId through,
                                                   int stride) const {
  TPU_CHECK_GT(stride, 0);
  const std::vector<ChipId> line = LineAlong(dim, through);
  const Coord c = CoordOf(through);
  const int offset = (dim == Dim::kX ? c.x : c.y) % stride;
  std::vector<ChipId> strided;
  for (std::size_t i = offset; i < line.size(); i += stride) {
    strided.push_back(line[i]);
  }
  const bool wrapped = dim == Dim::kX ? config_.wrap_x : config_.wrap_y;
  if (wrapped || strided.size() <= 2) return strided;
  return FoldLine(strided);
}

SubmeshRect LargestHealthySubmesh(const MeshTopology& topo,
                                  const std::vector<ChipId>& dead_chips,
                                  int x_granularity) {
  TPU_CHECK_GE(x_granularity, 1);
  TPU_CHECK_EQ(topo.size_x() % x_granularity, 0)
      << "carve granularity must tile the mesh width";
  const int cols = topo.size_x() / x_granularity;  // granule columns
  const int rows = topo.size_y();

  // granule (col, row) is healthy iff all x_granularity chips in it are.
  std::vector<char> healthy(static_cast<std::size_t>(cols) * rows, 1);
  for (const ChipId chip : dead_chips) {
    const Coord c = topo.CoordOf(chip);
    healthy[static_cast<std::size_t>(c.y) * cols + c.x / x_granularity] = 0;
  }

  // Classic maximal rectangle: per row, heights[c] counts consecutive
  // healthy rows ending here; a monotonic stack finds the best rectangle of
  // each histogram. Strict `>` on area keeps the first-found winner, so the
  // result is a deterministic function of (topology, dead set, granularity).
  SubmeshRect best;
  std::vector<int> heights(cols + 1, 0);  // sentinel column flushes the stack
  std::vector<int> stack;                 // column indices, heights ascending
  for (int y = 0; y < rows; ++y) {
    for (int c = 0; c < cols; ++c) {
      heights[c] = healthy[static_cast<std::size_t>(y) * cols + c] != 0
                       ? heights[c] + 1
                       : 0;
    }
    stack.clear();
    for (int c = 0; c <= cols; ++c) {
      const int h = heights[c];
      int left = c;
      while (!stack.empty() && heights[stack.back()] >= h) {
        const int top = stack.back();
        stack.pop_back();
        left = stack.empty() ? 0 : stack.back() + 1;
        const int area = heights[top] * (c - left);
        if (area > best.chips() / x_granularity) {
          best.x0 = left * x_granularity;
          best.y0 = y - heights[top] + 1;
          best.size_x = (c - left) * x_granularity;
          best.size_y = heights[top];
        }
      }
      stack.push_back(c);
    }
  }
  return best;
}

std::string MeshTopology::ToString() const {
  std::ostringstream os;
  os << "MeshTopology " << size_x() << "x" << size_y() << " ("
     << config_.num_pods << " pod(s), " << num_chips() << " chips, "
     << num_cores() << " cores, " << num_hosts() << " hosts"
     << (config_.wrap_y ? ", Y torus" : "") << ")";
  return os.str();
}

}  // namespace tpu::topo
