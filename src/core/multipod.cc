#include "core/multipod.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "collectives/all_reduce.h"
#include "common/check.h"
#include "common/math_util.h"
#include "metrics/distributed_eval.h"
#include "optim/weight_update_sharding.h"
#include "plan/cost.h"
#include "plan/executor.h"
#include "plan/generator.h"
#include "plan/planner.h"
#include "plan/schedule.h"
#include "models/blocks.h"
#include "recover/controller.h"
#include "sim/event_observer.h"
#include "sim/simulator.h"
#include "spmd/spmd.h"
#include "telemetry/probes.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "trace/critical_path.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::core {

topo::TopologyConfig TopologyForChips(int num_chips) {
  TPU_CHECK_GE(num_chips, 4);
  if (num_chips % 1024 == 0) {
    return topo::TopologyConfig::Multipod(num_chips / 1024);
  }
  TPU_CHECK(IsPowerOfTwo(num_chips))
      << "pod slices are power-of-two sized, got " << num_chips;
  // Slices are allocated as full columns of the pod so the Y rings keep
  // their torus wrap links (e.g. 512 chips -> 16x32, 256 -> 8x32).
  const int size_y = std::min(num_chips, 32);
  const int size_x = num_chips / size_y;
  return topo::TopologyConfig::Slice(size_x, size_y, /*wrap_y=*/size_y > 2);
}

MultipodSystem::MultipodSystem(int num_chips, SystemOptions options)
    : topology_(TopologyForChips(num_chips)), options_(options) {}

MultipodSystem::MultipodSystem(const topo::TopologyConfig& config,
                               SystemOptions options)
    : topology_(config), options_(options) {}

SystemOptions OptionsForGeneration(TpuGeneration generation) {
  SystemOptions options;  // defaults are TPU-v3
  if (generation == TpuGeneration::kV4) {
    // TPU-v4: ~275 TFLOP/s bf16 and ~1.2 TB/s HBM per chip, faster ICI.
    options.core.peak_mxu_flops = 137.5e12;   // per core
    options.core.peak_vector_flops = 3.0e12;
    options.core.hbm_bandwidth = 600e9;       // per core
    const net::LinkParams v4_link{GBps(100.0), Micros(0.25)};
    options.network.mesh_x = v4_link;
    options.network.mesh_y = v4_link;
    options.network.wrap_y = v4_link;
    options.network.cross_pod_x = {GBps(100.0), Micros(1.2)};
  }
  return options;
}

namespace {

// Effective MXU utilization at a given number of matrix rows per core.
double Utilization(const SystemOptions& options, double rows) {
  return options.max_utilization * rows /
         (rows + options.rows_half_saturation);
}

// Model-parallel groups occupy mp/2 neighboring chips (two cores per chip).
int ChipsPerGroup(int model_parallel_cores) {
  return std::max(1, model_parallel_cores / 2);
}

// Analytic cost of one SPMD communication event among the `cores` cores of
// a model-parallel group (cores sit on ChipsPerGroup neighboring chips along
// X; two cores of a chip communicate on-chip at high bandwidth).
SimTime GroupCommSeconds(const spmd::CommEvent& event, int cores,
                         const SystemOptions& options) {
  const Bytes bytes = event.elems * 2;  // bf16 activations
  const int chips = ChipsPerGroup(cores);
  const Bandwidth link = options.network.mesh_x.bandwidth;
  const Bandwidth on_chip = GBps(700.0);  // inter-core on-chip interconnect
  const SimTime overhead = options.network.message_overhead;
  switch (event.kind) {
    case spmd::CommEvent::Kind::kAllReduce: {
      // Ring all-reduce: 2 * bytes * (n-1)/n over the slowest hop.
      if (chips <= 1) {
        return 2.0 * bytes * (cores - 1) / cores / on_chip + overhead;
      }
      return 2.0 * bytes * (chips - 1) / chips / link +
             2.0 * chips * (overhead + options.network.mesh_x.latency);
    }
    case spmd::CommEvent::Kind::kAllGather: {
      if (chips <= 1) {
        return static_cast<double>(bytes) * (cores - 1) / cores / on_chip +
               overhead;
      }
      return static_cast<double>(bytes) * (chips - 1) / chips / link +
             chips * (overhead + options.network.mesh_x.latency);
    }
    case spmd::CommEvent::Kind::kHaloExchange: {
      // Neighbor exchange; half the tile boundaries are on-chip.
      const Bandwidth effective = chips <= 1 ? on_chip : link;
      return static_cast<double>(bytes) / effective + overhead;
    }
  }
  return 0;
}

const optim::Optimizer& DefaultSgd() {
  static const std::unique_ptr<optim::Optimizer> sgd =
      optim::MakeMomentumSgd({});
  return *sgd;
}

std::unique_ptr<optim::Optimizer> OptimizerFor(models::Benchmark benchmark) {
  switch (benchmark) {
    case models::Benchmark::kResNet50:
      return optim::MakeLars({});
    case models::Benchmark::kBert:
      return optim::MakeLamb({});
    default:
      return optim::MakeMomentumSgd({});
  }
}

}  // namespace

namespace {

struct BlockTimes {
  SimTime single_compute = 0;
  SimTime split_compute = 0;
  SimTime split_comm = 0;
};

BlockTimes ModelParallelBlockTimes(models::Benchmark benchmark, int cores,
                                   const SystemOptions& options) {
  models::ShardableBlock block = [&] {
    switch (benchmark) {
      case models::Benchmark::kTransformer:
        return models::TransformerBlock();
      case models::Benchmark::kSsd:
        return models::SsdBackboneBlock();
      case models::Benchmark::kMaskRcnn:
        return models::MaskRcnnBlock();
      default:
        TPU_CHECK(false) << "no model-parallel block for "
                         << models::BenchmarkName(benchmark);
        return models::TransformerBlock();
    }
  }();

  BlockTimes times;
  times.single_compute =
      spmd::CostOfPartitioned(spmd::Partition(block.module, block.shardings, 1),
                              options.core)
          .compute_seconds;
  const spmd::PartitionedCost split = spmd::CostOfPartitioned(
      spmd::Partition(block.module, block.shardings, cores), options.core);
  times.split_compute = split.compute_seconds;
  for (const spmd::CommEvent& event : split.comm) {
    times.split_comm += GroupCommSeconds(event, cores, options);
  }
  if (!options.optimized_model_parallel_comm) {
    // Without the Section 4.5 XLA optimizations: per-op resharding instead
    // of minimized reshard chains, separate gradient all-reduces per model
    // core instead of one fused reduction, and unoptimized halo barriers —
    // roughly 3x the communication the optimized schedule moves.
    times.split_comm *= 3.0;
  }
  return times;
}

}  // namespace

double ModelParallelSpeedup(models::Benchmark benchmark, int cores,
                            const SystemOptions& options) {
  TPU_CHECK_GE(cores, 1);
  if (cores == 1) return 1.0;
  const BlockTimes times = ModelParallelBlockTimes(benchmark, cores, options);
  return times.single_compute / (times.split_compute + times.split_comm);
}

double ModelParallelCommFraction(models::Benchmark benchmark, int cores,
                                 const SystemOptions& options) {
  TPU_CHECK_GT(cores, 1);
  const BlockTimes times = ModelParallelBlockTimes(benchmark, cores, options);
  return times.split_comm / (times.split_compute + times.split_comm);
}

SimTime AllToAllSeconds(const topo::MeshTopology& topology,
                        const net::NetworkConfig& network, Bytes total_bytes) {
  // Bisection-limited: half the payload crosses the narrower machine cut.
  const double x_cut = topology.size_y() *
                       network.mesh_x.bandwidth *
                       (topology.config().wrap_x ? 2.0 : 1.0);
  const double y_cut = topology.size_x() *
                       network.mesh_y.bandwidth *
                       (topology.config().wrap_y ? 2.0 : 1.0);
  const double bisection = std::min(x_cut, y_cut);
  const SimTime wire = static_cast<double>(total_bytes) / 2.0 / bisection;
  // Fan-out: each chip serializes (n-1) message launches.
  const SimTime fanout =
      (topology.num_chips() - 1) * network.message_overhead;
  return std::max(wire, fanout) + network.mesh_x.latency * topology.size_x();
}

StepBreakdown MultipodSystem::SimulateStep(const models::ModelSpec& spec,
                                           std::int64_t global_batch,
                                           int model_parallel_cores,
                                           const optim::Optimizer* optimizer,
                                           trace::StepProfiler* profiler,
                                           trace::RunReport* report) {
  TPU_CHECK_GE(model_parallel_cores, 1);
  TPU_CHECK_EQ(num_cores() % model_parallel_cores, 0);
  const std::int64_t replicas = num_cores() / model_parallel_cores;
  TPU_CHECK_GE(global_batch, replicas)
      << spec.name << ": global batch below one example per replica";
  const double per_replica =
      static_cast<double>(global_batch) / static_cast<double>(replicas);
  if (optimizer == nullptr) optimizer = &DefaultSgd();

  StepBreakdown step;

  // Compute: the full example on one core, divided by the measured
  // model-parallel speedup (which folds in halo/reshard comm, partition
  // load imbalance and the utilization loss of smaller local shapes).
  const double rows = per_replica * spec.rows_per_example;
  const double util = Utilization(options_, rows);
  const SimTime one_core = spec.flops_per_example * per_replica /
                           (options_.core.peak_mxu_flops * util);
  const double mp_speedup =
      model_parallel_cores > 1
          ? ModelParallelSpeedup(spec.benchmark, model_parallel_cores,
                                 options_)
          : 1.0;
  step.compute = one_core / mp_speedup + options_.core.op_overhead * 50;

  // Gradient summation on the simulated interconnect (Section 3.3). With
  // sharded weights each chip carries the shards of its two cores.
  const int chips_per_group = ChipsPerGroup(model_parallel_cores);
  TPU_CHECK_EQ(topology_.size_x() % chips_per_group, 0);
  sim::Simulator simulator;
  net::Network network(&topology_, options_.network, &simulator);
  // Publish the system's PDES request for the duration of the step; the
  // summation itself decides whether the step qualifies (multi-pod,
  // time-only, unobserved) and silently stays serial otherwise.
  sim::ScopedPdesConfig pdes_scope(options_.pdes);
  coll::GradientSummationConfig summation;
  summation.elems = std::max<std::int64_t>(1, spec.parameters / chips_per_group);
  summation.model_parallel_stride = chips_per_group;
  summation.collective.bidirectional = options_.bidirectional_rings;
  summation.collective.bfloat16_wire = options_.bfloat16_gradients;
  if (options_.weight_update_sharding) {
    summation.shard_update_seconds = [&](std::int64_t owned) {
      return optim::WeightUpdateSeconds(*optimizer, owned,
                                        options_.core.peak_vector_flops,
                                        options_.core.hbm_bandwidth);
    };
  }
  // The collective runs on a fresh simulator (t = 0); on the trace timeline
  // it belongs after this step's compute, and successive steps must not
  // overlap. Shift the recorder clock to lay the collective's spans past
  // everything recorded so far plus this step's forward+backward.
  trace::TraceRecorder* recorder = trace::CurrentTrace();
  trace::MetricsRegistry* metrics = trace::CurrentMetrics();
  const SimTime trace_base =
      recorder != nullptr ? recorder->last_timestamp() : 0.0;
  // Causal tracking is opt-in via `report`; when off, the observer slot is
  // left exactly as found so disabled runs stay bit-identical.
  trace::CriticalPathTracker tracker;
  bool planned = false;
  std::string plan_name;
  SimTime plan_predicted = 0, plan_estimated = 0;
  const coll::GradientSummationResult result = [&] {
    trace::ScopedTimeOffset offset(recorder, trace_base + step.compute);
    sim::ScopedEventObserver observe(
        report != nullptr ? static_cast<sim::EventObserver*>(&tracker)
                          : sim::CurrentEventObserver());
    if (!options_.collective_planner) {
      return coll::TwoDGradientSummation(network, summation);
    }
    // Planner mode: search (memoized per payload/stride) for the best
    // schedule and execute it. The wire-format options become search bounds.
    // The search's throwaway candidate evaluations silence the observer
    // themselves; only the chosen plan's real execution is tracked.
    plan::PlanRequest request;
    request.elems = summation.elems;
    request.model_parallel_stride = chips_per_group;
    request.allow_bfloat16 = options_.bfloat16_gradients;
    request.allow_bidirectional = options_.bidirectional_rings;
    const plan::PlannerResult best = plan::FindBestPlan(
        topology_, options_.network, request, {}, &plan_cache_);
    planned = true;
    plan_name = best.plan.name();
    plan_predicted = best.predicted_seconds;
    plan_estimated = best.estimated_seconds;
    plan::PlanExecutionConfig exec_config;
    exec_config.shard_update_seconds = summation.shard_update_seconds;
    const plan::PlanExecutionResult exec =
        plan::ExecutePlan(network, best.plan, request.elems, exec_config);
    coll::GradientSummationResult mapped;
    mapped.reduce_seconds = exec.reduce_seconds;
    mapped.update_seconds = exec.update_seconds;
    mapped.broadcast_seconds = exec.broadcast_seconds;
    mapped.phase_seconds = exec.summation_phases;
    mapped.max_owned_elems = exec.max_owned_elems;
    return mapped;
  }();
  step.allreduce = result.reduce_seconds + result.broadcast_seconds;
  // Optional overlap of the gradient reduction with backprop: only time
  // actually coverable by compute can be hidden, and never more than the
  // all-reduce itself (an overlap fraction > 1 must saturate, not produce a
  // negative exposed-communication term).
  step.overlapped = std::min({options_.allreduce_overlap_fraction *
                                  step.allreduce,
                              step.allreduce, step.compute});
  step.weight_update =
      options_.weight_update_sharding
          ? result.update_seconds
          : optim::WeightUpdateSeconds(*optimizer, summation.elems,
                                       options_.core.peak_vector_flops,
                                       options_.core.hbm_bandwidth);

  // DLRM: partitioned embedding tables exchange activations/gradients in an
  // all-to-all each step (Section 4.6).
  if (spec.embedding_parameters > 0) {
    // Forward activation gather, backward gradient scatter, and the
    // optimizer's table-update traffic for 26 tables of dim 128.
    const Bytes embedding_bytes =
        static_cast<Bytes>(global_batch) * 26 * 128 * 4 * 3;
    step.embedding_comm =
        AllToAllSeconds(topology_, options_.network, embedding_bytes);
  }

  // Compute splits ~1:2 between forward and backward (standard backprop
  // cost: the backward pass does roughly twice the matmul work).
  const SimTime forward = step.compute / 3.0;
  if (recorder != nullptr) {
    trace::ScopedTimeOffset offset(recorder, trace_base);
    const trace::TraceRecorder::TrackId track =
        recorder->Track("system", "step");
    const SimTime comm_end = step.compute + result.total();
    const SimTime step_end = comm_end + step.embedding_comm;
    recorder->Complete(track, std::string("step ") + spec.name, 0.0, step_end);
    recorder->Complete(track, "forward", 0.0, forward);
    recorder->Complete(track, "backward", forward, step.compute);
    if (step.embedding_comm > 0) {
      recorder->Complete(track, "embedding-comm", comm_end, step_end);
    }
  }
  if (profiler != nullptr) {
    profiler->BeginStep(spec.name);
    profiler->Record(trace::StepPhase::kForward, forward);
    profiler->Record(trace::StepPhase::kBackward, step.compute - forward);
    profiler->Record(trace::StepPhase::kReduceScatterY,
                     result.phase_seconds.y_reduce_scatter);
    profiler->Record(trace::StepPhase::kReduceScatterX,
                     result.phase_seconds.x_reduce_scatter);
    profiler->Record(trace::StepPhase::kShardedUpdate, step.weight_update);
    profiler->Record(trace::StepPhase::kAllGatherX,
                     result.phase_seconds.x_all_gather);
    profiler->Record(trace::StepPhase::kAllGatherY,
                     result.phase_seconds.y_all_gather);
    profiler->Record(trace::StepPhase::kEmbeddingComm, step.embedding_comm);
    profiler->EndStep();
  }
  if (metrics != nullptr) {
    metrics->Histogram("step.total_us").Record(ToMicros(step.step()));
    network.ExportMetrics(*metrics);
    trace::ExportSimulatorMetrics(simulator, "step.sim", *metrics);
  }
  if (report != nullptr) {
    report->label = std::string("step ") + spec.name;
    report->phases.clear();
    report->phases.push_back({"forward", forward});
    report->phases.push_back({"backward", step.compute - forward});
    report->phases.push_back(
        {"Y-reduce-scatter", result.phase_seconds.y_reduce_scatter});
    report->phases.push_back(
        {"X-reduce-scatter", result.phase_seconds.x_reduce_scatter});
    report->phases.push_back({"sharded-update", step.weight_update});
    report->phases.push_back(
        {"X-all-gather", result.phase_seconds.x_all_gather});
    report->phases.push_back(
        {"Y-all-gather", result.phase_seconds.y_all_gather});
    if (step.embedding_comm > 0) {
      report->phases.push_back({"embedding-comm", step.embedding_comm});
    }
    report->step_seconds = step.step();
    report->compute_seconds = step.compute;
    report->comm_seconds = step.allreduce + step.embedding_comm;
    report->planned = planned;
    report->plan_name = plan_name;
    report->plan_predicted_seconds = plan_predicted;
    report->plan_estimated_seconds = plan_estimated;
    report->has_critical_path = true;
    report->critical_path = tracker.Analyze();
    report->metrics_json = metrics != nullptr ? metrics->ToJson() : "";
    if (recorder != nullptr) {
      // Stitch the causal chain through the timeline at the same offset the
      // collective's spans were recorded under.
      trace::ScopedTimeOffset offset(recorder, trace_base + step.compute);
      trace::EmitCriticalPathToTrace(report->critical_path, *recorder);
    }
  }
  return step;
}

EndToEndResult MultipodSystem::SimulateTraining(
    models::Benchmark benchmark, std::int64_t global_batch,
    int model_parallel_cores, frameworks::Framework framework) {
  const models::ModelSpec& spec = models::GetModelSpec(benchmark);
  const std::unique_ptr<optim::Optimizer> optimizer = OptimizerFor(benchmark);

  EndToEndResult result;
  result.steps = spec.StepsToConverge(global_batch);
  result.epochs = spec.EpochsToConverge(global_batch);
  result.step = SimulateStep(spec, global_batch, model_parallel_cores,
                             optimizer.get());
  result.train_seconds = result.steps * result.step.step();

  // Evaluation schedule: MLPerf evaluates ~every 4 epochs (20 fixed points
  // for the sub-epoch DLRM run).
  const int num_evals =
      benchmark == models::Benchmark::kDlrm
          ? 20
          : std::max(5, static_cast<int>(result.epochs / 4.0));
  // On-device eval forward passes.
  const double pod_flops = options_.core.peak_mxu_flops * num_cores() *
                           options_.max_utilization;
  const SimTime eval_compute =
      spec.eval_examples * spec.eval_flops_per_example / pod_flops;
  // Metric combination: host gather (TF) vs on-device all-reduce (JAX).
  const SimTime metric_path =
      frameworks::EvalMetricSeconds(framework, topology_.num_hosts());
  // Fixed per-eval loop overhead: pausing the train loop, weight handoff,
  // convergence check.
  const SimTime eval_loop_overhead = Millis(500);
  result.eval_seconds =
      num_evals * (eval_compute + metric_path + eval_loop_overhead);

  // CPU-side metric jobs (COCO eval ~20 s; DLRM AUC ~2 s with the fast C++
  // implementation). TF runs them on the coordinator; JAX round-robins them
  // over the workers (Section 4.4). Only queueing beyond the dispatch
  // cadence adds wall time.
  SimTime cpu_job = 0;
  if (benchmark == models::Benchmark::kSsd) {
    cpu_job = Seconds(3);
  } else if (benchmark == models::Benchmark::kMaskRcnn) {
    cpu_job = Seconds(8);
  } else if (benchmark == models::Benchmark::kDlrm) {
    cpu_job = Seconds(2);
  }
  if (cpu_job > 0 && num_evals > 1) {
    const SimTime interval = result.train_seconds / num_evals;
    // TF: the coordinator runs evals on a small local thread pool; JAX:
    // round-robin across the worker hosts.
    const int workers = framework == frameworks::Framework::kTensorFlow
                            ? 4
                            : std::min(topology_.num_hosts(), num_evals);
    const SimTime span =
        metrics::EvalScheduleSpan(num_evals, interval, cpu_job, workers);
    result.eval_seconds += std::max(0.0, span - (num_evals - 1) * interval);
  }
  return result;
}

FaultTolerantResult MultipodSystem::SimulateTrainingUnderFailures(
    models::Benchmark benchmark, std::int64_t global_batch,
    int model_parallel_cores, frameworks::Framework framework,
    const FaultToleranceOptions& fault_options) {
  FaultTolerantResult result;
  result.failure_free = SimulateTraining(benchmark, global_batch,
                                         model_parallel_cores, framework);
  const models::ModelSpec& spec = models::GetModelSpec(benchmark);
  const SimTime base =
      result.failure_free.train_seconds + result.failure_free.eval_seconds;

  result.system_mtbf =
      fault::SystemMtbf(num_chips(), fault_options.faults.chip_mtbf,
                        topology_.num_hosts(),
                        fault_options.faults.host_preemption_mtbf);
  result.checkpoint = fault::EstimateCheckpointCosts(
      spec, topology_.num_hosts(), fault_options.checkpoint);

  // Detection: a fatal fault stalls the next synchronous step; the runtime
  // notices when the step overruns its health-monitor deadline.
  const fault::HealthMonitor monitor(fault_options.monitor);
  result.detection_latency =
      monitor.DeadlineFor(result.failure_free.step.step());
  // Restart replays the full runtime bring-up of Table 2 plus the restore.
  result.restart_seconds =
      result.checkpoint.restore_seconds +
      frameworks::EstimateInitTime(framework, benchmark, num_chips()).total();

  if (fault_options.recovery.enabled) {
    // Event-driven path: replace the analytic expected-makespan formula with
    // a simulated fault -> decision -> downtime -> throughput timeline.
    const SimTime healthy_step = result.failure_free.step.step();

    // Checkpoint cadence: explicit, else the analytic optimum when a fatal
    // class is enabled, else none (scripted transient-only scenarios).
    SimTime tau = fault_options.checkpoint_interval;
    if (tau <= 0 && result.system_mtbf > 0) {
      fault::GoodputConfig goodput;
      goodput.system_mtbf = result.system_mtbf;
      goodput.checkpoint_write = result.checkpoint.write_seconds;
      goodput.detection_latency = result.detection_latency;
      goodput.restart_seconds = result.restart_seconds;
      const SimTime lo = std::max(healthy_step, Millis(1));
      const SimTime hi = std::max(base, 2 * lo);
      tau = fault::OptimalCheckpointInterval(base, goodput, lo, hi);
    }
    result.checkpoint_interval = std::max<SimTime>(tau, 0);

    // The pricing oracles. All three run throwaway estimates/simulations, so
    // they silence the thread-local trace/metrics/observer slots; the
    // recovered timeline stays bit-identical with or without a recorder.
    const std::unique_ptr<optim::Optimizer> optimizer = OptimizerFor(benchmark);
    const int chips_per_group = ChipsPerGroup(model_parallel_cores);
    plan::PlanRequest request;
    request.elems =
        std::max<std::int64_t>(1, spec.parameters / chips_per_group);
    request.model_parallel_stride = chips_per_group;
    request.allow_bfloat16 = options_.bfloat16_gradients;
    request.allow_bidirectional = options_.bidirectional_rings;
    request.search_threads = fault_options.recovery.search_threads;
    const plan::CollectivePlan paper = plan::PaperPlan(request);
    const plan::LoweredPlan lowered =
        plan::LowerPlan(topology_, paper, request.elems);
    const SimTime healthy_allreduce = result.failure_free.step.allreduce;

    recover::StepPricer pricer;
    pricer.healthy_step = healthy_step;
    // Closed-form comm estimate of the *current* schedule under the link
    // snapshot: a failed link on a used route prices at the stall constant
    // and trips any detection deadline.
    SimTime comm_healthy = 0;
    {
      trace::ScopedTrace no_trace(nullptr);
      trace::ScopedMetrics no_metrics(nullptr);
      sim::ScopedEventObserver no_observer(nullptr);
      telemetry::ScopedTelemetry no_telemetry(nullptr);
      comm_healthy =
          plan::EstimatePlanSeconds(topology_, options_.network, {}, lowered);
    }
    pricer.degraded_step = [this, healthy_step, healthy_allreduce, lowered,
                            comm_healthy](const plan::LinkHealthSet& health) {
      trace::ScopedTrace no_trace(nullptr);
      trace::ScopedMetrics no_metrics(nullptr);
      sim::ScopedEventObserver no_observer(nullptr);
      telemetry::ScopedTelemetry no_telemetry(nullptr);
      const SimTime comm =
          plan::EstimatePlanSeconds(topology_, options_.network, health,
                                    lowered);
      if (comm_healthy <= 0) return healthy_step;
      return healthy_step + healthy_allreduce * (comm / comm_healthy - 1.0);
    };
    // Planner search under the snapshot vs under full health: the searched
    // schedules' predicted ratio scales the healthy all-reduce share.
    pricer.replanned_step = [this, healthy_step, healthy_allreduce,
                             request](const plan::LinkHealthSet& health) {
      trace::ScopedTrace no_trace(nullptr);
      trace::ScopedMetrics no_metrics(nullptr);
      sim::ScopedEventObserver no_observer(nullptr);
      telemetry::ScopedTelemetry no_telemetry(nullptr);
      const SimTime planned_healthy =
          plan::FindBestPlan(topology_, options_.network, request, {},
                             &plan_cache_)
              .predicted_seconds;
      const SimTime planned =
          plan::FindBestPlan(topology_, options_.network, request, health,
                             &plan_cache_)
              .predicted_seconds;
      if (planned_healthy <= 0) return healthy_step;
      const double ratio = std::max(planned / planned_healthy, 1.0);
      return healthy_step + healthy_allreduce * (ratio - 1.0);
    };
    // Same job carved down to a healthy sub-mesh: a throwaway system on the
    // sliced shape re-prices the full step (memoized per shape — the carve
    // search re-asks the same rectangles).
    auto shrunk_memo =
        std::make_shared<std::map<std::pair<int, int>, SimTime>>();
    pricer.shrunk_step = [this, &spec, global_batch, model_parallel_cores,
                          &optimizer, shrunk_memo](
                             const topo::SubmeshRect& rect) {
      const std::pair<int, int> key{rect.size_x, rect.size_y};
      const auto it = shrunk_memo->find(key);
      if (it != shrunk_memo->end()) return it->second;
      trace::ScopedTrace no_trace(nullptr);
      trace::ScopedMetrics no_metrics(nullptr);
      sim::ScopedEventObserver no_observer(nullptr);
      telemetry::ScopedTelemetry no_telemetry(nullptr);
      // The carve keeps Y wrap links only when it spans the full Y extent.
      const bool wrap_y =
          topology_.config().wrap_y && rect.size_y == topology_.size_y();
      MultipodSystem shrunk(
          topo::TopologyConfig::Slice(rect.size_x, rect.size_y, wrap_y),
          options_);
      const SimTime step =
          shrunk
              .SimulateStep(spec, global_batch, model_parallel_cores,
                            optimizer.get())
              .step();
      (*shrunk_memo)[key] = step;
      return step;
    };

    recover::ControllerConfig controller_config;
    controller_config.policy = fault_options.recovery;
    controller_config.costs.checkpoint_write = result.checkpoint.write_seconds;
    controller_config.costs.restore_seconds =
        result.checkpoint.restore_seconds;
    controller_config.costs.restart_seconds = result.restart_seconds;
    controller_config.pricer = pricer;
    controller_config.total_work = base;
    controller_config.detection_deadline = result.detection_latency;
    controller_config.checkpoint_interval = result.checkpoint_interval;
    controller_config.faults = fault_options.faults;
    controller_config.x_granularity = chips_per_group;

    // Run until the work completes; a pathological schedule (back-to-back
    // permanent faults) may outlive the first horizon, so double and retry
    // on truncation. Each attempt replays the same seeded schedule prefix,
    // so the final completed timeline is deterministic.
    recover::RecoveryTimeline timeline;
    SimTime horizon = std::max<SimTime>(2 * base, Seconds(1));
    telemetry::TelemetrySession* telemetry_session =
        telemetry::CurrentTelemetry();
    for (int round = 0; round < 6; ++round) {
      sim::Simulator simulator;
      net::Network network(&topology_, options_.network, &simulator);
      fault::FaultInjector injector(&network, fault_options.faults);
      recover::RecoveryController controller(&network, &injector,
                                             controller_config);
      if (!fault_options.scripted_faults.empty()) {
        injector.ArmScripted(fault_options.scripted_faults);
      } else {
        injector.Arm(horizon);
      }
      // Continuous telemetry over the recovery round: run/net/sim probes on
      // telemetry-class events (work timestamps stay bit-identical), ticking
      // until the controller finishes. Each retry round begins a fresh run;
      // only the completed round is committed, so truncated rounds never
      // reach the export.
      std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
      if (telemetry_session != nullptr) {
        telemetry_session->BeginRun("recovery/" + spec.name, simulator.now());
        sampler = std::make_unique<telemetry::TimeSeriesSampler>(
            &simulator, telemetry_session);
        recover::RegisterRecoveryProbes(*sampler, controller);
        telemetry::RegisterNetworkProbes(*sampler, network);
        telemetry::RegisterSimulatorProbes(*sampler, simulator);
        for (const fault::FaultEvent& event : fault_options.scripted_faults) {
          if (event.kind == fault::FaultKind::kLinkFlap) {
            telemetry::RegisterLinkProbes(*sampler, network, event.link);
          }
        }
        const recover::RecoveryController* ctl = &controller;
        sampler->set_stop_predicate([ctl] { return ctl->finished(); });
        sampler->Start();
      }
      timeline = controller.Run(horizon);
      if (timeline.completed) {
        if (telemetry_session != nullptr) telemetry_session->CommitRun();
        break;
      }
      horizon *= 2;
    }

    result.recovered = true;
    result.expected_seconds = timeline.makespan;
    result.expected_failures = timeline.faults_applied;
    // Same semantic as the analytic model: everything past the failure-free
    // makespan — checkpoint writes included — is badput.
    result.goodput = timeline.makespan > 0 ? base / timeline.makespan : 1.0;
    if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
      timeline.ExportMetrics(*metrics);
    }
    result.timeline = std::move(timeline);
    return result;
  }

  if (result.system_mtbf <= 0) {
    // No fatal fault class enabled: exact degeneration to the existing
    // failure-free end-to-end result.
    result.expected_seconds = base;
    return result;
  }

  fault::GoodputConfig goodput;
  goodput.system_mtbf = result.system_mtbf;
  goodput.checkpoint_write = result.checkpoint.write_seconds;
  goodput.detection_latency = result.detection_latency;
  goodput.restart_seconds = result.restart_seconds;
  if (fault_options.checkpoint_interval > 0) {
    result.checkpoint_interval = fault_options.checkpoint_interval;
  } else {
    // Cannot checkpoint more often than one step; no point less often than
    // the whole run.
    const SimTime lo = std::max(result.failure_free.step.step(), Millis(1));
    const SimTime hi = std::max(base, 2 * lo);
    result.checkpoint_interval =
        fault::OptimalCheckpointInterval(base, goodput, lo, hi);
  }
  goodput.checkpoint_interval = result.checkpoint_interval;
  const fault::GoodputResult expected = fault::ExpectedRunTime(base, goodput);
  result.expected_seconds = expected.expected_seconds;
  result.expected_failures = expected.expected_failures;
  result.goodput = expected.goodput();
  return result;
}

EndToEndResult MultipodSystem::SimulateSubmission(
    models::Benchmark benchmark, frameworks::Framework framework) {
  const models::SubmissionScale scale = models::GetSubmissionScale(benchmark);
  TPU_CHECK_EQ(scale.chips, num_chips())
      << "system size does not match the submission scale for "
      << models::BenchmarkName(benchmark);
  return SimulateTraining(benchmark, scale.global_batch,
                          scale.model_parallel_cores, framework);
}

}  // namespace tpu::core
