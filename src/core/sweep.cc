#include "core/sweep.h"

#include "common/check.h"

namespace tpu::core {

std::vector<SweepPoint> RunScalingSweep(const SweepConfig& config) {
  TPU_CHECK(!config.chip_counts.empty());
  TPU_CHECK(config.batch_for != nullptr);
  std::vector<SweepPoint> points;
  points.reserve(config.chip_counts.size());
  for (int chips : config.chip_counts) {
    MultipodSystem system(chips, config.options);
    SweepPoint point;
    point.chips = chips;
    point.global_batch = config.batch_for(chips);
    point.model_parallel_cores = config.model_parallel_cores;
    point.run = system.SimulateTraining(config.benchmark, point.global_batch,
                                        config.model_parallel_cores,
                                        config.framework);
    point.step = point.run.step;
    points.push_back(std::move(point));
  }
  return points;
}

void WriteSweepCsv(std::ostream& os, const std::vector<SweepPoint>& points) {
  os << "chips,batch,mp,compute_ms,allreduce_ms,weight_update_ms,"
        "embedding_ms,step_ms,allreduce_frac,steps,epochs,train_s,eval_s,"
        "minutes\n";
  for (const SweepPoint& p : points) {
    os << p.chips << "," << p.global_batch << "," << p.model_parallel_cores
       << "," << ToMillis(p.step.compute) << "," << ToMillis(p.step.allreduce)
       << "," << ToMillis(p.step.weight_update) << ","
       << ToMillis(p.step.embedding_comm) << "," << ToMillis(p.step.step())
       << "," << p.step.allreduce_fraction() << "," << p.run.steps << ","
       << p.run.epochs << "," << p.run.train_seconds << ","
       << p.run.eval_seconds << "," << p.run.minutes() << "\n";
  }
}

std::vector<SpeedupRow> SpeedupsRelativeToFirst(
    const std::vector<SweepPoint>& points) {
  std::vector<SpeedupRow> rows;
  if (points.empty()) return rows;
  const double base_minutes = points.front().run.minutes();
  const double base_throughput =
      static_cast<double>(points.front().global_batch) /
      points.front().step.step();
  for (const SweepPoint& p : points) {
    SpeedupRow row;
    row.chips = p.chips;
    row.end_to_end = base_minutes / p.run.minutes();
    row.throughput =
        (static_cast<double>(p.global_batch) / p.step.step()) /
        base_throughput;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tpu::core
