#include "core/sweep.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/thread_pool.h"
#include "telemetry/telemetry.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::core {
namespace {

SweepPoint RunSweepPoint(const SweepConfig& config, int chips) {
  MultipodSystem system(chips, config.options);
  SweepPoint point;
  point.chips = chips;
  point.global_batch = config.batch_for(chips);
  point.model_parallel_cores = config.model_parallel_cores;
  point.run = system.SimulateTraining(config.benchmark, point.global_batch,
                                      config.model_parallel_cores,
                                      config.framework);
  point.step = point.run.step;
  return point;
}

}  // namespace

std::vector<SweepPoint> RunScalingSweep(const SweepConfig& config) {
  TPU_CHECK(!config.chip_counts.empty());
  TPU_CHECK(config.batch_for != nullptr);
  const std::size_t n = config.chip_counts.size();
  std::size_t threads =
      config.threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : static_cast<std::size_t>(std::max(config.threads, 1));
  threads = std::min(threads, n);
  // The trace recorder, metrics registry and telemetry session are
  // thread-local, so worker threads would simulate silently; to keep an
  // observed sweep's output independent of the thread count, run it
  // serially.
  if (trace::CurrentTrace() != nullptr || trace::CurrentMetrics() != nullptr ||
      telemetry::CurrentTelemetry() != nullptr) {
    threads = 1;
  }

  std::vector<SweepPoint> points(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      points[i] = RunSweepPoint(config, config.chip_counts[i]);
    }
    return points;
  }
  // Every point is an independent simulation on its own Simulator/Network
  // with no shared mutable state; writing each result into its fixed slot
  // makes the merged output identical to the serial run's.
  ThreadPool pool(threads);
  pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      points[i] = RunSweepPoint(config, config.chip_counts[i]);
    }
  });
  return points;
}

void WriteSweepCsv(std::ostream& os, const std::vector<SweepPoint>& points) {
  os << "chips,batch,mp,compute_ms,allreduce_ms,weight_update_ms,"
        "embedding_ms,step_ms,allreduce_frac,steps,epochs,train_s,eval_s,"
        "minutes\n";
  for (const SweepPoint& p : points) {
    os << p.chips << "," << p.global_batch << "," << p.model_parallel_cores
       << "," << ToMillis(p.step.compute) << "," << ToMillis(p.step.allreduce)
       << "," << ToMillis(p.step.weight_update) << ","
       << ToMillis(p.step.embedding_comm) << "," << ToMillis(p.step.step())
       << "," << p.step.allreduce_fraction() << "," << p.run.steps << ","
       << p.run.epochs << "," << p.run.train_seconds << ","
       << p.run.eval_seconds << "," << p.run.minutes() << "\n";
  }
}

std::vector<SpeedupRow> SpeedupsRelativeToFirst(
    const std::vector<SweepPoint>& points) {
  std::vector<SpeedupRow> rows;
  if (points.empty()) return rows;
  const double base_minutes = points.front().run.minutes();
  const double base_throughput =
      static_cast<double>(points.front().global_batch) /
      points.front().step.step();
  for (const SweepPoint& p : points) {
    SpeedupRow row;
    row.chips = p.chips;
    row.end_to_end = base_minutes / p.run.minutes();
    row.throughput =
        (static_cast<double>(p.global_batch) / p.step.step()) /
        base_throughput;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tpu::core
