// The paper's system, assembled: a TPU-v3 multipod (or pod slice) running an
// MLPerf benchmark with the scalability techniques of Section 3.
//
// MultipodSystem combines
//   * the discrete-event interconnect simulation (topology + network +
//     collectives) for the per-step gradient summation — the 2-D Y/X ring
//     schedule, bf16 payloads, strided model-parallel rings,
//   * the analytic TPU core roofline for per-step compute,
//   * weight-update sharding (optimizer hook inside the summation),
//   * SPMD model-parallel speedups measured on the representative blocks,
//   * the framework runtime models for init and eval-metric paths,
// into per-step breakdowns (Figures 6, 8), scaling sweeps (Figures 5, 7, 9,
// 11) and end-to-end MLPerf times (Table 1, Figure 10).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "fault/health_monitor.h"
#include "frameworks/runtime_model.h"
#include "hlo/cost_model.h"
#include "models/model_specs.h"
#include "network/network.h"
#include "optim/optimizer.h"
#include "plan/cache.h"
#include "recover/recovery.h"
#include "sim/partitioned_simulator.h"
#include "topology/topology.h"
#include "trace/run_report.h"
#include "trace/step_profiler.h"

namespace tpu::core {

// The slice/multipod shape the paper uses for a given chip count: multiples
// of 1024 become chains of 32x32 pods along X; smaller counts become pod
// slices (e.g. 512 -> 32x16).
topo::TopologyConfig TopologyForChips(int num_chips);

struct SystemOptions {
  net::NetworkConfig network;
  hlo::TpuCoreModel core;
  bool weight_update_sharding = true;
  bool bfloat16_gradients = true;
  bool bidirectional_rings = true;
  // Fraction of the gradient all-reduce hidden under backprop compute
  // (layer k's gradients reduce while layer k-1 still computes). 0 = the
  // fully exposed schedule the per-step figures assume; the overlap bench
  // sweeps this as a forward-looking ablation.
  double allreduce_overlap_fraction = 0.0;
  // Section 4.5's XLA communication optimizations for model parallelism
  // (fused gradient all-reduce across model cores and replicas, minimized
  // resharding, halo barrier optimization). Off reproduces the ~30% comm
  // overhead the paper started from; on brings it to ~10%.
  bool optimized_model_parallel_comm = true;
  // Search for the gradient-summation schedule instead of hard-wiring the
  // 2-D Y->X rings: each step executes the best CollectivePlan found by
  // plan::FindBestPlan (memoized in the system's PlanCache, so the search
  // runs once per distinct payload/stride). On a healthy machine the search
  // rediscovers the paper's schedule and the step timing is bit-identical to
  // collective_planner = false; the flag buys adaptivity, not speed, until
  // links degrade. bfloat16_gradients / bidirectional_rings become the
  // search's allow_* bounds rather than fixed choices.
  bool collective_planner = false;
  // Peak MXU fraction reachable at large batch, and the rolloff constant in
  // matrix rows (one 128-row MXU tile).
  double max_utilization = 0.55;
  double rows_half_saturation = 128;
  // Parallel discrete-event engine request for the per-step gradient
  // summation (sim/partitioned_simulator.h). Defaults to disabled/1-thread,
  // which leaves every simulated path byte-identical to the serial engine.
  // With enable and threads > 1, qualifying steps (multi-pod, time-only,
  // unobserved) drain pod-confined collective phases on parallel partition
  // lanes — same timestamps and event counts at any thread count. Observed
  // steps (trace/metrics/critical-path sessions) and the planner's candidate
  // evaluations fall back to the serial path automatically.
  sim::PdesConfig pdes;
};

// Accelerator generations: TPU-v3 is the paper's machine; TPU-v4 carries the
// paper's footnote result (DLRM 1.21 min on v4 vs 2.4 on v3). Returns the
// SystemOptions for the generation (per-core roofline + interconnect).
enum class TpuGeneration { kV3, kV4 };
SystemOptions OptionsForGeneration(TpuGeneration generation);

struct StepBreakdown {
  SimTime compute = 0;        // forward + backward on the worst core
  SimTime allreduce = 0;      // gradient summation (reduce + broadcast)
  SimTime overlapped = 0;     // portion of the all-reduce hidden by compute
  SimTime weight_update = 0;  // optimizer (sharded or replicated)
  SimTime embedding_comm = 0; // DLRM all-to-all for partitioned tables

  SimTime step() const {
    // Saturate: overlap can hide communication, never create negative
    // exposed-communication time (an overlap fraction > 1 used to).
    const SimTime hidden = std::min(overlapped, allreduce);
    return compute + allreduce - hidden + weight_update + embedding_comm;
  }
  double allreduce_fraction() const {
    return step() > 0 ? allreduce / step() : 0;
  }
};

struct EndToEndResult {
  std::int64_t steps = 0;
  StepBreakdown step;
  SimTime train_seconds = 0;
  SimTime eval_seconds = 0;
  double epochs = 0;
  double minutes() const { return ToMinutes(train_seconds + eval_seconds); }
};

// Inputs for the fault-tolerant end-to-end model.
struct FaultToleranceOptions {
  fault::FaultModelConfig faults;       // per-unit MTBFs (chip/link/host)
  fault::HealthMonitorConfig monitor;   // phase-deadline detection
  fault::CheckpointConfig checkpoint;   // write/restore cost model
  // Useful seconds between checkpoints; <= 0 picks the numeric optimum of
  // the expected-makespan curve.
  SimTime checkpoint_interval = 0;
  // Event-driven recovery orchestration (recover/controller.h). Disabled
  // (the default) keeps the analytic Young/Daly expected-makespan model
  // bit-for-bit; enabled replaces it with a simulated fault -> decision ->
  // downtime -> degraded-throughput timeline.
  recover::RecoveryPolicy recovery;
  // When non-empty (and recovery is enabled), this hand-written schedule is
  // armed instead of the MTBF-generated one — canonical scenarios for tests
  // and benches. Ignored by the analytic path.
  std::vector<fault::FaultEvent> scripted_faults;
};

struct FaultTolerantResult {
  EndToEndResult failure_free;
  SimTime system_mtbf = 0;  // <= 0: failure-free (no fatal class enabled)
  fault::CheckpointCosts checkpoint;
  SimTime detection_latency = 0;   // health-monitor deadline on one step
  SimTime restart_seconds = 0;     // restore + framework re-init
  SimTime checkpoint_interval = 0; // the interval actually used
  SimTime expected_seconds = 0;    // expected makespan under failures
  double expected_failures = 0;
  double goodput = 1.0;            // failure-free / expected
  // Filled when FaultToleranceOptions::recovery.enabled: the event-driven
  // recovery timeline the expected_seconds/goodput above were read from.
  bool recovered = false;
  recover::RecoveryTimeline timeline;
};

class MultipodSystem {
 public:
  explicit MultipodSystem(int num_chips, SystemOptions options = {});

  // Builds the system on an explicit mesh shape instead of the paper's
  // canonical slice for the chip count — degraded-width scenarios (e.g. the
  // 16x8 recovery suite, or a carved sub-mesh after an elastic shrink) need
  // shapes TopologyForChips would never pick.
  explicit MultipodSystem(const topo::TopologyConfig& config,
                          SystemOptions options = {});

  int num_chips() const { return topology_.num_chips(); }
  int num_cores() const { return topology_.num_cores(); }
  const topo::MeshTopology& topology() const { return topology_; }
  const SystemOptions& options() const { return options_; }
  // Memoized schedule searches (populated when collective_planner is on).
  const plan::PlanCache& plan_cache() const { return plan_cache_; }

  // Simulates one training step. `model_parallel_cores` > 1 engages the
  // sharded-weights path (gradient payload 1/mp, X rings hop over peers).
  // `optimizer` drives the weight-update cost; pass nullptr for SGD.
  // `profiler`, when non-null, receives one profiled step decomposed into
  // named phases (forward, backward, the five summation phases, embedding
  // comm). When a trace recorder is installed, the step also lands on the
  // timeline: the internal collective simulation runs on a fresh clock, so
  // its spans are shifted past the analytic compute phases via the
  // recorder's time offset.
  //
  // `report`, when non-null, opts the step into causal event tracking: the
  // collective execution runs with a CriticalPathTracker installed (the
  // planner's throwaway candidate evaluations stay excluded) and the report
  // is filled with the step breakdown, the extracted critical path with
  // link/phase attribution, the slack and what-if tables, planner provenance
  // and a metrics snapshot. With a trace recorder also installed, the
  // critical path lands on the timeline as flow-linked slices.
  StepBreakdown SimulateStep(const models::ModelSpec& spec,
                             std::int64_t global_batch,
                             int model_parallel_cores,
                             const optim::Optimizer* optimizer = nullptr,
                             trace::StepProfiler* profiler = nullptr,
                             trace::RunReport* report = nullptr);

  // Full MLPerf run at this scale: steps-to-converge x step time + the
  // evaluation schedule. Framework affects only the eval-metric path (init
  // time is reported separately, as in Table 2).
  EndToEndResult SimulateTraining(models::Benchmark benchmark,
                                  std::int64_t global_batch,
                                  int model_parallel_cores,
                                  frameworks::Framework framework);

  // Convenience: run the benchmark at its MLPerf v0.7 submission scale.
  EndToEndResult SimulateSubmission(models::Benchmark benchmark,
                                    frameworks::Framework framework);

  // Fault-tolerant end-to-end model: composes the failure-free result with
  // the fault model, health-monitor detection latency, and checkpoint/restart
  // costs into the expected makespan under failures (see fault/checkpoint.h).
  FaultTolerantResult SimulateTrainingUnderFailures(
      models::Benchmark benchmark, std::int64_t global_batch,
      int model_parallel_cores, frameworks::Framework framework,
      const FaultToleranceOptions& fault_options);

 private:
  topo::MeshTopology topology_;
  SystemOptions options_;
  plan::PlanCache plan_cache_;
};

// Speedup of the representative SPMD block of `benchmark` on `cores`
// partitions relative to 1 core, including the partitioner's inserted
// communication on neighboring cores (Figure 9). cores must not exceed the
// model's max_model_parallel_cores to be meaningful, but any power of two
// is accepted.
double ModelParallelSpeedup(models::Benchmark benchmark, int cores,
                            const SystemOptions& options = {});

// The model-parallel communication share of the partitioned block's step
// (Section 4.5: MaskRCNN's was ~30% before the XLA comm optimizations and
// ~10% after).
double ModelParallelCommFraction(models::Benchmark benchmark, int cores,
                                 const SystemOptions& options = {});

// Analytic all-to-all over the slice (DLRM partitioned embedding exchange):
// limited by bisection bandwidth and per-message fan-out overheads.
SimTime AllToAllSeconds(const topo::MeshTopology& topology,
                        const net::NetworkConfig& network, Bytes total_bytes);

}  // namespace tpu::core
