// Scaling-sweep driver + CSV export: the programmatic form of the paper's
// figures, for downstream plotting. Each sweep point runs the full step
// simulation and MLPerf end-to-end estimate at one (chips, batch) setting.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/multipod.h"

namespace tpu::core {

struct SweepPoint {
  int chips = 0;
  std::int64_t global_batch = 0;
  int model_parallel_cores = 1;
  StepBreakdown step;
  EndToEndResult run;
};

struct SweepConfig {
  models::Benchmark benchmark = models::Benchmark::kResNet50;
  std::vector<int> chip_counts;
  // Batch at each scale (e.g. the Figure 5/7 schedules).
  std::function<std::int64_t(int chips)> batch_for;
  int model_parallel_cores = 1;
  frameworks::Framework framework = frameworks::Framework::kJax;
  SystemOptions options;
  // Worker threads for the sweep. Each point is an independent deterministic
  // simulation, so points run concurrently and are merged in chip_counts
  // order: the result (and the CSV written from it) is byte-identical at any
  // thread count. 0 picks the hardware concurrency; a traced or metered run
  // (trace/metrics registry installed) falls back to serial so the observable
  // side channels stay identical too.
  int threads = 1;
};

// Runs the sweep; points come back in chip_counts order regardless of
// `config.threads`.
std::vector<SweepPoint> RunScalingSweep(const SweepConfig& config);

// Writes the sweep as CSV with a fixed column schema:
// chips,batch,mp,compute_ms,allreduce_ms,weight_update_ms,embedding_ms,
// step_ms,allreduce_frac,steps,epochs,train_s,eval_s,minutes
void WriteSweepCsv(std::ostream& os, const std::vector<SweepPoint>& points);

// Derived columns for speedup plots: end-to-end and throughput speedups
// relative to the first point.
struct SpeedupRow {
  int chips = 0;
  double end_to_end = 1.0;
  double throughput = 1.0;
};
std::vector<SpeedupRow> SpeedupsRelativeToFirst(
    const std::vector<SweepPoint>& points);

}  // namespace tpu::core
