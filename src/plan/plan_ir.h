// Declarative IR for searched collective schedules.
//
// The paper's 2-D Y-then-X gradient summation (Section 3.3) is one point in
// a space of legal reduction schedules: dimension orders can swap, rings can
// be replaced by recursive halving-doubling, the whole mesh can run one flat
// snake ring, payloads can travel compressed or uncompressed, mono- or
// bidirectionally, sequentially or chunk-pipelined. A CollectivePlan names
// one such schedule as data — an ordered list of phases — so the planner can
// enumerate candidates (plan/generator.h), price them (plan/cost.h), cache
// the winner (plan/cache.h) and execute it (plan/executor.h) without any of
// those layers hard-coding a schedule.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "collectives/ring.h"
#include "network/network.h"
#include "topology/topology.h"

namespace tpu::plan {

// What a phase does to the payload.
enum class PhaseKind {
  kReduceScatter,   // shrink: each participant ends owning a shard
  kAllGather,       // grow: restore the range reduced by the matching RS
  kAllReduceInOne,  // RS immediately followed by AG on the same groups
};

// How the phase moves data.
enum class PhaseAlgorithm {
  kRing,             // barrier-stepped ring passes (coll/ring.h)
  kHalvingDoubling,  // recursive halving/doubling (coll/halving_doubling.h)
};

// Which communicator groups the phase runs over.
enum class PlanDim {
  kY,     // one group per column (torus rings within a pod)
  kX,     // one group per row, strided over model-parallel peers
  kFlat,  // a single boustrophedon ring over the whole mesh
};

const char* ToString(PhaseKind kind);
const char* ToString(PhaseAlgorithm algorithm);
const char* ToString(PlanDim dim);

struct PlanPhase {
  PhaseKind kind = PhaseKind::kReduceScatter;
  PhaseAlgorithm algorithm = PhaseAlgorithm::kRing;
  PlanDim dim = PlanDim::kY;
  // Model-parallel stride: groups along X connect every stride-th chip
  // (Figure 4's dotted rings). Must be 1 on Y/flat phases.
  int stride = 1;

  friend bool operator==(const PlanPhase&, const PlanPhase&) = default;
};

struct CollectivePlan {
  std::vector<PlanPhase> phases;
  // Split payloads across both group directions (ring phases only).
  bool bidirectional = true;
  // bfloat16 wire compression (Section 3.3).
  bool bfloat16_wire = false;
  // > 1: chunk-pipelined execution — the payload splits into `chunks` slices
  // whose phases overlap. Only the canonical ring 2-D [Y->X] shape supports
  // pipelining (it lowers onto PipelinedTwoDGradientSummation).
  int chunks = 1;

  friend bool operator==(const CollectivePlan&, const CollectivePlan&) =
      default;

  coll::CollectiveOptions collective_options() const {
    coll::CollectiveOptions options;
    options.bidirectional = bidirectional;
    options.bfloat16_wire = bfloat16_wire;
    return options;
  }

  // Stable human-readable identity, e.g. "ring-2d[Y->X] bidir bf16",
  // "ring-flat mono fp32", "hd-2d[X->Y] mono bf16", "ring-2d[Y->X]/s4 bidir
  // bf16 c4". Used for deterministic tie-breaking and golden checks.
  std::string name() const;
};

// What the caller wants summed, and how hard to search.
struct PlanRequest {
  std::int64_t elems = 0;        // per-chip gradient payload, float elements
  int model_parallel_stride = 1; // X groups hop over model-parallel peers
  bool allow_bfloat16 = true;    // search may compress the wire format
  bool allow_bidirectional = true;
  // > 1 also enumerates chunk-pipelined variants up to this many chunks
  // (powers of two). 1 keeps the search space sequential-only.
  int max_chunks = 1;
  // Candidates re-priced on the discrete-event simulator after closed-form
  // pruning; the rest are ranked by estimate alone.
  int des_top_k = 3;
  // Worker threads for the exact re-pricing tier. Each shortlisted candidate
  // runs on its own throwaway Simulator and results are reduced in shortlist
  // order, so the chosen plan and its predicted time are identical at any
  // thread count (and this field is deliberately not part of the plan-cache
  // key). 0 picks the hardware concurrency.
  int search_threads = 1;

  friend bool operator==(const PlanRequest&, const PlanRequest&) = default;
};

// The fault view a plan was searched under: which directed links are failed
// and which carry a slowdown factor. Part of the cache key, so a detection
// that changes link health re-plans instead of reusing a now-stalled
// schedule.
struct LinkHealthSet {
  std::vector<topo::LinkId> failed;                       // ascending
  std::vector<std::pair<topo::LinkId, double>> degraded;  // ascending by link

  // Snapshot of the network's current link state.
  static LinkHealthSet FromNetwork(const net::Network& network);

  // Re-applies this snapshot to a (fresh) network, e.g. the throwaway
  // evaluation networks the cost model prices candidates on.
  void ApplyTo(net::Network& network) const;

  bool healthy() const { return failed.empty() && degraded.empty(); }

  // "" when healthy, else a stable "|F:..|D:.." fragment for cache keys.
  std::string CacheKeyFragment() const;

  friend bool operator==(const LinkHealthSet&, const LinkHealthSet&) = default;
};

// Structural legality of `plan` on `topo`:
//   * phases non-empty; a flat phase is the only phase and has stride 1;
//   * stride >= 1, only on X phases, and tiles size_x;
//   * every all-gather mirrors the innermost open reduce-scatter (same dim,
//     algorithm, stride), and every reduce-scatter is eventually mirrored;
//   * all-reduce-in-one phases don't mix with open RS/AG pairs;
//   * no dimension is reduced twice;
//   * halving-doubling groups are power-of-two sized (and unstrided);
//   * chunks > 1 only on the canonical ring 2-D [Y->X] shape;
//   * the plan covers the machine: flat, or both Y and X (dims of extent 1
//     are trivially covered).
// Returns false and fills `error` (when non-null) on the first violation.
bool ValidatePlan(const topo::MeshTopology& topo, const CollectivePlan& plan,
                  std::string* error = nullptr);

}  // namespace tpu::plan
