// Candidate enumeration: every legal CollectivePlan worth pricing.
//
// The search space (Section 3.3's design space, made explicit):
//   * ring 2-D reduce-scatter/all-gather in both dimension orders
//     ([Y->X] — the paper's schedule — and [X->Y]), with model-parallel
//     strided X groups when requested,
//   * the flat 1-D snake ring over the whole mesh (the baseline the 2-D
//     schedule replaced),
//   * recursive halving-doubling in both 2-D orders on power-of-two meshes,
//   * naive per-dimension all-reduce chains (reduce the full payload along
//     each dimension in turn — no payload shrink between dimensions),
//   * chunk-pipelined variants of the canonical [Y->X] shape when the
//     request allows more than one chunk,
// each crossed with {mono, bidirectional} x {fp32, bf16} as the request's
// allow_* flags permit. Enumeration order and plan names are deterministic:
// identical requests yield identical candidate lists.
#pragma once

#include <vector>

#include "plan/plan_ir.h"
#include "topology/topology.h"

namespace tpu::plan {

// Every candidate validates under ValidatePlan and carries a unique name().
std::vector<CollectivePlan> GeneratePlans(const topo::MeshTopology& topo,
                                          const PlanRequest& request);

// The paper's fixed schedule as a plan: ring 2-D [Y->X] with the request's
// stride and preferred wire options. This is what SystemOptions without the
// planner executes (TwoDGradientSummation), and the golden plan the planner
// is expected to rediscover on a healthy multipod.
CollectivePlan PaperPlan(const PlanRequest& request);

}  // namespace tpu::plan
