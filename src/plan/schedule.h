// Lowering: CollectivePlan -> executable stages of concrete ring/group specs.
//
// The lowering walks the plan phase by phase, tracking which payload
// sub-ranges every chip owns, and materializes one coll::RingSpec per
// (group, owned range) — the exact lists TwoDGradientSummation builds by
// hand for the paper's fixed schedule. A reduce-scatter and its mirroring
// all-gather share one spec list (an all-gather re-runs the same groups over
// the same ranges in reverse), and all-reduce-in-one phases expand into an
// RS stage plus an AG stage on shared specs. Both the closed-form cost
// estimate and the discrete-event executor consume the same LoweredPlan, so
// they price and run the identical schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collectives/ring.h"
#include "plan/plan_ir.h"
#include "topology/topology.h"

namespace tpu::plan {

struct LoweredStage {
  enum class Op { kReduceScatter, kAllGather };

  Op op = Op::kReduceScatter;
  PhaseAlgorithm algorithm = PhaseAlgorithm::kRing;
  PlanDim dim = PlanDim::kY;
  // Static phase label ("Y-reduce-scatter", "X-all-gather", ...), matching
  // the names TwoDGradientSummation reports for monitored phases.
  const char* name = "";
  // Shared between a reduce-scatter and its mirroring all-gather.
  std::shared_ptr<std::vector<coll::RingSpec>> specs;
};

struct LoweredPlan {
  CollectivePlan plan;
  std::vector<LoweredStage> stages;
  // The sharded weight update runs after stages[update_after] (the last
  // reduce-scatter stage), on each chip's then-owned elements.
  int update_after = 0;
  // Per-chip owned element counts at the update point, and their max.
  std::vector<std::int64_t> owned_elems;
  std::int64_t max_owned_elems = 0;
};

// Lowers `plan` (which must validate on `topo`) over a payload of `elems`
// float elements per chip. `chip_buffers` is empty for timing-only lowering
// or holds one payload pointer per chip id; spec labels are attached only
// when a trace recorder is installed (mirroring TwoDGradientSummation).
// Ignores plan.chunks — chunked plans execute through the pipelined 2-D
// path, but lower sequentially for cost estimation.
LoweredPlan LowerPlan(const topo::MeshTopology& topo,
                      const CollectivePlan& plan, std::int64_t elems,
                      std::vector<float*> chip_buffers = {});

}  // namespace tpu::plan
