#include "plan/generator.h"

#include <string>

#include "common/check.h"
#include "common/math_util.h"

namespace tpu::plan {
namespace {

// Ring 2-D RS/AG palindrome: RS a, RS b, AG b, AG a.
CollectivePlan TwoDPlan(PlanDim first, PlanDim second, PhaseAlgorithm algo,
                        int stride, bool bidirectional, bool bf16) {
  auto phase = [&](PhaseKind kind, PlanDim dim) {
    PlanPhase p;
    p.kind = kind;
    p.algorithm = algo;
    p.dim = dim;
    p.stride = dim == PlanDim::kX ? stride : 1;
    return p;
  };
  CollectivePlan plan;
  plan.phases = {phase(PhaseKind::kReduceScatter, first),
                 phase(PhaseKind::kReduceScatter, second),
                 phase(PhaseKind::kAllGather, second),
                 phase(PhaseKind::kAllGather, first)};
  plan.bidirectional = bidirectional;
  plan.bfloat16_wire = bf16;
  return plan;
}

CollectivePlan ArChainPlan(PlanDim first, PlanDim second, bool bidirectional,
                           bool bf16) {
  auto phase = [&](PlanDim dim) {
    PlanPhase p;
    p.kind = PhaseKind::kAllReduceInOne;
    p.dim = dim;
    return p;
  };
  CollectivePlan plan;
  plan.phases = {phase(first), phase(second)};
  plan.bidirectional = bidirectional;
  plan.bfloat16_wire = bf16;
  return plan;
}

CollectivePlan FlatPlan(bool bidirectional, bool bf16) {
  PlanPhase phase;
  phase.kind = PhaseKind::kAllReduceInOne;
  phase.dim = PlanDim::kFlat;
  CollectivePlan plan;
  plan.phases = {phase};
  plan.bidirectional = bidirectional;
  plan.bfloat16_wire = bf16;
  return plan;
}

}  // namespace

CollectivePlan PaperPlan(const PlanRequest& request) {
  return TwoDPlan(PlanDim::kY, PlanDim::kX, PhaseAlgorithm::kRing,
                  request.model_parallel_stride, request.allow_bidirectional,
                  request.allow_bfloat16);
}

std::vector<CollectivePlan> GeneratePlans(const topo::MeshTopology& topo,
                                          const PlanRequest& request) {
  TPU_CHECK_GE(request.model_parallel_stride, 1);
  const int stride = request.model_parallel_stride;

  std::vector<bool> wire;  // bf16 first: the paper's default comes first
  if (request.allow_bfloat16) wire.push_back(true);
  wire.push_back(false);
  std::vector<bool> directions;
  if (request.allow_bidirectional) directions.push_back(true);
  directions.push_back(false);

  const std::pair<PlanDim, PlanDim> orders[] = {
      {PlanDim::kY, PlanDim::kX}, {PlanDim::kX, PlanDim::kY}};

  std::vector<CollectivePlan> plans;
  // Ring 2-D in both dimension orders.
  for (const auto& [first, second] : orders) {
    for (const bool bidir : directions) {
      for (const bool bf16 : wire) {
        plans.push_back(TwoDPlan(first, second, PhaseAlgorithm::kRing, stride,
                                 bidir, bf16));
      }
    }
  }
  if (stride == 1) {
    // Flat snake ring over the whole mesh.
    for (const bool bidir : directions) {
      for (const bool bf16 : wire) plans.push_back(FlatPlan(bidir, bf16));
    }
    // Recursive halving-doubling (exchanges are symmetric, so there is no
    // bidirectional variant to enumerate).
    if (IsPowerOfTwo(topo.size_y()) && IsPowerOfTwo(topo.size_x())) {
      for (const auto& [first, second] : orders) {
        for (const bool bf16 : wire) {
          plans.push_back(TwoDPlan(first, second,
                                   PhaseAlgorithm::kHalvingDoubling, 1,
                                   /*bidirectional=*/false, bf16));
        }
      }
    }
    // Naive all-reduce chains.
    for (const auto& [first, second] : orders) {
      for (const bool bidir : directions) {
        for (const bool bf16 : wire) {
          plans.push_back(ArChainPlan(first, second, bidir, bf16));
        }
      }
    }
  }
  // Chunk-pipelined variants of the canonical shape, preferred flags only.
  for (int chunks = 2; chunks <= request.max_chunks; chunks *= 2) {
    CollectivePlan plan = PaperPlan(request);
    plan.chunks = chunks;
    plans.push_back(plan);
  }

  for (const CollectivePlan& plan : plans) {
    std::string error;
    TPU_CHECK(ValidatePlan(topo, plan, &error)) << plan.name() << ": "
                                                << error;
  }
  return plans;
}

}  // namespace tpu::plan
