// Memoized plan search results.
//
// A training run re-plans the same collective every step; the search (a
// candidate sweep plus top-K discrete-event evaluations) is worth running
// once per distinct situation. The cache key captures everything the search
// depends on: topology shape, payload element count, model-parallel stride,
// wire/direction/chunk allowances, search depth, and the link-health set —
// so a fault detection (which changes link health) misses the cache and
// triggers a fresh search instead of reusing a now-stalled schedule.
// Hit/miss counters land in trace::MetricsRegistry when one is installed.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/units.h"
#include "plan/plan_ir.h"
#include "topology/topology.h"

namespace tpu::plan {

// "128x32|e336000000|s1|bf1|bd1|c1|k3" plus the health fragment when links
// are failed or degraded.
std::string PlanCacheKey(const topo::MeshTopology& topo,
                         const PlanRequest& request,
                         const LinkHealthSet& health);

class PlanCache {
 public:
  struct Entry {
    CollectivePlan plan;
    SimTime predicted_seconds = 0;  // DES-evaluated time of the winner
  };

  // Returns the cached entry or nullptr; counts a hit or miss either way
  // (also onto the "plan.cache.hit"/"plan.cache.miss" metrics counters).
  const Entry* Lookup(const std::string& key);
  void Insert(std::string key, Entry entry);

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }
  void Clear();

 private:
  std::map<std::string, Entry> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace tpu::plan
