// Two-tier candidate pricing.
//
// EstimatePlanSeconds is the fast closed-form tier: it walks the lowered
// stages' actual group orders and per-hop routes, charging each hop the
// store-and-forward cost of its links *including* current degradation
// factors and failed-link stalls — unlike Network::EstimateArrival, which
// deliberately stays healthy-only for deadline expectations. Fault
// awareness is what lets the planner prune stalled schedules (every 2-D
// plan crossing a dead Y link prices at hours) while keeping survivors
// (the flat snake ring that never touches interior Y links) in the running.
// It ignores link contention between concurrent groups, so it ranks rather
// than predicts.
//
// EvaluatePlanOnSimulator is the exact tier: it executes the plan timing-only
// on a throwaway discrete-event Network with the health set re-applied, and
// returns the same simulated seconds the real execution will take —
// bit-identical, since the simulation is deterministic.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "network/network.h"
#include "plan/plan_ir.h"
#include "plan/schedule.h"
#include "topology/topology.h"

namespace tpu::plan {

SimTime EstimatePlanSeconds(const topo::MeshTopology& topo,
                            const net::NetworkConfig& config,
                            const LinkHealthSet& health,
                            const LoweredPlan& lowered);

SimTime EvaluatePlanOnSimulator(const topo::MeshTopology& topo,
                                const net::NetworkConfig& config,
                                const LinkHealthSet& health,
                                const CollectivePlan& plan,
                                std::int64_t elems);

}  // namespace tpu::plan
