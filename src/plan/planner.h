// The planner: search, cache, execute, and replan on failure.
//
// FindBestPlan enumerates candidates, prunes with the fault-aware closed-form
// estimate, re-prices the top K on a throwaway discrete-event network, and
// returns the winner — consulting the PlanCache first when one is supplied.
// Ties break on (time, name), so identical inputs always pick the same plan.
//
// ExecuteWithReplanning is the fault-driven loop the paper's recovery story
// needs: execute the current plan with per-phase deadlines armed, feed the
// timings to the HealthMonitor, and on a detection snapshot the network's
// *actual* link health, re-plan under it (a changed health set misses the
// cache by construction), and execute the replacement schedule on the same —
// still degraded — network.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "fault/health_monitor.h"
#include "network/network.h"
#include "plan/cache.h"
#include "plan/executor.h"
#include "plan/plan_ir.h"
#include "topology/topology.h"
#include "trace/run_report.h"

namespace tpu::plan {

struct PlannerResult {
  CollectivePlan plan;
  SimTime predicted_seconds = 0;  // discrete-event time of the winner
  SimTime estimated_seconds = 0;  // its closed-form estimate
  bool from_cache = false;
  int candidates = 0;  // plans enumerated (0 on a cache hit)
  int evaluated = 0;   // plans re-priced on the simulator
};

PlannerResult FindBestPlan(const topo::MeshTopology& topo,
                           const net::NetworkConfig& config,
                           const PlanRequest& request,
                           const LinkHealthSet& health = {},
                           PlanCache* cache = nullptr);

// Re-executes `plan` on a throwaway discrete-event network with `health`
// applied and the causal critical-path tracker installed, and returns a
// RunReport: per-stage phase seconds, the extracted critical path with
// link/phase attribution, the slack and what-if tables, and the closed-form
// estimate next to the simulated time — a direct accuracy probe for the
// planner's two-tier evaluator. Pass the search's `estimated_seconds` to
// reuse it; a negative value recomputes the estimate here.
trace::RunReport ProbePlan(const topo::MeshTopology& topo,
                           const net::NetworkConfig& config,
                           const LinkHealthSet& health,
                           const CollectivePlan& plan, std::int64_t elems,
                           SimTime estimated_seconds = -1.0);

// One monitored execution, plus the replanned retry when a phase overran its
// deadline. `second.total()` is meaningful only when `replanned`.
struct MitigatedSummation {
  PlanExecutionResult first;
  bool replanned = false;
  SimTime detected_at = -1.0;  // when the overrun was detected
  PlannerResult replan;        // the fault-aware search result
  PlanExecutionResult second;  // the replacement plan's execution
};

MitigatedSummation ExecuteWithReplanning(net::Network& network,
                                         const PlanRequest& request,
                                         const CollectivePlan& plan,
                                         fault::HealthMonitor& monitor,
                                         PlanCache* cache = nullptr,
                                         PlanExecutionConfig config = {});

}  // namespace tpu::plan
