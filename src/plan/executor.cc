#include "plan/executor.h"

#include <memory>
#include <string>
#include <utility>

#include "collectives/halving_doubling.h"
#include "collectives/ring.h"
#include "common/check.h"
#include "plan/schedule.h"
#include "sim/simulator.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::plan {
namespace {

// Chunk-pipelined plans have no internal phase boundaries; they run through
// the pipelined 2-D schedule and report one fused stage.
PlanExecutionResult ExecuteChunked(net::Network& network,
                                   const CollectivePlan& plan,
                                   std::int64_t elems,
                                   const PlanExecutionConfig& config,
                                   std::vector<float*> chip_buffers) {
  coll::GradientSummationConfig summation;
  summation.elems = elems;
  summation.collective = plan.collective_options();
  summation.model_parallel_stride = plan.phases[1].stride;
  summation.shard_update_seconds = config.shard_update_seconds;
  summation.deadline = config.deadline;

  coll::PipelinedSummationReport report;
  const bool monitored = config.deadline.enabled();
  const SimTime start = network.simulator().now();
  const SimTime elapsed = coll::PipelinedTwoDGradientSummation(
      network, summation, plan.chunks, std::move(chip_buffers),
      monitored ? &report : nullptr);

  PlanExecutionResult result;
  result.reduce_seconds = elapsed;
  result.stages.push_back({"pipelined-2d", elapsed});
  result.summation_phases.y_reduce_scatter = elapsed;
  if (monitored) {
    coll::PhaseTiming timing;
    timing.name = "pipelined-2d";
    timing.start = start;
    timing.expected = report.expected;
    timing.actual = report.actual;
    timing.deadline = report.deadline;
    timing.timed_out = report.timed_out;
    result.phases.push_back(timing);
    result.timed_out = report.timed_out;
    result.detected_at = report.detected_at;
    if (report.timed_out) result.timed_out_phase = "pipelined-2d";
  }
  return result;
}

}  // namespace

PlanExecutionResult ExecutePlan(net::Network& network,
                                const CollectivePlan& plan,
                                std::int64_t elems,
                                const PlanExecutionConfig& config,
                                std::vector<float*> chip_buffers) {
  const topo::MeshTopology& topo = network.topology();
  TPU_CHECK_GT(elems, 0);
  std::string error;
  TPU_CHECK(ValidatePlan(topo, plan, &error)) << error;
  if (plan.chunks > 1) {
    return ExecuteChunked(network, plan, elems, config,
                          std::move(chip_buffers));
  }

  LoweredPlan lowered = LowerPlan(topo, plan, elems, std::move(chip_buffers));
  const int ns = static_cast<int>(lowered.stages.size());
  const coll::CollectiveOptions options = plan.collective_options();
  sim::Simulator& simulator = network.simulator();
  trace::TraceRecorder* recorder = trace::CurrentTrace();
  const bool monitored = config.deadline.enabled();
  const SimTime start = simulator.now();

  PlanExecutionResult result;
  result.max_owned_elems = lowered.max_owned_elems;

  std::vector<SimTime> stage_end(ns, -1.0);
  std::vector<SimTime> stage_expected(ns, 0.0);
  SimTime update_end = -1.0;
  SimTime finish = -1.0;

  // Stages chain through completion callbacks with one simulator run at the
  // end, so externally armed events (fault injections) fire mid-collective;
  // the sequence per transition — record end, estimate the next stage, start
  // it — matches TwoDGradientSummation event for event.
  std::function<void(int)> launch = [&](int i) {
    if (i == ns) {
      finish = simulator.now();
      return;
    }
    const LoweredStage& stage = lowered.stages[i];
    if (monitored) {
      stage_expected[i] =
          stage.algorithm == PhaseAlgorithm::kRing
              ? coll::ExpectedRingPhaseSeconds(network, *stage.specs, options)
              : coll::ExpectedHdPhaseSeconds(network, *stage.specs, options);
    }
    if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
      observer->OnPhase(stage.name);
    }
    std::function<void()> next = [&, i] {
      stage_end[i] = simulator.now();
      if (i != lowered.update_after || !config.shard_update_seconds) {
        launch(i + 1);
        return;
      }
      // Sharded weight update on every chip's owned elements; the barrier
      // callback continues the chain (mirrors the fixed schedule's update).
      if (sim::EventObserver* observer = sim::CurrentEventObserver()) {
        observer->OnPhase("sharded-update");
      }
      auto barrier = std::make_shared<sim::Barrier>(topo.num_chips(), [&, i] {
        update_end = simulator.now();
        launch(i + 1);
      });
      for (int chip = 0; chip < topo.num_chips(); ++chip) {
        simulator.Schedule(
            config.shard_update_seconds(lowered.owned_elems[chip]),
            [barrier] { barrier->Notify(); });
      }
    };
    if (stage.specs->empty()) {
      // Degenerate stage (payload already fully sharded away): complete in
      // zero time without touching the network.
      simulator.Schedule(0.0, std::move(next));
      return;
    }
    const bool rs = stage.op == LoweredStage::Op::kReduceScatter;
    if (stage.algorithm == PhaseAlgorithm::kRing) {
      rs ? coll::StartReduceScatter(network, *stage.specs, options,
                                    std::move(next))
         : coll::StartAllGather(network, *stage.specs, options,
                                std::move(next));
    } else {
      rs ? coll::StartHdReduceScatter(network, *stage.specs, options,
                                      std::move(next))
         : coll::StartHdAllGather(network, *stage.specs, options,
                                  std::move(next));
    }
  };
  launch(0);
  simulator.Run();
  TPU_CHECK_GE(finish, 0.0);
  if (update_end < 0) update_end = stage_end[lowered.update_after];

  result.reduce_seconds = stage_end[lowered.update_after] - start;
  result.update_seconds = update_end - stage_end[lowered.update_after];
  result.broadcast_seconds = finish - update_end;

  // Per-stage durations and the five-phase mapping.
  SimTime prev = start;
  for (int i = 0; i < ns; ++i) {
    const LoweredStage& stage = lowered.stages[i];
    const SimTime seconds = stage_end[i] - prev;
    result.stages.push_back({stage.name, seconds});
    coll::SummationPhaseSeconds& sp = result.summation_phases;
    if (stage.dim == PlanDim::kX) {
      (stage.op == LoweredStage::Op::kReduceScatter ? sp.x_reduce_scatter
                                                    : sp.x_all_gather) +=
          seconds;
    } else {
      (stage.op == LoweredStage::Op::kReduceScatter ? sp.y_reduce_scatter
                                                    : sp.y_all_gather) +=
          seconds;
    }
    prev = i == lowered.update_after ? update_end : stage_end[i];
  }
  result.summation_phases.update = result.update_seconds;

  if (recorder != nullptr) {
    const trace::TraceRecorder::TrackId track =
        recorder->Track("system", "plan");
    recorder->Begin(track, "plan " + plan.name(), start);
    SimTime span_start = start;
    for (int i = 0; i < ns; ++i) {
      recorder->Complete(track, lowered.stages[i].name, span_start,
                         stage_end[i]);
      span_start = stage_end[i];
      if (i == lowered.update_after && update_end > stage_end[i]) {
        recorder->Complete(track, "sharded-update", stage_end[i], update_end);
        span_start = update_end;
      }
    }
    recorder->End(track, finish);
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter("plan.exec.runs").Add(1);
    metrics->Histogram("plan.exec.total_us").Record(ToMicros(finish - start));
  }

  if (monitored) {
    SimTime phase_start = start;
    for (int i = 0; i < ns; ++i) {
      coll::PhaseTiming timing;
      timing.name = lowered.stages[i].name;
      timing.start = phase_start;
      timing.expected = stage_expected[i];
      timing.actual = stage_end[i] - phase_start;
      timing.deadline = config.deadline.DeadlineFor(stage_expected[i]);
      timing.timed_out = timing.actual > timing.deadline;
      if (timing.timed_out && !result.timed_out) {
        result.timed_out = true;
        result.detected_at = phase_start + timing.deadline;
        result.timed_out_phase = timing.name;
      }
      result.phases.push_back(timing);
      phase_start = i == lowered.update_after ? update_end : stage_end[i];
    }
  }
  return result;
}

}  // namespace tpu::plan
