#include "plan/cost.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "plan/executor.h"
#include "sim/simulator.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::plan {
namespace {

class HopCost {
 public:
  HopCost(const topo::MeshTopology& topo, const net::NetworkConfig& config,
          const LinkHealthSet& health)
      : topo_(topo), config_(config),
        degrade_(topo.links().size(), 1.0),
        failed_(topo.links().size(), false) {
    for (const topo::LinkId link : health.failed) failed_[link] = true;
    for (const auto& [link, factor] : health.degraded) {
      degrade_[link] = factor;
    }
  }

  // Store-and-forward time of one `bytes`-sized message from `from` to
  // `to`: per-message overhead once, then per link latency + serialization
  // (scaled by degradation) + the stall charged on failed links.
  SimTime Seconds(topo::ChipId from, topo::ChipId to, Bytes bytes) const {
    SimTime t = config_.message_overhead;
    for (const topo::LinkId id : topo_.RouteLinks(from, to)) {
      const net::LinkParams& params =
          config_.ParamsFor(topo_.link(id).type);
      t += params.latency + bytes / params.bandwidth * degrade_[id];
      if (failed_[id]) t += net::Network::kFailedLinkStall;
    }
    return t;
  }

 private:
  const topo::MeshTopology& topo_;
  const net::NetworkConfig& config_;
  std::vector<double> degrade_;
  std::vector<bool> failed_;
};

SimTime RingStageSeconds(const HopCost& hop, const coll::RingSpec& spec,
                         const coll::CollectiveOptions& options) {
  const int n = spec.size();
  if (n <= 1 || spec.range.size() == 0) return 0;
  std::int64_t dir_elems[2] = {spec.range.size(), 0};
  if (options.bidirectional && n > 2) {
    dir_elems[0] = spec.range.size() / 2;
    dir_elems[1] = spec.range.size() - dir_elems[0];
  }
  SimTime worst = 0;
  for (int dir = 0; dir < 2; ++dir) {
    if (dir_elems[dir] == 0) continue;
    const Bytes bytes =
        CeilDiv(dir_elems[dir], n) * options.wire_bytes_per_elem();
    SimTime slowest = 0;
    for (int rank = 0; rank < n; ++rank) {
      const topo::ChipId a = spec.order[rank];
      const topo::ChipId b = spec.order[(rank + 1) % n];
      // Direction 0 travels in ring order, direction 1 against it.
      slowest = std::max(slowest, dir == 0 ? hop.Seconds(a, b, bytes)
                                           : hop.Seconds(b, a, bytes));
    }
    worst = std::max(worst, (n - 1) * slowest);
  }
  return worst;
}

SimTime HdStageSeconds(const HopCost& hop, const coll::RingSpec& spec,
                       bool halving, const coll::CollectiveOptions& options) {
  const int n = spec.size();
  if (n <= 1 || spec.range.size() == 0) return 0;
  const int rounds = static_cast<int>(Log2Floor(n));
  // Chunk-span element count for chunk indices [first, last).
  auto span_elems = [&](int first, int last) {
    const coll::Range lo = coll::ChunkOfRange(spec.range, n, first);
    const coll::Range hi = coll::ChunkOfRange(spec.range, n, last - 1);
    return hi.end - lo.begin;
  };
  SimTime total = 0;
  for (int round = 0; round < rounds; ++round) {
    const int distance = halving ? n >> (round + 1) : 1 << round;
    SimTime slowest = 0;
    for (int rank = 0; rank < n; ++rank) {
      const int partner = rank ^ distance;
      // Mirror HdPass: halving sends the half-block the partner keeps,
      // doubling sends the whole block this rank holds.
      const int size = halving ? n >> (round + 1) : 1 << round;
      const int owner = halving ? partner : rank;
      const int start = owner / size * size;
      const Bytes bytes =
          span_elems(start, start + size) * options.wire_bytes_per_elem();
      slowest = std::max(
          slowest, hop.Seconds(spec.order[rank], spec.order[partner], bytes));
    }
    total += slowest;
  }
  return total;
}

}  // namespace

SimTime EstimatePlanSeconds(const topo::MeshTopology& topo,
                            const net::NetworkConfig& config,
                            const LinkHealthSet& health,
                            const LoweredPlan& lowered) {
  const HopCost hop(topo, config, health);
  const coll::CollectiveOptions options =
      lowered.plan.collective_options();
  SimTime total = 0, longest_stage = 0;
  for (const LoweredStage& stage : lowered.stages) {
    SimTime stage_seconds = 0;
    for (const coll::RingSpec& spec : *stage.specs) {
      const SimTime t =
          stage.algorithm == PhaseAlgorithm::kRing
              ? RingStageSeconds(hop, spec, options)
              : HdStageSeconds(hop, spec,
                               stage.op == LoweredStage::Op::kReduceScatter,
                               options);
      stage_seconds = std::max(stage_seconds, t);
    }
    total += stage_seconds;
    longest_stage = std::max(longest_stage, stage_seconds);
  }
  // Chunk pipelining overlaps the shorter stages under the longest one; the
  // sequential sum is its upper bound, longest stage its lower bound.
  if (lowered.plan.chunks > 1) {
    total = longest_stage + (total - longest_stage) / lowered.plan.chunks;
  }
  return total;
}

SimTime EvaluatePlanOnSimulator(const topo::MeshTopology& topo,
                                const net::NetworkConfig& config,
                                const LinkHealthSet& health,
                                const CollectivePlan& plan,
                                std::int64_t elems) {
  // Candidate evaluations are throwaway: silence tracing, metrics, and the
  // causal observer so the search leaves no spans, counters, or event
  // records behind — only the chosen plan's real execution is observable.
  trace::ScopedTrace no_trace(nullptr);
  trace::ScopedMetrics no_metrics(nullptr);
  sim::ScopedEventObserver no_observer(nullptr);
  sim::Simulator simulator;
  net::Network network(&topo, config, &simulator);
  health.ApplyTo(network);
  return ExecutePlan(network, plan, elems).total();
}

}  // namespace tpu::plan
