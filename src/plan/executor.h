// Discrete-event execution of a lowered CollectivePlan.
//
// The executor chains the lowered stages through completion callbacks and
// runs the simulator once, exactly the discipline TwoDGradientSummation
// uses — same spec construction order, same barrier structure, same
// estimate-then-start sequence per stage. Events at equal timestamps run in
// insertion order, so for the canonical ring 2-D [Y->X] plan the executed
// timing is bit-identical to the fixed schedule: the planner costs nothing
// when it picks the plan the code used to hard-wire.
//
// Like the fixed schedule it supports the sharded-weight-update hook (run
// after the last reduce-scatter on each chip's owned shard), per-phase
// deadline monitoring, functional payload buffers, and trace spans.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collectives/all_reduce.h"
#include "common/units.h"
#include "network/network.h"
#include "plan/plan_ir.h"

namespace tpu::plan {

struct PlanExecutionConfig {
  // Optional weight-update-sharding hook (see GradientSummationConfig).
  std::function<SimTime(std::int64_t owned_elems)> shard_update_seconds;
  // Optional per-stage timeout detection; expectations use the healthy
  // network estimate, exactly like the fixed schedule's monitoring.
  coll::PhaseDeadlineConfig deadline;
};

struct PlanExecutionResult {
  SimTime reduce_seconds = 0;     // stages up to the update point
  SimTime update_seconds = 0;     // sharded weight update (0 without hook)
  SimTime broadcast_seconds = 0;  // stages after the update point

  // Per-stage wall clock in execution order (names are the stage labels,
  // e.g. "Y-reduce-scatter"). Chunk-pipelined plans report one fused
  // "pipelined-2d" entry — their phases overlap and have no boundaries.
  struct StageSeconds {
    const char* name = "";
    SimTime seconds = 0;
  };
  std::vector<StageSeconds> stages;

  // The fixed schedule's five-phase view, filled by mapping stage names so
  // MultipodSystem's profiler/trace plumbing works unchanged. Stages of
  // other shapes fold into the nearest slot (flat RS -> y_reduce_scatter).
  coll::SummationPhaseSeconds summation_phases;

  std::int64_t max_owned_elems = 0;

  // Monitoring (when config.deadline is enabled): communication stages in
  // order, plus the first-detection summary, as in GradientSummationResult.
  std::vector<coll::PhaseTiming> phases;
  bool timed_out = false;
  SimTime detected_at = -1.0;
  const char* timed_out_phase = nullptr;

  SimTime total() const {
    return reduce_seconds + update_seconds + broadcast_seconds;
  }
};

// Runs `plan` on the network's topology starting at the simulator's current
// time. `chip_buffers` is empty (timing-only) or one payload pointer per
// chip. The plan must validate on the network's topology.
PlanExecutionResult ExecutePlan(net::Network& network,
                                const CollectivePlan& plan,
                                std::int64_t elems,
                                const PlanExecutionConfig& config = {},
                                std::vector<float*> chip_buffers = {});

}  // namespace tpu::plan
