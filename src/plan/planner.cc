#include "plan/planner.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "plan/cost.h"
#include "plan/generator.h"
#include "plan/schedule.h"
#include "trace/critical_path.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::plan {

PlannerResult FindBestPlan(const topo::MeshTopology& topo,
                           const net::NetworkConfig& config,
                           const PlanRequest& request,
                           const LinkHealthSet& health, PlanCache* cache) {
  const std::string key =
      cache != nullptr ? PlanCacheKey(topo, request, health) : std::string();
  if (cache != nullptr) {
    if (const PlanCache::Entry* entry = cache->Lookup(key)) {
      PlannerResult result;
      result.plan = entry->plan;
      result.predicted_seconds = entry->predicted_seconds;
      result.from_cache = true;
      return result;
    }
  }

  std::vector<CollectivePlan> candidates = GeneratePlans(topo, request);
  TPU_CHECK(!candidates.empty());

  // Closed-form tier: rank every candidate, ties broken by name so the
  // ordering (and thus the DES shortlist) is deterministic.
  struct Scored {
    SimTime estimate;
    std::string name;
    const CollectivePlan* plan;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const CollectivePlan& plan : candidates) {
    const LoweredPlan lowered = LowerPlan(topo, plan, request.elems);
    scored.push_back({EstimatePlanSeconds(topo, config, health, lowered),
                      plan.name(), &plan});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.estimate != b.estimate ? a.estimate < b.estimate
                                    : a.name < b.name;
  });

  // Discrete-event tier: re-price the shortlist exactly; the executed time of
  // the winner is bit-identical to what running it for real will report.
  const int top_k =
      std::min<int>(std::max(request.des_top_k, 1),
                    static_cast<int>(scored.size()));
  PlannerResult result;
  result.candidates = static_cast<int>(candidates.size());
  result.evaluated = top_k;
  // Each shortlisted candidate prices on its own throwaway Simulator with no
  // shared state (the trace/metrics globals are thread-local), so the
  // evaluations can fan out across a pool; the reduction below walks
  // `seconds` in shortlist order either way, making the winner independent
  // of the thread count.
  std::vector<SimTime> seconds(top_k);
  const int threads = std::min(
      top_k, request.search_threads == 0
                 ? std::max(1, static_cast<int>(
                                   std::thread::hardware_concurrency()))
                 : std::max(request.search_threads, 1));
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.ParallelFor(top_k, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        seconds[i] = EvaluatePlanOnSimulator(topo, config, health,
                                             *scored[i].plan, request.elems);
      }
    });
  } else {
    for (int i = 0; i < top_k; ++i) {
      seconds[i] = EvaluatePlanOnSimulator(topo, config, health,
                                           *scored[i].plan, request.elems);
    }
  }
  bool have_best = false;
  for (int i = 0; i < top_k; ++i) {
    const bool better =
        !have_best || seconds[i] < result.predicted_seconds ||
        (seconds[i] == result.predicted_seconds &&
         scored[i].name < result.plan.name());
    if (better) {
      have_best = true;
      result.plan = *scored[i].plan;
      result.predicted_seconds = seconds[i];
      result.estimated_seconds = scored[i].estimate;
    }
  }

  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    // Pin the instant at the recorder's frontier; subtract the active offset
    // so Stamp() doesn't apply it twice.
    recorder->Instant(recorder->Track("system", "plan"),
                      "plan-search " + result.plan.name(),
                      recorder->last_timestamp() - recorder->time_offset());
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter("plan.search.runs").Add(1);
    metrics->Counter("plan.search.candidates").Add(result.candidates);
    metrics->Counter("plan.search.evaluated").Add(result.evaluated);
  }
  if (cache != nullptr) {
    cache->Insert(key, {result.plan, result.predicted_seconds});
  }
  return result;
}

trace::RunReport ProbePlan(const topo::MeshTopology& topo,
                           const net::NetworkConfig& config,
                           const LinkHealthSet& health,
                           const CollectivePlan& plan, std::int64_t elems,
                           SimTime estimated_seconds) {
  // Same throwaway discipline as EvaluatePlanOnSimulator — silence the
  // trace/metrics globals so the probe leaves nothing behind — but with the
  // causal tracker installed so the re-execution yields a full report.
  trace::ScopedTrace no_trace(nullptr);
  trace::ScopedMetrics no_metrics(nullptr);
  trace::CriticalPathTracker tracker;
  sim::ScopedEventObserver observe(&tracker);
  sim::Simulator simulator;
  net::Network network(&topo, config, &simulator);
  health.ApplyTo(network);
  const PlanExecutionResult result = ExecutePlan(network, plan, elems);

  if (estimated_seconds < 0) {
    estimated_seconds =
        EstimatePlanSeconds(topo, config, health, LowerPlan(topo, plan, elems));
  }

  trace::RunReport report;
  report.label = "probe " + plan.name();
  report.planned = true;
  report.plan_name = plan.name();
  report.plan_predicted_seconds = result.total();
  report.plan_estimated_seconds = estimated_seconds;
  report.step_seconds = result.total();
  report.compute_seconds = result.update_seconds;
  report.comm_seconds = result.reduce_seconds + result.broadcast_seconds;
  for (const PlanExecutionResult::StageSeconds& stage : result.stages) {
    report.phases.push_back({stage.name, stage.seconds});
  }
  report.has_critical_path = true;
  report.critical_path = tracker.Analyze();
  return report;
}

MitigatedSummation ExecuteWithReplanning(net::Network& network,
                                         const PlanRequest& request,
                                         const CollectivePlan& plan,
                                         fault::HealthMonitor& monitor,
                                         PlanCache* cache,
                                         PlanExecutionConfig config) {
  config.deadline = monitor.config().ToPhaseDeadline();

  MitigatedSummation outcome;
  outcome.first = ExecutePlan(network, plan, request.elems, config);

  // Score every monitored phase against the injector-independent deadline;
  // ground truth for the observation is the network's actual link state.
  const LinkHealthSet health = LinkHealthSet::FromNetwork(network);
  const bool fault_active = !health.healthy();
  for (const coll::PhaseTiming& timing : outcome.first.phases) {
    monitor.Observe({timing.start, timing.expected, timing.actual,
                     fault_active});
  }
  if (!outcome.first.timed_out) return outcome;

  // A phase overran its deadline: re-plan under the observed link health
  // (which, being part of the cache key, forces a fresh search) and run the
  // replacement on the same degraded network.
  outcome.replanned = true;
  outcome.detected_at = outcome.first.detected_at;
  outcome.replan = FindBestPlan(network.topology(), network.config(), request,
                                health, cache);
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    recorder->Instant(recorder->Track("system", "plan"),
                      "replan " + outcome.replan.plan.name(),
                      network.simulator().now());
  }
  if (trace::MetricsRegistry* metrics = trace::CurrentMetrics()) {
    metrics->Counter("plan.replans").Add(1);
  }
  outcome.second =
      ExecutePlan(network, outcome.replan.plan, request.elems, config);
  return outcome;
}

}  // namespace tpu::plan
