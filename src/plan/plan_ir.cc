#include "plan/plan_ir.h"

#include <cstdio>

#include "common/check.h"
#include "common/math_util.h"

namespace tpu::plan {

const char* ToString(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kReduceScatter:
      return "reduce-scatter";
    case PhaseKind::kAllGather:
      return "all-gather";
    case PhaseKind::kAllReduceInOne:
      return "all-reduce";
  }
  return "?";
}

const char* ToString(PhaseAlgorithm algorithm) {
  switch (algorithm) {
    case PhaseAlgorithm::kRing:
      return "ring";
    case PhaseAlgorithm::kHalvingDoubling:
      return "hd";
  }
  return "?";
}

const char* ToString(PlanDim dim) {
  switch (dim) {
    case PlanDim::kY:
      return "Y";
    case PlanDim::kX:
      return "X";
    case PlanDim::kFlat:
      return "flat";
  }
  return "?";
}

std::string CollectivePlan::name() const {
  bool any_ring = false, any_hd = false;
  bool all_in_one = true;
  int max_stride = 1;
  std::vector<PlanDim> reduce_dims;
  for (const PlanPhase& phase : phases) {
    (phase.algorithm == PhaseAlgorithm::kRing ? any_ring : any_hd) = true;
    if (phase.kind != PhaseKind::kAllReduceInOne) all_in_one = false;
    if (phase.kind != PhaseKind::kAllGather) reduce_dims.push_back(phase.dim);
    if (phase.stride > max_stride) max_stride = phase.stride;
  }

  std::string out = any_ring && any_hd ? "mixed" : any_hd ? "hd" : "ring";
  if (phases.size() == 1 && phases[0].dim == PlanDim::kFlat) {
    out += "-flat";
  } else {
    out += "-" + std::to_string(reduce_dims.size()) + "d";
    if (all_in_one) out += "-ar";
    out += "[";
    for (std::size_t i = 0; i < reduce_dims.size(); ++i) {
      if (i > 0) out += "->";
      out += ToString(reduce_dims[i]);
    }
    out += "]";
  }
  if (max_stride > 1) out += "/s" + std::to_string(max_stride);
  out += bidirectional ? " bidir" : " mono";
  out += bfloat16_wire ? " bf16" : " fp32";
  if (chunks > 1) out += " c" + std::to_string(chunks);
  return out;
}

LinkHealthSet LinkHealthSet::FromNetwork(const net::Network& network) {
  LinkHealthSet health;
  // links() is ordered by id, so both vectors come out sorted.
  for (const topo::Link& link : network.topology().links()) {
    if (network.LinkFailed(link.id)) {
      health.failed.push_back(link.id);
    } else if (network.LinkDegradation(link.id) != 1.0) {
      health.degraded.emplace_back(link.id, network.LinkDegradation(link.id));
    }
  }
  return health;
}

void LinkHealthSet::ApplyTo(net::Network& network) const {
  for (const topo::LinkId link : failed) network.FailLink(link);
  for (const auto& [link, factor] : degraded) {
    network.DegradeLink(link, factor);
  }
}

std::string LinkHealthSet::CacheKeyFragment() const {
  if (healthy()) return "";
  std::string out;
  if (!failed.empty()) {
    out += "|F:";
    for (std::size_t i = 0; i < failed.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(failed[i]);
    }
  }
  if (!degraded.empty()) {
    out += "|D:";
    for (std::size_t i = 0; i < degraded.size(); ++i) {
      if (i > 0) out += ",";
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%dx%g", degraded[i].first,
                    degraded[i].second);
      out += buf;
    }
  }
  return out;
}

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

int GroupSize(const topo::MeshTopology& topo, const PlanPhase& phase) {
  switch (phase.dim) {
    case PlanDim::kY:
      return topo.size_y();
    case PlanDim::kX:
      return topo.size_x() / phase.stride;
    case PlanDim::kFlat:
      return topo.num_chips();
  }
  return 0;
}

}  // namespace

bool ValidatePlan(const topo::MeshTopology& topo, const CollectivePlan& plan,
                  std::string* error) {
  if (plan.phases.empty()) return Fail(error, "plan has no phases");
  if (plan.chunks < 1) return Fail(error, "chunks must be >= 1");

  bool covers_y = false, covers_x = false, covers_flat = false;
  bool any_in_one = false, any_rs_ag = false;
  std::vector<const PlanPhase*> open;  // unmatched reduce-scatters
  std::vector<PlanDim> reduced;

  for (const PlanPhase& phase : plan.phases) {
    if (phase.stride < 1) return Fail(error, "stride must be >= 1");
    if (phase.stride > 1 && phase.dim != PlanDim::kX) {
      return Fail(error, "stride only applies to X phases");
    }
    if (phase.dim == PlanDim::kX && topo.size_x() % phase.stride != 0) {
      return Fail(error, "stride must tile the X dimension");
    }
    if (phase.dim == PlanDim::kFlat) {
      covers_flat = true;
      if (plan.phases.size() != 1) {
        return Fail(error, "a flat phase must be the only phase");
      }
      if (phase.kind != PhaseKind::kAllReduceInOne) {
        return Fail(error, "a flat phase must be all-reduce-in-one");
      }
      if (phase.algorithm != PhaseAlgorithm::kRing) {
        return Fail(error, "flat phases are ring-only");
      }
    }
    if (phase.dim == PlanDim::kY) covers_y = true;
    if (phase.dim == PlanDim::kX) covers_x = true;

    if (phase.algorithm == PhaseAlgorithm::kHalvingDoubling) {
      if (phase.stride != 1) {
        return Fail(error, "halving-doubling groups cannot be strided");
      }
      if (!IsPowerOfTwo(GroupSize(topo, phase))) {
        return Fail(error, "halving-doubling needs a power-of-two group");
      }
    }

    switch (phase.kind) {
      case PhaseKind::kReduceScatter:
        any_rs_ag = true;
        for (const PlanDim dim : reduced) {
          if (dim == phase.dim) {
            return Fail(error, "dimension reduced twice");
          }
        }
        reduced.push_back(phase.dim);
        open.push_back(&phase);
        break;
      case PhaseKind::kAllGather: {
        any_rs_ag = true;
        if (open.empty()) {
          return Fail(error, "all-gather without a matching reduce-scatter");
        }
        const PlanPhase& rs = *open.back();
        if (rs.dim != phase.dim || rs.algorithm != phase.algorithm ||
            rs.stride != phase.stride) {
          return Fail(error,
                      "all-gather must mirror the innermost reduce-scatter");
        }
        open.pop_back();
        break;
      }
      case PhaseKind::kAllReduceInOne:
        any_in_one = true;
        for (const PlanDim dim : reduced) {
          if (dim == phase.dim) {
            return Fail(error, "dimension reduced twice");
          }
        }
        reduced.push_back(phase.dim);
        break;
    }
  }
  if (!open.empty()) return Fail(error, "unmatched reduce-scatter");
  if (any_in_one && any_rs_ag) {
    return Fail(error, "all-reduce-in-one phases cannot mix with RS/AG pairs");
  }

  if (plan.chunks > 1) {
    const std::vector<PlanPhase>& p = plan.phases;
    const bool canonical =
        p.size() == 4 && p[0].kind == PhaseKind::kReduceScatter &&
        p[0].dim == PlanDim::kY && p[1].kind == PhaseKind::kReduceScatter &&
        p[1].dim == PlanDim::kX && p[2].kind == PhaseKind::kAllGather &&
        p[2].dim == PlanDim::kX && p[3].kind == PhaseKind::kAllGather &&
        p[3].dim == PlanDim::kY;
    bool all_ring = true;
    for (const PlanPhase& phase : p) {
      if (phase.algorithm != PhaseAlgorithm::kRing) all_ring = false;
    }
    if (!canonical || !all_ring) {
      return Fail(error, "chunked execution needs the ring 2-D [Y->X] shape");
    }
  }

  const bool y_ok = covers_y || topo.size_y() == 1;
  const bool x_ok = covers_x || topo.size_x() == 1;
  if (!covers_flat && !(y_ok && x_ok)) {
    return Fail(error, "plan does not reduce across the whole machine");
  }
  return true;
}

}  // namespace tpu::plan
