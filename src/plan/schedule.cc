#include "plan/schedule.h"

#include <algorithm>
#include <string>
#include <utility>

#include "collectives/all_reduce.h"
#include "collectives/halving_doubling.h"
#include "common/check.h"
#include "trace/trace.h"

namespace tpu::plan {
namespace {

const char* StageName(LoweredStage::Op op, PlanDim dim) {
  const bool rs = op == LoweredStage::Op::kReduceScatter;
  switch (dim) {
    case PlanDim::kY:
      return rs ? "Y-reduce-scatter" : "Y-all-gather";
    case PlanDim::kX:
      return rs ? "X-reduce-scatter" : "X-all-gather";
    case PlanDim::kFlat:
      return rs ? "flat-reduce-scatter" : "flat-all-gather";
  }
  return "";
}

struct Group {
  std::vector<topo::ChipId> order;
  std::string label;
};

// Group enumeration order is load-bearing: it fixes the event creation order
// of the lowered schedule, and for the ring [Y->X] shape it matches
// TwoDGradientSummation exactly (Y groups by x ascending; X groups by y,
// then stride offset), which is what makes planned execution bit-identical
// to the fixed schedule.
std::vector<Group> GroupsFor(const topo::MeshTopology& topo,
                             const PlanPhase& phase, bool labeled) {
  std::vector<Group> groups;
  const bool ring = phase.algorithm == PhaseAlgorithm::kRing;
  switch (phase.dim) {
    case PlanDim::kY:
      groups.reserve(topo.size_x());
      for (int x = 0; x < topo.size_x(); ++x) {
        Group group;
        const topo::ChipId through = topo.ChipAt({x, 0});
        group.order = ring ? topo.RingAlong(topo::Dim::kY, through)
                           : topo.LineAlong(topo::Dim::kY, through);
        if (labeled) group.label = "Y x=" + std::to_string(x);
        groups.push_back(std::move(group));
      }
      break;
    case PlanDim::kX:
      for (int y = 0; y < topo.size_y(); ++y) {
        for (int offset = 0; offset < phase.stride; ++offset) {
          Group group;
          const topo::ChipId through = topo.ChipAt({offset, y});
          group.order =
              ring ? topo.StridedRingAlong(topo::Dim::kX, through,
                                           phase.stride)
                   : topo.LineAlong(topo::Dim::kX, through);
          if (labeled) {
            group.label = "X y=" + std::to_string(y);
            if (phase.stride > 1) group.label += " g" + std::to_string(offset);
          }
          groups.push_back(std::move(group));
        }
      }
      break;
    case PlanDim::kFlat: {
      Group group;
      group.order = coll::SnakeRingOverMesh(topo);
      if (labeled) group.label = "flat";
      groups.push_back(std::move(group));
      break;
    }
  }
  return groups;
}

}  // namespace

LoweredPlan LowerPlan(const topo::MeshTopology& topo,
                      const CollectivePlan& plan, std::int64_t elems,
                      std::vector<float*> chip_buffers) {
  TPU_CHECK_GT(elems, 0);
  std::string error;
  TPU_CHECK(ValidatePlan(topo, plan, &error)) << error;
  if (!chip_buffers.empty()) {
    TPU_CHECK_EQ(static_cast<int>(chip_buffers.size()), topo.num_chips());
  }
  const bool labeled = trace::CurrentTrace() != nullptr;
  const coll::CollectiveOptions options = plan.collective_options();

  LoweredPlan lowered;
  lowered.plan = plan;

  // Per-chip owned (non-empty) sub-ranges, updated through the RS stages.
  std::vector<std::vector<coll::Range>> owned(
      topo.num_chips(), {coll::Range{0, elems}});
  std::vector<std::int64_t> owned_at_update;

  // Unmatched reduce-scatters: the mirroring all-gather reuses the spec list
  // and restores the pre-RS ownership.
  struct OpenReduce {
    std::shared_ptr<std::vector<coll::RingSpec>> specs;
    std::vector<std::vector<coll::Range>> owned_before;
  };
  std::vector<OpenReduce> open;

  auto run_reduce = [&](const PlanPhase& phase) {
    OpenReduce frame;
    frame.owned_before = owned;
    frame.specs = std::make_shared<std::vector<coll::RingSpec>>();
    const std::vector<Group> groups = GroupsFor(topo, phase, labeled);
    for (const Group& group : groups) {
      const int n = static_cast<int>(group.order.size());
      // Every member owns the same ranges (ownership so far depends only on
      // the coordinates the group holds fixed); guard the invariant cheaply.
      if (n >= 2) {
        TPU_CHECK(owned[group.order[0]] == owned[group.order[1]])
            << "group members own different ranges";
      }
      std::vector<float*> data;
      if (!chip_buffers.empty()) {
        data.reserve(group.order.size());
        for (const topo::ChipId chip : group.order) {
          data.push_back(chip_buffers[chip]);
        }
      }
      for (const coll::Range& range : owned[group.order[0]]) {
        if (range.size() == 0) continue;
        coll::RingSpec spec;
        spec.order = group.order;
        spec.data = data;
        spec.range = range;
        spec.label = group.label;
        frame.specs->push_back(std::move(spec));
      }
      // Ownership after the reduce: each member keeps its shard of every
      // range the group covered.
      for (int rank = 0; rank < n; ++rank) {
        const topo::ChipId chip = group.order[rank];
        std::vector<coll::Range> next;
        for (const coll::Range& range : owned[chip]) {
          if (range.size() == 0) continue;
          if (phase.algorithm == PhaseAlgorithm::kRing) {
            for (const coll::Range& shard :
                 coll::OwnedAfterReduceScatter(range, n, rank, options)) {
              if (shard.size() > 0) next.push_back(shard);
            }
          } else {
            const coll::Range shard =
                coll::HdOwnedAfterReduceScatter(range, n, rank);
            if (shard.size() > 0) next.push_back(shard);
          }
        }
        owned[chip] = std::move(next);
      }
    }
    LoweredStage stage;
    stage.op = LoweredStage::Op::kReduceScatter;
    stage.algorithm = phase.algorithm;
    stage.dim = phase.dim;
    stage.name = StageName(stage.op, phase.dim);
    stage.specs = frame.specs;
    lowered.stages.push_back(stage);
    lowered.update_after = static_cast<int>(lowered.stages.size()) - 1;
    open.push_back(std::move(frame));
    // Snapshot ownership here: the last reduce-scatter's snapshot survives
    // as the update point (trailing all-gathers restore `owned`, so it
    // cannot be read after the walk).
    owned_at_update.assign(topo.num_chips(), 0);
    for (int chip = 0; chip < topo.num_chips(); ++chip) {
      for (const coll::Range& range : owned[chip]) {
        owned_at_update[chip] += range.size();
      }
    }
  };

  auto run_gather = [&](const PlanPhase& phase) {
    TPU_CHECK(!open.empty());
    OpenReduce frame = std::move(open.back());
    open.pop_back();
    LoweredStage stage;
    stage.op = LoweredStage::Op::kAllGather;
    stage.algorithm = phase.algorithm;
    stage.dim = phase.dim;
    stage.name = StageName(stage.op, phase.dim);
    stage.specs = frame.specs;
    lowered.stages.push_back(stage);
    owned = std::move(frame.owned_before);
  };

  for (const PlanPhase& phase : plan.phases) {
    switch (phase.kind) {
      case PhaseKind::kReduceScatter:
        run_reduce(phase);
        break;
      case PhaseKind::kAllGather:
        run_gather(phase);
        break;
      case PhaseKind::kAllReduceInOne:
        run_reduce(phase);
        run_gather(phase);
        break;
    }
  }
  TPU_CHECK(open.empty());

  lowered.owned_elems = std::move(owned_at_update);
  for (const std::int64_t chip_elems : lowered.owned_elems) {
    lowered.max_owned_elems = std::max(lowered.max_owned_elems, chip_elems);
  }
  return lowered;
}

}  // namespace tpu::plan
