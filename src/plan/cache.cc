#include "plan/cache.h"

#include <cstdio>
#include <utility>

#include "trace/metrics.h"

namespace tpu::plan {

std::string PlanCacheKey(const topo::MeshTopology& topo,
                         const PlanRequest& request,
                         const LinkHealthSet& health) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%dx%d|e%lld|s%d|bf%d|bd%d|c%d|k%d",
                topo.size_x(), topo.size_y(),
                static_cast<long long>(request.elems),
                request.model_parallel_stride,
                request.allow_bfloat16 ? 1 : 0,
                request.allow_bidirectional ? 1 : 0, request.max_chunks,
                request.des_top_k);
  return buf + health.CacheKeyFragment();
}

const PlanCache::Entry* PlanCache::Lookup(const std::string& key) {
  const auto it = entries_.find(key);
  trace::MetricsRegistry* metrics = trace::CurrentMetrics();
  if (it == entries_.end()) {
    ++misses_;
    if (metrics != nullptr) metrics->Counter("plan.cache.miss").Add(1);
    return nullptr;
  }
  ++hits_;
  if (metrics != nullptr) metrics->Counter("plan.cache.hit").Add(1);
  return &it->second;
}

void PlanCache::Insert(std::string key, Entry entry) {
  entries_.insert_or_assign(std::move(key), std::move(entry));
}

void PlanCache::Clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace tpu::plan
