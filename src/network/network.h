// Timed message transport over the multipod interconnect.
//
// Each directed physical link is a FIFO resource with a bandwidth and a
// propagation latency; cross-pod optical links (Section 1, Figure 2) carry
// higher latency than within-pod links. Messages follow the dimension-ordered
// sparse routes from the topology and are forwarded store-and-forward per
// hop at message granularity — collectives chunk their payloads, so this
// matches the chunk-pipelined behaviour of real ring collectives while
// naturally halving effective bandwidth on folded (mesh-dimension) rings,
// where each physical link carries two ring edges.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/exec_context.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::net {

struct LinkParams {
  Bandwidth bandwidth = GBps(70.0);  // per direction
  SimTime latency = Micros(0.3);
};

struct NetworkConfig {
  LinkParams mesh_x{GBps(70.0), Micros(0.3)};
  LinkParams cross_pod_x{GBps(70.0), Micros(1.5)};  // longer optical links
  LinkParams mesh_y{GBps(70.0), Micros(0.3)};
  LinkParams wrap_y{GBps(70.0), Micros(0.5)};
  // Fixed software/DMA overhead charged once per message at the sender.
  SimTime message_overhead = Micros(1.0);

  const LinkParams& ParamsFor(topo::LinkType type) const {
    switch (type) {
      case topo::LinkType::kMeshX:
        return mesh_x;
      case topo::LinkType::kCrossPodX:
        return cross_pod_x;
      case topo::LinkType::kMeshY:
        return mesh_y;
      case topo::LinkType::kWrapY:
        return wrap_y;
    }
    return mesh_x;  // unreachable
  }
};

// Per-link-type traffic accounting, used by benches to report where bytes go
// (e.g. the 32x X-vs-Y payload asymmetry of the 2-D all-reduce, Section 3.3).
struct TrafficStats {
  Bytes mesh_x_bytes = 0;
  Bytes cross_pod_x_bytes = 0;
  Bytes mesh_y_bytes = 0;
  Bytes wrap_y_bytes = 0;
  std::int64_t messages = 0;

  Bytes total_bytes() const {
    return mesh_x_bytes + cross_pod_x_bytes + mesh_y_bytes + wrap_y_bytes;
  }
};

class Network {
 public:
  Network(const topo::MeshTopology* topology, const NetworkConfig& config,
          sim::Simulator* simulator);

  const topo::MeshTopology& topology() const { return *topology_; }
  // The simulator driving this network. During a PDES partition drain this
  // resolves to the active partition lane (sim/exec_context.h), so sends and
  // clock reads issued by partition-confined work land on the right event
  // queue; serial runs pay one thread-local load and branch.
  sim::Simulator& simulator() { return sim::ActiveSimulatorOr(simulator_); }
  const NetworkConfig& config() const { return config_; }

  // Pod -> PDES partition mapping and the lookahead floor: cross-pod traffic
  // pays at least the cross-pod optical-link latency, so a partition (= pod)
  // can never affect another pod sooner than this far in the simulated
  // future. This is what bounds the engine's synchronized-window width.
  int PodOf(topo::ChipId chip) const { return topology_->PodOf(chip); }
  SimTime CrossPodLookahead() const { return config_.cross_pod_x.latency; }

  // Sends `bytes` from `from` to `to` along the dimension-ordered route.
  // `on_done` fires at the simulated time the message fully arrives.
  // Zero-byte messages still pay per-message overhead and hop latency
  // (they model control/barrier traffic).
  void Send(topo::ChipId from, topo::ChipId to, Bytes bytes,
            sim::Simulator::Callback on_done);

  // Pure function of current link occupancy: the time Send would complete if
  // issued now *on healthy links*. Deliberately ignores injected degradation
  // and failures — this is the expectation that fault-detection deadlines
  // (fault::HealthMonitor, GradientSummationConfig::deadline) compare the
  // observed phase time against. Does not mutate state.
  SimTime EstimateArrival(topo::ChipId from, topo::ChipId to,
                          Bytes bytes) const;

  // Lifetime traffic accounting, merged across the per-partition shards a
  // PDES run accumulates into (serial runs only ever touch the main shard,
  // so the merge is the identity). Deterministic: plain integer sums in
  // fixed shard order.
  TrafficStats traffic() const;
  // Highest per-link utilization (busy fraction of elapsed sim time).
  double MaxLinkUtilization() const;
  // Mean utilization across links that carried any traffic.
  double MeanActiveLinkUtilization() const;
  // One link's utilization (busy fraction of elapsed sim time).
  double LinkUtilization(topo::LinkId link) const;
  // Seconds of already-reserved service still queued on one link: how far
  // into the simulated future the link is committed right now. Zero when
  // idle. This is the "queue occupancy" signal the telemetry sampler reads.
  SimTime LinkBacklogSeconds(topo::LinkId link) const;
  // Max backlog over all links.
  SimTime MaxLinkBacklogSeconds() const;

  // Failure/straggler injection: adds one degradation source multiplying the
  // serialization time of one directed link (a flaky optical link, a
  // congested neighbor). factor >= 1 (enforced). Sources stack as the max of
  // the active factors — two overlapping faults slow the link by the worse
  // of the two, and healing one leaves the other in force. Heal with the
  // matching ReleaseDegradedLink (or RestoreLink to force-clear).
  void DegradeLink(topo::LinkId link, double factor);

  // Removes one degradation source previously added with DegradeLink(link,
  // factor). The link's effective multiplier drops to the max of the
  // remaining sources (1.0 when none are left). A release with no matching
  // source is a no-op, so overlapping fault schedules cannot over-heal.
  void ReleaseDegradedLink(topo::LinkId link, double factor);

  // Heals a link unconditionally: clears every degradation source and the
  // full failure depth, returning the link to its configured parameters.
  // Timing of traffic sent after the restore is bit-identical to a
  // never-degraded link.
  void RestoreLink(topo::LinkId link);

  // Link failure: traffic routed through the link stalls for
  // kFailedLinkStall per byte-less hop rather than completing on schedule,
  // so a synchronous collective blocked on it visibly exceeds any sane
  // deadline instead of deadlocking the event queue. Failures are
  // depth-counted: a link failed by two overlapping faults (say a chip death
  // and a host preemption sharing the link) stays failed until both release
  // it.
  void FailLink(topo::LinkId link);

  // Undoes one FailLink. The link heals only when the failure depth reaches
  // zero (and carries no degradation); releasing an already-healthy link is
  // a no-op. This is what makes overlapping transient fault schedules
  // order-independent: a heal racing another fault's Fail on the same link
  // can never resurrect it early.
  void ReleaseFailedLink(topo::LinkId link);

  bool LinkFailed(topo::LinkId link) const;
  // Current effective serialization multiplier (1.0 = healthy; the max over
  // active degradation sources).
  double LinkDegradation(topo::LinkId link) const;
  int failed_link_count() const;

  // Stall charged per hop over a failed link. Large enough to trip any
  // deadline, small enough that the event queue still drains.
  static constexpr SimTime kFailedLinkStall = Seconds(3600.0);

  // Dumps this network's lifetime accounting (per-class traffic bytes,
  // message count, utilization, failed links, queue-delay histogram
  // percentiles come from the live per-Send metrics) into `metrics`.
  // Counters add, so call once per network at the end of a run.
  void ExportMetrics(trace::MetricsRegistry& metrics) const;

 private:
  // Trace state is cached per recorder: when a different recorder is
  // installed (or tracing turns off and on), tracks are re-registered
  // lazily. Tracing only observes — the simulated schedule is identical
  // with tracing on or off.
  void EnsureTraceState(trace::TraceRecorder* recorder);
  trace::TraceRecorder::TrackId LinkTrack(trace::TraceRecorder* recorder,
                                          topo::LinkId link);

  // The traffic shard the current execution context accumulates into: the
  // active PDES partition's shard during a lane drain, the main counters
  // otherwise.
  TrafficStats& ActiveTraffic() {
    const int lane = sim::CurrentPartitionIndex();
    if (lane < 0) return traffic_;
    TPU_CHECK_LT(static_cast<std::size_t>(lane), traffic_shards_.size());
    return traffic_shards_[lane];
  }

  // One hop of a cached route: everything Send needs that is invariant
  // across messages. Live state (degradation, failure, FIFO occupancy) is
  // read fresh per message, so caching never changes behaviour. The
  // bandwidth is stored as-is (not as a reciprocal) so the serialization
  // arithmetic stays bit-identical to the uncached path.
  struct CachedHop {
    topo::LinkId link;
    topo::LinkType type;
    SimTime latency;
    Bandwidth bandwidth;
  };
  struct CachedRoute {
    std::vector<CachedHop> hops;
  };

  // Returns the cached hop schedule for (from, to), computing and memoizing
  // it on first use. Routes depend only on the (immutable) topology and the
  // per-construction config, so entries are never invalidated.
  const CachedRoute& RouteFor(topo::ChipId from, topo::ChipId to) const;

  // Recomputes the effective degradation_[link] after a source was added or
  // removed, and emits the restore trace instant when the link heals.
  void RefreshDegradation(topo::LinkId link);

  const topo::MeshTopology* topology_;
  NetworkConfig config_;
  sim::Simulator* simulator_;
  std::vector<sim::FifoResource> link_resources_;  // indexed by LinkId
  // Hot-path state, one branch/multiply per hop: the *effective* serialize
  // multiplier (max over active sources) and the failure depth.
  std::vector<double> degradation_;
  std::vector<int> failed_;  // depth-counted failure state
  // Active degradation sources as (link, factor) pairs. Faults are rare and
  // short-lived, so a flat list with linear scans beats per-link storage.
  std::vector<std::pair<topo::LinkId, double>> degrade_sources_;
  TrafficStats traffic_;
  // Per-pod shards for PDES partition drains (sized num_pods at
  // construction, so concurrent lanes never resize shared storage).
  std::vector<TrafficStats> traffic_shards_;
  // Indexed by source chip; each entry is the handful of (destination,
  // hop schedule) pairs that source has ever messaged — collectives only talk
  // to ring/recursive-halving neighbours, so a linear scan beats hashing.
  // Mutable because EstimateArrival is const but may warm the cache.
  //
  // Concurrency contract (PDES): the outer vector is sized at construction
  // and never resized, so concurrent access to distinct sources never
  // touches shared storage. Each inner list is owned by its source chip:
  // during partition drains only the partition (pod) that owns the source
  // chip reads or warms it, and cross-pod sources are only ever exercised
  // from the global lane (which runs with every partition worker parked).
  // network_test's Pdes* cases hold this contract under TSan.
  mutable std::vector<std::vector<std::pair<topo::ChipId, CachedRoute>>>
      route_cache_;

  trace::TraceRecorder* trace_recorder_ = nullptr;  // cache key, not owned
  std::vector<trace::TraceRecorder::TrackId> link_tracks_;
  std::vector<trace::TraceRecorder::CounterId> pod_bytes_in_flight_;
  std::vector<trace::TraceRecorder::CounterId> pod_busy_links_;
};

}  // namespace tpu::net
