#include "network/network.h"

#include <algorithm>

namespace tpu::net {

Network::Network(const topo::MeshTopology* topology,
                 const NetworkConfig& config, sim::Simulator* simulator)
    : topology_(topology), config_(config), simulator_(simulator) {
  TPU_CHECK(topology != nullptr);
  TPU_CHECK(simulator != nullptr);
  link_resources_.reserve(topology_->links().size());
  for (std::size_t i = 0; i < topology_->links().size(); ++i) {
    link_resources_.emplace_back(simulator_);
  }
  degradation_.assign(topology_->links().size(), 1.0);
  failed_.assign(topology_->links().size(), false);
}

void Network::Send(topo::ChipId from, topo::ChipId to, Bytes bytes,
                   sim::Simulator::Callback on_done) {
  TPU_CHECK_GE(bytes, 0);
  ++traffic_.messages;
  if (from == to) {
    simulator_->Schedule(config_.message_overhead, std::move(on_done));
    return;
  }

  const std::vector<topo::LinkId> route = topology_->RouteLinks(from, to);
  TPU_CHECK(!route.empty());

  // Store-and-forward per hop at message granularity: at each hop the message
  // waits for the link to be free, occupies it for bytes/bandwidth, and then
  // pays the propagation latency. We precompute the full hop schedule now —
  // FIFO ordering per link is preserved because reservations are made in
  // Send-call order (the simulator is single-threaded).
  SimTime head = simulator_->now() + config_.message_overhead;
  for (std::size_t i = 0; i < route.size(); ++i) {
    const topo::Link& link = topology_->link(route[i]);
    const LinkParams& params = config_.ParamsFor(link.type);
    SimTime serialize = static_cast<double>(bytes) / params.bandwidth *
                        degradation_[route[i]];
    // A failed link stalls the message: it eventually "arrives" (so the event
    // queue drains and simulations terminate), but far past any deadline a
    // health monitor would set.
    if (failed_[route[i]]) serialize += kFailedLinkStall;

    sim::FifoResource& resource = link_resources_[route[i]];
    const SimTime start = resource.ReserveFrom(head, serialize);
    const bool last_hop = i + 1 == route.size();
    if (last_hop) {
      // The completion callback fires when the message tail has arrived.
      simulator_->ScheduleAt(start + serialize + params.latency,
                             std::move(on_done));
    }
    head = start + serialize + params.latency;

    switch (link.type) {
      case topo::LinkType::kMeshX:
        traffic_.mesh_x_bytes += bytes;
        break;
      case topo::LinkType::kCrossPodX:
        traffic_.cross_pod_x_bytes += bytes;
        break;
      case topo::LinkType::kMeshY:
        traffic_.mesh_y_bytes += bytes;
        break;
      case topo::LinkType::kWrapY:
        traffic_.wrap_y_bytes += bytes;
        break;
    }
  }
}

SimTime Network::EstimateArrival(topo::ChipId from, topo::ChipId to,
                                 Bytes bytes) const {
  if (from == to) return simulator_->now() + config_.message_overhead;
  SimTime head = simulator_->now() + config_.message_overhead;
  for (topo::LinkId id : topology_->RouteLinks(from, to)) {
    const topo::Link& link = topology_->link(id);
    const LinkParams& params = config_.ParamsFor(link.type);
    const SimTime serialize = static_cast<double>(bytes) / params.bandwidth;
    const SimTime start = std::max(head, link_resources_[id].free_at());
    head = start + serialize + params.latency;
  }
  return head;
}

void Network::DegradeLink(topo::LinkId link, double factor) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  TPU_CHECK_GE(factor, 1.0) << "a degradation factor below 1 would speed the "
                               "link up; use RestoreLink to heal";
  degradation_[link] = factor;
}

void Network::RestoreLink(topo::LinkId link) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  degradation_[link] = 1.0;
  failed_[link] = false;
}

void Network::FailLink(topo::LinkId link) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(failed_.size()));
  failed_[link] = true;
}

bool Network::LinkFailed(topo::LinkId link) const {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(failed_.size()));
  return failed_[link];
}

double Network::LinkDegradation(topo::LinkId link) const {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  return degradation_[link];
}

int Network::failed_link_count() const {
  int count = 0;
  for (const bool f : failed_) count += f ? 1 : 0;
  return count;
}

double Network::MeanActiveLinkUtilization() const {
  const SimTime elapsed = simulator_->now();
  if (elapsed <= 0.0) return 0.0;
  double total = 0;
  int active = 0;
  for (const auto& resource : link_resources_) {
    if (resource.busy_time() > 0) {
      total += resource.busy_time() / elapsed;
      ++active;
    }
  }
  return active > 0 ? total / active : 0.0;
}

double Network::MaxLinkUtilization() const {
  const SimTime elapsed = simulator_->now();
  if (elapsed <= 0.0) return 0.0;
  double max_busy = 0.0;
  for (const auto& resource : link_resources_) {
    max_busy = std::max(max_busy, resource.busy_time());
  }
  return max_busy / elapsed;
}

}  // namespace tpu::net
