#include "network/network.h"

#include <algorithm>
#include <cstdio>
#include <string>

namespace tpu::net {
namespace {

const char* LinkTypeName(topo::LinkType type) {
  switch (type) {
    case topo::LinkType::kMeshX:
      return "meshX";
    case topo::LinkType::kCrossPodX:
      return "crossX";
    case topo::LinkType::kMeshY:
      return "meshY";
    case topo::LinkType::kWrapY:
      return "wrapY";
  }
  return "link";
}

std::string BytesLabel(Bytes bytes) {
  char buf[32];
  if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "xfer %.1fMiB",
                  static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "xfer %.1fKiB",
                  static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "xfer %lldB",
                  static_cast<long long>(bytes));
  }
  return buf;
}

}  // namespace

Network::Network(const topo::MeshTopology* topology,
                 const NetworkConfig& config, sim::Simulator* simulator)
    : topology_(topology), config_(config), simulator_(simulator) {
  TPU_CHECK(topology != nullptr);
  TPU_CHECK(simulator != nullptr);
  link_resources_.reserve(topology_->links().size());
  for (std::size_t i = 0; i < topology_->links().size(); ++i) {
    link_resources_.emplace_back(simulator_);
  }
  degradation_.assign(topology_->links().size(), 1.0);
  failed_.assign(topology_->links().size(), 0);
  route_cache_.resize(topology_->num_chips());
  // One traffic shard per pod (= PDES partition); sized here so concurrent
  // partition drains never resize shared storage.
  traffic_shards_.resize(topology_->config().num_pods);
}

TrafficStats Network::traffic() const {
  TrafficStats total = traffic_;
  for (const TrafficStats& shard : traffic_shards_) {
    total.mesh_x_bytes += shard.mesh_x_bytes;
    total.cross_pod_x_bytes += shard.cross_pod_x_bytes;
    total.mesh_y_bytes += shard.mesh_y_bytes;
    total.wrap_y_bytes += shard.wrap_y_bytes;
    total.messages += shard.messages;
  }
  return total;
}

const Network::CachedRoute& Network::RouteFor(topo::ChipId from,
                                              topo::ChipId to) const {
  std::vector<std::pair<topo::ChipId, CachedRoute>>& routes =
      route_cache_[from];
  for (const auto& [dst, route] : routes) {
    if (dst == to) return route;
  }

  const std::vector<topo::LinkId> links = topology_->RouteLinks(from, to);
  TPU_CHECK(!links.empty());
  CachedRoute route;
  route.hops.reserve(links.size());
  for (const topo::LinkId id : links) {
    const topo::Link& link = topology_->link(id);
    const LinkParams& params = config_.ParamsFor(link.type);
    route.hops.push_back({id, link.type, params.latency, params.bandwidth});
  }
  routes.emplace_back(to, std::move(route));
  return routes.back().second;
}

void Network::Send(topo::ChipId from, topo::ChipId to, Bytes bytes,
                   sim::Simulator::Callback on_done) {
  TPU_CHECK_GE(bytes, 0);
  // During a PDES partition drain, clock reads, completion scheduling and
  // traffic accounting all route to the active lane; serially both resolve
  // to the members.
  sim::Simulator& des = sim::ActiveSimulatorOr(simulator_);
  TrafficStats& traffic = ActiveTraffic();
  ++traffic.messages;
  trace::TraceRecorder* recorder = trace::CurrentTrace();
  trace::MetricsRegistry* metrics = trace::CurrentMetrics();
  sim::EventObserver* observer = sim::CurrentEventObserver();
  if (recorder != nullptr) EnsureTraceState(recorder);
  if (from == to) {
    const std::uint64_t done_seq =
        des.Schedule(config_.message_overhead, std::move(on_done));
    if (observer != nullptr) {
      sim::MessageRecord record;
      record.from = from;
      record.to = to;
      record.bytes = bytes;
      record.overhead = config_.message_overhead;
      observer->OnMessage(done_seq, std::move(record));
    }
    return;
  }

  // Store-and-forward per hop at message granularity: at each hop the message
  // waits for the link to be free, occupies it for bytes/bandwidth, and then
  // pays the propagation latency. We precompute the full hop schedule now —
  // FIFO ordering per link is preserved because reservations are made in
  // Send-call order (the simulator is single-threaded). The hop parameters
  // come from the route cache; only live link state is read per message.
  const CachedRoute& route = RouteFor(from, to);
  sim::MessageRecord record;
  std::uint64_t done_seq = 0;
  if (observer != nullptr) {
    record.from = from;
    record.to = to;
    record.bytes = bytes;
    record.overhead = config_.message_overhead;
    record.hops.reserve(route.hops.size());
  }
  SimTime head = des.now() + config_.message_overhead;
  for (std::size_t i = 0; i < route.hops.size(); ++i) {
    const CachedHop& hop = route.hops[i];
    const SimTime healthy_serialize =
        static_cast<double>(bytes) / hop.bandwidth;
    SimTime serialize = healthy_serialize * degradation_[hop.link];
    // A failed link stalls the message: it eventually "arrives" (so the event
    // queue drains and simulations terminate), but far past any deadline a
    // health monitor would set.
    if (failed_[hop.link] != 0) serialize += kFailedLinkStall;

    sim::FifoResource& resource = link_resources_[hop.link];
    const SimTime start = resource.ReserveFrom(head, serialize);
    const bool last_hop = i + 1 == route.hops.size();
    if (last_hop) {
      // The completion callback fires when the message tail has arrived.
      done_seq = des.ScheduleAt(start + serialize + hop.latency,
                                std::move(on_done));
    }
    if (observer != nullptr) {
      sim::MessageHopRecord hop_record;
      hop_record.link = hop.link;
      hop_record.pod = PodOf(topology_->link(hop.link).from);
      hop_record.type_name = LinkTypeName(hop.type);
      hop_record.queue = start - head;
      hop_record.serialize = serialize;
      hop_record.healthy_serialize = healthy_serialize;
      hop_record.latency = hop.latency;
      hop_record.start = start;
      record.hops.push_back(hop_record);
    }

    if (recorder != nullptr) {
      // One span per hop on the link's own track; the gap between the hop's
      // earliest start (`head`) and its actual start is FIFO queueing.
      const trace::TraceRecorder::TrackId track =
          LinkTrack(recorder, hop.link);
      recorder->Complete(track, BytesLabel(bytes), start, start + serialize);
      if (failed_[hop.link] != 0) {
        recorder->Instant(track, "failed-link stall", start);
      }
      const int pod = PodOf(topology_->link(hop.link).from);
      recorder->CounterDelta(pod_busy_links_[pod], start, 1.0);
      recorder->CounterDelta(pod_busy_links_[pod], start + serialize, -1.0);
      recorder->CounterDelta(pod_bytes_in_flight_[pod], start,
                             static_cast<double>(bytes));
      recorder->CounterDelta(pod_bytes_in_flight_[pod],
                             start + serialize + hop.latency,
                             static_cast<double>(bytes) * -1.0);
    }
    if (metrics != nullptr) {
      metrics->Histogram("net.link_queue_delay_us")
          .Record(ToMicros(start - head));
      metrics->Histogram("net.hop_serialize_us").Record(ToMicros(serialize));
    }
    head = start + serialize + hop.latency;

    switch (hop.type) {
      case topo::LinkType::kMeshX:
        traffic.mesh_x_bytes += bytes;
        break;
      case topo::LinkType::kCrossPodX:
        traffic.cross_pod_x_bytes += bytes;
        break;
      case topo::LinkType::kMeshY:
        traffic.mesh_y_bytes += bytes;
        break;
      case topo::LinkType::kWrapY:
        traffic.wrap_y_bytes += bytes;
        break;
    }
  }
  if (observer != nullptr) {
    // The completion event carries the message's provenance: which links it
    // crossed, and where each hop's time went (queue/serialize/latency).
    observer->OnMessage(done_seq, std::move(record));
  }
}

void Network::EnsureTraceState(trace::TraceRecorder* recorder) {
  if (trace_recorder_ == recorder) return;
  trace_recorder_ = recorder;
  link_tracks_.assign(topology_->links().size(), -1);
  const int num_pods = topology_->config().num_pods;
  pod_bytes_in_flight_.resize(num_pods);
  pod_busy_links_.resize(num_pods);
  for (int pod = 0; pod < num_pods; ++pod) {
    // Anchor each pod's counters to a per-pod track so Perfetto shows them
    // under the pod's process.
    const trace::TraceRecorder::TrackId anchor =
        recorder->Track("pod" + std::to_string(pod), "links");
    pod_bytes_in_flight_[pod] = recorder->Counter(anchor, "bytes_in_flight");
    pod_busy_links_[pod] = recorder->Counter(anchor, "busy_links");
  }
}

trace::TraceRecorder::TrackId Network::LinkTrack(
    trace::TraceRecorder* recorder, topo::LinkId link_id) {
  trace::TraceRecorder::TrackId& cached = link_tracks_[link_id];
  if (cached >= 0) return cached;
  const topo::Link& link = topology_->link(link_id);
  const topo::Coord from = topology_->CoordOf(link.from);
  const topo::Coord to = topology_->CoordOf(link.to);
  char name[96];
  std::snprintf(name, sizeof(name), "link %d (%d,%d)->(%d,%d) %s",
                static_cast<int>(link_id), from.x, from.y, to.x, to.y,
                LinkTypeName(link.type));
  cached = recorder->Track("pod" + std::to_string(PodOf(link.from)), name);
  return cached;
}

void Network::ExportMetrics(trace::MetricsRegistry& metrics) const {
  const TrafficStats totals = traffic();
  metrics.Counter("net.messages").Add(totals.messages);
  metrics.Counter("net.bytes.mesh_x").Add(totals.mesh_x_bytes);
  metrics.Counter("net.bytes.cross_pod_x").Add(totals.cross_pod_x_bytes);
  metrics.Counter("net.bytes.mesh_y").Add(totals.mesh_y_bytes);
  metrics.Counter("net.bytes.wrap_y").Add(totals.wrap_y_bytes);
  metrics.Gauge("net.max_link_utilization").Max(MaxLinkUtilization());
  metrics.Gauge("net.mean_active_link_utilization")
      .Max(MeanActiveLinkUtilization());
  metrics.Gauge("net.failed_links")
      .Max(static_cast<double>(failed_link_count()));
}

SimTime Network::EstimateArrival(topo::ChipId from, topo::ChipId to,
                                 Bytes bytes) const {
  if (from == to) return simulator_->now() + config_.message_overhead;
  SimTime head = simulator_->now() + config_.message_overhead;
  for (const CachedHop& hop : RouteFor(from, to).hops) {
    const SimTime serialize = static_cast<double>(bytes) / hop.bandwidth;
    const SimTime start = std::max(head, link_resources_[hop.link].free_at());
    head = start + serialize + hop.latency;
  }
  return head;
}

void Network::DegradeLink(topo::LinkId link, double factor) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  TPU_CHECK_GE(factor, 1.0) << "a degradation factor below 1 would speed the "
                               "link up; use ReleaseDegradedLink to heal";
  degrade_sources_.emplace_back(link, factor);
  if (factor > degradation_[link]) degradation_[link] = factor;
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    EnsureTraceState(recorder);
    char label[48];
    std::snprintf(label, sizeof(label), "degraded x%.1f", degradation_[link]);
    recorder->Instant(LinkTrack(recorder, link), label, simulator_->now());
  }
}

void Network::RefreshDegradation(topo::LinkId link) {
  double factor = 1.0;
  for (const auto& [source_link, source_factor] : degrade_sources_) {
    if (source_link == link && source_factor > factor) factor = source_factor;
  }
  degradation_[link] = factor;
  if (factor == 1.0 && failed_[link] == 0) {
    if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
      EnsureTraceState(recorder);
      recorder->Instant(LinkTrack(recorder, link), "link restored",
                        simulator_->now());
    }
  }
}

void Network::ReleaseDegradedLink(topo::LinkId link, double factor) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  for (std::size_t i = 0; i < degrade_sources_.size(); ++i) {
    if (degrade_sources_[i].first == link &&
        degrade_sources_[i].second == factor) {
      degrade_sources_.erase(degrade_sources_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      RefreshDegradation(link);
      return;
    }
  }
  // No matching source: the link was force-restored (or never degraded by
  // this factor). Idempotent no-op by design.
}

void Network::RestoreLink(topo::LinkId link) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  degradation_[link] = 1.0;
  failed_[link] = 0;
  std::erase_if(degrade_sources_,
                [link](const auto& source) { return source.first == link; });
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    EnsureTraceState(recorder);
    recorder->Instant(LinkTrack(recorder, link), "link restored",
                      simulator_->now());
  }
}

void Network::FailLink(topo::LinkId link) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(failed_.size()));
  ++failed_[link];
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    EnsureTraceState(recorder);
    recorder->Instant(LinkTrack(recorder, link), "link failed",
                      simulator_->now());
  }
}

void Network::ReleaseFailedLink(topo::LinkId link) {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(failed_.size()));
  if (failed_[link] == 0) return;  // force-restored meanwhile: no-op
  if (--failed_[link] == 0 && degradation_[link] == 1.0) {
    if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
      EnsureTraceState(recorder);
      recorder->Instant(LinkTrack(recorder, link), "link restored",
                        simulator_->now());
    }
  }
}

bool Network::LinkFailed(topo::LinkId link) const {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(failed_.size()));
  return failed_[link] != 0;
}

double Network::LinkDegradation(topo::LinkId link) const {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(degradation_.size()));
  return degradation_[link];
}

int Network::failed_link_count() const {
  int count = 0;
  for (const int depth : failed_) count += depth > 0 ? 1 : 0;
  return count;
}

double Network::MeanActiveLinkUtilization() const {
  const SimTime elapsed = simulator_->now();
  if (elapsed <= 0.0) return 0.0;
  double total = 0;
  int active = 0;
  for (const auto& resource : link_resources_) {
    if (resource.busy_time() > 0) {
      total += resource.busy_time() / elapsed;
      ++active;
    }
  }
  return active > 0 ? total / active : 0.0;
}

double Network::MaxLinkUtilization() const {
  const SimTime elapsed = simulator_->now();
  if (elapsed <= 0.0) return 0.0;
  double max_busy = 0.0;
  for (const auto& resource : link_resources_) {
    max_busy = std::max(max_busy, resource.busy_time());
  }
  return max_busy / elapsed;
}

double Network::LinkUtilization(topo::LinkId link) const {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(link_resources_.size()));
  const SimTime elapsed = simulator_->now();
  if (elapsed <= 0.0) return 0.0;
  return link_resources_[link].busy_time() / elapsed;
}

SimTime Network::LinkBacklogSeconds(topo::LinkId link) const {
  TPU_CHECK_GE(link, 0);
  TPU_CHECK_LT(link, static_cast<topo::LinkId>(link_resources_.size()));
  return std::max(0.0, link_resources_[link].free_at() - simulator_->now());
}

SimTime Network::MaxLinkBacklogSeconds() const {
  const SimTime now = simulator_->now();
  SimTime max_backlog = 0.0;
  for (const auto& resource : link_resources_) {
    max_backlog = std::max(max_backlog, resource.free_at() - now);
  }
  return max_backlog;
}

}  // namespace tpu::net
