// Fault tolerance walkthrough: inject faults into a live collective, watch
// the phase-deadline health monitor catch them, then price the damage with
// the checkpoint/restart goodput model at multipod scale.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fault_tolerance
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "collectives/all_reduce.h"
#include "core/multipod.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "fault/health_monitor.h"
#include "models/model_specs.h"
#include "network/network.h"
#include "sim/event_observer.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "trace/critical_path.h"
#include "trace/run_report.h"

int main() {
  using namespace tpu;

  // --- Part 1: detection. An 8x8 pod slice runs a monitored 2-D gradient
  // summation; a fault injector kills one Y link mid-run. The runtime can't
  // see the dead link — it can only see a phase blow through its deadline.
  std::printf("Part 1 — deadline detection on an 8x8 slice\n");
  coll::GradientSummationConfig summation;
  summation.elems = 1 << 20;
  summation.deadline.multiple = 3.0;  // alarm at 3x the healthy estimate

  auto run_once = [&](bool inject) {
    topo::MeshTopology topo(topo::TopologyConfig::Slice(8, 8, true));
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    if (inject) {
      fault::FaultInjector injector(&network, {});
      fault::FaultEvent death;
      death.kind = fault::FaultKind::kChipFailure;
      death.chip = topo.ChipAt({3, 3});
      injector.Apply(death);
    }
    const auto result = coll::TwoDGradientSummation(network, summation);
    std::printf("  %s:\n", inject ? "chip (3,3) dead" : "healthy");
    for (const auto& phase : result.phases) {
      std::printf("    %-16s expected %8.1f us  deadline %8.1f us  "
                  "actual %12.1f us%s\n",
                  phase.name, ToMicros(phase.expected), ToMicros(phase.deadline),
                  ToMicros(phase.actual), phase.timed_out ? "  ** TIMEOUT" : "");
    }
    if (result.timed_out) {
      std::printf("    detected in phase %s at t=%.1f us — the stalled "
                  "collective itself would not finish for ~%.0f min\n",
                  result.timed_out_phase, ToMicros(result.detected_at),
                  ToMinutes(result.total()));
    }
    return result;
  };
  run_once(/*inject=*/false);
  const auto sick = run_once(/*inject=*/true);

  // Score the observations against the injector's ground truth.
  fault::HealthMonitor monitor;
  monitor.ObserveSummation(sick, /*fault_active=*/true);
  std::printf("  monitor: %d phases, %d detections, %d false positives, "
              "mean detection latency %.1f us\n\n",
              monitor.stats().phases_observed, monitor.stats().detections,
              monitor.stats().false_positives,
              ToMicros(monitor.stats().mean_detection_latency()));

  // --- Part 2: goodput. BERT at the submission scale (4096 chips), per-chip
  // MTBF of ~2 months: how much wall time do failures + checkpoints cost, and
  // how should the checkpoint interval be chosen?
  std::printf("Part 2 — expected time under failures, BERT at 4096 chips\n");
  core::MultipodSystem multipod(4096);
  core::FaultToleranceOptions options;
  options.faults.chip_mtbf = Seconds(5e6);  // ~2 months per chip

  const auto tolerant = multipod.SimulateTrainingUnderFailures(
      models::Benchmark::kBert, 8192, /*model_parallel_cores=*/1,
      frameworks::Framework::kTensorFlow, options);
  const SimTime base = tolerant.failure_free.train_seconds +
                       tolerant.failure_free.eval_seconds;
  std::printf("  failure-free run        %8.2f min\n", ToMinutes(base));
  std::printf("  system MTBF             %8.2f min (4096 chips)\n",
              ToMinutes(tolerant.system_mtbf));
  std::printf("  checkpoint write        %8.2f s (%.1f GB over %d hosts)\n",
              tolerant.checkpoint.write_seconds,
              tolerant.checkpoint.state_bytes / 1e9,
              multipod.topology().num_hosts());
  std::printf("  detection + restart     %8.2f s + %.2f s\n",
              tolerant.detection_latency, tolerant.restart_seconds);
  std::printf("  chosen interval         %8.2f s (Young: %.2f s)\n",
              tolerant.checkpoint_interval,
              fault::YoungCheckpointInterval(tolerant.checkpoint.write_seconds,
                                             tolerant.system_mtbf));
  std::printf("  expected run            %8.2f min (E[failures] = %.2f)\n",
              ToMinutes(tolerant.expected_seconds),
              tolerant.expected_failures);
  std::printf("  goodput                 %8.1f %%\n\n",
              100.0 * tolerant.goodput);

  // The same machine across MTBF regimes: goodput erodes as MTBF shrinks.
  std::printf("  %-26s %10s %10s %9s\n", "per-chip MTBF", "tau*_s", "exp_min",
              "goodput");
  struct { const char* label; SimTime mtbf; } regimes[] = {
      {"8 months (healthy fleet)", Seconds(2e7)},
      {"2 months (typical)", Seconds(5e6)},
      {"2 weeks (preemptible)", Seconds(1.2e6)},
  };
  for (const auto& regime : regimes) {
    core::FaultToleranceOptions at = options;
    at.faults.chip_mtbf = regime.mtbf;
    const auto result = multipod.SimulateTrainingUnderFailures(
        models::Benchmark::kBert, 8192, 1, frameworks::Framework::kTensorFlow,
        at);
    std::printf("  %-26s %10.1f %10.2f %8.1f%%\n", regime.label,
                result.checkpoint_interval, ToMinutes(result.expected_seconds),
                100.0 * result.goodput);
  }

  // --- Part 3: attribution. A 16x8 slice with one *degraded* (not dead) Y
  // link — the collective still finishes, just slowly, so deadline detection
  // alone cannot say WHERE the time went. The causal tracker can: the
  // critical path names the slow link, and the slack table prices what
  // healing it would buy, without a second simulation.
  std::printf("\nPart 3 — finding the bottleneck link on a degraded 16x8 "
              "slice\n");
  topo::MeshTopology mesh(topo::TopologyConfig::Slice(16, 8, true));
  sim::Simulator simulator;
  net::Network network(&mesh, net::NetworkConfig{}, &simulator);
  const int slow =
      mesh.LinkBetween(mesh.ChipAt({3, 2}), mesh.ChipAt({3, 3}));
  network.DegradeLink(slow, 8.0);

  trace::CriticalPathTracker tracker;
  coll::GradientSummationResult degraded;
  {
    sim::ScopedEventObserver observe(&tracker);
    coll::GradientSummationConfig config;
    config.elems = 1 << 20;
    config.collective.bfloat16_wire = true;
    degraded = coll::TwoDGradientSummation(network, config);
  }
  trace::RunReport report;
  report.label = "degraded 16x8 summation";
  report.step_seconds = degraded.total();
  report.comm_seconds = degraded.reduce_seconds + degraded.broadcast_seconds;
  report.has_critical_path = true;
  report.critical_path = tracker.Analyze();

  std::printf("  injected: link %d degraded x8.0\n", slow);
  std::ostringstream text;
  report.critical_path.WriteText(text);
  std::printf("%s", text.str().c_str());
  std::printf("  verdict: top contributor is link %d (%s)\n",
              report.critical_path.top_link(),
              report.critical_path.top_link() == slow ? "the injected one"
                                                      : "UNEXPECTED");
  // TPU_FAULT_REPORT=PATH writes the machine-readable RunReport JSON.
  if (const char* path = std::getenv("TPU_FAULT_REPORT")) {
    if (report.WriteFile(path)) {
      std::printf("  run report -> %s\n", path);
    }
  }
  return 0;
}
