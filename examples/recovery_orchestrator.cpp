// Recovery orchestrator walkthrough: the policy-driven fault recovery
// controller on a degraded 16x8 slice.
//
// Four canonical faults hit the same DLRM run, and the controller prices the
// five strategies (wait-for-heal / route-around / elastic-shrink /
// spare-swap-in / checkpoint-restart) against each, picking the minimum
// predicted time-to-healthy-step:
//   1. a short optical-link flap        -> wait out with exponential backoff
//   2. a permanently degraded Y link    -> re-plan the collective around it
//   3. a dead chip, no spare capacity   -> shrink to the largest healthy
//                                          sub-mesh or restart, whichever
//                                          prices cheaper
//   4. the same dead chip, 1 spare host -> swap the spare in
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/recovery_orchestrator
#include <cstdio>
#include <vector>

#include "core/multipod.h"
#include "fault/fault_injector.h"
#include "models/model_specs.h"
#include "topology/topology.h"

int main() {
  using namespace tpu;

  core::MultipodSystem system(topo::TopologyConfig::Slice(16, 8, true));
  const models::Benchmark benchmark = models::Benchmark::kDlrm;
  const std::int64_t global_batch = 65536;
  const auto framework = frameworks::Framework::kTensorFlow;

  const auto baseline =
      system.SimulateTraining(benchmark, global_batch, 1, framework);
  const SimTime base = baseline.train_seconds + baseline.eval_seconds;
  std::printf("DLRM on a 16x8 slice (%d chips, %d hosts)\n",
              system.num_chips(), system.topology().num_hosts());
  std::printf("  failure-free run %.1f s, step %.2f ms\n\n", base,
              ToMillis(baseline.step.step()));

  core::FaultToleranceOptions recovery_options;
  recovery_options.recovery.enabled = true;
  recovery_options.checkpoint_interval = Seconds(600);

  const auto run_scenario = [&](const char* title,
                                const std::vector<fault::FaultEvent>& faults,
                                int spare_hosts) {
    core::FaultToleranceOptions options = recovery_options;
    options.scripted_faults = faults;
    options.recovery.spare_hosts = spare_hosts;
    const auto result = system.SimulateTrainingUnderFailures(
        benchmark, global_batch, 1, framework, options);
    std::printf("%s\n", title);
    std::printf("  makespan %.1f s (+%.1f s over fault-free), goodput %.1f%%\n",
                result.expected_seconds,
                result.expected_seconds - result.timeline.base_seconds,
                100.0 * result.timeline.goodput());
    for (const auto& decision : result.timeline.decisions) {
      std::printf("  t=%7.1f s attempt %d: %-18s  downtime %6.1f s  "
                  "step-after %.2f ms  predicted extra %.1f s%s\n",
                  decision.decided_at, decision.attempt,
                  recover::StrategyName(decision.strategy),
                  decision.predicted_downtime,
                  ToMillis(decision.predicted_step_after),
                  decision.predicted_extra_seconds,
                  decision.verified ? "" : "  (superseded)");
    }
    std::printf("  micro-stalls %d, probes %d, restarts %d, lost work %.1f s, "
                "stalled %.1f s\n\n",
                result.timeline.micro_stalls, result.timeline.probes,
                result.timeline.restarts, result.timeline.lost_work_seconds,
                result.timeline.stalled_seconds);
    return result;
  };

  const topo::MeshTopology& topo = system.topology();
  const SimTime fault_at = Seconds(50);

  // Scenario 1 needs a transient fault that NO schedule can route around: a
  // link-level degrade always leaves an alternative (the flat snake ring
  // avoids any interior Y link), so the planner would re-plan instead of
  // waiting. A thermally slowed host degrades every link of its four chips —
  // and every all-reduce must move those chips' gradients — so the only
  // options left are waiting out the transient or paying a full restart.
  // The controller's residual-heal prior is the configured mean duration;
  // the scripted fault matches it.
  fault::FaultEvent slow_host;
  slow_host.kind = fault::FaultKind::kSlowHost;
  slow_host.host = topo.HostOf(topo.ChipAt({3, 3}));
  slow_host.at = fault_at;
  slow_host.duration = Seconds(30);
  slow_host.degrade_factor = 4096.0;
  recovery_options.faults.slow_host_mean_duration = Seconds(30);
  run_scenario("1. 30 s slowed host (every link x4096)", {slow_host}, 0);

  fault::FaultEvent dead_link;
  dead_link.kind = fault::FaultKind::kLinkFlap;
  dead_link.link = topo.LinkBetween(topo.ChipAt({3, 2}), topo.ChipAt({3, 3}));
  dead_link.at = fault_at;
  dead_link.duration = 0;  // permanent
  dead_link.degrade_factor = 1024.0;
  run_scenario("2. permanently degraded Y link (x1024)", {dead_link}, 0);

  fault::FaultEvent dead_chip;
  dead_chip.kind = fault::FaultKind::kChipFailure;
  dead_chip.chip = topo.ChipAt({5, 3});
  dead_chip.at = fault_at;
  run_scenario("3. dead chip, no spares", {dead_chip}, 0);

  // Same dead chip, but the operator holds a standby host and refuses to run
  // below 95% width — the controller swaps the spare in instead of shrinking.
  recovery_options.recovery.min_shrink_fraction = 0.95;
  run_scenario("4. dead chip, 1 spare host, shrink floor 95%", {dead_chip}, 1);
  recovery_options.recovery.min_shrink_fraction = 0.25;

  // How the strategy choice crosses over as the transient lengthens: short
  // stalls are waited out with backoff, long ones exhaust the wait deadline
  // and promote to the checkpoint-restart fallback.
  std::printf("slow-host-duration sweep (x4096, strategy of the final "
              "decision)\n");
  std::printf("  %10s %-18s %12s %10s\n", "duration_s", "strategy", "extra_s",
              "goodput");
  for (const SimTime duration :
       {Seconds(2), Seconds(10), Seconds(30), Seconds(120), Seconds(600)}) {
    fault::FaultEvent sweep_fault = slow_host;
    sweep_fault.duration = duration;
    core::FaultToleranceOptions options = recovery_options;
    options.scripted_faults = {sweep_fault};
    const auto result = system.SimulateTrainingUnderFailures(
        benchmark, global_batch, 1, framework, options);
    const char* strategy = result.timeline.decisions.empty()
                               ? "(none: micro-stall)"
                               : recover::StrategyName(
                                     result.timeline.decisions.back().strategy);
    std::printf("  %10.0f %-18s %12.1f %9.1f%%\n", duration, strategy,
                result.expected_seconds - result.timeline.base_seconds,
                100.0 * result.timeline.goodput());
  }
  return 0;
}
