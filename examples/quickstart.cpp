// Quickstart: build a TPU-v3 multipod, run one BERT training step on it,
// and print where the time goes — then show the same step at a smaller
// scale for contrast.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --trace=PATH to also export a Chrome/Perfetto timeline of the traced
// mini-run below (open it at ui.perfetto.dev); docs/quickstart_trace.json in
// the repo is this file's committed output. --metrics dumps the metrics
// registry at exit.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "collectives/all_reduce.h"
#include "core/multipod.h"
#include "fault/fault_injector.h"
#include "fault/health_monitor.h"
#include "frameworks/runtime_model.h"
#include "models/model_specs.h"
#include "network/network.h"
#include "optim/optimizer.h"
#include "sim/event_observer.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "trace/critical_path.h"
#include "trace/step_profiler.h"
#include "trace/trace.h"

namespace {

// A deliberately tiny slice (4x4, wrapped Y) running two 2-D gradient
// summations with a link flap injected mid-flight: every trace feature on a
// timeline small enough to commit — the six summation phase spans, per-ring
// async spans, per-hop link spans, pod counter tracks, and the fault
// injection / detection instants.
void TracedMiniRun() {
  using namespace tpu;
  std::printf("Traced mini-run: 4x4 slice, two 2-D summations, one link flap\n");

  sim::Simulator simulator;
  topo::MeshTopology topo(topo::TopologyConfig::Slice(4, 4, /*wrap_y=*/true));
  net::Network network(&topo, {}, &simulator);

  coll::GradientSummationConfig config;
  config.elems = 1 << 16;
  config.collective.bfloat16_wire = true;
  // Weight-update sharding hook: roughly one ns per owned element.
  config.shard_update_seconds = [](std::int64_t owned) {
    return Seconds(static_cast<double>(owned) * 1e-9);
  };
  config.deadline.multiple = 3.0;  // monitored: detections become instants
  // The default 50us floor would swallow these ~5us phases entirely.
  config.deadline.min_deadline = Micros(15);

  // One hand-written transient link flap, armed to fire inside the first
  // summation (so its phase overruns and the health monitor detects it).
  fault::FaultModelConfig fault_config;
  fault::FaultInjector injector(&network, fault_config);
  fault::FaultEvent flap;
  flap.kind = fault::FaultKind::kLinkFlap;
  flap.link = 5;
  flap.duration = Micros(300);
  flap.degrade_factor = 64.0;
  simulator.Schedule(Micros(5), [&] { injector.Apply(flap); });

  // Causal tracking: the tracker records which event released which, so the
  // critical path of the mini-run — and the flow arrows through the
  // timeline — come out of the same run. Observers only record; the
  // simulated times are bit-identical with or without it.
  trace::CriticalPathTracker tracker;
  sim::ScopedEventObserver observe(&tracker);

  fault::HealthMonitor monitor(
      {/*deadline_multiple=*/3.0, /*min_deadline=*/Micros(15)});
  for (int step = 0; step < 2; ++step) {
    const SimTime begin = simulator.now();
    const coll::GradientSummationResult result =
        coll::TwoDGradientSummation(network, config);
    monitor.ObserveSummation(
        result, injector.AnyFaultActiveIn(begin, simulator.now()));
    std::printf(
        "  summation %d: reduce %.1f us, update %.1f us, broadcast %.1f us%s\n",
        step, ToMicros(result.reduce_seconds), ToMicros(result.update_seconds),
        ToMicros(result.broadcast_seconds),
        result.timed_out ? "  [deadline exceeded]" : "");
  }
  std::printf(
      "  health monitor: %d phases, %d detections (%d true, %d false)\n",
      monitor.stats().phases_observed, monitor.stats().detections,
      monitor.stats().true_detections, monitor.stats().false_positives);

  // Critical path of the whole mini-run: the flapped link shows up as the
  // top contributor. With --trace, the path lands on its own track with
  // flow arrows stitching the causal chain through the timeline.
  const trace::CriticalPathReport report = tracker.Analyze();
  std::printf(
      "  critical path: %.1f us over %d events, top contributor link %d\n",
      ToMicros(report.makespan), report.path_nodes, report.top_link());
  if (trace::TraceRecorder* recorder = trace::CurrentTrace()) {
    trace::EmitCriticalPathToTrace(report, *recorder);
  }
}

}  // namespace

int main() {
  using namespace tpu;
  bench::Init();  // --trace=PATH / --metrics (see bench/bench_util.h)

  TracedMiniRun();
  // The multipod-scale sections below would add millions of trace events;
  // the mini-run above is the committed example timeline, so tracing stops
  // here (metrics stay on — they aggregate, not accumulate events).
  trace::SetCurrentTrace(nullptr);

  // The paper's machine: four 32x32 TPU-v3 pods joined along X (4096 chips).
  core::MultipodSystem multipod(4096);
  std::printf("\nmachine: %s\n\n", multipod.topology().ToString().c_str());

  const models::ModelSpec& bert = models::GetModelSpec(models::Benchmark::kBert);
  const auto lamb = optim::MakeLamb({});

  trace::StepProfiler profiler;
  std::printf("%-8s %-12s %-12s %-12s %-12s %-8s\n", "chips", "step(ms)",
              "compute(ms)", "allreduce", "wt-update", "AR%");
  for (int chips : {256, 1024, 4096}) {
    core::MultipodSystem system(chips);
    // Per-chip batch 2 at 4096 chips, as in the submission.
    const std::int64_t batch = 2LL * chips;
    const core::StepBreakdown step =
        system.SimulateStep(bert, batch, /*model_parallel_cores=*/1,
                            lamb.get(), &profiler);
    std::printf("%-8d %-12.3f %-12.3f %-12.3f %-12.3f %-8.1f\n", chips,
                ToMillis(step.step()), ToMillis(step.compute),
                ToMillis(step.allreduce), ToMillis(step.weight_update),
                100.0 * step.allreduce_fraction());
  }
  std::printf("\nPhase breakdown over those three steps (per-step mean):\n");
  profiler.WriteTable(std::cout);

  // End-to-end at the MLPerf v0.7 submission scale, both frameworks.
  std::printf("\nBERT end-to-end at the submission scale (4096 chips):\n");
  for (auto framework :
       {frameworks::Framework::kTensorFlow, frameworks::Framework::kJax}) {
    const core::EndToEndResult result =
        multipod.SimulateSubmission(models::Benchmark::kBert, framework);
    const frameworks::InitBreakdown init = frameworks::EstimateInitTime(
        framework, models::Benchmark::kBert, multipod.num_chips());
    std::printf("  %-11s %6lld steps  train %.1f s  eval %.1f s  "
                "run %.2f min  (init %.0f s, reported separately)\n",
                frameworks::FrameworkName(framework),
                static_cast<long long>(result.steps), result.train_seconds,
                result.eval_seconds, result.minutes(), init.total());
  }
  return 0;
}
