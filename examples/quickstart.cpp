// Quickstart: build a TPU-v3 multipod, run one BERT training step on it,
// and print where the time goes — then show the same step at a smaller
// scale for contrast.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/multipod.h"
#include "frameworks/runtime_model.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"

int main() {
  using namespace tpu;

  // The paper's machine: four 32x32 TPU-v3 pods joined along X (4096 chips).
  core::MultipodSystem multipod(4096);
  std::printf("machine: %s\n\n", multipod.topology().ToString().c_str());

  const models::ModelSpec& bert = models::GetModelSpec(models::Benchmark::kBert);
  const auto lamb = optim::MakeLamb({});

  std::printf("%-8s %-12s %-12s %-12s %-12s %-8s\n", "chips", "step(ms)",
              "compute(ms)", "allreduce", "wt-update", "AR%");
  for (int chips : {256, 1024, 4096}) {
    core::MultipodSystem system(chips);
    // Per-chip batch 2 at 4096 chips, as in the submission.
    const std::int64_t batch = 2LL * chips;
    const core::StepBreakdown step =
        system.SimulateStep(bert, batch, /*model_parallel_cores=*/1,
                            lamb.get());
    std::printf("%-8d %-12.3f %-12.3f %-12.3f %-12.3f %-8.1f\n", chips,
                ToMillis(step.step()), ToMillis(step.compute),
                ToMillis(step.allreduce), ToMillis(step.weight_update),
                100.0 * step.allreduce_fraction());
  }

  // End-to-end at the MLPerf v0.7 submission scale, both frameworks.
  std::printf("\nBERT end-to-end at the submission scale (4096 chips):\n");
  for (auto framework :
       {frameworks::Framework::kTensorFlow, frameworks::Framework::kJax}) {
    const core::EndToEndResult result =
        multipod.SimulateSubmission(models::Benchmark::kBert, framework);
    const frameworks::InitBreakdown init = frameworks::EstimateInitTime(
        framework, models::Benchmark::kBert, multipod.num_chips());
    std::printf("  %-11s %6lld steps  train %.1f s  eval %.1f s  "
                "run %.2f min  (init %.0f s, reported separately)\n",
                frameworks::FrameworkName(framework),
                static_cast<long long>(result.steps), result.train_seconds,
                result.eval_seconds, result.minutes(), init.total());
  }
  return 0;
}
