// Command-line what-if tool over the multipod simulator: pick a benchmark,
// machine size, batch, model-parallel width and framework, and get the step
// breakdown + end-to-end estimate. The tool a capacity planner would use.
//
//   ./build/examples/multipod_explorer bert 1024 16384 1 jax
//   ./build/examples/multipod_explorer transformer 4096 2048 4 tf
//   ./build/examples/multipod_explorer            (prints usage + a default)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/multipod.h"
#include "frameworks/runtime_model.h"
#include "models/model_specs.h"

namespace {

using namespace tpu;

models::Benchmark ParseBenchmark(const std::string& name) {
  for (models::Benchmark b : models::AllBenchmarks()) {
    std::string lower = models::BenchmarkName(b);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string key = lower;
    key.erase(std::remove(key.begin(), key.end(), '-'), key.end());
    if (name == lower || name == key) return b;
  }
  std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
  std::exit(1);
}

void Run(models::Benchmark benchmark, int chips, std::int64_t batch, int mp,
         frameworks::Framework framework) {
  const models::ModelSpec& spec = models::GetModelSpec(benchmark);
  core::MultipodSystem system(chips);
  std::printf("machine:    %s\n", system.topology().ToString().c_str());
  std::printf("benchmark:  %s  (batch %lld, %d-way model parallel, %s)\n",
              spec.name.c_str(), static_cast<long long>(batch), mp,
              frameworks::FrameworkName(framework));

  const auto result = system.SimulateTraining(benchmark, batch, mp, framework);
  std::printf("\nper-step breakdown:\n");
  std::printf("  compute        %9.3f ms\n", ToMillis(result.step.compute));
  std::printf("  all-reduce     %9.3f ms (%.1f%% of step)\n",
              ToMillis(result.step.allreduce),
              100.0 * result.step.allreduce_fraction());
  std::printf("  weight update  %9.3f ms\n",
              ToMillis(result.step.weight_update));
  if (result.step.embedding_comm > 0) {
    std::printf("  embedding a2a  %9.3f ms\n",
                ToMillis(result.step.embedding_comm));
  }
  std::printf("  step           %9.3f ms\n", ToMillis(result.step.step()));

  std::printf("\nrun:\n");
  std::printf("  steps to converge  %lld (%.1f epochs)\n",
              static_cast<long long>(result.steps), result.epochs);
  std::printf("  train              %9.1f s\n", result.train_seconds);
  std::printf("  eval               %9.1f s\n", result.eval_seconds);
  std::printf("  end-to-end         %9.2f min\n", result.minutes());

  const auto init = frameworks::EstimateInitTime(framework, benchmark, chips);
  std::printf("  init (outside MLPerf clock) %6.0f s\n", init.total());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 6) {
    std::printf(
        "usage: %s <benchmark> <chips> <global_batch> <mp_cores> <tf|jax>\n"
        "  benchmarks: bert resnet50 transformer ssd maskrcnn dlrm\n"
        "running the default: bert 4096 8192 1 jax\n\n",
        argv[0]);
    Run(models::Benchmark::kBert, 4096, 8192, 1, frameworks::Framework::kJax);
    return 0;
  }
  const models::Benchmark benchmark = ParseBenchmark(argv[1]);
  const int chips = std::atoi(argv[2]);
  const std::int64_t batch = std::atoll(argv[3]);
  const int mp = std::atoi(argv[4]);
  const frameworks::Framework framework =
      std::strcmp(argv[5], "tf") == 0 ? frameworks::Framework::kTensorFlow
                                      : frameworks::Framework::kJax;
  Run(benchmark, chips, batch, mp, framework);
  return 0;
}
