// Exports the paper's scaling figures as CSV files for plotting:
//   fig5_resnet.csv, fig7_bert.csv (scaling sweeps)
// into the current directory, and prints the speedup series.
//
//   ./build/examples/export_figures [output_dir]
#include <cstdio>
#include <fstream>
#include <string>

#include "core/sweep.h"

int main(int argc, char** argv) {
  using namespace tpu;
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";

  struct Figure {
    const char* file;
    core::SweepConfig config;
  };
  core::SweepConfig resnet;
  resnet.benchmark = models::Benchmark::kResNet50;
  resnet.chip_counts = {16, 64, 256, 1024, 4096};
  resnet.batch_for = [](int chips) {
    std::int64_t b = 1;
    while (b * b < 1024LL * 1024 * chips) b *= 2;
    return std::min<std::int64_t>(65536, std::max<std::int64_t>(4096, b));
  };
  core::SweepConfig bert;
  bert.benchmark = models::Benchmark::kBert;
  bert.chip_counts = {16, 64, 256, 1024, 4096};
  bert.batch_for = [](int chips) {
    const std::int64_t per_chip = chips <= 16   ? 48
                                  : chips <= 64  ? 24
                                  : chips <= 256 ? 12
                                  : chips <= 1024 ? 6
                                                  : 2;
    return per_chip * chips;
  };

  for (const Figure& figure :
       {Figure{"fig5_resnet.csv", resnet}, Figure{"fig7_bert.csv", bert}}) {
    const auto points = core::RunScalingSweep(figure.config);
    const std::string path = dir + figure.file;
    std::ofstream out(path);
    core::WriteSweepCsv(out, points);
    std::printf("wrote %s (%zu points)\n", path.c_str(), points.size());
    for (const auto& row : core::SpeedupsRelativeToFirst(points)) {
      std::printf("  %5d chips: e2e %.1fx, throughput %.1fx\n", row.chips,
                  row.end_to_end, row.throughput);
    }
  }
  return 0;
}
