// ResNet-50 on the multipod: the full data-parallel story in one program.
//
//   1. sweep machine sizes and watch the compute/all-reduce balance shift
//      (the Figure 5/6 experiment at example scale),
//   2. show what the input pipeline does to the step time at 1024 hosts,
//      with and without the uncompressed-image host cache (Section 3.5),
//   3. show LARS weight-update sharding on real numbers: the sharded
//      optimizer produces bit-identical weights to the replicated one.
//
//   ./build/examples/resnet_scaling
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/multipod.h"
#include "input/host_pipeline.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"
#include "optim/weight_update_sharding.h"

int main() {
  using namespace tpu;
  std::printf("== ResNet-50 scaling sweep ==\n");
  std::printf("%6s %8s %8s | %10s %10s %8s\n", "chips", "batch", "epochs",
              "step(ms)", "min", "AR%%");
  for (int chips : {64, 256, 1024, 4096}) {
    core::MultipodSystem system(chips);
    const std::int64_t batch =
        std::min<std::int64_t>(65536, 16LL * system.num_cores());
    const auto result = system.SimulateTraining(
        models::Benchmark::kResNet50, batch, 1, frameworks::Framework::kJax);
    std::printf("%6d %8lld %8.1f | %10.3f %10.2f %7.1f%%\n", chips,
                static_cast<long long>(batch), result.epochs,
                ToMillis(result.step.step()), result.minutes(),
                100.0 * result.step.allreduce_fraction());
  }

  std::printf("\n== Host input pipeline at 1024 hosts (Section 3.5) ==\n");
  for (bool cache : {false, true}) {
    input::HostPipelineConfig config;
    config.num_hosts = 1024;
    config.per_host_batch = 16;
    config.device_step = Millis(2.0);
    config.steps = 200;
    config.uncompressed_cache = cache;
    const auto stats = input::SimulateHostPipeline(config, 1);
    std::printf("  %-24s stall %5.1f%%  (worst host batch %.1f ms)\n",
                cache ? "uncompressed host cache" : "JPEG decode per step",
                100.0 * stats.stall_fraction,
                ToMillis(stats.worst_batch_seconds));
  }

  std::printf("\n== LARS weight-update sharding, numerically (Section 3.2) ==\n");
  auto opt_a = optim::MakeLars({});
  auto opt_b = optim::MakeLars({});
  const int replicas = 8;
  const std::int64_t params = 4096;
  optim::DistributedTrainer replicated(opt_a.get(), replicas, params,
                                       optim::UpdateScheme::kReplicated);
  optim::DistributedTrainer sharded(
      opt_b.get(), replicas, params,
      optim::UpdateScheme::kWeightUpdateSharding);
  tpu::Rng rng(99);
  for (int step = 0; step < 10; ++step) {
    std::vector<std::vector<float>> grads(replicas,
                                          std::vector<float>(params));
    for (auto& g : grads) {
      for (float& v : g) v = static_cast<float>(rng.NextGaussian() * 0.01);
    }
    replicated.Step(grads);
    sharded.Step(grads);
  }
  float max_diff = 0;
  for (std::int64_t i = 0; i < params; ++i) {
    max_diff = std::max(max_diff, std::abs(replicated.weights(0)[i] -
                                           sharded.weights(0)[i]));
  }
  std::printf("  10 steps, %d replicas, %lld params: max weight divergence "
              "%.2e (trust ratios combined via stat all-reduce)\n",
              replicas, static_cast<long long>(params), max_diff);
  return 0;
}
