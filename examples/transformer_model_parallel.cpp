// Transformer feature sharding through the SPMD partitioner (Sections 3.1,
// 4.3): annotate the weights, partition the block over 4 cores, verify the
// partitioned program computes *exactly* the same result as the reference,
// and inspect the communication the partitioner inserted. Then show the
// Figure 4 ring structure: the gradient rings that hop over model-parallel
// peers on the mesh.
//
//   ./build/examples/transformer_model_parallel
#include <cstdio>

#include "core/multipod.h"
#include "models/blocks.h"
#include "spmd/spmd.h"
#include "tensor/tensor.h"
#include "topology/topology.h"

int main() {
  using namespace tpu;

  // Small instance so the numeric check is instant; shardings are the same
  // annotations used at full scale.
  models::ShardableBlock block =
      models::TransformerBlock(/*tokens=*/32, /*hidden=*/16, /*ff=*/64);
  std::printf("== %s ==\n%s\n", block.description.c_str(),
              block.module.ToString().c_str());

  const int cores = 4;
  const spmd::PartitionedModule pm =
      spmd::Partition(block.module, block.shardings, cores);
  std::printf("\npartitioned over %d cores:\n%s\n", cores,
              pm.ToString().c_str());

  // Numeric equivalence: partitioned == reference.
  std::vector<tensor::Tensor> params;
  int seed = 1;
  for (const hlo::HloInstruction& instr : block.module.instructions()) {
    if (instr.opcode == hlo::Opcode::kParameter) {
      params.push_back(tensor::Tensor::Random(instr.shape, seed++));
    }
  }
  const tensor::Tensor reference = hlo::Evaluate(block.module, params);
  const spmd::SpmdExecution exec = spmd::ExecutePartitioned(pm, params);
  std::printf("partitioned vs reference max |diff|: %.3e\n",
              exec.full_root.MaxAbsDiff(reference));
  std::printf("cross-partition traffic: all-reduce %lld B, all-gather %lld "
              "B, halo %lld B\n",
              static_cast<long long>(exec.allreduce_bytes),
              static_cast<long long>(exec.allgather_bytes),
              static_cast<long long>(exec.halo_bytes));

  // The Figure 4 rings: on a 16x8 slice with 4-core (2-chip) model
  // parallelism, gradient reduction along X hops over the model-parallel
  // neighbor.
  topo::MeshTopology topo(topo::TopologyConfig::Slice(16, 8, true));
  std::printf("\n== Figure 4 rings on a %s ==\n", topo.ToString().c_str());
  const auto strided = topo.StridedRingAlong(topo::Dim::kX,
                                             topo.ChipAt({0, 0}), 2);
  std::printf("gradient ring for model-peer 0 (hops over peer 1): x = ");
  for (topo::ChipId chip : strided) {
    std::printf("%d ", topo.CoordOf(chip).x);
  }
  std::printf("\n");

  // Measured model-parallel speedup at full block size (Figure 9's
  // Transformer series; paper: ~2.3x on 4 cores).
  std::printf("\nmodel-parallel speedup (full-size block): ");
  for (int c : {1, 2, 4, 8}) {
    std::printf("%d cores: %.2fx  ", c,
                core::ModelParallelSpeedup(models::Benchmark::kTransformer, c));
  }
  std::printf("\n");
  return 0;
}
