// BERT at multipod scale: the convergence side of the paper (Sections 3.5,
// 4.1). Demonstrates (1) why data shuffling gets hard when 500 files are
// spread over hundreds of hosts, (2) the recommended pipeline (shuffle
// before repeat, large sequence buffer), and (3) the LAMB weight-update
// sharding that makes the optimizer scale.
//
//   ./build/examples/bert_input_shuffle
#include <cstdio>

#include "common/rng.h"
#include "core/multipod.h"
#include "input/sharded_dataset.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"
#include "optim/weight_update_sharding.h"

int main() {
  using namespace tpu;

  std::printf("== 500 BERT files across hosts: files per host ==\n");
  for (int hosts : {32, 128, 512}) {
    std::printf("  %4d hosts -> %.1f files/host\n", hosts, 500.0 / hosts);
  }

  std::printf("\n== shuffle quality at 128 hosts (Section 3.5) ==\n");
  std::printf("%-18s %8s | %9s %11s\n", "stage order", "buffer", "coverage",
              "batch bias");
  for (auto [order, name] :
       {std::pair{input::StageOrder::kShuffleThenRepeat, "shuffle->repeat"},
        std::pair{input::StageOrder::kRepeatThenShuffle,
                  "repeat->shuffle"}}) {
    for (std::size_t buffer : {100, 10000}) {
      input::BertShuffleConfig config;
      config.order = order;
      config.shuffle_buffer_size = buffer;
      const auto stats = input::MeasureBertShuffle(config, 3, 11);
      std::printf("%-18s %8zu | %9.3f %11.2f\n", name, buffer,
                  stats.sequence_coverage, stats.batch_bias_ratio);
    }
  }
  std::printf("(bias >> 1: batches biased toward file neighborhoods — the\n"
              " run-to-run convergence spread the paper saw; 1.0 = uniform)\n");

  std::printf("\n== LAMB weight-update sharding (Section 3.2) ==\n");
  auto replicated_opt = optim::MakeLamb({});
  auto sharded_opt = optim::MakeLamb({});
  const int replicas = 16;
  const std::int64_t params = 8192;
  optim::DistributedTrainer replicated(replicated_opt.get(), replicas, params,
                                       optim::UpdateScheme::kReplicated);
  optim::DistributedTrainer sharded(
      sharded_opt.get(), replicas, params,
      optim::UpdateScheme::kWeightUpdateSharding);
  tpu::Rng rng(5);
  for (int step = 0; step < 8; ++step) {
    std::vector<std::vector<float>> grads(replicas,
                                          std::vector<float>(params));
    for (auto& g : grads) {
      for (float& v : g) v = static_cast<float>(rng.NextGaussian() * 0.02);
    }
    replicated.Step(grads);
    sharded.Step(grads);
  }
  float max_diff = 0;
  for (std::int64_t i = 0; i < params; ++i) {
    max_diff = std::max(max_diff, std::abs(replicated.weights(0)[i] -
                                           sharded.weights(0)[i]));
  }
  std::printf("  sharded vs replicated LAMB after 8 steps: max |diff| = %.2e\n",
              max_diff);

  std::printf("\n== BERT step at 512 chips: the 18%% problem ==\n");
  const auto& bert = models::GetModelSpec(models::Benchmark::kBert);
  const auto lamb = optim::MakeLamb({});
  core::SystemOptions no_wus;
  no_wus.weight_update_sharding = false;
  core::MultipodSystem without(512, no_wus);
  core::MultipodSystem with(512);
  const auto slow = without.SimulateStep(bert, 4096, 1, lamb.get());
  const auto fast = with.SimulateStep(bert, 4096, 1, lamb.get());
  std::printf("  replicated update: %.1f ms (%.1f%% of step)  ->  sharded: "
              "%.3f ms\n",
              ToMillis(slow.weight_update),
              100.0 * slow.weight_update / slow.step(),
              ToMillis(fast.weight_update));
  return 0;
}
