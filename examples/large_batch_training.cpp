// The convergence side of data parallelism, numerically (Sections 4.1-4.2):
// train a real (tiny) network with hand-derived gradients and watch what
// happens as the batch grows 32 -> 4096.
//
//   * momentum SGD with the classic "scale the learning rate linearly with
//     the batch" rule destabilizes,
//   * LAMB (BERT's optimizer) and LARS (ResNet-50's) keep converging with
//     the SAME hyperparameters at every batch size — the property that lets
//     the paper run batch 65536 on 4096 chips.
//
//   ./build/examples/large_batch_training
#include <cstdio>

#include "optim/mlp_trainer.h"
#include "optim/optimizer.h"

int main() {
  using namespace tpu::optim;
  std::printf("teacher-student MLP, 150 steps per run, MSE loss\n\n");
  std::printf("%6s | %22s | %14s | %14s\n", "batch", "SGD (lr x batch/32)",
              "LAMB (fixed)", "LARS (fixed)");

  for (std::int64_t batch : {32, 128, 512, 2048, 4096}) {
    MomentumSgdConfig sgd_config;
    sgd_config.learning_rate = 0.02f * static_cast<float>(batch) / 32.0f;
    auto sgd = MakeMomentumSgd(sgd_config);
    MlpTrainer sgd_trainer({});
    const TrainResult sgd_result = sgd_trainer.Train(*sgd, batch, 150);

    LambConfig lamb_config;
    lamb_config.learning_rate = 0.02f;
    lamb_config.weight_decay = 0.0f;
    auto lamb = MakeLamb(lamb_config);
    MlpTrainer lamb_trainer({});
    const TrainResult lamb_result = lamb_trainer.Train(*lamb, batch, 150);

    LarsConfig lars_config;
    lars_config.learning_rate = 1.0f;
    lars_config.trust_coefficient = 0.02f;
    lars_config.weight_decay = 0.0f;
    auto lars = MakeLars(lars_config);
    MlpTrainer lars_trainer({});
    const TrainResult lars_result = lars_trainer.Train(*lars, batch, 150);

    char sgd_cell[32];
    if (sgd_result.diverged) {
      std::snprintf(sgd_cell, sizeof(sgd_cell), "DIVERGED");
    } else {
      std::snprintf(sgd_cell, sizeof(sgd_cell), "loss %.3f",
                    sgd_result.final_loss);
    }
    std::printf("%6lld | %22s | loss %9.3f | loss %9.3f\n",
                static_cast<long long>(batch), sgd_cell,
                lamb_result.final_loss, lars_result.final_loss);
  }
  std::printf(
      "\n(initial loss ~260; LAMB/LARS use identical hyperparameters at\n"
      " every batch — their trust ratios absorb the gradient-scale change)\n");
  return 0;
}
