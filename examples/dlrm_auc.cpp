// DLRM evaluation path (Sections 3.4, 4.6): distributed accuracy with padded
// eval shards, the fast multithreaded AUC over a large synthetic pCTR set,
// and the multi-step on-device eval trick.
//
//   ./build/examples/dlrm_auc
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "input/dlrm_input.h"
#include "metrics/auc.h"
#include "metrics/distributed_eval.h"

int main() {
  using namespace tpu;

  // Synthetic pCTR scores: positives shifted up, 25% positive rate.
  const std::size_t n = 10'000'000;
  std::printf("== fast AUC on %zu synthetic pCTR samples ==\n", n);
  std::vector<float> scores(n);
  std::vector<std::uint8_t> labels(n);
  Rng rng(2026);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.NextDouble() < 0.25;
    labels[i] = positive;
    scores[i] = static_cast<float>(rng.NextGaussian() + (positive ? 0.6 : 0));
  }
  ThreadPool pool(std::thread::hardware_concurrency());
  const auto t0 = std::chrono::steady_clock::now();
  const double fast = metrics::AucFast(scores, labels, pool);
  const auto t1 = std::chrono::steady_clock::now();
  const double naive = metrics::AucNaive(scores, labels);
  const auto t2 = std::chrono::steady_clock::now();
  std::printf("  multithreaded+fused: %.3f s   library-shaped: %.3f s   "
              "(%.1fx)\n",
              std::chrono::duration<double>(t1 - t0).count(),
              std::chrono::duration<double>(t2 - t1).count(),
              std::chrono::duration<double>(t2 - t1).count() /
                  std::chrono::duration<double>(t1 - t0).count());
  std::printf("  auc = %.6f (both implementations agree to %.1e)\n", fast,
              std::abs(fast - naive));

  std::printf("\n== distributed eval with padded shards (Section 3.4) ==\n");
  // 64 workers, dataset not divisible: last shard padded with dummies.
  std::vector<metrics::AccuracyParts> parts;
  Rng eval_rng(7);
  std::int64_t total_real = 0;
  for (int w = 0; w < 64; ++w) {
    metrics::EvalShard shard;
    const int real = w == 63 ? 37 : 100;  // uneven final shard
    for (int i = 0; i < real; ++i) {
      shard.correct.push_back(eval_rng.NextDouble() < 0.77);
      shard.is_real.push_back(1);
    }
    total_real += real;
    parts.push_back(metrics::LocalAccuracy(
        metrics::PadShard(std::move(shard), 100)));
  }
  const auto combined = metrics::CombineAccuracy(parts);
  std::printf("  %lld real examples across 64 padded shards -> accuracy %.4f "
              "(padding excluded)\n",
              static_cast<long long>(combined.total), combined.accuracy());

  std::printf("\n== multi-step on-device eval (Section 4.6) ==\n");
  for (int steps_per_trip : {1, 10, 100}) {
    const SimTime t =
        input::DlrmEvalSeconds(1400, steps_per_trip, Micros(400), Millis(2));
    std::printf("  %3d inference steps per host round-trip: %6.2f s\n",
                steps_per_trip, t);
  }
  return 0;
}
