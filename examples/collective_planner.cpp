// Collective planner walkthrough: enumerate the schedule space, price it,
// let the search rediscover the paper's 2-D Y-then-X schedule on a healthy
// slice, then kill a link and watch the planner route around it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/collective_planner
#include <cstdio>

#include "fault/health_monitor.h"
#include "network/network.h"
#include "plan/cost.h"
#include "plan/generator.h"
#include "plan/planner.h"
#include "plan/schedule.h"
#include "sim/simulator.h"
#include "topology/topology.h"

int main() {
  using namespace tpu;

  // --- Part 1: the search space. On a 32x16 slice with a 64M-element
  // payload, every legal schedule gets a closed-form estimate; the top
  // candidates are re-priced exactly on the discrete-event simulator.
  const topo::MeshTopology topo(topo::TopologyConfig::Slice(32, 16, true));
  plan::PlanRequest request;
  request.elems = 64 * 1000 * 1000;

  std::printf("Part 1 — candidate schedules on a healthy 32x16 slice\n");
  for (const plan::CollectivePlan& candidate :
       plan::GeneratePlans(topo, request)) {
    const plan::LoweredPlan lowered =
        plan::LowerPlan(topo, candidate, request.elems);
    std::printf("  %-28s ~%8.3f ms\n", candidate.name().c_str(),
                ToMillis(plan::EstimatePlanSeconds(
                    topo, net::NetworkConfig{}, {}, lowered)));
  }

  plan::PlanCache cache;
  const plan::PlannerResult best =
      plan::FindBestPlan(topo, net::NetworkConfig{}, request, {}, &cache);
  std::printf("\nchosen: %s (%.3f ms simulated) — %d candidates, %d priced "
              "exactly\n",
              best.plan.name().c_str(), ToMillis(best.predicted_seconds),
              best.candidates, best.evaluated);
  const plan::PlannerResult again =
      plan::FindBestPlan(topo, net::NetworkConfig{}, request, {}, &cache);
  std::printf("second search: %s (cache %s)\n\n", again.plan.name().c_str(),
              again.from_cache ? "hit" : "miss");

  // --- Part 2: replanning. Kill one Y-torus link mid-mesh: every 2-D
  // schedule now stalls on that column's ring, but the flat snake ring never
  // turns mid-mesh. The monitored execution detects the overrun through its
  // phase deadline and re-plans under the observed link health.
  std::printf("Part 2 — a dead Y link at column 5\n");
  sim::Simulator simulator;
  net::Network network(&topo, net::NetworkConfig{}, &simulator);
  network.FailLink(topo.LinkBetween(topo.ChipAt({5, 7}), topo.ChipAt({5, 8})));
  network.FailLink(topo.LinkBetween(topo.ChipAt({5, 8}), topo.ChipAt({5, 7})));

  fault::HealthMonitor monitor;
  const plan::MitigatedSummation outcome = plan::ExecuteWithReplanning(
      network, request, best.plan, monitor, &cache);
  std::printf("  first attempt (%s): %.1f s — timed out in %s\n",
              best.plan.name().c_str(), outcome.first.total(),
              outcome.first.timed_out_phase ? outcome.first.timed_out_phase
                                            : "-");
  std::printf("  detected at %.6f s, replanned to %s\n", outcome.detected_at,
              outcome.replan.plan.name().c_str());
  std::printf("  retry: %.6f s (%.0fx faster than waiting out the stall)\n",
              outcome.second.total(),
              outcome.first.total() / outcome.second.total());
  std::printf("  cache now holds %zu plans (%lld hits, %lld misses)\n",
              cache.size(), static_cast<long long>(cache.hits()),
              static_cast<long long>(cache.misses()));
  return 0;
}
