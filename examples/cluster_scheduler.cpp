// Multi-tenant cluster walkthrough: a job stream carved onto two shared
// 8x8 pods, then one dead cross-pod cable under two co-located tenants.
//
// Part 1 replays the committed job trace (docs/cluster_jobs.trace — the
// same file bench_cluster --jobs-trace and the tests use) through the
// backfill carving policy and prints the scheduler timeline: admissions,
// priority preemption, shrink-to-fit readmission, queue waits.
//
// Part 2 is the shared-fault composition the subsystem exists for: two
// 16x4 tenants split the machine, every directed link crossing the pod
// boundary dies at t=50s, and BOTH tenants diagnose the SAME injected
// fault through their own slice. Their RecoveryControllers price recovery
// independently — the flexible tenant shrinks in place, the strict one
// (shrink floor 75%) checkpoint-restarts back into the queue and is
// readmitted shrunk-to-fit on one pod.
//
//   cmake -B build && cmake --build build
//   ./build/examples/cluster_scheduler          # from the repo root
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "cluster/workload.h"
#include "recover/recovery.h"
#include "topology/topology.h"

namespace {

// The committed example trace, relative to the repo root or the build dir.
std::string FindJobsTrace() {
  if (!tpu::bench::JobsTracePath().empty()) return tpu::bench::JobsTracePath();
  for (const char* path :
       {"docs/cluster_jobs.trace", "../docs/cluster_jobs.trace"}) {
    if (std::FILE* f = std::fopen(path, "r")) {
      std::fclose(f);
      return path;
    }
  }
  return "";
}

}  // namespace

int main() {
  using namespace tpu;
  bench::Init();

  // Part 1: replay the committed trace.
  const std::string trace_path = FindJobsTrace();
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "docs/cluster_jobs.trace not found; run from the repo root "
                 "or pass --jobs-trace=PATH\n");
    return 1;
  }
  std::vector<cluster::JobSpec> jobs;
  std::string error;
  if (!cluster::LoadJobsTrace(trace_path, &jobs, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  cluster::ClusterConfig config;  // 2x(8x8), backfill
  config.horizon = Hours(1);
  cluster::ClusterSimulation replay(config, jobs);
  const cluster::ClusterReport report = replay.Run();

  std::printf("replaying %s on a %s cluster (%s carving)\n",
              trace_path.c_str(), report.topology.c_str(),
              report.policy.c_str());
  for (const cluster::SchedulerEvent& event : report.events) {
    std::printf("  t=%7.1f s  %-8s job %d", event.t, event.kind, event.job);
    if (!event.rect.empty()) {
      std::printf("  at (%d,%d) %dx%d", event.rect.x0, event.rect.y0,
                  event.rect.size_x, event.rect.size_y);
    }
    std::printf("\n");
  }
  std::printf(
      "  %d/%d jobs done, wait p50 %.0f s / p99 %.0f s, utilization %.1f%%, "
      "fragmentation %.1f%%, goodput %.3f\n\n",
      report.jobs_completed, report.jobs_submitted, report.wait_p50,
      report.wait_p99, 100.0 * report.utilization,
      100.0 * report.fragmentation_mean, report.goodput);

  // Part 2: one cable, two tenants, two independent recovery decisions.
  cluster::ClusterConfig shared;
  shared.horizon = Hours(1);
  shared.label = "cable-death";
  std::vector<cluster::JobSpec> tenants(2);
  tenants[0].id = 0;
  tenants[0].name = "tenant-shrink";
  tenants[0].arrival = 0;
  tenants[0].size_x = 16;
  tenants[0].size_y = 4;
  tenants[0].steps = 4000;
  tenants[1] = tenants[0];
  tenants[1].id = 1;
  tenants[1].name = "tenant-restart";
  tenants[1].arrival = Seconds(1);
  recover::RecoveryPolicy strict = shared.recovery;
  strict.min_shrink_fraction = 0.75;
  shared.job_recovery_overrides[1] = strict;

  const topo::MeshTopology cluster_topo(shared.topology);
  shared.scripted_faults =
      cluster::CrossPodCableFault(cluster_topo, 7, Seconds(50));

  cluster::ClusterSimulation sim(shared, tenants);
  const cluster::ClusterReport outcome = sim.Run();
  std::printf("cross-pod cable death at x=7/8, t=50 s (%d directed links):\n",
              outcome.faults_injected);
  for (const cluster::JobOutcome& job : outcome.jobs) {
    std::printf("  %s: observed %d fault events\n", job.spec.name.c_str(),
                job.faults_observed);
    for (const recover::RecoveryDecision& decision : job.decisions) {
      std::printf("    t=%7.1f s  %-18s (attempt %d, %d failed links)\n",
                  decision.decided_at,
                  recover::StrategyName(decision.strategy), decision.attempt,
                  decision.failed_links);
    }
    std::printf(
        "    -> %s: %d shrink(s), %d restart(s), %.0f/%.0f steps, last slice "
        "(%d,%d) %dx%d\n",
        job.state, job.shrinks, job.restarts, job.steps_done, job.spec.steps,
        job.last_rect.x0, job.last_rect.y0, job.last_rect.size_x,
        job.last_rect.size_y);
  }
  std::printf("  cluster goodput under the fault: %.3f\n", outcome.goodput);
  return 0;
}
