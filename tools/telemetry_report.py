#!/usr/bin/env python3
"""Render (and validate) a telemetry session JSON dump.

Input is the file written by --telemetry[=PATH] on any bench binary (or by
TelemetrySession::WriteJson directly): {"config":{...},"runs":[...]} with
per-run downsampled series, structured events, watchdog firings and flight-
recorder dumps — all on the simulated clock.

  tools/telemetry_report.py telemetry.json             human-readable report
  tools/telemetry_report.py telemetry.json --validate  schema check only
  tools/telemetry_report.py telemetry.json --run recovery/dead-link

--validate walks the whole document against the schema DESIGN.md §14
documents and exits 2 on the first violation; CI runs it on the smoke
telemetry artifact before the baseline diff, so a malformed producer fails
with "where and why", not a wall of deep-equality noise.

Exit status: 0 ok, 1 usage, 2 validation failure or unreadable input.
"""

import argparse
import json
import sys

SPARK = " .:-=+*#%@"


def fail(path, message):
    print(f"telemetry schema violation at {path}: {message}", file=sys.stderr)
    sys.exit(2)


def expect(doc, path, key, kinds, required=True):
    if key not in doc:
        if required:
            fail(path, f"missing key {key!r}")
        return None
    value = doc[key]
    # bool is an int subclass in Python; don't let true/false pass as numbers.
    wants_bool = kinds is bool or (isinstance(kinds, tuple) and bool in kinds)
    if not isinstance(value, kinds) or (isinstance(value, bool) and
                                        not wants_bool):
        names = (
            kinds.__name__
            if not isinstance(kinds, tuple)
            else "/".join(k.__name__ for k in kinds)
        )
        fail(f"{path}.{key}", f"expected {names}, got {type(value).__name__}")
    return value


NUM = (int, float)


def validate_point(point, path):
    for key in ("t", "mean", "min", "max"):
        expect(point, path, key, NUM)
    count = expect(point, path, "count", int)
    if count < 1:
        fail(f"{path}.count", f"must be >= 1, got {count}")
    if point["min"] > point["max"]:
        fail(path, f"min {point['min']} > max {point['max']}")


def validate_series(series, path):
    expect(series, path, "name", str)
    stride = expect(series, path, "stride", int)
    if stride < 1:
        fail(f"{path}.stride", f"must be >= 1, got {stride}")
    samples = expect(series, path, "samples", int)
    points = expect(series, path, "points", list)
    for i, point in enumerate(points):
        validate_point(point, f"{path}.points[{i}]")
    counted = sum(p["count"] for p in points)
    if counted != samples:
        fail(f"{path}", f"point counts sum to {counted}, samples say {samples}")
    times = [p["t"] for p in points]
    if times != sorted(times):
        fail(f"{path}.points", "timestamps not monotonically non-decreasing")


def validate_event(event, path):
    expect(event, path, "t", NUM)
    expect(event, path, "name", str)
    expect(event, path, "detail", str, required=False)


def validate_firing(firing, path):
    watchdog = expect(firing, path, "watchdog", str)
    if watchdog not in ("step_regression", "slo_burn", "link_collapse"):
        fail(f"{path}.watchdog", f"unknown watchdog {watchdog!r}")
    expect(firing, path, "series", str)
    first = expect(firing, path, "first_breach", NUM)
    last = expect(firing, path, "last_breach", NUM)
    if last < first:
        fail(path, f"last_breach {last} < first_breach {first}")
    if expect(firing, path, "breaches", int) < 1:
        fail(f"{path}.breaches", "must be >= 1")
    expect(firing, path, "baseline", NUM)
    expect(firing, path, "worst", NUM)
    expect(firing, path, "open", bool)
    for i, link in enumerate(expect(firing, path, "suspect_links", list)):
        if not isinstance(link, int):
            fail(f"{path}.suspect_links[{i}]", "expected int link id")


def validate_dump(dump, path):
    expect(dump, path, "trigger", str)
    expect(dump, path, "triggered_at", NUM)
    columns = expect(dump, path, "columns", list)
    times = expect(dump, path, "times", list)
    rows = expect(dump, path, "rows", list)
    if len(times) != len(rows):
        fail(path, f"{len(times)} times but {len(rows)} rows")
    for i, row in enumerate(rows):
        if len(row) != len(columns):
            fail(f"{path}.rows[{i}]",
                 f"{len(row)} values for {len(columns)} columns")
    if list(times) != sorted(times):
        fail(f"{path}.times", "not monotonically non-decreasing")
    for i, event in enumerate(expect(dump, path, "events", list)):
        validate_event(event, f"{path}.events[{i}]")


def validate_run(run, path):
    expect(run, path, "label", str)
    expect(run, path, "started_at", NUM)
    expect(run, path, "last_sample_at", NUM)
    ticks = expect(run, path, "ticks", int)
    series = expect(run, path, "series", list)
    for i, entry in enumerate(series):
        validate_series(entry, f"{path}.series[{i}]")
        if entry["samples"] != ticks:
            fail(f"{path}.series[{i}]",
                 f"{entry['samples']} samples over {ticks} ticks")
    for i, event in enumerate(expect(run, path, "events", list)):
        validate_event(event, f"{path}.events[{i}]")
    for i, firing in enumerate(expect(run, path, "watchdogs", list)):
        validate_firing(firing, f"{path}.watchdogs[{i}]")
    for i, dump in enumerate(expect(run, path, "dumps", list)):
        validate_dump(dump, f"{path}.dumps[{i}]")
    for i, link in enumerate(expect(run, path, "suspect_links", list)):
        if not isinstance(link, int):
            fail(f"{path}.suspect_links[{i}]", "expected int link id")


def validate(doc):
    config = expect(doc, "$", "config", dict)
    expect(config, "$.config", "sample_interval", NUM)
    if expect(config, "$.config", "series_capacity", int) < 2:
        fail("$.config.series_capacity", "must be >= 2")
    expect(config, "$.config", "watchdog", dict)
    runs = expect(doc, "$", "runs", list)
    for i, run in enumerate(runs):
        validate_run(run, f"$.runs[{i}]")
    return len(runs)


def sparkline(points, width=48):
    """ASCII density strip of a series' per-point means."""
    means = [p["mean"] for p in points][:width]
    if not means:
        return "(empty)"
    lo, hi = min(means), max(means)
    if hi <= lo:
        return SPARK[len(SPARK) // 2] * len(means)
    scale = (len(SPARK) - 1) / (hi - lo)
    return "".join(SPARK[int((m - lo) * scale)] for m in means)


def render_run(run):
    ticks = run["ticks"]
    span = run["last_sample_at"] - run["started_at"]
    print(f"\nrun {run['label']}: {ticks} ticks over {span:.1f}s "
          f"(t={run['started_at']:.1f}..{run['last_sample_at']:.1f})")

    if run["series"]:
        print("  series:")
        width = max(len(s["name"]) for s in run["series"])
        for series in run["series"]:
            points = series["points"]
            means = [p["mean"] for p in points]
            lo = min((p["min"] for p in points), default=0.0)
            hi = max((p["max"] for p in points), default=0.0)
            mean = sum(m * p["count"] for m, p in zip(means, points)) / max(
                1, sum(p["count"] for p in points)
            )
            print(f"    {series['name']:<{width}}  min {lo:>12.4g}  "
                  f"mean {mean:>12.4g}  max {hi:>12.4g}  "
                  f"stride {series['stride']:<3} |{sparkline(points)}|")

    if run["events"]:
        print(f"  events ({len(run['events'])}"
              + (f", {run['dropped_events']} dropped" if run.get(
                  "dropped_events") else "") + "):")
        for event in run["events"]:
            detail = f"  [{event['detail']}]" if event.get("detail") else ""
            print(f"    t={event['t']:>9.2f}  {event['name']}{detail}")

    if run["watchdogs"]:
        print("  watchdog firings:")
        for firing in run["watchdogs"]:
            state = "OPEN" if firing["open"] else "closed"
            links = (f"  suspect_links={firing['suspect_links']}"
                     if firing["suspect_links"] else "")
            print(f"    {firing['watchdog']:<16} on {firing['series']}: "
                  f"t={firing['first_breach']:.2f}..{firing['last_breach']:.2f}"
                  f" ({firing['breaches']} breaches, baseline "
                  f"{firing['baseline']:.4g}, worst {firing['worst']:.4g}, "
                  f"{state}){links}")

    if run["dumps"]:
        print("  flight-recorder dumps:")
        for dump in run["dumps"]:
            print(f"    trigger {dump['trigger']!r} at "
                  f"t={dump['triggered_at']:.2f}: {len(dump['times'])} "
                  f"high-res rows x {len(dump['columns'])} columns, "
                  f"{len(dump['events'])} ring events")
            if dump["times"]:
                print(f"      window t={dump['times'][0]:.2f}.."
                      f"{dump['times'][-1]:.2f}")
    if run.get("dropped_dumps"):
        print(f"  ({run['dropped_dumps']} dump trigger(s) dropped by "
              "max_dumps cap)")
    if run["suspect_links"]:
        print(f"  suspect links (recovery diagnosis): {run['suspect_links']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only, no rendering")
    parser.add_argument("--run", help="render only runs whose label "
                        "contains this substring")
    args = parser.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {args.path}: {err}", file=sys.stderr)
        return 2

    num_runs = validate(doc)
    if args.validate:
        print(f"{args.path}: telemetry schema ok ({num_runs} runs)")
        return 0

    config = doc["config"]
    print(f"telemetry session: {num_runs} runs, sampled every "
          f"{config['sample_interval']}s, series capacity "
          f"{config['series_capacity']}")
    for run in doc["runs"]:
        if args.run and args.run not in run["label"]:
            continue
        render_run(run)
    return 0


if __name__ == "__main__":
    sys.exit(main())
