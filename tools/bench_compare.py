#!/usr/bin/env python3
"""Diff a bench JSON result against its committed baseline.

Two formats:

  gbench   google-benchmark JSON (bench_simulator --smoke
           --benchmark_out=... --benchmark_out_format=json).
           Gate: any drift in the simulated counters (sim_ms, sim_events)
           fails immediately — those are bit-reproducible and machine
           independent. Wall clock (real_time) fails only past
           --time-threshold (default 15% regression).

  planner  deep-equality JSON (bench_planner --smoke --json=...,
           bench_recovery --smoke --json=..., telemetry dumps). Every value
           in the file is simulated, so any difference fails.

Failures come in two kinds with distinct exit codes, so CI can tell "the
file changed shape" (a key/benchmark/counter vanished or appeared, a type
or array length changed — usually a schema change that needs a baseline
refresh) from "a value drifted" (same shape, different number — usually a
simulation behaviour change):

  0  clean
  1  value mismatch only
  2  usage error or unreadable input
  3  structural mismatch (missing/extra key, type change, length change)

  tools/bench_compare.py BASELINE CURRENT --format=gbench [--time-threshold=0.15]
  tools/bench_compare.py BASELINE CURRENT --format=planner
  tools/bench_compare.py --self-test
"""

import argparse
import json
import sys

SIM_COUNTERS = ("sim_ms", "sim_events")

# Failure kinds. STRUCTURAL means the documents disagree about what exists
# (keys, benchmarks, counters, types, array lengths); VALUE means a shared
# leaf holds a different value.
STRUCTURAL = "structural"
VALUE = "value"


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def index_gbench(doc):
    """name -> benchmark entry, skipping aggregate rows (mean/median/stddev)."""
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def compare_gbench(baseline, current, time_threshold, out=sys.stdout):
    base = index_gbench(baseline)
    cur = index_gbench(current)
    failures = []
    compared_counters = 0

    for name, base_entry in sorted(base.items()):
        cur_entry = cur.get(name)
        if cur_entry is None:
            failures.append(
                (STRUCTURAL,
                 f"{name}: benchmark in baseline, missing from current run")
            )
            continue

        # Bit-exactness gate: simulated counters must not move at all. Any
        # drift means simulated behaviour changed, not just machine speed.
        for counter in SIM_COUNTERS:
            if counter not in base_entry:
                continue
            if counter not in cur_entry:
                failures.append(
                    (STRUCTURAL, f"{name}: counter {counter} disappeared")
                )
                continue
            compared_counters += 1
            b, c = base_entry[counter], cur_entry[counter]
            if b != c:
                failures.append(
                    (VALUE,
                     f"{name}: {counter} drifted {b!r} -> {c!r} "
                     "(simulated values must be bit-identical)")
                )

        # Wall-clock regression gate.
        b_time, c_time = base_entry.get("real_time"), cur_entry.get("real_time")
        if b_time and c_time and b_time > 0:
            ratio = c_time / b_time
            status = "ok"
            if ratio > 1.0 + time_threshold:
                status = "REGRESSION"
                failures.append(
                    (VALUE,
                     f"{name}: real_time {b_time:.3f} -> {c_time:.3f} "
                     f"{base_entry.get('time_unit', 'ns')} "
                     f"({ratio:.2f}x > {1.0 + time_threshold:.2f}x allowed)")
                )
            print(f"  {name}: real_time {ratio:.2f}x [{status}]", file=out)

    if compared_counters == 0:
        failures.append(
            (STRUCTURAL,
             "no sim_ms/sim_events counters compared - wrong filter or "
             "empty baseline?")
        )
    print(f"  ({compared_counters} simulated counters compared bit-exactly)",
          file=out)
    return failures


def diff_json(base, cur, path, failures):
    """Deep equality with a readable path to each difference."""
    if type(base) is not type(cur):
        failures.append(
            (STRUCTURAL,
             f"{path}: type changed {type(base).__name__} -> "
             f"{type(cur).__name__}")
        )
    elif isinstance(base, dict):
        for key in sorted(set(base) | set(cur)):
            if key not in base:
                failures.append(
                    (STRUCTURAL,
                     f"{path}.{key}: key not in baseline (new field - "
                     "baseline refresh needed?)")
                )
            elif key not in cur:
                failures.append(
                    (STRUCTURAL,
                     f"{path}.{key}: key missing from current (field "
                     "removed?)")
                )
            else:
                diff_json(base[key], cur[key], f"{path}.{key}", failures)
    elif isinstance(base, list):
        if len(base) != len(cur):
            failures.append(
                (STRUCTURAL, f"{path}: length {len(base)} -> {len(cur)}")
            )
        for i, (b, c) in enumerate(zip(base, cur)):
            diff_json(b, c, f"{path}[{i}]", failures)
    elif base != cur:
        failures.append((VALUE, f"{path}: value {base!r} -> {cur!r}"))


def compare_planner(baseline, current, out=sys.stdout):
    failures = []
    diff_json(baseline, current, "$", failures)
    if not failures:
        n = len(baseline.get("healthy", [])) + len(baseline.get("chunked", []))
        print(f"  results deep-equal to baseline ({n} search rows)", file=out)
    return failures


def exit_code(failures):
    if any(kind == STRUCTURAL for kind, _ in failures):
        return 3
    return 1 if failures else 0


def self_test():
    """pytest-style assertions over the comparison core; exits nonzero on
    the first broken invariant. CI runs this before trusting the gates."""

    def diff(base, cur):
        failures = []
        diff_json(base, cur, "$", failures)
        return failures

    # Identical documents: clean.
    doc = {"a": [1, 2.5, "x"], "b": {"c": None}}
    assert diff(doc, json.loads(json.dumps(doc))) == []
    assert exit_code([]) == 0

    # Pure value drift: kind VALUE, exit 1.
    failures = diff({"a": 1.0}, {"a": 2.0})
    assert failures == [(VALUE, "$.a: value 1.0 -> 2.0")], failures
    assert exit_code(failures) == 1

    # Missing key: STRUCTURAL, exit 3 — even mixed with value drift.
    failures = diff({"a": 1, "b": 2}, {"a": 5})
    kinds = {kind for kind, _ in failures}
    assert kinds == {STRUCTURAL, VALUE}, failures
    assert exit_code(failures) == 3
    assert any("missing from current" in msg for _, msg in failures), failures

    # New key in current: STRUCTURAL with the refresh hint.
    failures = diff({"a": 1}, {"a": 1, "z": 9})
    assert exit_code(failures) == 3
    assert any("not in baseline" in msg for _, msg in failures), failures

    # Type and length changes: STRUCTURAL.
    assert exit_code(diff({"a": 1}, {"a": "1"})) == 3
    assert exit_code(diff({"a": [1, 2]}, {"a": [1]})) == 3

    # int vs float is a type change in JSON terms, not a value drift.
    assert exit_code(diff({"a": 1}, {"a": 1.0})) == 3

    # Nested paths stay readable.
    failures = diff({"r": {"s": [{"t": 3}]}}, {"r": {"s": [{"t": 4}]}})
    assert failures == [(VALUE, "$.r.s[0].t: value 3 -> 4")], failures

    # gbench: missing benchmark and vanished counter are STRUCTURAL;
    # counter drift is VALUE.
    class Sink:
        def write(self, _):
            pass

    def gbench(names_to_counters):
        return {
            "benchmarks": [
                dict({"name": name, "real_time": 1.0}, **counters)
                for name, counters in names_to_counters.items()
            ]
        }

    base = gbench({"bm_a": {"sim_ms": 10, "sim_events": 4}})
    failures = compare_gbench(base, gbench({}), 0.15, out=Sink())
    assert exit_code(failures) == 3, failures

    drifted = gbench({"bm_a": {"sim_ms": 11, "sim_events": 4}})
    failures = compare_gbench(base, drifted, 0.15, out=Sink())
    assert failures and exit_code(failures) == 1, failures

    vanished = gbench({"bm_a": {"sim_events": 4}})
    failures = compare_gbench(base, vanished, 0.15, out=Sink())
    assert exit_code(failures) == 3, failures

    # Aggregate rows are skipped when indexing.
    base["benchmarks"].append(
        {"name": "bm_a_mean", "run_type": "aggregate", "sim_ms": 99}
    )
    assert sorted(index_gbench(base)) == ["bm_a"]

    print("bench_compare self-test: all assertions passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--format", choices=("gbench", "planner"))
    parser.add_argument(
        "--time-threshold",
        type=float,
        default=0.15,
        help="allowed fractional real_time regression (gbench only)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in assertions over the comparison core and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current or not args.format:
        parser.error("BASELINE, CURRENT and --format are required")

    baseline = load(args.baseline)
    current = load(args.current)

    print(f"comparing {args.current} against baseline {args.baseline} "
          f"[{args.format}]")
    if args.format == "gbench":
        failures = compare_gbench(baseline, current, args.time_threshold)
    else:
        failures = compare_planner(baseline, current)

    if failures:
        structural = [msg for kind, msg in failures if kind == STRUCTURAL]
        drift = [msg for kind, msg in failures if kind == VALUE]
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        if structural:
            print(f"  structure ({len(structural)}):", file=sys.stderr)
            for msg in structural:
                print(f"    {msg}", file=sys.stderr)
        if drift:
            print(f"  values ({len(drift)}):", file=sys.stderr)
            for msg in drift:
                print(f"    {msg}", file=sys.stderr)
        return exit_code(failures)
    print("bench comparison clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
