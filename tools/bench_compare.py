#!/usr/bin/env python3
"""Diff a bench JSON result against its committed baseline.

Two formats:

  gbench   google-benchmark JSON (bench_simulator --smoke
           --benchmark_out=... --benchmark_out_format=json).
           Gate: any drift in the simulated counters (sim_ms, sim_events)
           fails immediately — those are bit-reproducible and machine
           independent. Wall clock (real_time) fails only past
           --time-threshold (default 15% regression).

  planner  bench_planner --smoke --json=... output. Every value in the file
           is simulated, so the gate is deep equality: any difference fails.

Exit status: 0 clean, 1 regression/drift, 2 usage or unreadable input.

Usage:
  tools/bench_compare.py BASELINE CURRENT --format=gbench [--time-threshold=0.15]
  tools/bench_compare.py BASELINE CURRENT --format=planner
"""

import argparse
import json
import sys

SIM_COUNTERS = ("sim_ms", "sim_events")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def index_gbench(doc):
    """name -> benchmark entry, skipping aggregate rows (mean/median/stddev)."""
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def compare_gbench(baseline, current, time_threshold):
    base = index_gbench(baseline)
    cur = index_gbench(current)
    failures = []
    compared_counters = 0

    for name, base_entry in sorted(base.items()):
        cur_entry = cur.get(name)
        if cur_entry is None:
            failures.append(f"{name}: present in baseline, missing from current run")
            continue

        # Bit-exactness gate: simulated counters must not move at all. Any
        # drift means simulated behaviour changed, not just machine speed.
        for counter in SIM_COUNTERS:
            if counter not in base_entry:
                continue
            if counter not in cur_entry:
                failures.append(f"{name}: counter {counter} disappeared")
                continue
            compared_counters += 1
            b, c = base_entry[counter], cur_entry[counter]
            if b != c:
                failures.append(
                    f"{name}: {counter} drifted {b!r} -> {c!r} "
                    "(simulated values must be bit-identical)"
                )

        # Wall-clock regression gate.
        b_time, c_time = base_entry.get("real_time"), cur_entry.get("real_time")
        if b_time and c_time and b_time > 0:
            ratio = c_time / b_time
            status = "ok"
            if ratio > 1.0 + time_threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}: real_time {b_time:.3f} -> {c_time:.3f} "
                    f"{base_entry.get('time_unit', 'ns')} "
                    f"({ratio:.2f}x > {1.0 + time_threshold:.2f}x allowed)"
                )
            print(f"  {name}: real_time {ratio:.2f}x [{status}]")

    if compared_counters == 0:
        failures.append(
            "no sim_ms/sim_events counters compared - wrong filter or empty baseline?"
        )
    print(f"  ({compared_counters} simulated counters compared bit-exactly)")
    return failures


def diff_json(base, cur, path, failures):
    """Deep equality with a readable path to the first few differences."""
    if type(base) is not type(cur):
        failures.append(f"{path}: type {type(base).__name__} -> {type(cur).__name__}")
    elif isinstance(base, dict):
        for key in sorted(set(base) | set(cur)):
            if key not in base:
                failures.append(f"{path}.{key}: not in baseline")
            elif key not in cur:
                failures.append(f"{path}.{key}: missing from current")
            else:
                diff_json(base[key], cur[key], f"{path}.{key}", failures)
    elif isinstance(base, list):
        if len(base) != len(cur):
            failures.append(f"{path}: length {len(base)} -> {len(cur)}")
        for i, (b, c) in enumerate(zip(base, cur)):
            diff_json(b, c, f"{path}[{i}]", failures)
    elif base != cur:
        failures.append(f"{path}: {base!r} -> {cur!r}")


def compare_planner(baseline, current):
    failures = []
    diff_json(baseline, current, "$", failures)
    if not failures:
        n = len(baseline.get("healthy", [])) + len(baseline.get("chunked", []))
        print(f"  planner results deep-equal to baseline ({n} search rows)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--format", choices=("gbench", "planner"), required=True)
    parser.add_argument(
        "--time-threshold",
        type=float,
        default=0.15,
        help="allowed fractional real_time regression (gbench only)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    print(f"comparing {args.current} against baseline {args.baseline} "
          f"[{args.format}]")
    if args.format == "gbench":
        failures = compare_gbench(baseline, current, args.time_threshold)
    else:
        failures = compare_planner(baseline, current)

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench comparison clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
