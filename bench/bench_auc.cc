// Section 4.6: the custom AUC implementation. The paper replaced a ~60 s
// Python metric with a ~2 s C++ one (multithreaded sorting + loop fusion)
// over 90M samples. This is a *wall-clock* benchmark (google-benchmark):
// naive library-shaped implementation vs the multithreaded fused one, plus
// the full 90M-sample measurement printed once.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "metrics/auc.h"

namespace {

using namespace tpu;

struct Dataset {
  std::vector<float> scores;
  std::vector<std::uint8_t> labels;
};

Dataset MakeDataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.scores.resize(n);
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.NextDouble() < 0.25;  // pCTR-like imbalance
    data.labels[i] = positive;
    data.scores[i] =
        static_cast<float>(rng.NextGaussian() + (positive ? 0.7 : 0.0));
  }
  return data;
}

void BM_AucNaive(benchmark::State& state) {
  const Dataset data = MakeDataset(state.range(0), 11);
  double auc = 0;
  for (auto _ : state) {
    auc = metrics::AucNaive(data.scores, data.labels);
    benchmark::DoNotOptimize(auc);
  }
  state.counters["auc"] = auc;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_AucFast(benchmark::State& state) {
  const Dataset data = MakeDataset(state.range(0), 11);
  ThreadPool pool(std::thread::hardware_concurrency());
  double auc = 0;
  for (auto _ : state) {
    auc = metrics::AucFast(data.scores, data.labels, pool);
    benchmark::DoNotOptimize(auc);
  }
  state.counters["auc"] = auc;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_AucNaive)->Arg(1 << 20)->Arg(1 << 23)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AucFast)->Arg(1 << 20)->Arg(1 << 23)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // The paper's headline measurement: one 90M-sample AUC.
  std::printf("\n90M-sample AUC (Section 4.6; paper: ~60 s library vs ~2 s "
              "custom C++):\n");
  std::printf("  hardware threads available: %u (parallel speedup requires "
              ">1)\n", std::thread::hardware_concurrency());
  const Dataset data = MakeDataset(90'000'000, 17);
  ThreadPool pool(std::thread::hardware_concurrency());
  const auto t0 = std::chrono::steady_clock::now();
  const double fast = metrics::AucFast(data.scores, data.labels, pool);
  const auto t1 = std::chrono::steady_clock::now();
  const double naive = metrics::AucNaive(data.scores, data.labels);
  const auto t2 = std::chrono::steady_clock::now();
  const double fast_s = std::chrono::duration<double>(t1 - t0).count();
  const double naive_s = std::chrono::duration<double>(t2 - t1).count();
  std::printf("  fast (multithreaded, fused): %.2f s  auc=%.6f\n", fast_s,
              fast);
  std::printf("  naive (single-thread, staged): %.2f s  auc=%.6f\n", naive_s,
              naive);
  std::printf("  speedup: %.1fx, results agree to %.1e\n",
              naive_s / fast_s, std::abs(fast - naive));
  return 0;
}
