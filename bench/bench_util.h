// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure of the paper: it runs the simulation for every row /
// series point and prints them in the paper's format, with the published
// value alongside where the paper gives one (EXPERIMENTS.md records the
// comparison).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace tpu::bench {

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("%s\n", std::string(72, '-').c_str());
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

// The chip scales swept in the paper's scaling figures.
inline std::vector<int> ScalingChips() {
  return {16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

// ResNet-50 global batch at each scale: per-chip batch falls from 256 at 16
// chips to 16 at 4096 chips (Figure 6's caption), i.e. 1024 * sqrt(chips).
inline std::int64_t ResNetBatch(int chips) {
  std::int64_t batch = 1;
  while (batch * batch < 1024LL * 1024 * chips) batch *= 2;
  return std::min<std::int64_t>(65536, std::max<std::int64_t>(4096, batch));
}

// BERT per-chip batch: 48 at 16 chips down to 2 at 4096 (Figure 8 caption).
inline std::int64_t BertPerChipBatch(int chips) {
  if (chips <= 16) return 48;
  if (chips <= 32) return 32;
  if (chips <= 64) return 24;
  if (chips <= 128) return 16;
  if (chips <= 256) return 12;
  if (chips <= 512) return 8;
  if (chips <= 1024) return 6;
  if (chips <= 2048) return 4;
  return 2;
}

}  // namespace tpu::bench
