// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure of the paper: it runs the simulation for every row /
// series point and prints them in the paper's format, with the published
// value alongside where the paper gives one (EXPERIMENTS.md records the
// comparison).
//
// Every bench also understands three observability flags, parsed from
// /proc/self/cmdline (benches keep their argument-less main()) with
// environment-variable fallbacks:
//   --trace=PATH    (TPU_BENCH_TRACE=PATH)    write a Chrome trace to PATH
//   --metrics       (TPU_BENCH_METRICS=1)     dump the metrics registry on
//   --metrics=PATH  (TPU_BENCH_METRICS=PATH)  exit (text to stderr, or JSON
//                                             to PATH)
//   --smoke         (TPU_BENCH_SMOKE=1)       reduced-scale run (benches opt
//                                             in via bench::Smoke())
//   --json=PATH     (TPU_BENCH_JSON=PATH)     machine-readable results to
//                                             PATH (benches opt in via
//                                             bench::JsonPath())
//   --telemetry[=PATH] (TPU_BENCH_TELEMETRY)  install a telemetry session
//                                             (continuous sampling + anomaly
//                                             watchdogs + flight recorder);
//                                             JSON to PATH, default
//                                             telemetry.json
//   --jobs-trace=PATH (TPU_BENCH_JOBS_TRACE)  replay a cluster job trace
//                                             (benches opt in via
//                                             bench::JobsTracePath())
// Header() installs the process-global recorder/registry; files are written
// by an atexit hook so benches need no per-bench changes.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace tpu::bench {
namespace internal {

struct ObservabilityEnv {
  trace::TraceRecorder recorder;
  trace::MetricsRegistry metrics;
  telemetry::TelemetrySession telemetry;
  std::string trace_path;
  std::string metrics_path;  // empty with metrics_on: text dump to stderr
  std::string json_path;
  std::string telemetry_path;
  std::string jobs_trace_path;
  bool metrics_on = false;
  bool telemetry_on = false;
  bool smoke = false;
  bool initialized = false;
};

inline ObservabilityEnv& Env() {
  static ObservabilityEnv env;
  return env;
}

inline std::vector<std::string> CommandLineArgs() {
  std::vector<std::string> args;
  if (std::FILE* f = std::fopen("/proc/self/cmdline", "rb")) {
    std::string raw;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) raw.append(buf, n);
    std::fclose(f);
    std::size_t begin = 0;
    while (begin < raw.size()) {
      const std::size_t end = raw.find('\0', begin);
      const std::size_t stop = end == std::string::npos ? raw.size() : end;
      if (stop > begin) args.emplace_back(raw.substr(begin, stop - begin));
      begin = stop + 1;
    }
  }
  return args;
}

inline void FlushObservability() {
  ObservabilityEnv& env = Env();
  if (!env.trace_path.empty() && env.recorder.event_count() > 0) {
    if (env.recorder.WriteFile(env.trace_path)) {
      std::fprintf(stderr, "trace: %zu events -> %s\n",
                   env.recorder.event_count(), env.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n",
                   env.trace_path.c_str());
    }
  }
  if (env.telemetry_on) {
    // Session-lifetime telemetry.* counters land in the same registry dump
    // the metrics flag writes (exactly once, here, so per-scenario metric
    // snapshots taken during the run stay telemetry-free).
    if (env.metrics_on) env.telemetry.ExportMetrics(env.metrics);
    std::ofstream out(env.telemetry_path);
    env.telemetry.WriteJson(out);
    std::fprintf(stderr, "telemetry -> %s\n", env.telemetry_path.c_str());
  }
  if (env.metrics_on && !env.metrics.empty()) {
    if (env.metrics_path.empty()) {
      std::ostringstream out;
      env.metrics.WriteText(out);
      std::fprintf(stderr, "\n--- metrics ---\n%s", out.str().c_str());
    } else {
      std::ofstream out(env.metrics_path);
      env.metrics.WriteJson(out);
      std::fprintf(stderr, "metrics -> %s\n", env.metrics_path.c_str());
    }
  }
}

// Parses the flags once and installs the global recorder/registry. Benches
// that never pass a flag pay nothing: the globals stay null.
inline void InitObservability() {
  ObservabilityEnv& env = Env();
  if (env.initialized) return;
  env.initialized = true;

  std::vector<std::string> args = CommandLineArgs();
  // Reject unknown --flags from the real command line before folding in the
  // environment fallbacks: a typo like --traces=out.json silently running
  // the full un-traced bench wastes a long sweep. "--benchmark*" passes
  // through for binaries that also link a benchmark framework.
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) continue;
    const bool known = arg.rfind("--trace=", 0) == 0 || arg == "--metrics" ||
                       arg.rfind("--metrics=", 0) == 0 || arg == "--smoke" ||
                       arg.rfind("--json=", 0) == 0 || arg == "--telemetry" ||
                       arg.rfind("--telemetry=", 0) == 0 ||
                       arg.rfind("--jobs-trace=", 0) == 0 ||
                       arg.rfind("--benchmark", 0) == 0;
    if (!known) {
      std::fprintf(stderr,
                   "error: unknown flag '%s'\n"
                   "supported flags:\n"
                   "  --trace=PATH    write a Chrome trace to PATH\n"
                   "  --metrics       dump the metrics registry to stderr\n"
                   "  --metrics=PATH  dump the metrics registry as JSON\n"
                   "  --smoke         reduced-scale run\n"
                   "  --json=PATH     machine-readable results to PATH\n"
                   "  --telemetry[=PATH]  continuous sampling + watchdogs + "
                   "flight recorder, JSON to PATH\n"
                   "  --jobs-trace=PATH  replay a cluster job trace from "
                   "PATH\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  if (const char* v = std::getenv("TPU_BENCH_TRACE")) {
    args.push_back(std::string("--trace=") + v);
  }
  if (const char* v = std::getenv("TPU_BENCH_METRICS")) {
    args.push_back(std::string(v) == "1" ? "--metrics"
                                         : std::string("--metrics=") + v);
  }
  if (const char* v = std::getenv("TPU_BENCH_SMOKE")) {
    if (std::string(v) == "1") args.push_back("--smoke");
  }
  if (const char* v = std::getenv("TPU_BENCH_JSON")) {
    args.push_back(std::string("--json=") + v);
  }
  if (const char* v = std::getenv("TPU_BENCH_TELEMETRY")) {
    args.push_back(std::string(v) == "1" ? "--telemetry"
                                         : std::string("--telemetry=") + v);
  }
  if (const char* v = std::getenv("TPU_BENCH_JOBS_TRACE")) {
    args.push_back(std::string("--jobs-trace=") + v);
  }
  for (const std::string& arg : args) {
    if (arg.rfind("--trace=", 0) == 0) {
      env.trace_path = arg.substr(8);
    } else if (arg == "--metrics") {
      env.metrics_on = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      env.metrics_on = true;
      env.metrics_path = arg.substr(10);
    } else if (arg == "--smoke") {
      env.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      env.json_path = arg.substr(7);
    } else if (arg == "--telemetry") {
      env.telemetry_on = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      env.telemetry_on = true;
      env.telemetry_path = arg.substr(12);
    } else if (arg.rfind("--jobs-trace=", 0) == 0) {
      env.jobs_trace_path = arg.substr(13);
    }
  }
  if (env.telemetry_on && env.telemetry_path.empty()) {
    env.telemetry_path = "telemetry.json";
  }

  if (!env.trace_path.empty()) trace::SetCurrentTrace(&env.recorder);
  if (env.metrics_on) trace::SetCurrentMetrics(&env.metrics);
  if (env.telemetry_on) telemetry::SetCurrentTelemetry(&env.telemetry);
  if (!env.trace_path.empty() || env.metrics_on || env.telemetry_on) {
    std::atexit(FlushObservability);
  }
}

}  // namespace internal

// Parses the observability flags and installs the recorder/registry without
// printing anything — for binaries (examples) that don't use Header().
inline void Init() { internal::InitObservability(); }

// True when the bench was invoked with --smoke (or TPU_BENCH_SMOKE=1):
// benches with expensive sweeps substitute a seconds-scale configuration.
inline bool Smoke() {
  internal::InitObservability();
  return internal::Env().smoke;
}

// Destination of --json=PATH (or TPU_BENCH_JSON=PATH); empty when the flag
// was not passed. Benches that support machine-readable output write their
// simulated (wall-clock-free, bit-reproducible) results there — the file
// tools/bench_compare.py diffs against the committed baseline.
inline const std::string& JsonPath() {
  internal::InitObservability();
  return internal::Env().json_path;
}

// Destination of --jobs-trace=PATH (or TPU_BENCH_JOBS_TRACE=PATH); empty
// when the flag was not passed. Cluster benches replay the job stream from
// this trace file (cluster::LoadJobsTrace) instead of their generated
// Poisson workload.
inline const std::string& JobsTracePath() {
  internal::InitObservability();
  return internal::Env().jobs_trace_path;
}

inline void Header(const std::string& title, const std::string& paper_ref) {
  internal::InitObservability();
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("%s\n", std::string(72, '-').c_str());
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

// The chip scales swept in the paper's scaling figures. --smoke trims the
// sweep to the sub-second scales so CI can exercise every figure bench.
inline std::vector<int> ScalingChips() {
  if (Smoke()) return {16, 32, 64, 128};
  return {16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

// ResNet-50 global batch at each scale: per-chip batch falls from 256 at 16
// chips to 16 at 4096 chips (Figure 6's caption), i.e. 1024 * sqrt(chips).
inline std::int64_t ResNetBatch(int chips) {
  std::int64_t batch = 1;
  while (batch * batch < 1024LL * 1024 * chips) batch *= 2;
  return std::min<std::int64_t>(65536, std::max<std::int64_t>(4096, batch));
}

// BERT per-chip batch: 48 at 16 chips down to 2 at 4096 (Figure 8 caption).
inline std::int64_t BertPerChipBatch(int chips) {
  if (chips <= 16) return 48;
  if (chips <= 32) return 32;
  if (chips <= 64) return 24;
  if (chips <= 128) return 16;
  if (chips <= 256) return 12;
  if (chips <= 512) return 8;
  if (chips <= 1024) return 6;
  if (chips <= 2048) return 4;
  return 2;
}

}  // namespace tpu::bench
