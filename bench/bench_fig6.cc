// Figure 6: ResNet-50 per-step computation vs all-reduce time as the machine
// grows (per-chip batch shrinks 256 -> 16). Compute falls with scale; the
// all-reduce stays nearly constant, reaching ~22% of the step at 4096 chips.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"

int main() {
  using namespace tpu;
  bench::Header("Figure 6 — ResNet-50 compute vs all-reduce per step (ms)",
                "Kumar et al., MLSys 2021, Figure 6 (paper: 22% AR @4096)");
  bench::Row("%6s %10s | %10s %10s %10s %8s", "chips", "batch/chip",
             "compute", "allreduce", "step", "AR frac");

  const auto& spec = models::GetModelSpec(models::Benchmark::kResNet50);
  const auto lars = optim::MakeLars({});
  for (int chips : bench::ScalingChips()) {
    core::MultipodSystem system(chips);
    const std::int64_t batch = bench::ResNetBatch(chips);
    const auto step = system.SimulateStep(spec, batch, 1, lars.get());
    bench::Row("%6d %10lld | %10.3f %10.3f %10.3f %7.1f%%", chips,
               static_cast<long long>(batch / chips), ToMillis(step.compute),
               ToMillis(step.allreduce), ToMillis(step.step()),
               100.0 * step.allreduce_fraction());
  }
  return 0;
}
