// Figure 8: BERT per-step computation vs all-reduce as the machine grows
// (per-chip batch 48 -> 2). The Amdahl share of the all-reduce is larger
// than ResNet-50's at every scale, reaching ~27.3% at 4096 chips.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"

int main() {
  using namespace tpu;
  bench::Header("Figure 8 — BERT compute vs all-reduce per step (ms)",
                "Kumar et al., MLSys 2021, Figure 8 (paper: 27.3% AR @4096)");
  bench::Row("%6s %10s | %10s %10s %10s %8s", "chips", "batch/chip",
             "compute", "allreduce", "step", "AR frac");

  const auto& spec = models::GetModelSpec(models::Benchmark::kBert);
  const auto lamb = optim::MakeLamb({});
  for (int chips : bench::ScalingChips()) {
    core::MultipodSystem system(chips);
    const std::int64_t per_chip = bench::BertPerChipBatch(chips);
    const auto step = system.SimulateStep(spec, per_chip * chips, 1,
                                          lamb.get());
    bench::Row("%6d %10lld | %10.3f %10.3f %10.3f %7.1f%%", chips,
               static_cast<long long>(per_chip), ToMillis(step.compute),
               ToMillis(step.allreduce), ToMillis(step.step()),
               100.0 * step.allreduce_fraction());
  }
  return 0;
}
