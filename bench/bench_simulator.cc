// Wall-clock performance of the simulator itself (google-benchmark): event
// throughput of the discrete-event core and end-to-end simulation rates for
// the collective schedules, so regressions in the simulator's own speed are
// visible.
//
// BM_EventQueueThroughput measures the bare queue (capture-less callbacks);
// BM_EventQueueThroughputCapturing is the realistic case — callbacks carry
// ring-collective-sized captures, which is where per-event allocation cost
// shows up. BM_PlannerSearch times a full FindBestPlan (closed-form ranking
// plus discrete-event re-pricing of the top k), BM_ScalingSweep times a
// 4-point scaling sweep at 1 and 4 worker threads, and BM_PdesTwoDSummation
// sweeps the partitioned window engine's worker-thread count on one
// multi-pod collective (sim_ms/sim_events bit-identical at every count).
//
// --smoke (or TPU_BENCH_SMOKE=1) restricts the run to the cheap variant of
// each benchmark so CI can record a BENCH_SIMULATOR.json artifact in seconds.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "collectives/all_reduce.h"
#include "core/multipod.h"
#include "core/sweep.h"
#include "network/network.h"
#include "plan/planner.h"
#include "sim/partitioned_simulator.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace {

using namespace tpu;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < events; ++i) {
      simulator.Schedule(static_cast<double>(i % 97) * 1e-6, [] {});
    }
    simulator.Run();
    benchmark::DoNotOptimize(simulator.now());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventQueueThroughputCapturing(benchmark::State& state) {
  // Captures sized like a real completion callback (a few pointers, a range,
  // a tag): large enough to defeat std::function's small-object buffer, so
  // this variant exposes per-event allocation cost that the capture-less
  // benchmark hides.
  const int events = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  double payload[3] = {1.0, 2.0, 3.0};
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < events; ++i) {
      std::uint64_t* out = &sink;
      double* data = payload;
      const std::int64_t begin = i;
      const std::int64_t end = i + 3;
      const int tag = i % 5;
      simulator.Schedule(static_cast<double>(i % 97) * 1e-6,
                         [out, data, begin, end, tag] {
                           *out += static_cast<std::uint64_t>(
                               data[tag % 3] + static_cast<double>(end - begin));
                         });
    }
    simulator.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughputCapturing)->Arg(1 << 14)->Arg(1 << 17);

void BM_TwoDSummationSimulation(benchmark::State& state) {
  const int pods = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topo::MeshTopology topo(topo::TopologyConfig::Multipod(pods));
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    coll::GradientSummationConfig config;
    config.elems = 25'600'000;
    const auto result = coll::TwoDGradientSummation(network, config);
    benchmark::DoNotOptimize(result.reduce_seconds);
    state.counters["sim_events"] =
        static_cast<double>(simulator.events_processed());
    state.counters["sim_ms"] = ToMillis(result.total());
  }
  state.SetLabel("chips=" + std::to_string(pods * 1024));
}
BENCHMARK(BM_TwoDSummationSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FunctionalAllReduce(benchmark::State& state) {
  // Data-carrying collective on a small mesh: the price of verification.
  const std::int64_t elems = state.range(0);
  for (auto _ : state) {
    topo::MeshTopology topo(topo::TopologyConfig::Slice(4, 4, true));
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    std::vector<std::vector<float>> buffers(topo.num_chips(),
                                            std::vector<float>(elems, 1.0f));
    std::vector<float*> ptrs;
    for (auto& b : buffers) ptrs.push_back(b.data());
    coll::GradientSummationConfig config;
    config.elems = elems;
    coll::TwoDGradientSummation(network, config, ptrs);
    benchmark::DoNotOptimize(buffers[0][0]);
  }
  state.SetItemsProcessed(state.iterations() * elems * 16);
}
BENCHMARK(BM_FunctionalAllReduce)->Arg(1 << 12)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

void BM_PlannerSearch(benchmark::State& state) {
  // Full plan search on a pod slice: closed-form ranking of every candidate,
  // then exact discrete-event re-pricing of the top k. No cache, so each
  // iteration pays the whole search — this is the latency a mid-training
  // replan would see.
  const int chips = static_cast<int>(state.range(0));
  const topo::MeshTopology topo(core::TopologyForChips(chips));
  for (auto _ : state) {
    plan::PlanRequest request;
    request.elems = 4'000'000;
    request.des_top_k = 3;
    const auto result =
        plan::FindBestPlan(topo, net::NetworkConfig{}, request);
    benchmark::DoNotOptimize(result.predicted_seconds);
    state.counters["sim_ms"] = ToMillis(result.predicted_seconds);
  }
  state.SetLabel("chips=" + std::to_string(chips));
}
BENCHMARK(BM_PlannerSearch)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ScalingSweep(benchmark::State& state) {
  // 4-point ResNet scaling sweep; the argument is the sweep worker-thread
  // count. Output is byte-identical at every thread count (the determinism
  // suite asserts it); wall-clock scaling depends on available cores.
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::SweepConfig config;
    config.benchmark = models::Benchmark::kResNet50;
    config.chip_counts = {16, 32, 64, 128};
    config.batch_for = [](int chips) { return 256LL * chips; };
    config.threads = threads;
    const auto points = core::RunScalingSweep(config);
    benchmark::DoNotOptimize(points.back().step.step());
    state.counters["sim_ms"] = ToMillis(points.back().step.step());
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ScalingSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PdesTwoDSummation(benchmark::State& state) {
  // Time-only 2-D summation on 4 pods under the conservative window engine;
  // the argument is the PDES worker-thread count (1 = the engine stands
  // down and the serial path runs). The compare gate holds sim_ms and
  // sim_events on every row to the same values — that IS the bit-identity
  // contract — while wall-clock scaling depends on available cores: on
  // single-vCPU CI runners the rows stay flat and only the simulated
  // counters are meaningful.
  const int threads = static_cast<int>(state.range(0));
  topo::TopologyConfig shape;
  shape.pod_size_x = 16;
  shape.pod_size_y = 16;
  shape.num_pods = 4;
  const topo::MeshTopology topo(shape);
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    sim::PdesConfig pdes;
    pdes.enable = true;
    pdes.threads = threads;
    sim::PdesStats stats;
    pdes.stats = &stats;
    sim::ScopedPdesConfig scope(pdes);
    coll::GradientSummationConfig config;
    config.elems = 25'600'000;
    const auto result = coll::TwoDGradientSummation(network, config);
    benchmark::DoNotOptimize(result.reduce_seconds);
    state.counters["sim_events"] = static_cast<double>(
        stats.engaged ? stats.events_processed : simulator.events_processed());
    state.counters["sim_ms"] = ToMillis(result.total());
    state.counters["pdes_windows"] = static_cast<double>(stats.windows);
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_PdesTwoDSummation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Init();  // parses --smoke/--trace/--metrics before benchmark flags
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    // bench_util's flags are not google-benchmark flags; strip them.
    if (std::strncmp(argv[i], "--smoke", 7) == 0 ||
        std::strncmp(argv[i], "--trace=", 8) == 0 ||
        std::strncmp(argv[i], "--metrics", 9) == 0 ||
        std::strncmp(argv[i], "--json=", 7) == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  // Smoke mode: one cheap variant per benchmark, short repetitions — enough
  // for CI to spot order-of-magnitude regressions in seconds.
  std::string filter =
      "--benchmark_filter=BM_EventQueueThroughput(Capturing)?/16384|"
      "BM_TwoDSummationSimulation/1|BM_FunctionalAllReduce/4096|"
      "BM_PlannerSearch/64|BM_ScalingSweep|BM_PdesTwoDSummation/[14]";
  std::string min_time = "--benchmark_min_time=0.05";
  if (bench::Smoke()) {
    args.push_back(filter.data());
    args.push_back(min_time.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
