// Wall-clock performance of the simulator itself (google-benchmark): event
// throughput of the discrete-event core and end-to-end simulation rates for
// the collective schedules, so regressions in the simulator's own speed are
// visible.
#include <benchmark/benchmark.h>

#include "collectives/all_reduce.h"
#include "network/network.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace {

using namespace tpu;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < events; ++i) {
      simulator.Schedule(static_cast<double>(i % 97) * 1e-6, [] {});
    }
    simulator.Run();
    benchmark::DoNotOptimize(simulator.now());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 14)->Arg(1 << 17);

void BM_TwoDSummationSimulation(benchmark::State& state) {
  const int pods = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topo::MeshTopology topo(topo::TopologyConfig::Multipod(pods));
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    coll::GradientSummationConfig config;
    config.elems = 25'600'000;
    const auto result = coll::TwoDGradientSummation(network, config);
    benchmark::DoNotOptimize(result.reduce_seconds);
    state.counters["sim_events"] =
        static_cast<double>(simulator.events_processed());
    state.counters["sim_ms"] = ToMillis(result.total());
  }
  state.SetLabel("chips=" + std::to_string(pods * 1024));
}
BENCHMARK(BM_TwoDSummationSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FunctionalAllReduce(benchmark::State& state) {
  // Data-carrying collective on a small mesh: the price of verification.
  const std::int64_t elems = state.range(0);
  for (auto _ : state) {
    topo::MeshTopology topo(topo::TopologyConfig::Slice(4, 4, true));
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    std::vector<std::vector<float>> buffers(topo.num_chips(),
                                            std::vector<float>(elems, 1.0f));
    std::vector<float*> ptrs;
    for (auto& b : buffers) ptrs.push_back(b.data());
    coll::GradientSummationConfig config;
    config.elems = elems;
    coll::TwoDGradientSummation(network, config, ptrs);
    benchmark::DoNotOptimize(buffers[0][0]);
  }
  state.SetItemsProcessed(state.iterations() * elems * 16);
}
BENCHMARK(BM_FunctionalAllReduce)->Arg(1 << 12)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
