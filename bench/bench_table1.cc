// Table 1: end-to-end MLPerf v0.7 times on the TPU-v3 multipod, TF and JAX,
// plus the speedup over Google's MLPerf v0.6 submissions.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "models/model_specs.h"

int main() {
  using namespace tpu;
  bench::Header("Table 1 — end-to-end time (minutes)",
                "Kumar et al., MLSys 2021, Table 1");
  bench::Row("%-12s %6s %8s %4s | %9s %9s %9s | %9s %9s",
             "benchmark", "chips", "batch", "mp", "TF (min)", "paperTF",
             "spd/v0.6", "JAX (min)", "paperJAX");

  struct PaperRow {
    models::Benchmark benchmark;
    double paper_tf;
    double paper_jax;  // 0 = N/A
  };
  const PaperRow rows[] = {
      {models::Benchmark::kResNet50, 0.48, 0.47},
      {models::Benchmark::kBert, 0.39, 0.40},
      {models::Benchmark::kSsd, 0.46, 0.0},
      {models::Benchmark::kTransformer, 0.32, 0.26},
      {models::Benchmark::kMaskRcnn, 8.1, 0.0},
      {models::Benchmark::kDlrm, 2.4, 0.0},
  };

  for (const PaperRow& row : rows) {
    // --smoke keeps the two cheapest submission-scale rows.
    if (bench::Smoke() && row.benchmark != models::Benchmark::kResNet50 &&
        row.benchmark != models::Benchmark::kTransformer) {
      continue;
    }
    const auto scale = models::GetSubmissionScale(row.benchmark);
    core::MultipodSystem system(scale.chips);
    const auto tf = system.SimulateSubmission(
        row.benchmark, frameworks::Framework::kTensorFlow);
    const auto jax =
        system.SimulateSubmission(row.benchmark, frameworks::Framework::kJax);
    const double v06 = models::MlperfV06Minutes(row.benchmark);
    char speedup[32], paper_jax[32];
    if (v06 > 0) {
      std::snprintf(speedup, sizeof(speedup), "%9.2f", v06 / tf.minutes());
    } else {
      std::snprintf(speedup, sizeof(speedup), "%9s", "N/A");
    }
    if (row.paper_jax > 0) {
      std::snprintf(paper_jax, sizeof(paper_jax), "%9.2f", row.paper_jax);
    } else {
      std::snprintf(paper_jax, sizeof(paper_jax), "%9s", "N/A");
    }
    bench::Row("%-12s %6d %8lld %4d | %9.2f %9.2f %s | %9.2f %s",
               models::BenchmarkName(row.benchmark), scale.chips,
               static_cast<long long>(scale.global_batch),
               scale.model_parallel_cores, tf.minutes(), row.paper_tf, speedup,
               jax.minutes(), paper_jax);
  }
  std::printf(
      "\nNote: simulated substrate, not the authors' testbed — orderings and\n"
      "ratios are the comparison targets, not absolute minutes.\n");
  return 0;
}
