// Figure 11: end-to-end speedup over 16 accelerator chips of each system's
// own type. TPUs sustain higher relative speedups because the 2-D torus
// all-reduce keeps communication flat, while the GPU cluster leaves the
// NVLink island and pays the inter-node fabric.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "gpu/gpu_cluster.h"
#include "models/model_specs.h"

int main() {
  using namespace tpu;
  bench::Header("Figure 11 — speedup over 16 chips of own type",
                "Kumar et al., MLSys 2021, Figure 11");
  bench::Row("%6s | %12s %12s | %12s", "chips", "TPU ResNet", "GPU ResNet",
             "TPU BERT");

  const auto& resnet = models::GetModelSpec(models::Benchmark::kResNet50);
  const auto a100 = gpu::GpuSystemConfig::A100();
  double tpu_base = 0, gpu_base = 0, bert_base = 0;
  for (int chips : bench::ScalingChips()) {
    core::MultipodSystem system(chips);
    const std::int64_t resnet_batch = bench::ResNetBatch(chips);
    const double tpu_minutes =
        system
            .SimulateTraining(models::Benchmark::kResNet50, resnet_batch, 1,
                              frameworks::Framework::kJax)
            .minutes();
    const double gpu_minutes =
        gpu::GpuEndToEndMinutes(a100, resnet, chips, resnet_batch);
    const std::int64_t bert_batch = bench::BertPerChipBatch(chips) * chips;
    const double bert_minutes =
        system
            .SimulateTraining(models::Benchmark::kBert, bert_batch, 1,
                              frameworks::Framework::kJax)
            .minutes();
    if (tpu_base == 0) {
      tpu_base = tpu_minutes;
      gpu_base = gpu_minutes;
      bert_base = bert_minutes;
    }
    bench::Row("%6d | %12.2f %12.2f | %12.2f", chips,
               tpu_base / tpu_minutes, gpu_base / gpu_minutes,
               bert_base / bert_minutes);
  }
  return 0;
}
