// The collective planner: searched schedules vs the paper's fixed 2-D rings.
//
// Three experiments:
//   1. Healthy scaling sweep (BERT-scale payload): at every scale the search
//      must rediscover the paper's ring 2-D [Y->X] bidirectional bf16
//      schedule, and on the 4-pod 128x32 multipod its discrete-event time
//      must be bit-identical to the fixed TwoDGradientSummation — asserted,
//      not just printed (CI greps the plan dump for the golden name).
//   2. Degraded mesh: one dead Y-torus link mid-mesh stalls every 2-D
//      schedule. The monitored execution detects the stall via its phase
//      deadline, re-plans under the observed link health, and the flat snake
//      ring (which never turns mid-mesh) finishes in milliseconds while the
//      fixed schedule is stuck for simulated hours.
//   3. Chunk-pipelined search: raising max_chunks lets the planner weigh
//      pipelined variants of the canonical shape.
//
// TPU_BENCH_PLAN_DUMP=PATH writes the chosen golden plan and the full ranked
// candidate list to PATH (the CI artifact). --json=PATH writes the purely
// simulated results (no wall clock) as JSON: identical builds produce
// byte-identical files, which is what tools/bench_compare.py diffs against
// the committed baseline as a bit-exactness gate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "collectives/all_reduce.h"
#include "core/multipod.h"
#include "fault/health_monitor.h"
#include "network/network.h"
#include "plan/cost.h"
#include "plan/generator.h"
#include "plan/planner.h"
#include "plan/schedule.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace {

constexpr std::int64_t kBertElems = 340 * 1000 * 1000;  // ~340M parameters

// %.17g: doubles round-trip exactly, so the JSON is a bit-exactness probe.
std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double FixedScheduleMs(const tpu::topo::MeshTopology& topo,
                       std::int64_t elems) {
  tpu::sim::Simulator simulator;
  tpu::net::Network network(&topo, tpu::net::NetworkConfig{}, &simulator);
  tpu::coll::GradientSummationConfig config;
  config.elems = elems;
  config.collective.bfloat16_wire = true;
  return tpu::ToMillis(
      tpu::coll::TwoDGradientSummation(network, config).total());
}

}  // namespace

int main() {
  using namespace tpu;
  bench::Header("Collective planner — searched schedules vs fixed 2-D rings",
                "planner extension of the Section 3.3 schedule");
  const bool smoke = bench::Smoke();
  const char* kGolden = "ring-2d[Y->X] bidir bf16";
  int failures = 0;
  std::ostringstream json_healthy, json_degraded, json_chunked;

  // 1. Healthy sweep: the search must converge on the paper's schedule.
  bench::Row("%5s | %-26s %10s %10s %6s | %10s", "chips", "chosen plan",
             "plan_ms", "est_ms", "cands", "fixed_ms");
  const std::vector<int> scales =
      smoke ? std::vector<int>{256, 4096}
            : std::vector<int>{256, 512, 1024, 2048, 4096};
  for (const int chips : scales) {
    const topo::MeshTopology topo(core::TopologyForChips(chips));
    plan::PlanRequest request;
    request.elems = kBertElems;
    request.des_top_k = 2;
    const plan::PlannerResult best =
        plan::FindBestPlan(topo, net::NetworkConfig{}, request);
    const double fixed_ms = FixedScheduleMs(topo, request.elems);
    bench::Row("%5d | %-26s %10.4f %10.4f %6d | %10.4f", chips,
               best.plan.name().c_str(), ToMillis(best.predicted_seconds),
               ToMillis(best.estimated_seconds), best.candidates, fixed_ms);
    if (json_healthy.tellp() > 0) json_healthy << ",";
    json_healthy << "{\"chips\":" << chips << ",\"plan\":\""
                 << best.plan.name() << "\",\"predicted_ms\":"
                 << Num(ToMillis(best.predicted_seconds))
                 << ",\"estimated_ms\":"
                 << Num(ToMillis(best.estimated_seconds))
                 << ",\"candidates\":" << best.candidates
                 << ",\"fixed_ms\":" << Num(fixed_ms) << "}";
    if (best.plan.name() != kGolden) {
      std::fprintf(stderr, "FAIL: %d chips chose '%s', want '%s'\n", chips,
                   best.plan.name().c_str(), kGolden);
      ++failures;
    }
    if (chips == 4096) {
      // The acceptance check: on the healthy 128x32 multipod the planned
      // time must be the bitwise same number as the fixed schedule's.
      if (ToMillis(best.predicted_seconds) != fixed_ms) {
        std::fprintf(stderr,
                     "FAIL: 4096-chip planned time %.9f ms != fixed %.9f ms\n",
                     ToMillis(best.predicted_seconds), fixed_ms);
        ++failures;
      }
      if (const char* path = std::getenv("TPU_BENCH_PLAN_DUMP")) {
        std::ofstream out(path);
        out << "topology: " << topo.size_x() << "x" << topo.size_y() << "\n"
            << "elems: " << request.elems << "\n"
            << "plan: " << best.plan.name() << "\n"
            << "predicted_ms: " << ToMillis(best.predicted_seconds) << "\n"
            << "fixed_ms: " << fixed_ms << "\n"
            << "candidates (closed-form estimate):\n";
        for (const plan::CollectivePlan& candidate :
             plan::GeneratePlans(topo, request)) {
          const plan::LoweredPlan lowered =
              plan::LowerPlan(topo, candidate, request.elems);
          out << "  " << candidate.name() << ": "
              << ToMillis(plan::EstimatePlanSeconds(topo, net::NetworkConfig{},
                                                    {}, lowered))
              << " ms\n";
        }
        std::fprintf(stderr, "plan dump -> %s\n", path);
      }
    }
  }

  // 2. Degraded mesh: a dead Y link mid-column on a 16x8 slice. Every 2-D
  // schedule routes a column ring through it; only the flat snake survives.
  bench::Header("Degraded mesh — replanning around a dead Y link (16x8)",
                "fault-driven replanning");
  const topo::TopologyConfig slice = topo::TopologyConfig::Slice(16, 8, true);
  for (const bool with_planner : {false, true}) {
    topo::MeshTopology topo(slice);
    sim::Simulator simulator;
    net::Network network(&topo, net::NetworkConfig{}, &simulator);
    network.FailLink(topo.LinkBetween(topo.ChipAt({5, 3}), topo.ChipAt({5, 4})));
    network.FailLink(topo.LinkBetween(topo.ChipAt({5, 4}), topo.ChipAt({5, 3})));

    plan::PlanRequest request;
    request.elems = 1 << 22;
    if (!with_planner) {
      // The fixed schedule just waits out the stall.
      coll::GradientSummationConfig config;
      config.elems = request.elems;
      config.collective.bfloat16_wire = true;
      const SimTime stalled =
          coll::TwoDGradientSummation(network, config).total();
      bench::Row("fixed 2-D rings      : %12.1f s (stalled on the dead link)",
                 stalled);
      json_degraded << "\"fixed_s\":" << Num(stalled);
      continue;
    }
    fault::HealthMonitor monitor;
    plan::PlanCache cache;
    const plan::MitigatedSummation outcome = plan::ExecuteWithReplanning(
        network, request, plan::PaperPlan(request), monitor, &cache);
    bench::Row("planned, monitored   : detected at %.4f s, replanned to %s",
               outcome.detected_at, outcome.replan.plan.name().c_str());
    bench::Row("                       retry %.4f s vs first attempt %.1f s",
               outcome.second.total(), outcome.first.total());
    json_degraded << ",\"detected_at_s\":" << Num(outcome.detected_at)
                  << ",\"replan\":\"" << outcome.replan.plan.name()
                  << "\",\"first_s\":" << Num(outcome.first.total())
                  << ",\"retry_s\":" << Num(outcome.second.total());
    if (!outcome.replanned ||
        outcome.second.total() >= outcome.first.total()) {
      std::fprintf(stderr, "FAIL: replanned schedule did not beat the fixed "
                           "one on the degraded mesh\n");
      ++failures;
    }
  }

  // 3. Chunk-pipelined candidates on a 512-chip slice.
  bench::Header("Chunk-pipelined search — max_chunks sweep (32x16)",
                "pipelined variant of the Section 3.3 schedule");
  bench::Row("%10s | %-30s %10s", "max_chunks", "chosen plan", "plan_ms");
  const topo::MeshTopology pod(core::TopologyForChips(512));
  for (const int max_chunks : {1, 4, 8}) {
    plan::PlanRequest request;
    request.elems = smoke ? (1 << 22) : kBertElems;
    request.max_chunks = max_chunks;
    const plan::PlannerResult best =
        plan::FindBestPlan(pod, net::NetworkConfig{}, request);
    bench::Row("%10d | %-30s %10.4f", max_chunks, best.plan.name().c_str(),
               ToMillis(best.predicted_seconds));
    if (json_chunked.tellp() > 0) json_chunked << ",";
    json_chunked << "{\"max_chunks\":" << max_chunks << ",\"plan\":\""
                 << best.plan.name() << "\",\"predicted_ms\":"
                 << Num(ToMillis(best.predicted_seconds)) << "}";
  }

  // --json: only simulated quantities, so identical builds produce
  // byte-identical files (the bench_compare.py bit-exactness gate).
  if (!bench::JsonPath().empty()) {
    std::ofstream out(bench::JsonPath());
    out << "{\"smoke\":" << (smoke ? "true" : "false") << ",\"healthy\":["
        << json_healthy.str() << "],\"degraded\":{" << json_degraded.str()
        << "},\"chunked\":[" << json_chunked.str() << "]}\n";
    std::fprintf(stderr, "planner json -> %s\n", bench::JsonPath().c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d planner check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall planner checks passed\n");
  return 0;
}
