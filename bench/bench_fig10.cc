// Figure 10: MLPerf v0.7 end-to-end minutes — simulated TPU-v3 multipod vs
// NVIDIA's published A100/V100 submissions (and our GPU cluster model at the
// same scales, to show the model reproduces the published ordering).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "gpu/gpu_cluster.h"
#include "models/model_specs.h"

int main() {
  using namespace tpu;
  bench::Header("Figure 10 — MLPerf v0.7 end-to-end minutes, TPU vs GPU",
                "Kumar et al., MLSys 2021, Figure 10");
  bench::Row("%-12s | %7s %9s | %9s %9s %9s | %9s %9s", "benchmark",
             "TPUchips", "TPU(min)", "A100 n", "A100 pub", "A100 sim",
             "V100 pub", "V100 sim");

  for (models::Benchmark b : models::AllBenchmarks()) {
    // --smoke keeps the two cheapest submission-scale rows.
    if (bench::Smoke() && b != models::Benchmark::kResNet50 &&
        b != models::Benchmark::kTransformer) {
      continue;
    }
    const auto scale = models::GetSubmissionScale(b);
    core::MultipodSystem system(scale.chips);
    const auto tpu =
        system.SimulateSubmission(b, frameworks::Framework::kTensorFlow);

    const auto& spec = models::GetModelSpec(b);
    const auto published = gpu::NvidiaV07Results(b);
    double a100_pub = 0, v100_pub = 0, a100_sim = 0, v100_sim = 0;
    int a100_n = 0;
    for (const auto& r : published) {
      // Use each system's published scale, capped at the model's batch wall.
      const std::int64_t batch =
          std::min<std::int64_t>(spec.max_global_batch,
                                 std::max<std::int64_t>(r.accelerators,
                                                        scale.global_batch));
      const auto config = r.system == "A100" ? gpu::GpuSystemConfig::A100()
                                             : gpu::GpuSystemConfig::V100();
      const double sim =
          gpu::GpuEndToEndMinutes(config, spec, r.accelerators, batch);
      if (r.system == "A100") {
        a100_pub = r.minutes;
        a100_sim = sim;
        a100_n = r.accelerators;
      } else {
        v100_pub = r.minutes;
        v100_sim = sim;
      }
    }
    bench::Row("%-12s | %7d %9.2f | %9d %9.2f %9.2f | %9.2f %9.2f",
               models::BenchmarkName(b), scale.chips, tpu.minutes(), a100_n,
               a100_pub, a100_sim, v100_pub, v100_sim);
  }
  std::printf(
      "\n'pub' columns are approximate transcriptions of the MLPerf v0.7\n"
      "submissions; 'sim' columns are our cluster models at those scales.\n");
  return 0;
}
