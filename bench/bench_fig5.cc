// Figure 5: ResNet-50 end-to-end and throughput speedup vs number of TPU
// chips (speedups relative to 16 chips; batch grows with scale, so epochs to
// converge grow too — end-to-end scales worse than throughput).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "models/model_specs.h"

int main() {
  using namespace tpu;
  bench::Header("Figure 5 — ResNet-50 speedup vs chips",
                "Kumar et al., MLSys 2021, Figure 5");
  bench::Row("%6s %8s %7s | %10s %10s %10s %10s", "chips", "batch", "epochs",
             "thru(ex/s)", "min", "spd(e2e)", "spd(thru)");

  double base_minutes = 0, base_throughput = 0;
  const double base_chips = 16;
  int last_chips = 16;
  for (int chips : bench::ScalingChips()) {
    last_chips = chips;
    core::MultipodSystem system(chips);
    const std::int64_t batch = bench::ResNetBatch(chips);
    const auto result = system.SimulateTraining(
        models::Benchmark::kResNet50, batch, 1, frameworks::Framework::kJax);
    const double throughput = batch / result.step.step();
    if (base_minutes == 0) {
      base_minutes = result.minutes();
      base_throughput = throughput;
    }
    const double e2e_speedup = base_minutes / result.minutes();
    const double thru_speedup = throughput / base_throughput;
    bench::Row("%6d %8lld %7.1f | %10.0f %10.2f %10.2f %10.2f", chips,
               static_cast<long long>(batch), result.epochs, throughput,
               result.minutes(), e2e_speedup, thru_speedup);
  }
  std::printf(
      "\nideal speedup at %d chips: %.0fx; throughput tracks ideal more\n"
      "closely than end-to-end (extra epochs at batch 64K), as in Figure 5.\n",
      last_chips, last_chips / base_chips);
  return 0;
}
