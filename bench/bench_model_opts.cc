// Sections 4.5 / 4.6 model-level optimizations:
//   * MaskRCNN: ROIAlign gather as one-hot matmul (MXU) vs non-contiguous
//     gather (memory system) — "linear speedups when increasing the number
//     of model parallelism partitions";
//   * MaskRCNN: partitioning support for top-k (Amdahl bottleneck removal);
//   * DLRM: replicate-small / partition-large embedding placement.
#include <cstdio>

#include "bench/bench_util.h"
#include "hlo/cost_model.h"
#include "hlo/hlo.h"
#include "hlo/passes.h"
#include "spmd/spmd.h"

int main() {
  using namespace tpu;
  hlo::TpuCoreModel core;

  bench::Header("ROIAlign gather: one-hot matmul vs non-contiguous gather",
                "Kumar et al., MLSys 2021, Section 4.5");
  bench::Row("%6s %6s | %14s %14s %9s", "rois", "parts", "gather(us)",
             "onehot(us)", "speedup");
  const tensor::Index table = 2048, width = 256;
  for (tensor::Index rois : {256, 1024, 4096}) {
    for (int parts : {1, 2, 4, 8}) {
      // Non-contiguous gather does not partition (no XLA support pre-paper):
      // it runs fully replicated regardless of parts.
      const SimTime gather_time = core.SecondsFor(
          hlo::NonContiguousGatherCost(rois, width, 2));
      // One-hot matmul row-shards across the partitions.
      hlo::HloModule m("roialign");
      const auto onehot = m.Parameter({rois, table}, "onehot");
      const auto data = m.Parameter({table, width}, "data");
      m.OneHotGather(onehot, data);
      const auto pm = spmd::Partition(
          m, {spmd::Sharding::Tiled(0), spmd::Sharding::Replicated()}, parts);
      const auto cost = spmd::CostOfPartitioned(pm, core);
      bench::Row("%6lld %6d | %14.2f %14.2f %8.1fx",
                 static_cast<long long>(rois), parts,
                 ToMicros(gather_time), ToMicros(cost.compute_seconds),
                 gather_time / cost.compute_seconds);
    }
  }

  bench::Header("Top-k partitioning (Amdahl bottleneck removal)",
                "Kumar et al., MLSys 2021, Section 4.5");
  bench::Row("%6s | %14s %14s", "parts", "topk(us)", "vs replicated");
  {
    const tensor::Index rows = 8192, candidates = 4096;
    hlo::HloModule m("topk");
    const auto scores = m.Parameter({rows, candidates}, "scores");
    m.TopK(scores, 16);
    const auto replicated_cost = spmd::CostOfPartitioned(
        spmd::Partition(m, {spmd::Sharding::Replicated()}, 1), core);
    for (int parts : {1, 2, 4, 8}) {
      const auto cost = spmd::CostOfPartitioned(
          spmd::Partition(m, {spmd::Sharding::Tiled(0)}, parts), core);
      bench::Row("%6d | %14.2f %13.1fx", parts,
                 ToMicros(cost.compute_seconds),
                 replicated_cost.compute_seconds / cost.compute_seconds);
    }
  }

  bench::Header("BERT compiler optimizations (scale placement + fusion)",
                "Kumar et al., MLSys 2021, Section 4.1");
  {
    // A BERT-ish layer at per-core shapes (batch 2 x seq 64 rows): small
    // matmuls, an attention scale on the big activation side, and a pile of
    // layernorm-style elementwise ops — exactly the regime where issue
    // overhead and misplaced scalar work dominate (Section 4.1).
    hlo::HloModule m("bert_layer");
    const auto x = m.Parameter({128, 1024}, "x");
    const auto wq = m.Parameter({1024, 64}, "wq");
    const auto w2 = m.Parameter({1024, 1024}, "w2");
    const auto q = m.Dot(x, wq);
    // 1/sqrt(d) attention scale applied to the large expanded activation —
    // the misplacement the rewrite fixes (it belongs on the 64x1024 weight).
    const auto expanded = m.Scale(
        m.Dot(q, m.Parameter({64, 1024}, "up")), 0.125f);
    auto cur = m.Dot(m.Tanh(m.Dot(expanded, w2)), w2);
    for (int i = 0; i < 8; ++i) {
      cur = m.Scale(m.Tanh(cur), 1.0f + 0.001f * i);  // layernorm-ish chain
    }
    hlo::TpuCoreModel core;
    core.op_overhead = Micros(1.0);
    int rewrites = 0;
    const hlo::HloModule rescaled =
        hlo::MoveScalesToSmallerSide(m, &rewrites);
    const auto fusion = hlo::AnalyzeElementwiseFusion(rescaled);
    const SimTime baseline = hlo::CostOfModule(m, core).seconds;
    const SimTime optimized = hlo::FusedModuleSeconds(rescaled, core);
    bench::Row("  scale rewrites applied:        %d", rewrites);
    bench::Row("  kernels after fusion:          %d -> %d",
               fusion.original_kernels, fusion.fused_kernels);
    bench::Row("  layer time: %.3f ms -> %.3f ms (%.2fx)",
               ToMillis(baseline), ToMillis(optimized),
               baseline / optimized);
  }

  bench::Header("DLRM embedding placement: replicate small, partition large",
                "Kumar et al., MLSys 2021, Section 4.6");
  // 26 Criteo tables: a few huge, many tiny. Placement policy: replicate a
  // table if it fits comfortably, partition otherwise; report HBM per chip.
  {
    const std::int64_t dim = 128;
    const std::int64_t rows[] = {40'000'000, 40'000'000, 30'000'000,
                                 20'000'000, 10'000'000, 5'000'000,
                                 1'000'000,  100'000,    10'000};
    const int num_chips = 256;
    const double hbm_per_chip = 32.0 * (1 << 30);
    double replicate_all = 0, partition_all = 0, policy = 0;
    for (std::int64_t r : rows) {
      const double bytes = static_cast<double>(r) * dim * 4;
      replicate_all += bytes;
      partition_all += bytes / num_chips;
      // Policy: replicate under 64 MiB (cheap lookups, no all-to-all),
      // partition the rest.
      policy += bytes < 64.0 * (1 << 20) ? bytes : bytes / num_chips;
    }
    bench::Row("%-22s %10.2f GiB/chip %s", "replicate everything",
               replicate_all / (1 << 30),
               replicate_all > hbm_per_chip ? "(DOES NOT FIT 32 GiB)" : "");
    bench::Row("%-22s %10.2f GiB/chip", "partition everything",
               partition_all / (1 << 30));
    bench::Row("%-22s %10.2f GiB/chip (small tables lookup locally)",
               "paper policy", policy / (1 << 30));
  }
  return 0;
}
