// Extension experiments beyond the core tables/figures:
//   * TPU-v4: the paper's footnote — DLRM's best result (1.21 min) came
//     from a TPU-v4 machine; the paper reports the TPU-v3 number (2.4 min).
//     We run the same submission on both generations.
//   * MaskRCNN communication optimization (Section 4.5): the XLA work that
//     reduced model-parallel communication overhead from ~30% to ~10%.
//   * Compute/communication overlap: a forward-looking ablation — how much
//     of the Figure 6/8 all-reduce share could overlap with backprop hide.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"

int main() {
  using namespace tpu;

  bench::Header("TPU-v4 vs TPU-v3 (DLRM footnote)",
                "Kumar et al., MLSys 2021, Section 5 (paper: 2.4 -> 1.21 min)");
  bench::Row("%-6s | %10s %10s", "gen", "step(ms)", "minutes");
  for (auto [generation, name] :
       {std::pair{core::TpuGeneration::kV3, "v3"},
        std::pair{core::TpuGeneration::kV4, "v4"}}) {
    core::MultipodSystem system(256, core::OptionsForGeneration(generation));
    const auto result = system.SimulateSubmission(
        models::Benchmark::kDlrm, frameworks::Framework::kTensorFlow);
    bench::Row("%-6s | %10.3f %10.2f", name, ToMillis(result.step.step()),
               result.minutes());
  }

  bench::Header("MaskRCNN model-parallel communication optimization",
                "Kumar et al., MLSys 2021, Section 4.5 (paper: 30% -> 10%)");
  bench::Row("%-12s | %10s %10s", "XLA comm opt", "comm frac", "speedup@4");
  for (bool optimized : {false, true}) {
    core::SystemOptions options;
    options.optimized_model_parallel_comm = optimized;
    const double fraction = core::ModelParallelCommFraction(
        models::Benchmark::kMaskRcnn, 4, options);
    const double speedup =
        core::ModelParallelSpeedup(models::Benchmark::kMaskRcnn, 4, options);
    bench::Row("%-12s | %9.1f%% %10.2f", optimized ? "on" : "off",
               100.0 * fraction, speedup);
  }

  bench::Header("All-reduce/backprop overlap ablation (BERT, 4096 chips)",
                "forward-looking extension of Figures 6/8");
  bench::Row("%8s | %10s %10s %10s", "overlap", "step(ms)", "hidden(ms)",
             "vs none");
  const auto& bert = models::GetModelSpec(models::Benchmark::kBert);
  const auto lamb = optim::MakeLamb({});
  double base = 0;
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::SystemOptions options;
    options.allreduce_overlap_fraction = overlap;
    core::MultipodSystem system(4096, options);
    const auto step = system.SimulateStep(bert, 8192, 1, lamb.get());
    if (base == 0) base = step.step();
    bench::Row("%7.0f%% | %10.3f %10.3f %9.2fx", 100 * overlap,
               ToMillis(step.step()), ToMillis(step.overlapped),
               base / step.step());
  }
  return 0;
}
