// The recovery orchestrator: policy-driven fault recovery on a degraded
// 16x8 slice.
//
// Three experiments on one DLRM run (batch 65536, TensorFlow):
//   1. Canonical scenario suite — one scripted fault per scenario, each
//      exercising a different strategy of the recovery controller:
//      wait-for-heal (transient slowed host), route-around (permanently
//      degraded link), elastic-shrink (dead chip, no spares), spare-swap-in
//      (dead chip, standby host held back). Each row prints the decision,
//      the predicted extra makespan, and what the re-simulated recovery
//      actually cost — the two must agree within 10% (asserted in
//      tests/recovery_test.cc; printed here for the record).
//   2. Slow-host duration sweep — where the strategy choice crosses over:
//      short transients are waited out with exponential backoff, long ones
//      exhaust the wait deadline and promote to checkpoint-restart.
//   3. Chip-death fault-time sweep — lost work (and the recovery bill) grows
//      with the time since the last checkpoint.
//
// --json=PATH writes the purely simulated results (no wall clock) as JSON,
// including a full RunReport with the recovery timeline embedded: identical
// builds produce byte-identical files, which tools/bench_compare.py diffs
// against bench/baselines/bench_recovery_smoke.json as a bit-exactness gate.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "fault/fault_injector.h"
#include "models/model_specs.h"
#include "recover/recovery.h"
#include "telemetry/telemetry.h"
#include "topology/topology.h"
#include "trace/metrics.h"
#include "trace/run_report.h"

namespace {

// %.17g: doubles round-trip exactly, so the JSON is a bit-exactness probe.
std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

int main() {
  using namespace tpu;
  bench::Header("Recovery orchestrator — policy-driven fault recovery",
                "robustness extension of the Section 5 dedicated-machine "
                "assumption");
  const bool smoke = bench::Smoke();

  core::MultipodSystem system(topo::TopologyConfig::Slice(16, 8, true));
  const models::Benchmark benchmark = models::Benchmark::kDlrm;
  const std::int64_t global_batch = 65536;
  const auto framework = frameworks::Framework::kTensorFlow;
  const topo::MeshTopology& topo = system.topology();
  const SimTime fault_at = Seconds(50);

  core::FaultToleranceOptions base_options;
  base_options.recovery.enabled = true;
  base_options.checkpoint_interval = Seconds(600);

  const auto run = [&](const core::FaultToleranceOptions& options) {
    return system.SimulateTrainingUnderFailures(benchmark, global_batch, 1,
                                                framework, options);
  };

  // The four canonical faults.
  fault::FaultEvent slow_host;
  slow_host.kind = fault::FaultKind::kSlowHost;
  slow_host.host = topo.HostOf(topo.ChipAt({3, 3}));
  slow_host.at = fault_at;
  slow_host.duration = Seconds(30);
  slow_host.degrade_factor = 4096.0;

  fault::FaultEvent dead_link;
  dead_link.kind = fault::FaultKind::kLinkFlap;
  dead_link.link = topo.LinkBetween(topo.ChipAt({3, 2}), topo.ChipAt({3, 3}));
  dead_link.at = fault_at;
  dead_link.duration = 0;  // permanent
  dead_link.degrade_factor = 1024.0;

  fault::FaultEvent dead_chip;
  dead_chip.kind = fault::FaultKind::kChipFailure;
  dead_chip.chip = topo.ChipAt({5, 3});
  dead_chip.at = fault_at;

  struct Scenario {
    const char* name;
    fault::FaultEvent fault;
    int spare_hosts;
    double min_shrink_fraction;
    SimTime slow_host_mean;  // residual-heal prior; <= 0 keeps the default
  };
  const std::vector<Scenario> scenarios = {
      {"slow-host-30s", slow_host, 0, 0.25, Seconds(30)},
      {"dead-link", dead_link, 0, 0.25, 0},
      {"dead-chip", dead_chip, 0, 0.25, 0},
      {"dead-chip-spare", dead_chip, 1, 0.95, 0},
  };

  std::ostringstream json_scenarios, json_durations, json_fault_times;
  std::string report_json;

  // 1. Canonical scenario suite.
  bench::Row("%-16s | %-18s %10s %10s %10s %8s", "scenario", "strategy",
             "extra_s", "pred_s", "downtime", "goodput");
  for (const Scenario& scenario : scenarios) {
    core::FaultToleranceOptions options = base_options;
    options.scripted_faults = {scenario.fault};
    options.recovery.spare_hosts = scenario.spare_hosts;
    options.recovery.min_shrink_fraction = scenario.min_shrink_fraction;
    if (scenario.slow_host_mean > 0) {
      options.faults.slow_host_mean_duration = scenario.slow_host_mean;
    }

    trace::MetricsRegistry registry;
    core::FaultTolerantResult result;
    {
      trace::ScopedMetrics scope(&registry);
      result = run(options);
    }
    const recover::RecoveryTimeline& timeline = result.timeline;
    const SimTime extra = timeline.makespan - timeline.base_seconds;
    const char* strategy =
        timeline.decisions.empty()
            ? "(none)"
            : recover::StrategyName(timeline.decisions.back().strategy);
    const SimTime predicted =
        timeline.decisions.empty()
            ? 0
            : timeline.decisions.back().predicted_extra_seconds;
    const SimTime downtime =
        timeline.decisions.empty()
            ? 0
            : timeline.decisions.back().predicted_downtime;
    bench::Row("%-16s | %-18s %10.1f %10.1f %10.1f %7.1f%%", scenario.name,
               strategy, extra, predicted, downtime,
               100.0 * timeline.goodput());

    if (json_scenarios.tellp() > 0) json_scenarios << ",";
    json_scenarios << "{\"scenario\":\"" << scenario.name << "\",\"strategy\":\""
                   << strategy << "\",\"extra_s\":" << Num(extra)
                   << ",\"predicted_extra_s\":" << Num(predicted)
                   << ",\"goodput\":" << Num(timeline.goodput())
                   << ",\"timeline\":" << timeline.ToJson() << "}";

    // The first scenario also lands as a full RunReport: step breakdown +
    // recovery timeline + recovery.* metrics in one JSON document — the
    // machine-readable artifact dashboards consume.
    if (report_json.empty()) {
      trace::RunReport report;
      report.label = std::string("recovery/") + scenario.name;
      report.step_seconds = result.failure_free.step.step();
      report.compute_seconds = result.failure_free.step.compute;
      report.comm_seconds = result.failure_free.step.allreduce;
      report.recovery_json = timeline.ToJson();
      // Under --telemetry the report also embeds the session as collected so
      // far (this scenario's sampled run); without the flag the field stays
      // empty and the report is byte-identical to a telemetry-free build.
      if (telemetry::CurrentTelemetry() != nullptr) {
        report.telemetry_json = telemetry::CurrentTelemetry()->ToJson();
      }
      std::ostringstream metrics_json;
      registry.WriteJson(metrics_json);
      report.metrics_json = metrics_json.str();
      report_json = report.ToJson();
      if (!report_json.empty() && report_json.back() == '\n') {
        report_json.pop_back();
      }
    }
  }

  // 2. Slow-host duration sweep: the backoff -> restart crossover.
  std::printf("\n");
  bench::Row("%10s | %-18s %10s %8s %7s %9s", "duration_s", "final strategy",
             "extra_s", "goodput", "probes", "restarts");
  const std::vector<SimTime> durations =
      smoke ? std::vector<SimTime>{Seconds(2), Seconds(30), Seconds(600)}
            : std::vector<SimTime>{Seconds(2), Seconds(10), Seconds(30),
                                   Seconds(60), Seconds(120), Seconds(300),
                                   Seconds(600)};
  for (const SimTime duration : durations) {
    core::FaultToleranceOptions options = base_options;
    fault::FaultEvent fault = slow_host;
    fault.duration = duration;
    options.scripted_faults = {fault};
    options.faults.slow_host_mean_duration = Seconds(30);
    const auto result = run(options);
    const recover::RecoveryTimeline& timeline = result.timeline;
    const SimTime extra = timeline.makespan - timeline.base_seconds;
    const char* strategy =
        timeline.decisions.empty()
            ? "(micro-stall)"
            : recover::StrategyName(timeline.decisions.back().strategy);
    bench::Row("%10.0f | %-18s %10.1f %7.1f%% %7d %9d", duration, strategy,
               extra, 100.0 * timeline.goodput(), timeline.probes,
               timeline.restarts);
    if (json_durations.tellp() > 0) json_durations << ",";
    json_durations << "{\"duration_s\":" << Num(duration) << ",\"strategy\":\""
                   << strategy << "\",\"extra_s\":" << Num(extra)
                   << ",\"goodput\":" << Num(timeline.goodput())
                   << ",\"probes\":" << timeline.probes
                   << ",\"restarts\":" << timeline.restarts << "}";
  }

  // 3. Chip-death fault-time sweep: work since the last checkpoint is lost.
  std::printf("\n");
  bench::Row("%10s | %-18s %10s %10s %8s", "fault_at_s", "strategy", "extra_s",
             "lost_work", "goodput");
  const std::vector<SimTime> fault_times =
      smoke ? std::vector<SimTime>{Seconds(10), Seconds(150)}
            : std::vector<SimTime>{Seconds(10), Seconds(50), Seconds(100),
                                   Seconds(150)};
  for (const SimTime at : fault_times) {
    core::FaultToleranceOptions options = base_options;
    fault::FaultEvent fault = dead_chip;
    fault.at = at;
    options.scripted_faults = {fault};
    const auto result = run(options);
    const recover::RecoveryTimeline& timeline = result.timeline;
    const SimTime extra = timeline.makespan - timeline.base_seconds;
    const char* strategy =
        timeline.decisions.empty()
            ? "(none)"
            : recover::StrategyName(timeline.decisions.back().strategy);
    bench::Row("%10.0f | %-18s %10.1f %10.1f %7.1f%%", at, strategy, extra,
               timeline.lost_work_seconds, 100.0 * timeline.goodput());
    if (json_fault_times.tellp() > 0) json_fault_times << ",";
    json_fault_times << "{\"fault_at_s\":" << Num(at) << ",\"strategy\":\""
                     << strategy << "\",\"extra_s\":" << Num(extra)
                     << ",\"lost_work_s\":" << Num(timeline.lost_work_seconds)
                     << ",\"goodput\":" << Num(timeline.goodput()) << "}";
  }

  if (!bench::JsonPath().empty()) {
    std::ofstream out(bench::JsonPath());
    out << "{\"scenarios\":[" << json_scenarios.str() << "],\"duration_sweep\":["
        << json_durations.str() << "],\"fault_time_sweep\":["
        << json_fault_times.str() << "],\"report\":" << report_json << "}\n";
    std::fprintf(stderr, "json -> %s\n", bench::JsonPath().c_str());
  }
  return 0;
}
