// Goodput under failures: expected end-to-end time for BERT at multipod
// scale as a function of chip count, per-chip MTBF and checkpoint interval.
//
// The paper's runs assume a healthy dedicated machine; this bench asks what
// the same runs cost once chips fail. Failure rates add across the slice, so
// the system MTBF shrinks linearly with scale while the checkpoint write
// (sharded across hosts) gets cheaper — the optimal checkpoint interval
// tightens with scale and the goodput cliff moves toward the 4096-chip end.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "models/model_specs.h"

int main() {
  using namespace tpu;
  bench::Header("Goodput under failures — BERT, chips x MTBF x interval",
                "fault-tolerance extension (Young/Daly checkpoint model)");

  // --smoke (CI): one small scale, one MTBF, table sections skipped — a
  // seconds-scale run that still exercises the traced simulation path.
  const bool smoke = bench::Smoke();

  // Per-chip MTBF scenarios: optimistic (~8 months), typical (~2 months),
  // pessimistic preemptible fleet (~2 weeks).
  const std::vector<SimTime> kChipMtbfs =
      smoke ? std::vector<SimTime>{Seconds(5e6)}
            : std::vector<SimTime>{Seconds(2e7), Seconds(5e6), Seconds(1.2e6)};
  const std::vector<int> kChips =
      smoke ? std::vector<int>{256} : std::vector<int>{512, 1024, 2048, 4096};

  bench::Row("%5s %6s | %9s %8s %8s | %9s %9s | %9s %8s %9s", "chips",
             "mtbf_d", "base_min", "sysM_min", "ckpt_s", "tau*_s", "young_s",
             "exp_min", "goodput", "E[fail]");

  for (const int chips : kChips) {
    core::MultipodSystem system(chips);
    const std::int64_t batch =
        static_cast<std::int64_t>(bench::BertPerChipBatch(chips)) * chips;
    for (const SimTime chip_mtbf : kChipMtbfs) {
      core::FaultToleranceOptions options;
      options.faults.chip_mtbf = chip_mtbf;
      const auto result = system.SimulateTrainingUnderFailures(
          models::Benchmark::kBert, batch, 1,
          frameworks::Framework::kTensorFlow, options);
      const SimTime base = result.failure_free.train_seconds +
                           result.failure_free.eval_seconds;
      const SimTime young = fault::YoungCheckpointInterval(
          result.checkpoint.write_seconds, result.system_mtbf);
      bench::Row(
          "%5d %6.1f | %9.2f %8.1f %8.2f | %9.1f %9.1f | %9.2f %8.3f %9.3f",
          chips, ToMinutes(chip_mtbf) / (60 * 24), ToMinutes(base),
          ToMinutes(result.system_mtbf), result.checkpoint.write_seconds,
          result.checkpoint_interval, young, ToMinutes(result.expected_seconds),
          result.goodput, result.expected_failures);
    }
  }

  if (smoke) return 0;

  // The classic interval sweep at the worst point (4096 chips, preemptible
  // fleet): expected time falls, bottoms out near Young's interval, rises.
  std::printf("\nCheckpoint-interval sweep, 4096 chips, per-chip MTBF 14d:\n");
  {
    core::MultipodSystem system(4096);
    core::FaultToleranceOptions options;
    options.faults.chip_mtbf = Seconds(1.2e6);
    const auto at_opt = system.SimulateTrainingUnderFailures(
        models::Benchmark::kBert, 8192, 1, frameworks::Framework::kTensorFlow,
        options);
    const SimTime base = at_opt.failure_free.train_seconds +
                         at_opt.failure_free.eval_seconds;
    fault::GoodputConfig goodput;
    goodput.system_mtbf = at_opt.system_mtbf;
    goodput.checkpoint_write = at_opt.checkpoint.write_seconds;
    goodput.detection_latency = at_opt.detection_latency;
    goodput.restart_seconds = at_opt.restart_seconds;
    std::vector<SimTime> intervals;
    for (SimTime tau = Seconds(2); tau < base; tau *= 2) {
      intervals.push_back(tau);
    }
    bench::Row("%10s %12s %9s", "tau_s", "exp_min", "goodput");
    for (const auto& sample :
         fault::SweepCheckpointInterval(base, goodput, intervals)) {
      bench::Row("%10.1f %12.3f %9.3f", sample.interval,
                 ToMinutes(sample.expected_seconds),
                 base / sample.expected_seconds);
    }
    bench::Row("%10.1f %12.3f %9.3f  <- optimal", at_opt.checkpoint_interval,
               ToMinutes(at_opt.expected_seconds), at_opt.goodput);
  }

  // Determinism receipt: the seeded fault schedule for the full 4096-chip
  // slice is a pure function of (seed, topology, config, horizon).
  {
    topo::MeshTopology topo(core::TopologyForChips(4096));
    fault::FaultModelConfig faults;
    faults.seed = 20210407;  // fixed: rerunning must reprint these numbers
    faults.chip_mtbf = Seconds(1.2e6);
    faults.link_flap_mtbf = Seconds(5e5);
    faults.host_preemption_mtbf = Seconds(2e6);
    const auto schedule =
        fault::GenerateFaultSchedule(topo, faults, /*horizon=*/Seconds(3600));
    int by_kind[4] = {0, 0, 0, 0};
    for (const auto& event : schedule) ++by_kind[static_cast<int>(event.kind)];
    std::printf(
        "\nSeeded fault schedule, 4096 chips, 1h horizon, seed %llu:\n"
        "  %zu events (%d chip deaths, %d link flaps, %d preemptions), "
        "first at t=%.3fs\n",
        static_cast<unsigned long long>(faults.seed), schedule.size(),
        by_kind[0], by_kind[1], by_kind[2],
        schedule.empty() ? 0.0 : schedule.front().at);
  }
  return 0;
}
