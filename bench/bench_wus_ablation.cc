// Section 3.2 ablation: weight-update sharding.
// The paper measured the replicated LAMB update at ~18% of the BERT step
// time on 512 chips; sharding distributes it across the replicas. This bench
// reproduces the share with and without sharding, per optimizer.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/multipod.h"
#include "models/model_specs.h"
#include "optim/optimizer.h"

int main() {
  using namespace tpu;
  bench::Header("Weight-update sharding ablation (BERT, 512 chips)",
                "Kumar et al., MLSys 2021, Section 3.2 (paper: ~18% of step)");
  bench::Row("%-14s %-10s | %10s %10s %10s %9s", "optimizer", "scheme",
             "update(ms)", "step(ms)", "speedup", "upd share");

  const auto& bert = models::GetModelSpec(models::Benchmark::kBert);
  const std::int64_t batch = 4096;

  struct Opt {
    const char* name;
    std::unique_ptr<optim::Optimizer> optimizer;
  };
  Opt optimizers[] = {{"momentum-sgd", optim::MakeMomentumSgd({})},
                      {"lars", optim::MakeLars({})},
                      {"lamb", optim::MakeLamb({})}};

  for (Opt& opt : optimizers) {
    core::SystemOptions replicated_opts;
    replicated_opts.weight_update_sharding = false;
    core::SystemOptions sharded_opts;
    sharded_opts.weight_update_sharding = true;

    core::MultipodSystem replicated(512, replicated_opts);
    core::MultipodSystem sharded(512, sharded_opts);
    const auto slow =
        replicated.SimulateStep(bert, batch, 1, opt.optimizer.get());
    const auto fast = sharded.SimulateStep(bert, batch, 1, opt.optimizer.get());

    bench::Row("%-14s %-10s | %10.3f %10.3f %10s %8.1f%%", opt.name,
               "replicated", ToMillis(slow.weight_update),
               ToMillis(slow.step()), "-",
               100.0 * slow.weight_update / slow.step());
    bench::Row("%-14s %-10s | %10.3f %10.3f %9.2fx %8.1f%%", opt.name,
               "sharded", ToMillis(fast.weight_update), ToMillis(fast.step()),
               slow.step() / fast.step(),
               100.0 * fast.weight_update / fast.step());
  }

  // SSD's SPMD + weight-update-sharding interaction (Section 4.4: ~10%
  // speedup even under model parallelism).
  std::printf("\nSSD with 8-way model parallelism (Section 4.4):\n");
  const auto& ssd = models::GetModelSpec(models::Benchmark::kSsd);
  const auto sgd = optim::MakeMomentumSgd({});
  core::SystemOptions on, off;
  off.weight_update_sharding = false;
  core::MultipodSystem with(2048, on), without(2048, off);
  const auto fast = with.SimulateStep(ssd, 4096, 8, sgd.get());
  const auto slow = without.SimulateStep(ssd, 4096, 8, sgd.get());
  bench::Row("  WUS on:  step %.3f ms   WUS off: step %.3f ms   speedup %.2fx",
             ToMillis(fast.step()), ToMillis(slow.step()),
             slow.step() / fast.step());
  return 0;
}
